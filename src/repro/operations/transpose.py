"""``transpose``: ``C⟨Mask⟩ ⊙= Aᵀ`` (Table II row 9).

With ``INP0 = TRAN`` the input is transposed *before* the operation, so the
net effect is ``C ⊙= A`` — a descriptor-controlled copy, which the spec
permits and tests rely on.
"""

from __future__ import annotations

from ..containers.matrix import Matrix
from ..descriptor import Descriptor, effective
from ..info import DimensionMismatch, InvalidValue
from ..ops.base import BinaryOp
from .common import (
    check_input,
    check_output,
    submit_standard_op,
    validate_accum,
    validate_mask_shape,
)
from .ewise import _matrix_keys

__all__ = ["transpose"]


def transpose(
    C: Matrix,
    Mask: Matrix | None,
    accum: BinaryOp | None,
    A: Matrix,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_transpose``: swap row and column indices of every tuple
    (section III-A's definition of Aᵀ)."""
    check_output(C)
    check_input(A, "A")
    if not isinstance(C, Matrix) or not isinstance(A, Matrix):
        raise InvalidValue("transpose requires Matrix output and input")
    d = effective(desc)
    # INP0=TRAN pre-transposes A; the operation then transposes again.
    out_shape = A.shape if d.transpose0 else (A.ncols, A.nrows)
    if C.shape != out_shape:
        raise DimensionMismatch(
            f"output is {C.shape}, transpose result is {out_shape}"
        )
    validate_mask_shape(Mask, C)
    validate_accum(accum, C, A.type)

    def kernel(mask_view):
        # not d.transpose0: the operation itself supplies one transpose
        return _matrix_keys(A, not d.transpose0)

    submit_standard_op(
        C, Mask, accum, desc,
        label="transpose", t_type=A.type, kernel=kernel, inputs=(A,),
    )
    return C
