"""Block-restricted kernel variants for the sharded (process) backend.

Each function computes one block of the internal result T over a window of
the (already shared-memory-attached) CSR, producing *absolute* flat keys —
so stripe partials concatenate, in stripe order, into exactly the sorted
key stream the serial kernel emits.  That is the whole bit-identity
argument, and it is the same one the thread pool relies on in
:func:`repro.operations._kernels._spgemm_impl`:

* **stripes** (row windows): a window slice of a row-major CSR is the same
  elements in the same order the full kernel would visit, so every per-row
  fold is the identical ``segment_reduce`` call.  Holds for *all* domains,
  floats included.
* **tiles** (row window × inner-dimension split, SpGEMM only): within one
  output cell, a k-split cuts the serial product sequence into contiguous
  sub-runs (CSR column indices are sorted, so products arrive k-ascending);
  folding the per-tile partials in k order with the additive monoid equals
  the serial fold whenever the add is exactly associative — hence tiles are
  gated to bool/integer add-domains and floats stay on stripes.

Workers always run these *unmasked*: mask push-down only ever drops whole
output cells (every product of a forbidden destination, never a subset of
an allowed one), so the parent re-applying the mask in
``run_write_pipeline`` yields the byte-identical survivor set.
"""

from __future__ import annotations

import numpy as np

from .._sparseutil import group_starts, ranges_concat, segment_reduce
from ..algebra.semiring import Semiring
from ..containers.formats import CSRView
from ._kernels import _empty

__all__ = [
    "spgemm_stripe",
    "spgemm_tile",
    "spmv_stripe",
    "reduce_rows_stripe",
]


def spgemm_stripe(
    a_view: CSRView,
    a_vals: np.ndarray,
    b_view: CSRView,
    b_vals: np.ndarray,
    semiring: Semiring,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Expand–sort–reduce over A's rows [lo, hi); returns (keys, vals, flops)."""
    from ._kernels import _spgemm_block

    acc: list = []
    keys, vals = _spgemm_block(
        a_view, a_vals, b_view, b_vals, semiring, slice(lo, hi), None, acc
    )
    return keys, vals, int(sum(acc))


def spgemm_tile(
    a_view: CSRView,
    a_vals: np.ndarray,
    b_view: CSRView,
    b_vals: np.ndarray,
    semiring: Semiring,
    lo: int,
    hi: int,
    klo: int,
    khi: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """One 2D tile: rows [lo, hi) of A restricted to inner dim [klo, khi).

    Keys are absolute; partials for the same output cell across k-tiles are
    merged by :func:`repro.shard.merge.merge_tiles` with the additive
    monoid, in k order.
    """
    out_dtype = semiring.d_out.np_dtype
    a_lo, a_hi = int(a_view.indptr[lo]), int(a_view.indptr[hi])
    if a_lo == a_hi:
        return (*_empty(out_dtype), 0)

    cols_w = a_view.indices[a_lo:a_hi]
    sel = (cols_w >= klo) & (cols_w < khi)
    if not sel.any():
        return (*_empty(out_dtype), 0)
    a_cols = cols_w[sel]
    a_rows = np.repeat(
        np.arange(lo, hi, dtype=np.int64),
        np.diff(a_view.indptr[lo : hi + 1]),
    )[sel]
    a_v = a_vals[a_lo:a_hi][sel]

    counts = np.diff(b_view.indptr)[a_cols]
    total = int(counts.sum())
    if total == 0:
        return (*_empty(out_dtype), 0)
    gather = ranges_concat(b_view.indptr[a_cols], counts)
    out_rows = np.repeat(a_rows, counts)
    out_cols = b_view.indices[gather]
    left = np.repeat(a_v, counts)
    right = b_vals[gather]

    keys = out_rows * np.int64(b_view.ncols) + out_cols
    prods = semiring.mul.apply_arrays(left, right)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    prods = prods[order]
    uniq, starts = group_starts(keys)
    vals = segment_reduce(prods, starts, semiring.add)
    if not semiring.d_out.is_udt and vals.dtype != out_dtype:
        vals = vals.astype(out_dtype)
    return uniq, vals, total


def spmv_stripe(
    a_view: CSRView,
    a_vals: np.ndarray,
    v_keys: np.ndarray,
    v_vals: np.ndarray,
    semiring: Semiring,
    swap: bool,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Push-direction SpMV over rows [lo, hi); keys are absolute row ids.

    This is :func:`repro.operations._kernels._spmv_impl`'s push path
    restricted to a row window — a row-major slice, so per-row intersection
    and fold order are byte-for-byte the full kernel's.
    """
    out_dtype = semiring.d_out.np_dtype
    a_lo, a_hi = int(a_view.indptr[lo]), int(a_view.indptr[hi])
    if a_lo == a_hi or len(v_keys) == 0:
        return (*_empty(out_dtype), 0)

    cols = a_view.indices[a_lo:a_hi]
    pos = np.searchsorted(v_keys, cols)
    pos_c = np.minimum(pos, len(v_keys) - 1)
    hit = v_keys[pos_c] == cols
    if not hit.any():
        return (*_empty(out_dtype), 0)

    rows = np.repeat(
        np.arange(lo, hi, dtype=np.int64),
        np.diff(a_view.indptr[lo : hi + 1]),
    )[hit]
    left = a_vals[a_lo:a_hi][hit]
    right = v_vals[pos_c[hit]]
    prods = (
        semiring.mul.apply_arrays(right, left)
        if swap
        else semiring.mul.apply_arrays(left, right)
    )
    uniq, starts = group_starts(rows)
    vals = segment_reduce(prods, starts, semiring.add)
    if not semiring.d_out.is_udt and vals.dtype != out_dtype:
        vals = vals.astype(out_dtype)
    return uniq, vals, len(left)


def reduce_rows_stripe(
    a_view: CSRView, a_vals: np.ndarray, monoid, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Row reduction over rows [lo, hi); keys are absolute row ids."""
    dtype = monoid.domain.np_dtype
    a_lo, a_hi = int(a_view.indptr[lo]), int(a_view.indptr[hi])
    if a_lo == a_hi:
        return (*_empty(dtype), 0)
    rows = np.repeat(
        np.arange(lo, hi, dtype=np.int64),
        np.diff(a_view.indptr[lo : hi + 1]),
    )
    uniq, starts = group_starts(rows)
    vals = segment_reduce(a_vals[a_lo:a_hi], starts, monoid)
    if not monoid.domain.is_udt and vals.dtype != dtype:
        vals = vals.astype(dtype)
    return uniq, vals, a_hi - a_lo
