"""Matrix multiplication over a semiring: ``mxm``, ``mxv``, ``vxm``
(Table II rows 1–3; Fig. 2 documents the full ``GrB_mxm`` signature).

Descriptor handling matches Fig. 2b: ``INP0``/``INP1`` = ``TRAN`` transpose
the corresponding matrix input before the product; ``MASK`` = ``SCMP`` uses
the structural complement; ``OUTP`` = ``REPLACE`` clears the output before
the masked result is stored.
"""

from __future__ import annotations

from ..algebra.semiring import Semiring
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import Descriptor, effective
from ..info import DimensionMismatch, DomainMismatch, InvalidValue
from ..ops.base import BinaryOp
from ..types import can_cast, cast_array
from ._kernels import spgemm, spmv
from .common import (
    check_input,
    check_output,
    submit_standard_op,
    validate_accum,
    validate_mask_shape,
)

__all__ = ["mxm", "mxv", "vxm"]


def _require_semiring(op) -> Semiring:
    if not isinstance(op, Semiring):
        raise InvalidValue(
            f"a Semiring is required for matrix multiplication, got {op!r}"
        )
    return op


def _check_mul_domains(op: Semiring, a_type, b_type) -> None:
    if not can_cast(a_type, op.d_in1):
        raise DomainMismatch(
            f"first input domain {a_type.name} cannot feed multiply input "
            f"{op.d_in1.name}"
        )
    if not can_cast(b_type, op.d_in2):
        raise DomainMismatch(
            f"second input domain {b_type.name} cannot feed multiply input "
            f"{op.d_in2.name}"
        )


def mxm(
    C: Matrix,
    Mask: Matrix | None,
    accum: BinaryOp | None,
    op: Semiring,
    A: Matrix,
    B: Matrix,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_mxm``: ``C⟨Mask⟩ ⊙= A ⊕.⊗ B`` (Fig. 2).

    Returns ``C`` (which the C API mutates through its INOUT parameter).
    """
    check_output(C)
    check_input(A, "A")
    check_input(B, "B")
    op = _require_semiring(op)
    d = effective(desc)

    a_shape = (A.ncols, A.nrows) if d.transpose0 else A.shape
    b_shape = (B.ncols, B.nrows) if d.transpose1 else B.shape
    if a_shape[1] != b_shape[0]:
        raise DimensionMismatch(
            f"inner dimensions do not agree: {a_shape} x {b_shape}"
        )
    if C.shape != (a_shape[0], b_shape[1]):
        raise DimensionMismatch(
            f"output is {C.shape}, product is {(a_shape[0], b_shape[1])}"
        )
    validate_mask_shape(Mask, C)
    _check_mul_domains(op, A.type, B.type)
    validate_accum(accum, C, op.d_out)

    def kernel(mask_view):
        a_view = A.csc() if d.transpose0 else A.csr()
        b_view = B.csc() if d.transpose1 else B.csr()
        a_vals = cast_array(a_view.values, A.type, op.d_in1)
        b_vals = cast_array(b_view.values, B.type, op.d_in2)
        return spgemm(a_view, a_vals, b_view, b_vals, op, mask_view)

    submit_standard_op(
        C, Mask, accum, desc,
        label="mxm", t_type=op.d_out, kernel=kernel, inputs=(A, B),
        op_token=op,
    )
    return C


def mxv(
    w: Vector,
    mask: Vector | None,
    accum: BinaryOp | None,
    op: Semiring,
    A: Matrix,
    u: Vector,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_mxv``: ``w⟨mask⟩ ⊙= A ⊕.⊗ u`` (Table II row 2)."""
    check_output(w)
    check_input(A, "A")
    check_input(u, "u")
    op = _require_semiring(op)
    d = effective(desc)

    a_shape = (A.ncols, A.nrows) if d.transpose0 else A.shape
    if a_shape[1] != u.size:
        raise DimensionMismatch(
            f"matrix has {a_shape[1]} columns but vector has size {u.size}"
        )
    if w.size != a_shape[0]:
        raise DimensionMismatch(
            f"output size {w.size} does not match matrix rows {a_shape[0]}"
        )
    validate_mask_shape(mask, w)
    _check_mul_domains(op, A.type, u.type)
    validate_accum(accum, w, op.d_out)

    def kernel(mask_view):
        a_view = A.csc() if d.transpose0 else A.csr()
        a_vals = cast_array(a_view.values, A.type, op.d_in1)
        u_keys, u_raw = u._content()
        u_vals = cast_array(u_raw, u.type, op.d_in2)
        return spmv(a_view, a_vals, u_keys, u_vals, op, mask_view=mask_view)

    submit_standard_op(
        w, mask, accum, desc,
        label="mxv", t_type=op.d_out, kernel=kernel, inputs=(A, u),
        op_token=op,
    )
    return w


def vxm(
    w: Vector,
    mask: Vector | None,
    accum: BinaryOp | None,
    op: Semiring,
    u: Vector,
    A: Matrix,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_vxm``: ``wᵀ⟨mask⟩ ⊙= uᵀ ⊕.⊗ A`` (Table II row 3).

    ``INP1 = TRAN`` transposes the matrix (the vector input has no useful
    transpose, so ``INP0`` is ignored here, as in reference implementations).
    """
    check_output(w)
    check_input(u, "u")
    check_input(A, "A")
    op = _require_semiring(op)
    d = effective(desc)

    a_shape = (A.ncols, A.nrows) if d.transpose1 else A.shape
    if a_shape[0] != u.size:
        raise DimensionMismatch(
            f"matrix has {a_shape[0]} rows but vector has size {u.size}"
        )
    if w.size != a_shape[1]:
        raise DimensionMismatch(
            f"output size {w.size} does not match matrix columns {a_shape[1]}"
        )
    validate_mask_shape(mask, w)
    _check_mul_domains(op, u.type, A.type)
    validate_accum(accum, w, op.d_out)

    def kernel(mask_view):
        # t(j) = ⊕_i u(i) ⊗ Ae(i,j): run the row-oriented kernel on Aeᵀ,
        # with the multiply operands swapped back into u ⊗ A order.
        a_view = A.csr() if d.transpose1 else A.csc()
        a_vals = cast_array(a_view.values, A.type, op.d_in2)
        u_keys, u_raw = u._content()
        u_vals = cast_array(u_raw, u.type, op.d_in1)
        return spmv(
            a_view, a_vals, u_keys, u_vals, op, swap=True, mask_view=mask_view
        )

    submit_standard_op(
        w, mask, accum, desc,
        label="vxm", t_type=op.d_out, kernel=kernel, inputs=(u, A),
        op_token=op,
    )
    return w
