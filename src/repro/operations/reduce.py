"""``reduce``: fold matrix rows into a vector, or a whole collection into a
scalar (Table II row 6; Fig. 3 line 78 reduces ``bcu`` into ``delta``).

The row-reduce takes a monoid or an associative single-domain binary
operator (the C API's ``GrB_Matrix_reduce_BinaryOp`` form, which Fig. 3
uses by passing ``GrB_PLUS_FP32``).  Rows with no stored elements produce
no output element — there is no implied zero to reduce.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any

from .. import context
from ..algebra.monoid import Monoid
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import Descriptor, effective
from ..info import DimensionMismatch, DomainMismatch, InvalidValue
from ..ops.base import BinaryOp
from ..types import can_cast, cast_array, cast_scalar
from ._kernels import reduce_rows
from .common import (
    check_input,
    check_output,
    submit_standard_op,
    validate_accum,
    validate_mask_shape,
)

__all__ = ["reduce_to_vector", "reduce_to_scalar", "reduce"]


def _as_reducer(op):
    """Accept a Monoid or an associative same-domain BinaryOp."""
    if isinstance(op, Monoid):
        return op
    if isinstance(op, BinaryOp):
        if not op.has_monoid_domains:
            raise DomainMismatch(
                f"reduce operator {op.name} must have a single domain"
            )
        if not op.associative:
            raise InvalidValue(
                f"reduce operator {op.name} must be associative"
            )
        # monoid-shaped shim: row segments are never empty, so no identity
        # is needed (exactly why the C API admits a bare binary op here)
        return SimpleNamespace(op=op, domain=op.d_out, identity=None)
    raise InvalidValue(f"reduce requires a Monoid or BinaryOp, got {op!r}")


def reduce_to_vector(
    w: Vector,
    mask: Vector | None,
    accum: BinaryOp | None,
    op,
    A: Matrix,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_reduce`` (matrix→vector): ``w⟨mask⟩ ⊙= ⊕_j A(:,j)``.

    ``INP0 = TRAN`` reduces columns instead of rows.
    """
    check_output(w)
    check_input(A, "A")
    if not isinstance(w, Vector) or not isinstance(A, Matrix):
        raise InvalidValue("reduce_to_vector needs a Vector output and Matrix input")
    red = _as_reducer(op)
    d = effective(desc)
    n_out = A.ncols if d.transpose0 else A.nrows
    if w.size != n_out:
        raise DimensionMismatch(
            f"output size {w.size} does not match reduced dimension {n_out}"
        )
    validate_mask_shape(mask, w)
    if not can_cast(A.type, red.domain):
        raise DomainMismatch(
            f"input domain {A.type.name} cannot feed reduction domain "
            f"{red.domain.name}"
        )
    validate_accum(accum, w, red.domain)

    def kernel(mask_view):
        view = A.csc() if d.transpose0 else A.csr()
        vals = cast_array(view.values, A.type, red.domain)
        return reduce_rows(view, vals, red)

    submit_standard_op(
        w, mask, accum, desc,
        label="reduce", t_type=red.domain, kernel=kernel, inputs=(A,),
        op_token=op, reducer=red,
    )
    return w


def reduce_to_scalar(
    op: Monoid,
    A,
    accum: BinaryOp | None = None,
    init: Any = None,
) -> Any:
    """``GrB_reduce`` (→ scalar): fold every stored element with the monoid.

    Returns the reduction (the monoid identity for an empty collection).
    With *accum* and *init*, returns ``accum(init, reduction)`` — the C
    API's ``val`` INOUT parameter.  Forces completion: the result is a
    non-opaque value (section IV).
    """
    check_input(A, "input")
    if not isinstance(op, Monoid):
        raise InvalidValue(f"reduce_to_scalar requires a Monoid, got {op!r}")
    if not can_cast(A.type, op.domain):
        raise DomainMismatch(
            f"input domain {A.type.name} cannot feed reduction domain "
            f"{op.domain.name}"
        )
    if accum is not None and not isinstance(accum, BinaryOp):
        raise InvalidValue("accum must be a BinaryOp or GrB_NULL")
    context.complete(A)
    _, raw = A._content()
    result = op.reduce_array(cast_array(raw, A.type, op.domain))
    if accum is not None and init is not None:
        a = cast_scalar(init, accum.d_in1, accum.d_in1)
        b = cast_scalar(result, op.domain, accum.d_in2)
        return accum(a, b)
    return result


def reduce_scalar_object(
    s,
    accum: BinaryOp | None,
    op: Monoid,
    A,
) -> "Scalar":
    """``GrB_reduce`` into an opaque ``GrB_Scalar`` (spec 2.0).

    Unlike :func:`reduce_to_scalar`, the output stays opaque, so the
    operation is *deferrable* in nonblocking mode.  An empty input with no
    accumulator leaves the scalar empty (not identity-valued) — the
    collection semantics of "no stored elements" carries through.
    """
    from ..containers.scalar import Scalar

    check_input(A, "input")
    if not isinstance(s, Scalar):
        raise InvalidValue("reduce_scalar_object requires a Scalar output")
    s._check_valid()
    if not isinstance(op, Monoid):
        raise InvalidValue(f"reduce requires a Monoid, got {op!r}")
    if not can_cast(A.type, op.domain):
        raise DomainMismatch(
            f"input domain {A.type.name} cannot feed reduction domain "
            f"{op.domain.name}"
        )
    if accum is not None:
        if not isinstance(accum, BinaryOp):
            raise InvalidValue("accum must be a BinaryOp or GrB_NULL")
        if not can_cast(s.type, accum.d_in1) or not can_cast(
            op.domain, accum.d_in2
        ) or not can_cast(accum.d_out, s.type):
            raise DomainMismatch("accum domains incompatible with reduction")
    elif not can_cast(op.domain, s.type):
        raise DomainMismatch(
            f"reduction domain {op.domain.name} cannot be cast to scalar "
            f"domain {s.type.name}"
        )

    def thunk():
        _, raw = A._content()
        if len(raw) == 0:
            if accum is None:
                s._has_value = False
                s._value = None
                s._poisoned = False
            return
        red = op.reduce_array(cast_array(raw, A.type, op.domain))
        if accum is not None and s._has_value:
            a = cast_scalar(s._value, s.type, accum.d_in1)
            b = cast_scalar(red, op.domain, accum.d_in2)
            s._set_internal(cast_scalar(accum(a, b), accum.d_out, s.type))
        else:
            s._set_internal(cast_scalar(red, op.domain, s.type))

    context.submit(
        thunk,
        reads=(A,) + ((s,) if accum is not None else ()),
        writes=s,
        label="reduce_scalar",
        overwrites_output=accum is None,
    )
    return s


def reduce(w, mask, accum, op, A, desc: Descriptor | None = None):
    """Generic ``GrB_reduce`` dispatch, Fig. 3 line 78 style.

    When the output is a :class:`Vector`, performs the row-reduce; pass the
    scalar form explicitly via :func:`reduce_to_scalar`.
    """
    return reduce_to_vector(w, mask, accum, op, A, desc)
