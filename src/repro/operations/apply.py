"""``apply``: elementwise unary transformation, ``C⟨Mask⟩ ⊙= F_u(A)``
(Table II row 8).

Fig. 3 uses it twice: line 41 casts the integer frontier to Boolean with
``GrB_IDENTITY_BOOL``, and line 57 computes ``1 ./ numsp`` with
``GrB_MINV_FP32``.  The bind-first/bind-second variants (a binary operator
with one argument fixed to a scalar) and the index-unary variant are the
GrB 1.3/2.0 extensions most algorithms end up wanting.
"""

from __future__ import annotations

import numpy as np

from .._sparseutil import unflatten_keys
from ..containers.matrix import Matrix
from ..descriptor import Descriptor, effective
from ..info import DimensionMismatch, DomainMismatch, InvalidValue
from ..ops.base import BinaryOp, IndexUnaryOp, UnaryOp
from ..types import can_cast, cast_array, cast_scalar
from .common import (
    check_input,
    check_output,
    submit_standard_op,
    validate_accum,
    validate_mask_shape,
)
from .ewise import _matrix_keys

__all__ = ["apply", "apply_bind_first", "apply_bind_second", "apply_index"]


def _validate_unop_shape(C, A, d) -> None:
    if isinstance(C, Matrix):
        if not isinstance(A, Matrix):
            raise InvalidValue("apply input must match output collection kind")
        a_shape = (A.ncols, A.nrows) if d.transpose0 else A.shape
        if C.shape != a_shape:
            raise DimensionMismatch(
                f"apply shapes differ: C{C.shape}, input{a_shape}"
            )
    else:
        if isinstance(A, Matrix):
            raise InvalidValue("apply input must match output collection kind")
        if C.size != A.size:
            raise DimensionMismatch(
                f"apply sizes differ: w={C.size}, u={A.size}"
            )


def _input_content(C, A, d):
    if isinstance(C, Matrix):
        return _matrix_keys(A, d.transpose0)
    return A._content()


def apply(
    C,
    Mask,
    accum: BinaryOp | None,
    op: UnaryOp,
    A,
    desc: Descriptor | None = None,
):
    """``GrB_apply`` (Table VI): apply a unary operator to every stored
    element.  The pattern of T equals the (possibly transposed) pattern of A.
    """
    check_output(C)
    check_input(A, "input")
    if not isinstance(op, UnaryOp):
        raise InvalidValue(f"apply requires a UnaryOp, got {op!r}")
    d = effective(desc)
    _validate_unop_shape(C, A, d)
    validate_mask_shape(Mask, C)
    if not can_cast(A.type, op.d_in):
        raise DomainMismatch(
            f"input domain {A.type.name} cannot feed {op.name} input "
            f"{op.d_in.name}"
        )
    validate_accum(accum, C, op.d_out)

    def post(raw):
        # the kernel's value path, factored out so fusion can run it on a
        # producer's un-materialized result (raw arrives in A's domain)
        vals = op.apply_array(cast_array(raw, A.type, op.d_in))
        if not op.d_out.is_udt and vals.dtype != op.d_out.np_dtype:
            vals = vals.astype(op.d_out.np_dtype)
        return vals

    def kernel(mask_view):
        keys, raw = _input_content(C, A, d)
        if mask_view is not None and len(keys):
            keep = mask_view.allows(keys)
            keys, raw = keys[keep], raw[keep]
        return keys, post(raw)

    submit_standard_op(
        C, Mask, accum, desc,
        label="apply", t_type=op.d_out, kernel=kernel, inputs=(A,),
        op_token=op, post=post,
    )
    return C


def _apply_bound(C, Mask, accum, op, A, desc, scalar, first: bool, label: str):
    check_output(C)
    check_input(A, "input")
    if not isinstance(op, BinaryOp):
        raise InvalidValue(f"{label} requires a BinaryOp, got {op!r}")
    d = effective(desc)
    _validate_unop_shape(C, A, d)
    validate_mask_shape(Mask, C)
    free_in = op.d_in2 if first else op.d_in1
    bound_in = op.d_in1 if first else op.d_in2
    if not can_cast(A.type, free_in):
        raise DomainMismatch(
            f"input domain {A.type.name} cannot feed {op.name} input "
            f"{free_in.name}"
        )
    validate_accum(accum, C, op.d_out)
    if bound_in.is_udt:
        bound_val = bound_in.validate_scalar(scalar)
    else:
        bound_val = cast_scalar(scalar, bound_in, bound_in)

    def kernel(mask_view):
        keys, raw = _input_content(C, A, d)
        if mask_view is not None and len(keys):
            keep = mask_view.allows(keys)
            keys, raw = keys[keep], raw[keep]
        free_vals = cast_array(raw, A.type, free_in)
        bound_arr = np.full(
            len(keys), bound_val,
            dtype=bound_in.np_dtype if not bound_in.is_udt else object,
        )
        if first:
            vals = op.apply_arrays(bound_arr, free_vals)
        else:
            vals = op.apply_arrays(free_vals, bound_arr)
        return keys, vals

    submit_standard_op(
        C, Mask, accum, desc,
        label=label, t_type=op.d_out, kernel=kernel, inputs=(A,),
    )
    return C


def apply_bind_first(C, Mask, accum, op: BinaryOp, scalar, A, desc=None):
    """``GrB_apply`` binop-bind-first: ``C⟨Mask⟩ ⊙= op(s, A)``."""
    return _apply_bound(
        C, Mask, accum, op, A, desc, scalar, first=True, label="apply_bind1st"
    )


def apply_bind_second(C, Mask, accum, op: BinaryOp, A, scalar, desc=None):
    """``GrB_apply`` binop-bind-second: ``C⟨Mask⟩ ⊙= op(A, s)``."""
    return _apply_bound(
        C, Mask, accum, op, A, desc, scalar, first=False, label="apply_bind2nd"
    )


def apply_index(
    C,
    Mask,
    accum: BinaryOp | None,
    op: IndexUnaryOp,
    A,
    thunk_scalar,
    desc: Descriptor | None = None,
):
    """``GrB_apply`` with an index-unary operator: each stored element is
    transformed by ``f(a_ij, i, j, thunk)`` (GrB 2.0)."""
    check_output(C)
    check_input(A, "input")
    if not isinstance(op, IndexUnaryOp):
        raise InvalidValue(f"apply_index requires an IndexUnaryOp, got {op!r}")
    d = effective(desc)
    _validate_unop_shape(C, A, d)
    validate_mask_shape(Mask, C)
    if op.d_in is not None and not can_cast(A.type, op.d_in):
        raise DomainMismatch(
            f"input domain {A.type.name} cannot feed {op.name}"
        )
    validate_accum(accum, C, op.d_out)
    ncols = C.ncols if isinstance(C, Matrix) else 1

    def kernel(mask_view):
        keys, raw = _input_content(C, A, d)
        if mask_view is not None and len(keys):
            keep = mask_view.allows(keys)
            keys, raw = keys[keep], raw[keep]
        if isinstance(C, Matrix):
            rows, cols = unflatten_keys(keys, ncols)
        else:
            rows, cols = keys, np.zeros(len(keys), dtype=np.int64)
        vals_in = (
            cast_array(raw, A.type, op.d_in) if op.d_in is not None else raw
        )
        vals = op.apply_arrays(vals_in, rows, cols, thunk_scalar)
        if not op.d_out.is_udt and vals.dtype != op.d_out.np_dtype:
            vals = vals.astype(op.d_out.np_dtype)
        return keys, vals

    submit_standard_op(
        C, Mask, accum, desc,
        label="apply_index", t_type=op.d_out, kernel=kernel, inputs=(A,),
    )
    return C
