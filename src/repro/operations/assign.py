"""``assign``: write a collection (or a scalar) into a selected subgraph of
the output — Table II row 11.

``C(i, j) ⊙= A`` assigns into the region selected by the index lists; with
a scalar source every region position receives the value (Fig. 3 line 61
fills ``bcu`` with 1.0 over ``GrB_ALL × GrB_ALL`` "to avoid sparsity
issues", and line 77 fills ``delta`` with ``-nsver``).

Semantics beyond the standard pipeline: without an accumulator the region's
previous content is *replaced* (stored C elements at region positions not
covered by the source are deleted); with one, the source merges in via ⊙.
The write-mask then applies over the whole output, as for any operation.
Index lists must not contain duplicates (the C spec leaves duplicate
behaviour undefined; we reject them).
"""

from __future__ import annotations

import numbers
from typing import Any

import numpy as np

from .. import context
from .._sparseutil import flatten_keys, unflatten_keys
from ..containers.matrix import Matrix
from ..containers.mask import build_mask_view
from ..containers.vector import Vector
from ..descriptor import ALL, Descriptor, effective
from ..info import DimensionMismatch, InvalidValue
from ..ops.base import BinaryOp
from ..types import GrBType, cast_array
from .common import (
    accumulate,
    check_input,
    check_output,
    masked_write,
    validate_accum,
    validate_mask_shape,
)
from .extract import resolve_indices

__all__ = [
    "assign",
    "matrix_assign",
    "vector_assign",
    "matrix_assign_scalar",
    "vector_assign_scalar",
    "row_assign",
    "col_assign",
]


from ..containers.scalar import Scalar as _ScalarObject


def _resolve_scalar_source(value) -> tuple[Any, bool]:
    """Resolve a plain scalar or an opaque ``GrB_Scalar`` source at
    execution time: (value, present?)."""
    if isinstance(value, _ScalarObject):
        value._check_valid()
        return value._value, value._has_value
    return value, True


def _check_no_duplicates(idx: np.ndarray, what: str) -> None:
    if len(np.unique(idx)) != len(idx):
        raise InvalidValue(
            f"duplicate {what} indices in assign are not allowed"
        )


def _region_z(
    C,
    accum: BinaryOp | None,
    t_keys: np.ndarray,
    t_vals: np.ndarray,
    t_type: GrBType,
    region_keep: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Build Z for an assign.

    *region_keep*: boolean mask over C's stored entries marking those that
    survive (outside the region), or ``None`` when an accumulator is given
    (everything survives; the accumulator merges).
    """
    c_keys, c_vals = C._content()
    if accum is not None:
        return accumulate(c_keys, c_vals, C.type, t_keys, t_vals, t_type, accum)
    kept_keys = c_keys[region_keep]
    kept_vals = c_vals[region_keep]
    t_cast = cast_array(t_vals, t_type, C.type)
    vals_dtype = object if C.type.is_udt else C.type.np_dtype
    keys = np.concatenate([kept_keys, t_keys])
    vals = np.concatenate([kept_vals, np.asarray(t_cast, dtype=vals_dtype)])
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]


def _submit_assign(C, mask, accum, desc, label, inputs, make_t_and_keep, t_type):
    d = effective(desc)

    def thunk():
        t_keys, t_vals, region_keep = make_t_and_keep()
        z_keys, z_vals = _region_z(
            C, accum, t_keys, t_vals, t_type, region_keep
        )
        mask_view = build_mask_view(mask, d.mask_complement, d.mask_structure)
        masked_write(C, z_keys, z_vals, mask_view, d.replace)

    reads = tuple(x for x in inputs if x is not None) + (C,)
    if mask is not None:
        reads += (mask,)
    context.submit(thunk, reads=reads, writes=C, label=label)


# --------------------------------------------------------------------- matrix

def matrix_assign(
    C: Matrix,
    Mask: Matrix | None,
    accum: BinaryOp | None,
    A: Matrix,
    row_indices,
    col_indices,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_assign`` (matrix): ``C(i, j)⟨Mask⟩ ⊙= A``."""
    check_output(C)
    check_input(A, "A")
    if not isinstance(C, Matrix) or not isinstance(A, Matrix):
        raise InvalidValue("matrix_assign requires Matrix output and input")
    d = effective(desc)
    ri = resolve_indices(row_indices, C.nrows, "row")
    ci = resolve_indices(col_indices, C.ncols, "column")
    _check_no_duplicates(ri, "row")
    _check_no_duplicates(ci, "column")
    a_shape = (A.ncols, A.nrows) if d.transpose0 else A.shape
    if a_shape != (len(ri), len(ci)):
        raise DimensionMismatch(
            f"source is {a_shape} but region is {(len(ri), len(ci))}"
        )
    validate_mask_shape(Mask, C)
    validate_accum(accum, C, A.type)
    full_region = len(ri) == C.nrows and len(ci) == C.ncols

    def make():
        if d.transpose0:
            view = A.csc()
            a_keys = view.row_ids() * np.int64(view.ncols) + view.indices
            raw = view.values
            src_ncols = view.ncols
        else:
            a_keys, raw = A._content()
            src_ncols = A.ncols
        a_rows, a_cols = unflatten_keys(a_keys, src_ncols)
        t_keys = flatten_keys(ri[a_rows], ci[a_cols], C.ncols)
        order = np.argsort(t_keys, kind="stable")
        t_keys, t_vals = t_keys[order], raw[order]
        if accum is not None:
            return t_keys, t_vals, None
        c_keys, _ = C._content()
        if full_region:
            keep = np.zeros(len(c_keys), dtype=bool)
        else:
            rows, cols = unflatten_keys(c_keys, C.ncols)
            keep = ~(np.isin(rows, ri) & np.isin(cols, ci))
        return t_keys, t_vals, keep

    _submit_assign(
        C, Mask, accum, desc, "assign", (A,), make, A.type
    )
    return C


def matrix_assign_scalar(
    C: Matrix,
    Mask: Matrix | None,
    accum: BinaryOp | None,
    value: Any,
    row_indices,
    col_indices,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_assign`` (matrix, scalar source): every region position gets
    *value* — a dense fill of the region (Fig. 3 line 61)."""
    check_output(C)
    if not isinstance(C, Matrix):
        raise InvalidValue("matrix_assign_scalar requires a Matrix output")
    ri = resolve_indices(row_indices, C.nrows, "row")
    ci = resolve_indices(col_indices, C.ncols, "column")
    _check_no_duplicates(ri, "row")
    _check_no_duplicates(ci, "column")
    validate_mask_shape(Mask, C)
    validate_accum(accum, C, C.type)
    if C.type.is_udt and not isinstance(value, _ScalarObject):
        C.type.validate_scalar(value)
    full_region = len(ri) == C.nrows and len(ci) == C.ncols

    def make():
        resolved, present = _resolve_scalar_source(value)
        t_keys = (
            ri[:, None].astype(np.int64) * np.int64(C.ncols) + ci[None, :]
        ).ravel()
        t_keys = np.sort(t_keys)
        if not present:
            # empty GrB_Scalar source: assigns nothing — with no accum the
            # region's previous entries are still deleted (spec 2.0)
            t_keys = t_keys[:0]
            t_vals = np.empty(0, dtype=object if C.type.is_udt else C.type.np_dtype)
        elif C.type.is_udt:
            t_vals = np.empty(len(t_keys), dtype=object)
            t_vals[:] = resolved
        else:
            t_vals = np.full(
                len(t_keys),
                np.asarray([resolved]).astype(C.type.np_dtype)[0],
                dtype=C.type.np_dtype,
            )
        if accum is not None:
            return t_keys, t_vals, None
        c_keys, _ = C._content()
        if full_region:
            keep = np.zeros(len(c_keys), dtype=bool)
        else:
            rows, cols = unflatten_keys(c_keys, C.ncols)
            keep = ~(np.isin(rows, ri) & np.isin(cols, ci))
        return t_keys, t_vals, keep

    srcs = (value,) if isinstance(value, _ScalarObject) else ()
    _submit_assign(
        C, Mask, accum, desc, "assign_scalar", srcs, make, C.type
    )
    return C


# --------------------------------------------------------------------- vector

def vector_assign(
    w: Vector,
    mask: Vector | None,
    accum: BinaryOp | None,
    u: Vector,
    indices,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_assign`` (vector): ``w(i)⟨mask⟩ ⊙= u``."""
    check_output(w)
    check_input(u, "u")
    if not isinstance(w, Vector) or not isinstance(u, Vector):
        raise InvalidValue("vector_assign requires Vector output and input")
    idx = resolve_indices(indices, w.size, "vector")
    _check_no_duplicates(idx, "vector")
    if u.size != len(idx):
        raise DimensionMismatch(
            f"source size {u.size} but region selects {len(idx)}"
        )
    validate_mask_shape(mask, w)
    validate_accum(accum, w, u.type)
    full_region = len(idx) == w.size

    def make():
        u_keys, u_raw = u._content()
        t_keys = idx[u_keys]
        order = np.argsort(t_keys, kind="stable")
        t_keys, t_vals = t_keys[order], u_raw[order]
        if accum is not None:
            return t_keys, t_vals, None
        w_keys, _ = w._content()
        if full_region:
            keep = np.zeros(len(w_keys), dtype=bool)
        else:
            keep = ~np.isin(w_keys, idx)
        return t_keys, t_vals, keep

    _submit_assign(w, mask, accum, desc, "assign", (u,), make, u.type)
    return w


def vector_assign_scalar(
    w: Vector,
    mask: Vector | None,
    accum: BinaryOp | None,
    value: Any,
    indices,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_assign`` (vector, scalar source): dense fill of the region
    (Fig. 3 line 77 fills ``delta`` with ``-nsver``)."""
    check_output(w)
    if not isinstance(w, Vector):
        raise InvalidValue("vector_assign_scalar requires a Vector output")
    idx = resolve_indices(indices, w.size, "vector")
    _check_no_duplicates(idx, "vector")
    validate_mask_shape(mask, w)
    validate_accum(accum, w, w.type)
    if w.type.is_udt and not isinstance(value, _ScalarObject):
        w.type.validate_scalar(value)
    full_region = len(idx) == w.size

    def make():
        resolved, present = _resolve_scalar_source(value)
        t_keys = np.sort(idx)
        if not present:
            t_keys = t_keys[:0]
            t_vals = np.empty(0, dtype=object if w.type.is_udt else w.type.np_dtype)
        elif w.type.is_udt:
            t_vals = np.empty(len(t_keys), dtype=object)
            t_vals[:] = resolved
        else:
            t_vals = np.full(
                len(t_keys),
                np.asarray([resolved]).astype(w.type.np_dtype)[0],
                dtype=w.type.np_dtype,
            )
        if accum is not None:
            return t_keys, t_vals, None
        w_keys, _ = w._content()
        if full_region:
            keep = np.zeros(len(w_keys), dtype=bool)
        else:
            keep = ~np.isin(w_keys, idx)
        return t_keys, t_vals, keep

    srcs = (value,) if isinstance(value, _ScalarObject) else ()
    _submit_assign(w, mask, accum, desc, "assign_scalar", srcs, make, w.type)
    return w


# ----------------------------------------------------------------- row / col

def row_assign(
    C: Matrix,
    mask: Vector | None,
    accum: BinaryOp | None,
    u: Vector,
    row: int,
    col_indices,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_Row_assign``: ``C(i, j)⟨mask⟩ ⊙= u`` for one row *i*.

    The mask is a vector over the row; replace/merge semantics apply within
    that row only (the rest of C is untouched).
    """
    return _line_assign(C, mask, accum, u, row, col_indices, desc, is_row=True)


def col_assign(
    C: Matrix,
    mask: Vector | None,
    accum: BinaryOp | None,
    u: Vector,
    row_indices,
    col: int,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_Col_assign``: ``C(i, j)⟨mask⟩ ⊙= u`` for one column *j*."""
    return _line_assign(C, mask, accum, u, col, row_indices, desc, is_row=False)


def _line_assign(C, mask, accum, u, line: int, indices, desc, is_row: bool):
    check_output(C)
    check_input(u, "u")
    if not isinstance(C, Matrix) or not isinstance(u, Vector):
        raise InvalidValue("row/col assign requires Matrix output, Vector input")
    d = effective(desc)
    line_len = C.ncols if is_row else C.nrows
    other_len = C.nrows if is_row else C.ncols
    li = int(line)
    if not 0 <= li < other_len:
        raise InvalidValue(
            f"{'row' if is_row else 'column'} {line} out of range"
        )
    idx = resolve_indices(indices, line_len, "line")
    _check_no_duplicates(idx, "line")
    if u.size != len(idx):
        raise DimensionMismatch(
            f"source size {u.size} but region selects {len(idx)}"
        )
    if mask is not None:
        check_input(mask, "mask")
        if not isinstance(mask, Vector) or mask.size != line_len:
            raise DimensionMismatch(
                "row/col assign mask must be a vector over the assigned line"
            )
    validate_accum(accum, C, u.type)

    def thunk():
        c_keys, c_vals = C._content()
        rows, cols = unflatten_keys(c_keys, C.ncols)
        on_line = rows == li if is_row else cols == li
        line_pos = cols[on_line] if is_row else rows[on_line]
        line_vals = c_vals[on_line]

        # assemble the new line content: start from the current line,
        # apply region-assign semantics along it
        u_keys, u_raw = u._content()
        t_pos = idx[u_keys]
        order = np.argsort(t_pos, kind="stable")
        t_pos, t_vals = t_pos[order], u_raw[order]
        if accum is None:
            # region entries of the line are replaced: survivors are the
            # line's stored entries outside the region, disjoint from T
            survive = ~np.isin(line_pos, idx)
            z_keys = np.concatenate([line_pos[survive], t_pos])
            z_vals = np.concatenate(
                [
                    line_vals[survive],
                    np.asarray(
                        cast_array(t_vals, u.type, C.type),
                        dtype=C.type.np_dtype if not C.type.is_udt else object,
                    ),
                ]
            )
            o = np.argsort(z_keys, kind="stable")
            z_pos, z_vals = z_keys[o], z_vals[o]
        else:
            z_pos, z_vals = accumulate(
                line_pos, line_vals, C.type, t_pos, t_vals, u.type, accum
            )

        mask_view = build_mask_view(mask, d.mask_complement, d.mask_structure)
        if mask_view is not None:
            allowed = mask_view.allows(z_pos)
            if d.replace:
                z_pos, z_vals = z_pos[allowed], z_vals[allowed]
            else:
                outside = ~mask_view.allows(line_pos)
                z_pos = np.concatenate([line_pos[outside], z_pos[allowed]])
                z_vals = np.concatenate([line_vals[outside], z_vals[allowed]])
                o = np.argsort(z_pos, kind="stable")
                z_pos, z_vals = z_pos[o], z_vals[o]

        # splice the new line back into C
        keep_keys = c_keys[~on_line]
        keep_vals = c_vals[~on_line]
        new_keys = (
            np.int64(li) * C.ncols + z_pos
            if is_row
            else z_pos * np.int64(C.ncols) + li
        )
        keys = np.concatenate([keep_keys, new_keys])
        vals = np.concatenate([keep_vals, z_vals])
        o = np.argsort(keys, kind="stable")
        C._set_content(keys[o], vals[o])

    reads = (u, C) + ((mask,) if mask is not None else ())
    context.submit(
        thunk, reads=reads, writes=C,
        label="row_assign" if is_row else "col_assign",
    )
    return C


# ----------------------------------------------------------------- dispatch

def assign(C, Mask, accum, source, *args, **kwargs):
    """Generic ``GrB_assign`` dispatch (the C API's ``_Generic`` macro).

    * matrix source  → :func:`matrix_assign`
    * vector source into a matrix with an integer row/col → row/col assign
    * vector source into a vector → :func:`vector_assign`
    * scalar source  → the scalar variants
    """
    if isinstance(source, Matrix):
        return matrix_assign(C, Mask, accum, source, *args, **kwargs)
    if isinstance(source, Vector):
        if isinstance(C, Vector):
            return vector_assign(C, Mask, accum, source, *args, **kwargs)
        first, second = args[0], args[1]
        rest = args[2:]
        if isinstance(first, numbers.Integral):
            return row_assign(C, Mask, accum, source, first, second, *rest, **kwargs)
        if isinstance(second, numbers.Integral):
            return col_assign(C, Mask, accum, source, first, second, *rest, **kwargs)
        raise InvalidValue("vector-into-matrix assign needs a fixed row or column")
    if isinstance(C, Matrix):
        return matrix_assign_scalar(C, Mask, accum, source, *args, **kwargs)
    return vector_assign_scalar(C, Mask, accum, source, *args, **kwargs)
