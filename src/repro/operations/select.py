"""``select``: keep the stored elements satisfying an index-unary predicate
(GraphBLAS 2.0 / GxB extension).

``C⟨Mask⟩ ⊙= select(op, A, thunk)`` — the output has A's domain and the
subset of A's pattern where ``op(a_ij, i, j, thunk)`` is truthy.  This is
the operation triangle counting uses to split an adjacency matrix into its
lower/upper triangles (``TRIL``/``TRIU``).
"""

from __future__ import annotations

import numpy as np

from .._sparseutil import unflatten_keys
from ..containers.matrix import Matrix
from ..descriptor import Descriptor, effective
from ..info import DomainMismatch, InvalidValue
from ..ops.base import BinaryOp, IndexUnaryOp
from ..types import can_cast, cast_array
from .apply import _input_content, _validate_unop_shape
from .common import (
    check_input,
    check_output,
    submit_standard_op,
    validate_accum,
    validate_mask_shape,
)

__all__ = ["select"]


def select(
    C,
    Mask,
    accum: BinaryOp | None,
    op: IndexUnaryOp,
    A,
    thunk_scalar,
    desc: Descriptor | None = None,
):
    """``GrB_select``: filter A's stored elements through the predicate."""
    check_output(C)
    check_input(A, "input")
    if not isinstance(op, IndexUnaryOp):
        raise InvalidValue(f"select requires an IndexUnaryOp, got {op!r}")
    d = effective(desc)
    _validate_unop_shape(C, A, d)
    validate_mask_shape(Mask, C)
    if op.d_in is not None and not can_cast(A.type, op.d_in):
        raise DomainMismatch(
            f"input domain {A.type.name} cannot feed {op.name}"
        )
    # select preserves values: T has A's domain
    validate_accum(accum, C, A.type)
    ncols = C.ncols if isinstance(C, Matrix) else 1

    def kernel(mask_view):
        keys, raw = _input_content(C, A, d)
        if mask_view is not None and len(keys):
            keep_mask = mask_view.allows(keys)
            keys, raw = keys[keep_mask], raw[keep_mask]
        if len(keys) == 0:
            return keys, raw.copy()
        if isinstance(C, Matrix):
            rows, cols = unflatten_keys(keys, ncols)
        else:
            rows, cols = keys, np.zeros(len(keys), dtype=np.int64)
        vals_in = (
            cast_array(raw, A.type, op.d_in) if op.d_in is not None else raw
        )
        verdict = np.asarray(
            op.apply_arrays(vals_in, rows, cols, thunk_scalar)
        ).astype(bool)
        return keys[verdict], raw[verdict]

    submit_standard_op(
        C, Mask, accum, desc,
        label="select", t_type=A.type, kernel=kernel, inputs=(A,),
        selector=(op, thunk_scalar),
    )
    return C
