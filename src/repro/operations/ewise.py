"""Element-wise operations: ``eWiseAdd`` (pattern union) and ``eWiseMult``
(pattern intersection) — Table II rows 4–5.

The names refer to the *pattern* semantics, not the operator: either can use
any binary operator.  Per the C API, ``op`` may be a semiring (whose ⊕ is
used for add, ⊗ for mult), a monoid, or a plain binary operator.
"""

from __future__ import annotations

import numpy as np

from .._sparseutil import intersect_indices, union_keys
from ..algebra.monoid import Monoid
from ..algebra.semiring import Semiring
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import Descriptor, effective
from ..info import DimensionMismatch, DomainMismatch, InvalidValue
from ..ops.base import BinaryOp
from ..types import can_cast, cast_array
from .common import (
    check_input,
    check_output,
    submit_standard_op,
    validate_accum,
    validate_mask_shape,
)

__all__ = ["ewise_add", "ewise_mult", "eWiseAdd", "eWiseMult"]


def _resolve_op(op, which: str) -> BinaryOp:
    """C's ``_Generic`` dispatch: semiring → its ⊕/⊗, monoid → its op."""
    if isinstance(op, Semiring):
        return op.add_op if which == "add" else op.mul
    if isinstance(op, Monoid):
        return op.op
    if isinstance(op, BinaryOp):
        return op
    raise InvalidValue(
        f"eWise op must be a BinaryOp, Monoid, or Semiring, got {op!r}"
    )


def _matrix_keys(M: Matrix, transposed: bool) -> tuple[np.ndarray, np.ndarray]:
    """Flat keys/values of M, or of Mᵀ when the descriptor asks for it."""
    if not transposed:
        return M._content()
    view = M.csc()  # CSR of Mᵀ — already in the transpose's row-major order
    keys = view.row_ids() * np.int64(view.ncols) + view.indices
    return keys, view.values


def _check_ewise_domains(op: BinaryOp, a_type, b_type) -> None:
    if not can_cast(a_type, op.d_in1):
        raise DomainMismatch(
            f"first input domain {a_type.name} cannot feed {op.name} input "
            f"{op.d_in1.name}"
        )
    if not can_cast(b_type, op.d_in2):
        raise DomainMismatch(
            f"second input domain {b_type.name} cannot feed {op.name} input "
            f"{op.d_in2.name}"
        )


def _validate_pair(C, A, B, d) -> None:
    if isinstance(C, Matrix):
        for X, what in ((A, "A"), (B, "B")):
            if not isinstance(X, Matrix):
                raise InvalidValue(f"{what} must be a Matrix")
        a_shape = (A.ncols, A.nrows) if d.transpose0 else A.shape
        b_shape = (B.ncols, B.nrows) if d.transpose1 else B.shape
        if not (C.shape == a_shape == b_shape):
            raise DimensionMismatch(
                f"eWise shapes differ: C{C.shape}, A{a_shape}, B{b_shape}"
            )
    else:
        for X, what in ((A, "u"), (B, "v")):
            if not isinstance(X, Vector):
                raise InvalidValue(f"{what} must be a Vector")
        if not (C.size == A.size == B.size):
            raise DimensionMismatch(
                f"eWise sizes differ: w={C.size}, u={A.size}, v={B.size}"
            )


def _contents(C, A, B, d):
    if isinstance(C, Matrix):
        return (
            _matrix_keys(A, d.transpose0),
            _matrix_keys(B, d.transpose1),
        )
    return (A._content(), B._content())


def ewise_add(
    C,
    Mask,
    accum: BinaryOp | None,
    op,
    A,
    B,
    desc: Descriptor | None = None,
):
    """``GrB_eWiseAdd``: ``C⟨Mask⟩ ⊙= A ⊕ B`` over the pattern **union**.

    Entries present in only one input are copied through (cast to the op's
    output domain); entries present in both are combined with the operator.
    Fig. 3 line 42 uses this to fold the BFS frontier's path counts into
    ``numsp``.
    """
    check_output(C)
    check_input(A, "first input")
    check_input(B, "second input")
    bop = _resolve_op(op, "add")
    d = effective(desc)
    _validate_pair(C, A, B, d)
    validate_mask_shape(Mask, C)
    _check_ewise_domains(bop, A.type, B.type)
    # single-present entries are cast directly into the result domain
    for X, what in ((A, "first"), (B, "second")):
        if not can_cast(X.type, bop.d_out):
            raise DomainMismatch(
                f"{what} input domain {X.type.name} cannot be cast to result "
                f"domain {bop.d_out.name}"
            )
    validate_accum(accum, C, bop.d_out)

    def kernel(mask_view):
        (a_keys, a_raw), (b_keys, b_raw) = _contents(C, A, B, d)

        def combine(av, bv):
            return bop.apply_arrays(
                cast_array(av, A.type, bop.d_in1),
                cast_array(bv, B.type, bop.d_in2),
            )

        return union_keys(
            a_keys,
            a_raw,
            b_keys,
            b_raw,
            bop.d_out.np_dtype,
            combine,
            cast_a=lambda x: cast_array(x, A.type, bop.d_out),
            cast_b=lambda x: cast_array(x, B.type, bop.d_out),
        )

    submit_standard_op(
        C, Mask, accum, desc,
        label="eWiseAdd", t_type=bop.d_out, kernel=kernel, inputs=(A, B),
        op_token=bop,
    )
    return C


def ewise_mult(
    C,
    Mask,
    accum: BinaryOp | None,
    op,
    A,
    B,
    desc: Descriptor | None = None,
):
    """``GrB_eWiseMult``: ``C⟨Mask⟩ ⊙= A ⊗ B`` over the pattern
    **intersection** — the set-notation form of section II, with ⊗ applied
    only where both inputs have stored elements."""
    check_output(C)
    check_input(A, "first input")
    check_input(B, "second input")
    bop = _resolve_op(op, "mult")
    d = effective(desc)
    _validate_pair(C, A, B, d)
    validate_mask_shape(Mask, C)
    _check_ewise_domains(bop, A.type, B.type)
    validate_accum(accum, C, bop.d_out)

    def kernel(mask_view):
        (a_keys, a_raw), (b_keys, b_raw) = _contents(C, A, B, d)
        ia, ib = intersect_indices(a_keys, b_keys)
        keys = a_keys[ia]
        vals = bop.apply_arrays(
            cast_array(a_raw[ia], A.type, bop.d_in1),
            cast_array(b_raw[ib], B.type, bop.d_in2),
        )
        if not bop.d_out.is_udt and vals.dtype != bop.d_out.np_dtype:
            vals = vals.astype(bop.d_out.np_dtype)
        return keys, vals

    submit_standard_op(
        C, Mask, accum, desc,
        label="eWiseMult", t_type=bop.d_out, kernel=kernel, inputs=(A, B),
        op_token=bop,
    )
    return C


def ewise_union(
    C,
    Mask,
    accum: BinaryOp | None,
    op,
    A,
    alpha,
    B,
    beta,
    desc: Descriptor | None = None,
):
    """``GxB_eWiseUnion``: pattern union where the operator is applied
    *everywhere* — an entry present in only one input pairs with the
    other side's fill scalar: ``op(a, beta)`` or ``op(alpha, b)``.

    This fills the semantic gap between eWiseAdd (single-present values
    copied through) and dense subtraction-like operators: ``eWiseUnion``
    with MINUS and fills 0 behaves like dense ``A - B`` on the union.
    """
    check_output(C)
    check_input(A, "first input")
    check_input(B, "second input")
    bop = _resolve_op(op, "add")
    d = effective(desc)
    _validate_pair(C, A, B, d)
    validate_mask_shape(Mask, C)
    _check_ewise_domains(bop, A.type, B.type)
    validate_accum(accum, C, bop.d_out)
    if bop.d_in1.is_udt:
        bop.d_in1.validate_scalar(alpha)
    if bop.d_in2.is_udt:
        bop.d_in2.validate_scalar(beta)

    def kernel(mask_view):
        (a_keys, a_raw), (b_keys, b_raw) = _contents(C, A, B, d)
        alpha_arr = (
            np.full(1, alpha, dtype=object)
            if bop.d_in1.is_udt
            else np.asarray([alpha]).astype(bop.d_in1.np_dtype)
        )
        beta_arr = (
            np.full(1, beta, dtype=object)
            if bop.d_in2.is_udt
            else np.asarray([beta]).astype(bop.d_in2.np_dtype)
        )

        def combine(av, bv):
            return bop.apply_arrays(
                cast_array(av, A.type, bop.d_in1),
                cast_array(bv, B.type, bop.d_in2),
            )

        def only_a(av):
            return bop.apply_arrays(
                cast_array(av, A.type, bop.d_in1),
                np.broadcast_to(beta_arr, (len(av),)).copy()
                if len(av)
                else beta_arr[:0],
            )

        def only_b(bv):
            return bop.apply_arrays(
                np.broadcast_to(alpha_arr, (len(bv),)).copy()
                if len(bv)
                else alpha_arr[:0],
                cast_array(bv, B.type, bop.d_in2),
            )

        from .._sparseutil import union_keys

        return union_keys(
            a_keys,
            a_raw,
            b_keys,
            b_raw,
            bop.d_out.np_dtype,
            combine,
            cast_a=only_a,
            cast_b=only_b,
        )

    submit_standard_op(
        C, Mask, accum, desc,
        label="eWiseUnion", t_type=bop.d_out, kernel=kernel, inputs=(A, B),
    )
    return C


# C-API-style aliases
eWiseAdd = ewise_add
eWiseMult = ewise_mult
