"""``extract``: pull a sub-collection out by index lists (Table II row 10).

``C⟨Mask⟩ ⊙= A(i, j)`` where ``i``/``j`` are index arrays or ``GrB_ALL``.
Index lists may repeat entries (the C API permits duplicates for extract —
each occurrence produces its own output row/column).  Fig. 3 line 33 uses
the matrix form with ``GrB_ALL`` rows and the source-vertex array as
columns, on a transposed adjacency matrix, to initialize the BFS frontier.
"""

from __future__ import annotations

import numpy as np

from .._sparseutil import flatten_keys, ranges_concat, unflatten_keys
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import ALL, Descriptor, effective
from ..info import DimensionMismatch, IndexOutOfBounds, InvalidValue
from ..ops.base import BinaryOp
from .common import (
    check_input,
    check_output,
    submit_standard_op,
    validate_accum,
    validate_mask_shape,
)

__all__ = ["extract", "matrix_extract", "vector_extract", "col_extract"]


def resolve_indices(indices, bound: int, what: str) -> np.ndarray:
    """Resolve an index list or ``GrB_ALL`` against a dimension bound."""
    if indices is ALL:
        return np.arange(bound, dtype=np.int64)
    arr = np.asarray(indices, dtype=np.int64)
    if arr.ndim != 1:
        raise InvalidValue(f"{what} index list must be one-dimensional")
    if len(arr) and (arr.min() < 0 or arr.max() >= bound):
        raise IndexOutOfBounds(f"{what} index out of range [0, {bound})")
    return arr


def _match_expand(
    element_ids: np.ndarray, requested: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """For each element id, find every position of it in *requested*.

    Returns ``(element_selector, out_positions)``: parallel arrays where
    ``element_selector[k]`` indexes the original element and
    ``out_positions[k]`` is its output index.  Handles duplicate entries in
    *requested* by expansion.
    """
    if len(element_ids) == 0 or len(requested) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(requested, kind="stable")
    sorted_req = requested[order]
    lo = np.searchsorted(sorted_req, element_ids, side="left")
    hi = np.searchsorted(sorted_req, element_ids, side="right")
    counts = hi - lo
    gather = ranges_concat(lo, counts)
    selector = np.repeat(
        np.arange(len(element_ids), dtype=np.int64), counts
    )
    return selector, order[gather]


def matrix_extract(
    C: Matrix,
    Mask: Matrix | None,
    accum: BinaryOp | None,
    A: Matrix,
    row_indices,
    col_indices,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_extract`` (matrix): ``C⟨Mask⟩ ⊙= A(i, j)``."""
    check_output(C)
    check_input(A, "A")
    if not isinstance(C, Matrix) or not isinstance(A, Matrix):
        raise InvalidValue("matrix_extract requires Matrix output and input")
    d = effective(desc)
    eff_rows, eff_cols = (
        (A.ncols, A.nrows) if d.transpose0 else (A.nrows, A.ncols)
    )
    ri = resolve_indices(row_indices, eff_rows, "row")
    ci = resolve_indices(col_indices, eff_cols, "column")
    if C.shape != (len(ri), len(ci)):
        raise DimensionMismatch(
            f"output is {C.shape} but index lists select "
            f"{(len(ri), len(ci))}"
        )
    validate_mask_shape(Mask, C)
    validate_accum(accum, C, A.type)

    def kernel(mask_view):
        if d.transpose0:
            view = A.csc()
            keys = view.row_ids() * np.int64(view.ncols) + view.indices
            raw = view.values
            src_ncols = view.ncols
        else:
            keys, raw = A._content()
            src_ncols = A.ncols
        rows, cols = unflatten_keys(keys, src_ncols)
        sel_r, out_r = _match_expand(rows, ri)
        sel_c, out_c = _match_expand(cols[sel_r], ci)
        orig = sel_r[sel_c]
        t_keys = flatten_keys(out_r[sel_c], out_c, len(ci))
        t_vals = raw[orig]
        order = np.argsort(t_keys, kind="stable")
        return t_keys[order], t_vals[order]

    submit_standard_op(
        C, Mask, accum, desc,
        label="extract", t_type=A.type, kernel=kernel, inputs=(A,),
    )
    return C


def vector_extract(
    w: Vector,
    mask: Vector | None,
    accum: BinaryOp | None,
    u: Vector,
    indices,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_extract`` (vector): ``w⟨mask⟩ ⊙= u(i)``."""
    check_output(w)
    check_input(u, "u")
    if not isinstance(w, Vector) or not isinstance(u, Vector):
        raise InvalidValue("vector_extract requires Vector output and input")
    idx = resolve_indices(indices, u.size, "vector")
    if w.size != len(idx):
        raise DimensionMismatch(
            f"output size {w.size} but index list selects {len(idx)}"
        )
    validate_mask_shape(mask, w)
    validate_accum(accum, w, u.type)

    def kernel(mask_view):
        keys, raw = u._content()
        sel, out_pos = _match_expand(keys, idx)
        t_keys = out_pos
        t_vals = raw[sel]
        order = np.argsort(t_keys, kind="stable")
        return t_keys[order].astype(np.int64), t_vals[order]

    submit_standard_op(
        w, mask, accum, desc,
        label="extract", t_type=u.type, kernel=kernel, inputs=(u,),
    )
    return w


def col_extract(
    w: Vector,
    mask: Vector | None,
    accum: BinaryOp | None,
    A: Matrix,
    row_indices,
    col: int,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_Col_extract``: ``w⟨mask⟩ ⊙= A(i, j)`` for a single column *j*.

    With ``INP0 = TRAN`` this extracts a row instead.
    """
    check_output(w)
    check_input(A, "A")
    if not isinstance(w, Vector) or not isinstance(A, Matrix):
        raise InvalidValue("col_extract requires Vector output and Matrix input")
    d = effective(desc)
    eff_rows, eff_cols = (
        (A.ncols, A.nrows) if d.transpose0 else (A.nrows, A.ncols)
    )
    j = int(col)
    if not 0 <= j < eff_cols:
        raise IndexOutOfBounds(f"column {col} out of range [0, {eff_cols})")
    ri = resolve_indices(row_indices, eff_rows, "row")
    if w.size != len(ri):
        raise DimensionMismatch(
            f"output size {w.size} but index list selects {len(ri)}"
        )
    validate_mask_shape(mask, w)
    validate_accum(accum, w, A.type)

    def kernel(mask_view):
        # the column slice of A (or row slice under TRAN) via the CSC view
        view = A.csr() if d.transpose0 else A.csc()
        sl = view.row_slice(j)
        col_rows = view.indices[sl]
        col_vals = view.values[sl]
        sel, out_pos = _match_expand(col_rows, ri)
        t_keys = out_pos
        t_vals = col_vals[sel]
        order = np.argsort(t_keys, kind="stable")
        return t_keys[order].astype(np.int64), t_vals[order]

    submit_standard_op(
        w, mask, accum, desc,
        label="col_extract", t_type=A.type, kernel=kernel, inputs=(A,),
    )
    return w


def extract(C, Mask, accum, A, *args, **kwargs):
    """Generic ``GrB_extract`` dispatch (the C API's ``_Generic`` macro).

    * ``extract(C, Mask, accum, A, rows, cols, desc)`` — matrix → matrix
    * ``extract(w, mask, accum, u, indices, desc)`` — vector → vector
    * ``extract(w, mask, accum, A, rows, j, desc)`` — matrix column → vector
    """
    if isinstance(C, Matrix):
        return matrix_extract(C, Mask, accum, A, *args, **kwargs)
    if isinstance(A, Matrix):
        return col_extract(C, Mask, accum, A, *args, **kwargs)
    return vector_extract(C, Mask, accum, A, *args, **kwargs)
