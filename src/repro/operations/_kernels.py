"""Semiring kernels: the computations that produce the internal result T.

All kernels follow the paper's set-intersection formulation

    C(i,j) = ⊕_{k ∈ ind(A(i,:)) ∩ ind(B(:,j))} A(i,k) ⊗ B(k,j)

— the ⊗ operator touches only stored elements, so the semiring's implied
zero never materializes.

The workhorse is *expand–sort–reduce* SpGEMM: explode every contributing
(i,k)×(k,j) pair into a flat product array, sort by output key, and fold
runs with the additive monoid.  Everything is vectorized numpy; arbitrary
(even user-defined, object-domain) operators run through the same structure
via the operators' loop fallbacks, so there is one code path to trust.

Large multiplications are split into contiguous row blocks and dispatched
to the thread pool (:mod:`repro.parallel`); blocks produce disjoint,
ordered key ranges, so concatenation preserves global sort order.
"""

from __future__ import annotations

import time as _time

import numpy as np

from .._sparseutil import group_starts, ranges_concat, segment_reduce
from ..algebra.semiring import Semiring
from ..containers.formats import CSRView
from ..containers.mask import MaskView
from ..obs import metrics as _metrics
from ..obs import spans as _obs_spans
from ..obs.tracing import tally_flops as _tally_flops
from ..parallel import (
    get_num_threads,
    parallel_threshold,
    row_blocks,
    thread_pool,
)

__all__ = [
    "spgemm",
    "spmv",
    "reduce_rows",
    "reduce_rows_flat",
    "fused_apply",
    "fused_select",
    "estimate_flops",
]


def _empty(dtype) -> tuple[np.ndarray, np.ndarray]:
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=dtype)


def estimate_flops(a_view: CSRView, b_view: CSRView) -> int:
    """Exact multiply count of the expansion: Σ_{(i,k)∈A} nnz(B(k,:))."""
    if a_view.nnz == 0 or b_view.nnz == 0:
        return 0
    return int(np.diff(b_view.indptr)[a_view.indices].sum())


def _spgemm_block(
    a_view: CSRView,
    a_vals: np.ndarray,
    b_view: CSRView,
    b_vals: np.ndarray,
    semiring: Semiring,
    rows: slice,
    mask_view: MaskView | None,
    acc: list | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand–sort–reduce over a contiguous block of A's rows.

    *acc*, when given, receives this block's realized multiply count (the
    products that survive mask push-down) — ``list.append`` is atomic under
    the GIL, so concurrent blocks report safely without a lock."""
    out_dtype = semiring.d_out.np_dtype
    lo, hi = rows.start, rows.stop
    a_lo, a_hi = int(a_view.indptr[lo]), int(a_view.indptr[hi])
    if a_lo == a_hi:
        return _empty(out_dtype)

    a_cols = a_view.indices[a_lo:a_hi]
    a_rows = (
        np.repeat(
            np.arange(lo, hi, dtype=np.int64),
            np.diff(a_view.indptr[lo : hi + 1]),
        )
    )
    counts = np.diff(b_view.indptr)[a_cols]
    total = int(counts.sum())
    if total == 0:
        return _empty(out_dtype)

    gather = ranges_concat(b_view.indptr[a_cols], counts)
    out_rows = np.repeat(a_rows, counts)
    out_cols = b_view.indices[gather]
    left = np.repeat(a_vals[a_lo:a_hi], counts)
    right = b_vals[gather]

    keys = out_rows * np.int64(b_view.ncols) + out_cols
    if mask_view is not None:
        # mask push-down: products whose destination the mask forbids can
        # never be written — drop them before the expensive sort
        keep = mask_view.allows(keys)
        if not keep.all():
            keys, left, right = keys[keep], left[keep], right[keep]
        if len(keys) == 0:
            return _empty(out_dtype)

    if acc is not None:
        acc.append(len(keys))
    prods = semiring.mul.apply_arrays(left, right)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    prods = prods[order]
    uniq, starts = group_starts(keys)
    vals = segment_reduce(prods, starts, semiring.add)
    if not semiring.d_out.is_udt and vals.dtype != out_dtype:
        vals = vals.astype(out_dtype)
    return uniq, vals


def _spgemm_impl(
    a_view: CSRView,
    a_vals: np.ndarray,
    b_view: CSRView,
    b_vals: np.ndarray,
    semiring: Semiring,
    mask_view: MaskView | None = None,
    acc: list | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    out_dtype = semiring.d_out.np_dtype
    if a_view.nnz == 0 or b_view.nnz == 0:
        return _empty(out_dtype)

    nthreads = get_num_threads()
    if nthreads > 1 and not semiring.d_out.is_udt:
        flops = estimate_flops(a_view, b_view)
        if flops >= parallel_threshold():
            work = np.zeros(a_view.nrows, dtype=np.int64)
            np.add.at(
                work,
                a_view.row_ids(),
                np.diff(b_view.indptr)[a_view.indices],
            )
            blocks = row_blocks(work, nthreads)
            if len(blocks) > 1:
                futures = [
                    thread_pool().submit(
                        _spgemm_block,
                        a_view,
                        a_vals,
                        b_view,
                        b_vals,
                        semiring,
                        blk,
                        mask_view,
                        acc,
                    )
                    for blk in blocks
                ]
                parts = [f.result() for f in futures]
                keys = np.concatenate([p[0] for p in parts])
                vals = np.concatenate([p[1] for p in parts])
                return keys, vals

    return _spgemm_block(
        a_view, a_vals, b_view, b_vals, semiring,
        slice(0, a_view.nrows), mask_view, acc,
    )


def spgemm(
    a_view: CSRView,
    a_vals: np.ndarray,
    b_view: CSRView,
    b_vals: np.ndarray,
    semiring: Semiring,
    mask_view: MaskView | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``T = A ⊕.⊗ B`` as sorted flat keys over an (A.nrows × B.ncols) space.

    *a_vals*/*b_vals* are the views' value arrays already cast to the
    multiply operator's input domains.

    When observability is live (span capture armed or metrics enabled) the
    invocation emits a kernel span carrying estimated flops (the full
    expansion bound), realized flops (products surviving mask push-down),
    output nnz, and the block count; disarmed, the implementation runs with
    zero measurement work.
    """
    if _obs_spans.current() is None and not _metrics.registry.enabled:
        return _spgemm_impl(a_view, a_vals, b_view, b_vals, semiring, mask_view)
    return _observed_kernel(
        "spgemm",
        lambda acc: _spgemm_impl(
            a_view, a_vals, b_view, b_vals, semiring, mask_view, acc
        ),
        flops_estimated=estimate_flops(a_view, b_view),
        nnz_in=a_view.nnz + b_view.nnz,
    )


def _observed_kernel(
    label: str,
    run,
    *,
    flops_estimated: int,
    nnz_in: int,
    backend: str = "interpreter",
    compiled: bool = False,
):
    """Shared measurement shell for semiring kernels.

    *run* takes the realized-flops accumulator list and returns
    ``(keys, vals)``; the shell opens the kernel span, counts into the
    process registry, and guarantees the span closes on error paths.
    *backend*/*compiled* are kernel provenance: which kernel suite produced
    T, and whether a generated (compiled) kernel ran rather than the
    hand-written one.
    """
    sink = _obs_spans.current()
    fast = getattr(sink, "fast_append", None) if sink is not None else None
    acc: list = []
    sp = None
    t0 = 0.0
    if fast is not None:
        # ring-only retention: skip full span construction on the kernel
        # hot path; the attrs dict is only built when the kernel finishes
        t0 = _time.perf_counter()
    elif sink is not None:
        sp = sink.open(
            label, "kernel",
            flops_estimated=flops_estimated, nnz_in=nnz_in,
            backend=backend, compiled=compiled,
        )
    try:
        keys, vals = run(acc)
        realized = int(sum(acc))
        if sp is not None:
            sp.attrs.update(
                flops_realized=realized,
                nnz_out=len(keys),
                blocks=max(len(acc), 1),
            )
        elif fast is not None:
            fast(label, "kernel", t0, _time.perf_counter(), {
                "flops_estimated": flops_estimated,
                "nnz_in": nnz_in,
                "backend": backend,
                "compiled": compiled,
                "flops_realized": realized,
                "nnz_out": len(keys),
                "blocks": max(len(acc), 1),
            }, False)
            fast = None  # consumed: the error path below must not re-log
        reg = _metrics.registry
        reg.inc("kernel.invocations")
        reg.inc("kernel.flops_estimated", flops_estimated)
        reg.inc("kernel.flops_realized", realized)
        reg.inc("kernel.nnz_out", len(keys))
        reg.observe("kernel.flops", realized)
        _tally_flops(realized)  # drain accounting, when a batch is collecting
        return keys, vals
    finally:
        if sp is not None:
            sink.close(sp)
        elif fast is not None:
            # run() raised: still retain the failed kernel's timing
            fast(label, "kernel", t0, _time.perf_counter(), {
                "flops_estimated": flops_estimated,
                "nnz_in": nnz_in,
                "backend": backend,
                "compiled": compiled,
                "failed": True,
            }, False)


def spmv(
    a_view: CSRView,
    a_vals: np.ndarray,
    v_keys: np.ndarray,
    v_vals: np.ndarray,
    semiring: Semiring,
    swap: bool = False,
    mask_view: MaskView | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``t = A ⊕.⊗ v`` over stored-index intersections per row.

    With ``swap`` the multiply runs as ``v_i ⊗ A(i,j)`` instead of
    ``A(i,j) ⊗ v_i`` — the ``vxm`` orientation, where the kernel is handed
    the CSR of Aᵀ and the vector is the left operand.

    With a selective, non-complemented mask the kernel switches to the
    *pull* direction: only the rows the mask can write are gathered, so
    cost is Σ nnz(A(i,:)) over masked rows rather than nnz(A) — the classic
    push/pull direction optimization of the GPU backends the paper's
    section VIII points to.

    Observability mirrors :func:`spgemm`: a kernel span with estimated
    (``nnz(A)``, the intersection upper bound) vs realized multiply counts
    and the chosen direction (push/pull), only when a consumer is live.
    """
    if _obs_spans.current() is None and not _metrics.registry.enabled:
        return _spmv_impl(
            a_view, a_vals, v_keys, v_vals, semiring, swap, mask_view
        )
    return _observed_kernel(
        "spmv",
        lambda acc: _spmv_impl(
            a_view, a_vals, v_keys, v_vals, semiring, swap, mask_view, acc
        ),
        flops_estimated=a_view.nnz,
        nnz_in=a_view.nnz + len(v_keys),
    )


def _spmv_impl(
    a_view: CSRView,
    a_vals: np.ndarray,
    v_keys: np.ndarray,
    v_vals: np.ndarray,
    semiring: Semiring,
    swap: bool = False,
    mask_view: MaskView | None = None,
    acc: list | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    out_dtype = semiring.d_out.np_dtype
    if a_view.nnz == 0 or len(v_keys) == 0:
        return _empty(out_dtype)

    if (
        mask_view is not None
        and not mask_view.complemented
        and len(mask_view.pattern) <= a_view.nrows // 2
    ):
        return _spmv_pull(
            a_view, a_vals, v_keys, v_vals, semiring, swap,
            mask_view.pattern, acc,
        )

    pos = np.searchsorted(v_keys, a_view.indices)
    pos_c = np.minimum(pos, len(v_keys) - 1)
    hit = v_keys[pos_c] == a_view.indices
    if not hit.any():
        return _empty(out_dtype)

    rows = a_view.row_ids()[hit]  # nondecreasing: storage is row-major
    left = a_vals[hit]
    right = v_vals[pos_c[hit]]
    if acc is not None:
        acc.append(len(left))
        _obs_spans.annotate(direction="push")
    prods = (
        semiring.mul.apply_arrays(right, left)
        if swap
        else semiring.mul.apply_arrays(left, right)
    )
    uniq, starts = group_starts(rows)
    vals = segment_reduce(prods, starts, semiring.add)
    if not semiring.d_out.is_udt and vals.dtype != out_dtype:
        vals = vals.astype(out_dtype)
    return uniq, vals


def _spmv_pull(
    a_view: CSRView,
    a_vals: np.ndarray,
    v_keys: np.ndarray,
    v_vals: np.ndarray,
    semiring: Semiring,
    swap: bool,
    rows_sel: np.ndarray,
    acc: list | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pull direction: gather only the selected rows, then intersect with v."""
    out_dtype = semiring.d_out.np_dtype
    if len(rows_sel) == 0:
        return _empty(out_dtype)
    counts = (a_view.indptr[rows_sel + 1] - a_view.indptr[rows_sel])
    gather = ranges_concat(a_view.indptr[rows_sel], counts)
    if len(gather) == 0:
        return _empty(out_dtype)
    cols = a_view.indices[gather]
    pos = np.searchsorted(v_keys, cols)
    pos_c = np.minimum(pos, len(v_keys) - 1)
    hit = v_keys[pos_c] == cols
    if not hit.any():
        return _empty(out_dtype)
    rows = np.repeat(rows_sel.astype(np.int64), counts)[hit]
    left = a_vals[gather][hit]
    right = v_vals[pos_c[hit]]
    if acc is not None:
        acc.append(len(left))
        _obs_spans.annotate(direction="pull")
    prods = (
        semiring.mul.apply_arrays(right, left)
        if swap
        else semiring.mul.apply_arrays(left, right)
    )
    uniq, starts = group_starts(rows)
    vals = segment_reduce(prods, starts, semiring.add)
    if not semiring.d_out.is_udt and vals.dtype != out_dtype:
        vals = vals.astype(out_dtype)
    return uniq, vals


def reduce_rows(
    a_view: CSRView, a_vals: np.ndarray, monoid
) -> tuple[np.ndarray, np.ndarray]:
    """``t(i) = ⊕_j A(i,j)`` over stored elements; empty rows stay undefined
    (Table II's ``reduce (row)``)."""
    if _obs_spans.current() is not None or _metrics.registry.enabled:

        def run(acc):
            acc.append(a_view.nnz)  # one ⊕ fold per stored element
            return _reduce_rows_impl(a_view, a_vals, monoid)

        return _observed_kernel(
            "reduce_rows", run,
            flops_estimated=a_view.nnz, nnz_in=a_view.nnz,
        )
    return _reduce_rows_impl(a_view, a_vals, monoid)


def _reduce_rows_impl(
    a_view: CSRView, a_vals: np.ndarray, monoid
) -> tuple[np.ndarray, np.ndarray]:
    dtype = monoid.domain.np_dtype
    if a_view.nnz == 0:
        return _empty(dtype)
    rows = a_view.row_ids()
    uniq, starts = group_starts(rows)
    vals = segment_reduce(a_vals, starts, monoid)
    if not monoid.domain.is_udt and vals.dtype != dtype:
        vals = vals.astype(dtype)
    return uniq, vals


def reduce_rows_flat(
    keys: np.ndarray, vals: np.ndarray, ncols: int, monoid
) -> tuple[np.ndarray, np.ndarray]:
    """Row reduction straight off sorted flat keys — the fusion form of
    :func:`reduce_rows`, fed a producer's un-materialized result instead of
    a CSR view.  Flat keys sort row-major, so segments are exactly the rows
    in the same element order the view-based kernel folds them."""
    if _obs_spans.current() is not None or _metrics.registry.enabled:

        def run(acc):
            acc.append(len(keys))
            return _reduce_rows_flat_impl(keys, vals, ncols, monoid)

        return _observed_kernel(
            "reduce_rows[fused]", run,
            flops_estimated=len(keys), nnz_in=len(keys),
        )
    return _reduce_rows_flat_impl(keys, vals, ncols, monoid)


def _reduce_rows_flat_impl(
    keys: np.ndarray, vals: np.ndarray, ncols: int, monoid
) -> tuple[np.ndarray, np.ndarray]:
    dtype = monoid.domain.np_dtype
    if len(keys) == 0:
        return _empty(dtype)
    rows = keys // np.int64(ncols)
    uniq, starts = group_starts(rows)
    out = segment_reduce(vals, starts, monoid)
    if not monoid.domain.is_udt and out.dtype != dtype:
        out = out.astype(dtype)
    return uniq, out


def fused_apply(
    keys: np.ndarray,
    vals: np.ndarray,
    mask_view: MaskView | None,
    post,
) -> tuple[np.ndarray, np.ndarray]:
    """Value-map over a producer's un-materialized result: the fusion form
    of the ``apply`` kernel.  *post* is the consumer's captured value path
    (cast → operator → output-dtype fix); the mask filter mirrors the
    unfused kernel's push-down order exactly (keys first, then values)."""
    if _obs_spans.current() is not None or _metrics.registry.enabled:

        def run(acc):
            out = _fused_apply_impl(keys, vals, mask_view, post)
            acc.append(len(out[0]))  # one value-map application per survivor
            return out

        return _observed_kernel(
            "apply[fused]", run,
            flops_estimated=len(keys), nnz_in=len(keys),
        )
    return _fused_apply_impl(keys, vals, mask_view, post)


def _fused_apply_impl(
    keys: np.ndarray,
    vals: np.ndarray,
    mask_view: MaskView | None,
    post,
) -> tuple[np.ndarray, np.ndarray]:
    if mask_view is not None and len(keys):
        keep = mask_view.allows(keys)
        keys, vals = keys[keep], vals[keep]
    return keys, post(vals)


def fused_select(
    keys: np.ndarray,
    vals: np.ndarray,
    mask_view: MaskView | None,
    spec,
) -> tuple[np.ndarray, np.ndarray]:
    """Predicate filter over a producer's un-materialized result: the
    fusion form of the ``select`` kernel.  *spec* is the select link's
    OpSpec (its ``selector`` holds the IndexUnaryOp and thunk); the mask
    filter mirrors the unfused kernel's push-down order exactly."""
    if _obs_spans.current() is not None or _metrics.registry.enabled:

        def run(acc):
            out = _fused_select_impl(keys, vals, mask_view, spec)
            acc.append(len(out[0]))  # one predicate evaluation per survivor
            return out

        return _observed_kernel(
            "select[fused]", run,
            flops_estimated=len(keys), nnz_in=len(keys),
        )
    return _fused_select_impl(keys, vals, mask_view, spec)


def _fused_select_impl(
    keys: np.ndarray,
    vals: np.ndarray,
    mask_view: MaskView | None,
    spec,
) -> tuple[np.ndarray, np.ndarray]:
    from .._sparseutil import unflatten_keys
    from ..types import cast_array

    if mask_view is not None and len(keys):
        keep = mask_view.allows(keys)
        keys, vals = keys[keep], vals[keep]
    if len(keys) == 0:
        return keys, vals.copy()
    iuop, thunk = spec.selector
    ncols = getattr(spec.out, "ncols", None)
    if ncols is not None:
        rows, cols = unflatten_keys(keys, ncols)
    else:
        rows, cols = keys, np.zeros(len(keys), dtype=np.int64)
    vals_in = (
        cast_array(vals, spec.inputs[0].type, iuop.d_in)
        if iuop.d_in is not None
        else vals
    )
    verdict = np.asarray(
        iuop.apply_arrays(vals_in, rows, cols, thunk)
    ).astype(bool)
    return keys[verdict], vals[verdict]
