"""``kronecker``: ``C⟨Mask⟩ ⊙= kron(A, B)`` (GraphBLAS 1.3 addition).

Every stored pair multiplies: ``C(i·bm+p, j·bn+q) = A(i,j) ⊗ B(p,q)``.
Included both for API completeness and because Kronecker products are the
standard generator of the RMAT-style power-law graphs the benchmark
workloads use (:mod:`repro.io.generators` builds on it).
"""

from __future__ import annotations

import numpy as np

from ..algebra.monoid import Monoid
from ..algebra.semiring import Semiring
from ..containers.matrix import Matrix
from ..descriptor import Descriptor, effective
from ..info import DimensionMismatch, DomainMismatch, InvalidValue
from ..ops.base import BinaryOp
from ..types import can_cast, cast_array
from .._sparseutil import unflatten_keys
from .common import (
    check_input,
    check_output,
    submit_standard_op,
    validate_accum,
    validate_mask_shape,
)

__all__ = ["kronecker"]


def _resolve_mul(op) -> BinaryOp:
    if isinstance(op, Semiring):
        return op.mul
    if isinstance(op, Monoid):
        return op.op
    if isinstance(op, BinaryOp):
        return op
    raise InvalidValue(
        f"kronecker op must be a BinaryOp, Monoid, or Semiring, got {op!r}"
    )


def kronecker(
    C: Matrix,
    Mask: Matrix | None,
    accum: BinaryOp | None,
    op,
    A: Matrix,
    B: Matrix,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_kronecker``: the Kronecker product over ⊗."""
    check_output(C)
    check_input(A, "A")
    check_input(B, "B")
    if not all(isinstance(x, Matrix) for x in (C, A, B)):
        raise InvalidValue("kronecker requires Matrix arguments")
    mul = _resolve_mul(op)
    d = effective(desc)
    a_shape = (A.ncols, A.nrows) if d.transpose0 else A.shape
    b_shape = (B.ncols, B.nrows) if d.transpose1 else B.shape
    out_shape = (a_shape[0] * b_shape[0], a_shape[1] * b_shape[1])
    if C.shape != out_shape:
        raise DimensionMismatch(
            f"output is {C.shape}, kron result is {out_shape}"
        )
    validate_mask_shape(Mask, C)
    if not can_cast(A.type, mul.d_in1) or not can_cast(B.type, mul.d_in2):
        raise DomainMismatch(
            f"input domains ({A.type.name}, {B.type.name}) cannot feed "
            f"{mul.name}"
        )
    validate_accum(accum, C, mul.d_out)

    def kernel(mask_view):
        from .ewise import _matrix_keys

        a_keys, a_raw = _matrix_keys(A, d.transpose0)
        b_keys, b_raw = _matrix_keys(B, d.transpose1)
        if len(a_keys) == 0 or len(b_keys) == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=mul.d_out.np_dtype),
            )
        a_rows, a_cols = unflatten_keys(a_keys, a_shape[1])
        b_rows, b_cols = unflatten_keys(b_keys, b_shape[1])
        nb = len(b_keys)
        out_rows = (
            np.repeat(a_rows, nb) * np.int64(b_shape[0]) + np.tile(b_rows, len(a_keys))
        )
        out_cols = (
            np.repeat(a_cols, nb) * np.int64(b_shape[1]) + np.tile(b_cols, len(a_keys))
        )
        left = cast_array(np.repeat(a_raw, nb), A.type, mul.d_in1)
        right = cast_array(np.tile(b_raw, len(a_keys)), B.type, mul.d_in2)
        keys = out_rows * np.int64(out_shape[1]) + out_cols
        if mask_view is not None:
            keep = mask_view.allows(keys)
            keys, left, right = keys[keep], left[keep], right[keep]
        vals = mul.apply_arrays(left, right)
        order = np.argsort(keys, kind="stable")
        return keys[order], vals[order]

    submit_standard_op(
        C, Mask, accum, desc,
        label="kronecker", t_type=mul.d_out, kernel=kernel, inputs=(A, B),
    )
    return C
