"""The shared three-step semantics of every GraphBLAS operation (section VI):

1. form the internal inputs from the arguments according to the descriptor
   (transposes, mask complement) and check domains/dimensions — API errors
   are raised here, at call time, in both execution modes;
2. carry out the computation, producing an internal result **T**;
3. accumulate **Z = C ⊙ T** when an accumulator is given, then write **Z**
   into **C** under the write-mask, in *replace* or *merge* mode.

Steps 2–3 run inside a deferred thunk so nonblocking mode can queue them;
step 1 always runs immediately ("methods return after input arguments have
been verified", section IV).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .. import context
from .._sparseutil import union_keys
from ..obs import metrics as _metrics
from ..obs import spans as _obs_spans
from ..containers.base import OpaqueObject
from ..containers.mask import MaskView, build_mask_view, validate_mask_domain
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import Descriptor, effective
from ..execution.sequence import OpSpec
from ..info import DimensionMismatch, DomainMismatch, InvalidValue, NullPointer
from ..ops.base import BinaryOp
from ..types import GrBType, can_cast, cast_array

__all__ = [
    "validate_accum",
    "validate_mask_shape",
    "accumulate",
    "masked_write",
    "run_write_pipeline",
    "submit_standard_op",
    "execute_standard",
    "execute_sharded",
    "execute_chain",
    "execute_fused",
    "check_output",
    "check_input",
]


def check_output(C) -> None:
    if C is None:
        raise NullPointer("output object is GrB_NULL")
    if not isinstance(C, (Matrix, Vector)):
        raise InvalidValue(f"output must be a GraphBLAS collection, got {type(C)}")
    C._check_valid()


def check_input(X, what: str) -> None:
    if X is None:
        raise NullPointer(f"{what} is GrB_NULL")
    if not isinstance(X, (Matrix, Vector)):
        raise InvalidValue(f"{what} must be a GraphBLAS collection, got {type(X)}")
    X._check_valid()


def validate_accum(accum, C, t_type: GrBType) -> None:
    """Domain checks for the optional accumulator ⊙ (Table II).

    ``Z(i,j) = accum(C(i,j), T(i,j))`` requires C castable to the accum's
    first input, T to its second, and its output back to C's domain.
    """
    if accum is None:
        if not can_cast(t_type, C.type):
            raise DomainMismatch(
                f"result domain {t_type.name} cannot be cast to output domain "
                f"{C.type.name}"
            )
        return
    if not isinstance(accum, BinaryOp):
        raise InvalidValue("accum must be a BinaryOp or GrB_NULL")
    if not can_cast(C.type, accum.d_in1):
        raise DomainMismatch(
            f"output domain {C.type.name} cannot feed accum input "
            f"{accum.d_in1.name}"
        )
    if not can_cast(t_type, accum.d_in2):
        raise DomainMismatch(
            f"result domain {t_type.name} cannot feed accum input "
            f"{accum.d_in2.name}"
        )
    if not can_cast(accum.d_out, C.type):
        raise DomainMismatch(
            f"accum output {accum.d_out.name} cannot be cast to output domain "
            f"{C.type.name}"
        )


def validate_mask_shape(mask, C) -> None:
    """The mask's dimensions must match the output's (Fig. 2b)."""
    if mask is None:
        return
    check_input(mask, "Mask")
    validate_mask_domain(mask)
    if isinstance(C, Matrix):
        if not isinstance(mask, Matrix) or mask.shape != C.shape:
            raise DimensionMismatch(
                "mask dimensions must match the output matrix dimensions"
            )
    else:
        if not isinstance(mask, Vector) or mask.size != C.size:
            raise DimensionMismatch(
                "mask size must match the output vector size"
            )


def accumulate(
    c_keys: np.ndarray,
    c_vals: np.ndarray,
    c_type: GrBType,
    t_keys: np.ndarray,
    t_vals: np.ndarray,
    t_type: GrBType,
    accum: BinaryOp | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Step 3a: ``Z = C ⊙ T`` (or ``Z = T`` without an accumulator).

    The result is in C's domain.  Without an accumulator T is simply cast.
    With one, the pattern is the union: C-only entries persist, T-only
    entries are cast in, and intersecting entries combine via the
    accumulator with the spec's casting at each boundary.
    """
    out_dtype = c_type.np_dtype
    if accum is None:
        return t_keys, cast_array(t_vals, t_type, c_type)

    def combine(cv: np.ndarray, tv: np.ndarray) -> np.ndarray:
        a = cast_array(cv, c_type, accum.d_in1)
        b = cast_array(tv, t_type, accum.d_in2)
        return cast_array(accum.apply_arrays(a, b), accum.d_out, c_type)

    return union_keys(
        c_keys,
        c_vals,
        t_keys,
        t_vals,
        out_dtype,
        combine,
        cast_a=lambda x: x,  # already in C's domain
        cast_b=lambda x: cast_array(x, t_type, c_type),
    )


def masked_write(
    C,
    z_keys: np.ndarray,
    z_vals: np.ndarray,
    mask_view: MaskView | None,
    replace: bool,
) -> None:
    """Step 3b: write Z into C under the mask (section VI's two options).

    * no mask — C becomes Z;
    * replace mode — C's old values are deleted, then Z∩mask is stored;
    * merge mode — C entries outside the mask persist, the region inside
      the mask is replaced by Z∩mask.
    """
    if mask_view is None:
        # Defensive copy: pass-through kernels (transpose, eWise with one
        # empty side, accum-free casts) can hand us arrays aliasing an
        # input's storage or cache; C must own its content.
        C._set_content(z_keys.copy(), np.array(z_vals, copy=True))
        return
    allowed = mask_view.allows(z_keys)
    zm_keys, zm_vals = z_keys[allowed], z_vals[allowed]
    if replace:
        C._set_content(zm_keys, zm_vals)
        return
    c_keys, c_vals = C._content()
    outside = ~mask_view.allows(c_keys)
    keys = np.concatenate([c_keys[outside], zm_keys])
    vals = np.concatenate([c_vals[outside], zm_vals])
    order = np.argsort(keys, kind="stable")
    C._set_content(keys[order], vals[order])


def run_write_pipeline(
    C,
    mask,
    accum: BinaryOp | None,
    desc: Descriptor,
    t_keys: np.ndarray,
    t_vals: np.ndarray,
    t_type: GrBType,
    mask_view: MaskView | None = None,
) -> None:
    """Steps 3a+3b, executed at completion time inside the deferred thunk."""
    if mask_view is None:
        mask_view = build_mask_view(
            mask, desc.mask_complement, desc.mask_structure
        )
    if mask_view is not None and len(t_keys):
        # Mask push-down: T entries outside the mask can never be written
        # (Z∩M only consults T∩M), so drop them before accumulation.
        keep = mask_view.allows(t_keys)
        t_keys, t_vals = t_keys[keep], t_vals[keep]
    c_keys, c_vals = C._content()
    z_keys, z_vals = accumulate(
        c_keys, c_vals, C.type, t_keys, t_vals, t_type, accum
    )
    masked_write(C, z_keys, z_vals, mask_view, desc.replace)
    if _obs_spans.current() is not None or _metrics.registry.enabled:
        # the innermost open span here is the op body (kernel spans have
        # closed), so the realized output size lands on the right record
        nnz_out = len(C._content()[0])
        _obs_spans.annotate(nnz_t=len(t_keys), nnz_out=nnz_out)
        _metrics.registry.inc("op.writes")
        _metrics.registry.inc("op.nnz_out", nnz_out)


def execute_standard(
    spec: OpSpec,
    precomputed: tuple[np.ndarray, np.ndarray] | None = None,
    capture: Callable[[np.ndarray, np.ndarray], None] | None = None,
) -> None:
    """Run a standard op from its :class:`OpSpec` (the planner's entry point).

    *precomputed* supplies T from a CSE cache (the kernel is skipped);
    *capture* receives T after the kernel runs so a later duplicate can
    reuse it.  Either way the write pipeline runs against the spec's own
    output/mask/accum/descriptor.
    """
    d = spec.desc
    if _obs_spans.current() is not None:
        _obs_spans.annotate(
            kind=spec.kind,
            nnz_in=int(sum(len(x._content()[0]) for x in spec.inputs)),
        )
    mask_view = build_mask_view(spec.mask, d.mask_complement, d.mask_structure)
    if precomputed is not None:
        t_keys, t_vals = precomputed
        _metrics.registry.inc("op.cse_reuses")
    else:
        t_keys, t_vals = spec.kernel(mask_view)
        if capture is not None:
            capture(t_keys, t_vals)
    run_write_pipeline(
        spec.out, spec.mask, spec.accum, d, t_keys, t_vals, spec.t_type,
        mask_view=mask_view,
    )


def execute_sharded(
    spec: OpSpec, t_keys: np.ndarray, t_vals: np.ndarray
) -> None:
    """Complete a standard op whose T was computed by the shard pool.

    The workers produced T *unmasked* (mask push-down only ever drops
    whole output cells, never individual products of a surviving cell, so
    filtering after the fact is value-identical); everything stateful —
    mask, accumulator, replace/merge write — runs here in the parent,
    through the very same pipeline the local path uses.
    """
    d = spec.desc
    if _obs_spans.current() is not None:
        _obs_spans.annotate(
            kind=spec.kind,
            sharded=True,
            nnz_in=int(sum(len(x._content()[0]) for x in spec.inputs)),
        )
    mask_view = build_mask_view(spec.mask, d.mask_complement, d.mask_structure)
    run_write_pipeline(
        spec.out, spec.mask, spec.accum, d, t_keys, t_vals, spec.t_type,
        mask_view=mask_view,
    )


def _producer_result(spec: OpSpec) -> tuple[np.ndarray, np.ndarray]:
    """What an *overwriting* op would leave in its output, without writing:
    sorted flat keys plus values cast to the output's domain.

    Legality (established by the planner before calling): ``accum is None``
    and ``mask is None or replace``, so the output's prior content never
    enters the result — it is exactly T, mask-filtered and cast.
    """
    d = spec.desc
    mask_view = build_mask_view(spec.mask, d.mask_complement, d.mask_structure)
    t_keys, t_vals = spec.kernel(mask_view)
    if mask_view is not None and len(t_keys):
        keep = mask_view.allows(t_keys)
        t_keys, t_vals = t_keys[keep], t_vals[keep]
    return t_keys, cast_array(t_vals, spec.t_type, spec.out.type)


def execute_chain(specs: list[OpSpec]) -> None:
    """Run a fused chain ``[producer, link, ...]`` as one streamed kernel.

    The producer's output is never materialized: its result streams through
    every absorbed link (``apply`` / ``select`` / ``reduce``) and only the
    tail runs a write pipeline.  The planner's fusion pass has already
    proven every intermediate value unobservable.

    *Which* kernel suite computes the stream is the active kernel backend's
    decision (:func:`repro.kernels.active_backend` — interpreter or
    codegen); the op span records the choice as provenance.
    """
    from ..kernels import active_backend

    backend = active_backend()
    if _obs_spans.current() is not None:
        _obs_spans.annotate(backend=backend.name)
    backend.run_chain(specs)


def execute_fused(p_spec: OpSpec, q_spec: OpSpec) -> None:
    """Back-compat entry for a two-element chain (the pre-chain planner's
    producer→consumer contraction)."""
    execute_chain([p_spec, q_spec])


def submit_standard_op(
    C,
    mask,
    accum: BinaryOp | None,
    desc: Descriptor | None,
    *,
    label: str,
    t_type: GrBType,
    kernel: Callable[[MaskView | None], tuple[np.ndarray, np.ndarray]],
    inputs: tuple[OpaqueObject, ...],
    op_token: Any = None,
    post: Callable[[np.ndarray], np.ndarray] | None = None,
    reducer: Any = None,
    selector: Any = None,
) -> None:
    """Package a validated operation into the execution model.

    *kernel* computes T from the inputs' content; it runs at execution time
    and receives the materialized mask view so it can push the mask down
    into the computation (kernels may ignore it — the pipeline filters T
    again regardless).  API errors must already have been raised by the
    caller; this function only routes the work.

    *op_token* (the operator's identity), *post* (an apply-style value map),
    *reducer* (a row-reduction monoid) and *selector* (a select predicate
    with its thunk) are planner metadata: they make the op eligible for
    common-subexpression elimination and for fusion as a consumer.  Ops without them still join the dataflow DAG via the
    generic spec.
    """
    d = effective(desc)
    spec = OpSpec(
        kind=label,
        out=C,
        mask=mask,
        accum=accum,
        desc=d,
        t_type=t_type,
        inputs=tuple(x for x in inputs if x is not None),
        kernel=kernel,
        op_token=op_token,
        post=post,
        reducer=reducer,
        selector=selector,
    )

    def thunk():
        execute_standard(spec)

    # C's prior content is irrelevant only if nothing merges it back in —
    # and only if C is not simultaneously an input or the mask (Fig. 3
    # line 43 aliases the output with an input; the kernel reads it)
    aliased = any(x is C for x in inputs) or mask is C
    overwrites = accum is None and (mask is None or d.replace) and not aliased
    reads = tuple(x for x in inputs if x is not None)
    if mask is not None:
        reads += (mask,)
    if not overwrites:
        reads += (C,)
    context.submit(
        thunk,
        reads=reads,
        writes=C,
        label=label,
        overwrites_output=overwrites,
        spec=spec,
    )
