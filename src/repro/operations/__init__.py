"""The GraphBLAS operations of Table II, each following the shared
form-inputs → compute-T → accumulate → masked-write pipeline of section VI."""

from .apply import apply, apply_bind_first, apply_bind_second, apply_index
from .assign import (
    assign,
    col_assign,
    matrix_assign,
    matrix_assign_scalar,
    row_assign,
    vector_assign,
    vector_assign_scalar,
)
from .ewise import eWiseAdd, eWiseMult, ewise_add, ewise_mult, ewise_union
from .extract import col_extract, extract, matrix_extract, vector_extract
from .kronecker import kronecker
from .mxm import mxm, mxv, vxm
from .reduce import reduce, reduce_scalar_object, reduce_to_scalar, reduce_to_vector
from .select import select
from .transpose import transpose

__all__ = [
    "mxm",
    "mxv",
    "vxm",
    "ewise_add",
    "ewise_mult",
    "ewise_union",
    "eWiseAdd",
    "eWiseMult",
    "apply",
    "apply_bind_first",
    "apply_bind_second",
    "apply_index",
    "reduce",
    "reduce_to_vector",
    "reduce_to_scalar",
    "reduce_scalar_object",
    "transpose",
    "extract",
    "matrix_extract",
    "vector_extract",
    "col_extract",
    "assign",
    "matrix_assign",
    "vector_assign",
    "matrix_assign_scalar",
    "vector_assign_scalar",
    "row_assign",
    "col_assign",
    "select",
    "kronecker",
]
