"""Block layout descriptors: how a CSR lives in shared memory.

A published matrix is one shared-memory segment holding its CSR triple
(``indptr`` | ``indices`` | ``values``, packed back to back) plus a
:class:`BlockLayout` — a small picklable descriptor carrying the segment
name, the array offsets/dtypes, and the 1D row-stripe cuts of the block
distribution.  Tasks ship the *descriptor*; the data crosses the process
boundary exactly once, through the kernel page cache.

The distribution is CombBLAS-style 2D in spirit but derived lazily:
stripes (and, for exact-dtype SpGEMM, column splits) are row/column
*ranges over the one shared CSR*, not physically re-tiled copies.  Workers
slice by offset, which keeps publication O(nnz) and keeps stripe results
bitwise identical to the serial kernel (same arrays, same row slices, same
folds — exactly the thread-pool path's concatenation argument).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..containers.formats import CSRView
from .shm import ShmRegistry, attach

__all__ = ["BlockLayout", "publish_csr", "attach_csr", "stripe_cuts"]


@dataclass(frozen=True)
class BlockLayout:
    """Picklable descriptor of one shared-memory CSR block distribution."""

    seg_name: str
    nrows: int
    ncols: int
    nnz: int
    #: numpy dtype string of the value array (never object — UDTs are
    #: unshippable and gated out before publication)
    values_dtype: str
    #: row-stripe boundaries: ``cuts[i]..cuts[i+1]`` is stripe *i*
    cuts: tuple[int, ...]

    # packed segment offsets (bytes)
    @property
    def indptr_bytes(self) -> int:
        return (self.nrows + 1) * 8

    @property
    def indices_bytes(self) -> int:
        return self.nnz * 8

    @property
    def values_bytes(self) -> int:
        return self.nnz * np.dtype(self.values_dtype).itemsize

    @property
    def total_bytes(self) -> int:
        return self.indptr_bytes + self.indices_bytes + self.values_bytes


def stripe_cuts(work_per_row: np.ndarray, nstripes: int) -> tuple[int, ...]:
    """Work-balanced contiguous stripe boundaries over the row space."""
    from ..parallel import row_blocks

    blocks = row_blocks(work_per_row, nstripes)
    return tuple(b.start for b in blocks) + (blocks[-1].stop,)


def publish_csr(
    view: CSRView, registry: ShmRegistry, cuts: tuple[int, ...]
) -> BlockLayout:
    """Copy *view* into one new shared segment; returns its layout.

    The caller (publication cache) owns the create-time lease.
    """
    vdtype = view.values.dtype
    layout = BlockLayout(
        seg_name="",  # placeholder; rebuilt below with the real name
        nrows=view.nrows,
        ncols=view.ncols,
        nnz=view.nnz,
        values_dtype=vdtype.str,
        cuts=cuts,
    )
    seg = registry.create(layout.total_bytes)
    buf = seg.buf
    o = 0
    for arr, dt in (
        (view.indptr, np.dtype(np.int64)),
        (view.indices, np.dtype(np.int64)),
        (view.values, vdtype),
    ):
        n = len(arr) * dt.itemsize
        dst = np.ndarray(len(arr), dtype=dt, buffer=buf, offset=o)
        dst[:] = arr
        o += n
    return BlockLayout(
        seg_name=seg.name,
        nrows=view.nrows,
        ncols=view.ncols,
        nnz=view.nnz,
        values_dtype=vdtype.str,
        cuts=cuts,
    )


def attach_csr(layout: BlockLayout, cache: dict) -> CSRView:
    """Worker-side: map *layout* back into a :class:`CSRView`.

    *cache* maps segment name → ``(SharedMemory, CSRView)`` so repeated
    tasks against the same publication reuse one mapping; entries are
    closed when the parent broadcasts a free (see :mod:`.worker`).  The
    returned arrays alias the shared buffer and MUST be treated read-only.
    """
    hit = cache.get(layout.seg_name)
    if hit is not None:
        return hit[1]
    seg = attach(layout.seg_name)
    buf = seg.buf
    indptr = np.ndarray(
        layout.nrows + 1, dtype=np.int64, buffer=buf, offset=0
    )
    indices = np.ndarray(
        layout.nnz, dtype=np.int64, buffer=buf, offset=layout.indptr_bytes
    )
    values = np.ndarray(
        layout.nnz,
        dtype=np.dtype(layout.values_dtype),
        buffer=buf,
        offset=layout.indptr_bytes + layout.indices_bytes,
    )
    view = CSRView(
        indptr=indptr,
        indices=indices,
        values=values,
        nrows=layout.nrows,
        ncols=layout.ncols,
    )
    cache[layout.seg_name] = (seg, view)
    return view
