"""Sharded multi-process execution backend (``backend = "processes"``).

Escapes the GIL the way distributed GraphBLAS implementations escape the
node: data lives in a block distribution (here: shared-memory CSR
segments, CombBLAS-style 2D in spirit), computation is described by tiny
shipped descriptors (OpSpecs → :class:`~repro.shard.opspec.ShardTask`),
and partial results are merged back under the algebra's own monoids.  The
paper's opaque-object design (section III) is what makes the whole
backend a drop-in: no API surface changes, containers simply complete
with bit-identical content.

Modules
-------
``shm``        refcounted SharedMemory registry, leak-proof teardown
``layout``     BlockLayout descriptors; publish/attach CSR segments
``protocol``   pickle-framed pipe messages (Task/Result/Free/…)
``opspec``     shippability gate + block task planning
``worker``     spawned worker loop (attach → blockwise kernel → reply)
``pool``       persistent spawn pool, master/worker dispatch, crash → Panic
``merge``      stripe concat + k-tile monoid merge rules
``scheduler``  per-DAG-level orchestration, publication cache, obs wiring
``bench``      serial vs processes scaling benchmark (BENCH_pr6.json)
"""

from .layout import BlockLayout, attach_csr, publish_csr
from .opspec import NodePlan, ShardTask, plan_node
from .pool import ShardPool, get_pool, pool_stats, shutdown_pool
from .scheduler import invalidate_all, publication_stats, run_level
from .shm import ShmRegistry, registry

__all__ = [
    "BlockLayout",
    "publish_csr",
    "attach_csr",
    "ShardTask",
    "NodePlan",
    "plan_node",
    "ShardPool",
    "get_pool",
    "shutdown_pool",
    "pool_stats",
    "run_level",
    "publication_stats",
    "invalidate_all",
    "ShmRegistry",
    "registry",
]
