"""Pickle-framed pipe protocol between the drain scheduler and workers.

Messages are tiny: tasks carry :class:`~repro.shard.opspec.ShardTask`
descriptors (segment names + ranges + operator registry names), results
carry the partial's flat keys/values.  The matrix payloads never transit
the pipe — they live in shared memory.

Framing is explicit ``pickle.dumps`` + ``Connection.send_bytes`` rather
than ``Connection.send`` so a half-written frame from a dying peer
surfaces as ``EOFError`` at the next read instead of a corrupt unpickle.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

__all__ = [
    "Hello",
    "Task",
    "Result",
    "Error",
    "Free",
    "Shutdown",
    "send_msg",
    "recv_msg",
]


@dataclass(frozen=True)
class Hello:
    """Worker → parent, once at startup: the handshake the pool awaits.

    ``t_mono`` is the worker's ``perf_counter`` reading at handshake time;
    the parent subtracts it from its own clock to get the per-worker
    offset that maps shipped span timestamps onto the parent's axis (the
    flight-recorder stitch).
    """

    worker_id: int
    pid: int
    t_mono: float = 0.0


@dataclass(frozen=True)
class Task:
    """Parent → worker: run one block task.  *op* is a ShardTask."""

    task_id: int
    op: object


@dataclass(frozen=True)
class Result:
    """Worker → parent: one block partial as sorted flat keys/values.

    ``spans`` piggybacks the worker's flight-recorder ring entries closed
    since its last ship — ``(label, kind, t0, t1, attrs)`` tuples in the
    worker's clock — and ``metrics`` carries ``(counter, delta)`` pairs
    since the last ship.  Shipping *deltas* with completed work is what
    makes parent-side aggregation double-count-proof and respawn-proof: a
    fresh worker starts all counters at zero, and a SIGKILLed worker's
    already-shipped history survives in the parent.
    """

    task_id: int
    keys: object
    vals: object
    worker_id: int
    pid: int
    seconds: float
    flops: int = 0
    spans: tuple = ()
    metrics: tuple = ()


@dataclass(frozen=True)
class Error:
    """Worker → parent: the task raised; *message* is the formatted trace."""

    task_id: int
    message: str
    worker_id: int = -1


@dataclass(frozen=True)
class Free:
    """Parent → worker: close cached attachments for these segment names."""

    names: tuple = field(default_factory=tuple)


@dataclass(frozen=True)
class Shutdown:
    """Parent → worker: drain and exit."""


def send_msg(conn, msg) -> None:
    conn.send_bytes(pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL))


def recv_msg(conn):
    return pickle.loads(conn.recv_bytes())
