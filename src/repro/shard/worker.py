"""Worker-process entry point for the sharded backend.

Spawned (never forked — the parent may hold live threads and pool locks)
with one duplex pipe back to the drain scheduler.  The loop is
deliberately dumb: receive a :class:`~repro.shard.protocol.Task`, attach
its shared segments, rebuild the operator from the algebra registries, run
the block kernel from :mod:`repro.operations.blockwise`, ship the partial
back.  Workers never create shared memory, never see masks or
accumulators (the parent's write pipeline owns GraphBLAS semantics), and
never nest parallelism — the backend is pinned to ``serial`` so kernels
cannot fan out beneath the pool.
"""

from __future__ import annotations

import os
import time
import traceback

__all__ = ["worker_main"]


def _run_task(task, seg_cache: dict, cast_cache: dict):
    """Execute one ShardTask → (keys, vals, flops)."""
    from ..algebra.predefined import MONOID_REGISTRY, SEMIRING_REGISTRY
    from ..operations import blockwise
    from ..types import cast_array, lookup_type
    from .layout import attach_csr

    a_view = attach_csr(task.a, seg_cache)

    def cast(view, layout, src_name, dst_type):
        key = (layout.seg_name, dst_type.name)
        hit = cast_cache.get(key)
        if hit is None:
            hit = cast_array(view.values, lookup_type(src_name), dst_type)
            cast_cache[key] = hit
        return hit

    if task.kind == "mxm":
        sr = SEMIRING_REGISTRY[task.op_name]
        b_view = attach_csr(task.b, seg_cache)
        a_vals = cast(a_view, task.a, task.a_type, sr.d_in1)
        b_vals = cast(b_view, task.b, task.b_type, sr.d_in2)
        if task.klo is None:
            return blockwise.spgemm_stripe(
                a_view, a_vals, b_view, b_vals, sr, task.lo, task.hi
            )
        return blockwise.spgemm_tile(
            a_view, a_vals, b_view, b_vals, sr,
            task.lo, task.hi, task.klo, task.khi,
        )
    if task.kind in ("mxv", "vxm"):
        sr = SEMIRING_REGISTRY[task.op_name]
        a_vals = cast(
            a_view, task.a, task.a_type,
            sr.d_in2 if task.swap else sr.d_in1,
        )
        return blockwise.spmv_stripe(
            a_view, a_vals, task.v_keys, task.v_vals, sr,
            task.swap, task.lo, task.hi,
        )
    if task.kind == "reduce":
        mon = MONOID_REGISTRY[task.op_name]
        a_vals = cast(a_view, task.a, task.a_type, mon.domain)
        return blockwise.reduce_rows_stripe(
            a_view, a_vals, mon, task.lo, task.hi
        )
    raise ValueError(f"unknown shard task kind {task.kind!r}")


def _free_segments(names, seg_cache: dict, cast_cache: dict) -> None:
    for name in names:
        for key in [k for k in cast_cache if k[0] == name]:
            cast_cache.pop(key, None)
        entry = seg_cache.pop(name, None)
        if entry is not None:
            try:
                entry[0].close()
            except Exception:
                # a numpy view may still pin the mapping; the segment is
                # already unlinked parent-side, so dropping our reference
                # and letting gc finish the close is fine
                pass


def _drain_ring(ring) -> tuple:
    """Pop every closed span off the worker's ring as wire-safe tuples."""
    out = []
    q = ring.ring
    while q:
        try:
            sp = q.popleft()
        except IndexError:  # pragma: no cover - single-threaded worker
            break
        if type(sp) is tuple:  # fast-append entry: already wire-shaped
            label, kind, t0, t1, attrs, _deferred = sp
            out.append((label, kind, t0, t1, dict(attrs) if attrs else {}))
        else:
            out.append((sp.label, sp.kind, sp.t0, sp.t1, dict(sp.attrs)))
    return tuple(out)


def _counter_deltas(last: dict) -> tuple:
    """(name, delta) pairs since the previous ship; updates *last*."""
    from ..obs import metrics as _metrics

    snap = _metrics.registry.snapshot()["counters"]
    deltas = []
    for name, v in snap.items():
        d = v - last.get(name, 0)
        if d:
            deltas.append((name, d))
    last.clear()
    last.update(snap)
    return tuple(deltas)


def worker_main(conn, worker_id: int) -> None:
    from ..obs import metrics as _metrics
    from ..obs import spans as _spans
    from ..obs.diag.recorder import RingSink
    from ..parallel import set_backend, set_kernel_backend
    from .protocol import Free, Hello, Shutdown, Task, Error, Result, recv_msg, send_msg

    set_backend("serial")  # no thread fan-out beneath the process pool
    # workers compute unfused T blocks only — chains never ship, so the
    # interpreter suite is pinned regardless of the parent's selection
    set_kernel_backend("interpreter")
    # the worker's own flight-recorder ring + always-on counters: spans
    # and counter deltas ship back piggybacked on each Result, so the
    # parent can stitch a causally-ordered dump even if this process is
    # later SIGKILLed
    _metrics.registry.enable()
    ring = RingSink(256)
    _spans.arm_ring(ring)
    shipped_counters: dict = {}
    seg_cache: dict = {}
    cast_cache: dict = {}
    send_msg(
        conn,
        Hello(worker_id=worker_id, pid=os.getpid(), t_mono=time.perf_counter()),
    )
    try:
        while True:
            try:
                msg = recv_msg(conn)
            except (EOFError, OSError):
                break
            if isinstance(msg, Shutdown):
                break
            if isinstance(msg, Free):
                _free_segments(msg.names, seg_cache, cast_cache)
                continue
            if not isinstance(msg, Task):
                continue
            t0 = time.perf_counter()
            try:
                with _spans.span(
                    f"shard.{msg.op.kind}", "kernel",
                    task_id=msg.task_id, worker_id=worker_id,
                ):
                    keys, vals, flops = _run_task(msg.op, seg_cache, cast_cache)
            except BaseException:
                _metrics.registry.inc("shard.worker.task_errors")
                send_msg(
                    conn,
                    Error(
                        task_id=msg.task_id,
                        message=traceback.format_exc(),
                        worker_id=worker_id,
                    ),
                )
                continue
            _metrics.registry.inc("shard.worker.tasks")
            send_msg(
                conn,
                Result(
                    task_id=msg.task_id,
                    keys=keys,
                    vals=vals,
                    worker_id=worker_id,
                    pid=os.getpid(),
                    seconds=time.perf_counter() - t0,
                    flops=flops,
                    spans=_drain_ring(ring),
                    metrics=_counter_deltas(shipped_counters),
                ),
            )
    finally:
        _free_segments(list(seg_cache), seg_cache, cast_cache)
        try:
            conn.close()
        except Exception:
            pass
