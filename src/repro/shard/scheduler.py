"""The distributed drain scheduler: one DAG level across the worker pool.

Called by :class:`repro.execution.planner.driver.ExecutionPlan` when the
``processes`` backend is active.  For each level it

1. gates every node through :func:`repro.shard.opspec.plan_node` —
   shippable nodes become block tasks, the rest keep their normal local
   runner;
2. publishes input CSRs into shared memory through a version-keyed cache
   (a matrix republishes only after mutation — ``Matrix._version`` bumps
   on every content write), leasing each segment for the level's duration
   so concurrent invalidation can never unlink under an in-flight task;
3. ships the tasks (descriptors, not data) to the persistent pool, runs
   the unshippable nodes locally meanwhile-ordered, and merges each node's
   partials back into the canonical flat-key stream
   (:mod:`repro.shard.merge`);
4. completes each node through the ordinary write pipeline
   (``execute_sharded``: mask, accumulator, replace/merge semantics all
   run in the parent), under the same span/accounting wrapping local
   runners get — so request attribution and Chrome-trace export keep
   working, now with per-worker lanes.

Failure semantics mirror the thread scheduler: a failing node is recorded
and its siblings still run; the first failure in program order is re-raised
by the driver, which poisons the failed tail.  A *worker* death, by
contrast, is a :class:`repro.info.Panic` that aborts the whole level —
the pool is gone, and no per-node result can be trusted.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from ..obs import diag as _diag
from ..obs import metrics as _metrics
from ..obs import spans as _spans
from ..obs import tracing as _tracing
from ..obs.diag import explain as _explain
from ..parallel import shard_workers
from . import pool as _pool_mod
from .layout import publish_csr, stripe_cuts
from .merge import concat_stripes, merge_tiles
from .opspec import plan_node
from .protocol import Error, Task
from .shm import registry

__all__ = ["run_level", "publication_stats", "invalidate_all"]

#: max cached publications; beyond this the least-recently-used entry is
#: dropped (its segments unlink once the current level's leases release)
_PUB_CAP = 32

#: id(matrix) -> {"obj": Matrix, "version": int, "layouts": {orient: BlockLayout}}
#: The strong "obj" reference is deliberate: Matrix is __slots__-bound and
#: not weakref-able, and holding the object pins its id so a recycled
#: address can never alias a stale cache entry.  _PUB_CAP bounds the pin.
_pub: "OrderedDict[int, dict]" = OrderedDict()
_published_count = 0
_published_bytes = 0


def _drop_entry(entry: dict) -> None:
    names = [lay.seg_name for lay in entry["layouts"].values()]
    for name in names:
        registry.discard(name)
        registry.release(name)  # the cache's create-time lease
    p = _pool_mod._pool
    if p is not None and not p.dead:
        p.broadcast_free(names)


def invalidate_all() -> None:
    """Drop every cached publication (tests and teardown)."""
    while _pub:
        _, entry = _pub.popitem(last=False)
        _drop_entry(entry)


def _publish(obj, orient: str, view):
    """Publication hook handed to :func:`plan_node` (see module doc)."""
    global _published_count, _published_bytes
    import numpy as np

    key = id(obj)
    entry = _pub.get(key)
    if entry is not None and (
        entry["obj"] is not obj or entry["version"] != obj._version
    ):
        _pub.pop(key)
        _drop_entry(entry)
        entry = None
    if entry is None:
        entry = {"obj": obj, "version": obj._version, "layouts": {}}
        _pub[key] = entry
    _pub.move_to_end(key)
    layout = entry["layouts"].get(orient)
    if layout is None:
        cuts = stripe_cuts(np.diff(view.indptr), shard_workers())
        layout = publish_csr(view, registry, cuts)
        entry["layouts"][orient] = layout
        _published_count += 1
        _published_bytes += layout.total_bytes
        if _metrics.registry.enabled:
            _metrics.registry.inc("shard.publications")
            _metrics.registry.inc("shard.bytes_published", layout.total_bytes)
    while len(_pub) > _PUB_CAP:
        _, old = _pub.popitem(last=False)
        _drop_entry(old)
    return layout


def publication_stats() -> dict:
    return {
        "cached": len(_pub),
        "published": _published_count,
        "bytes_published": _published_bytes,
        "shm": registry.stats(),
    }


def _assemble(plan, parts):
    """Partials (in task order) → the node's (t_keys, t_vals)."""
    if plan.merge == "tiles":
        tps = plan.tiles_per_stripe
        stripes = [
            merge_tiles(parts[i : i + tps], plan.add_monoid, plan.out_dtype)
            for i in range(0, len(parts), tps)
        ]
        return concat_stripes(stripes, plan.out_dtype)
    return concat_stripes(parts, plan.out_dtype)


def _emit_task_spans(sink, results) -> None:
    """Synthetic per-task spans on dedicated worker lanes.

    Workers measure their own kernel seconds; the parent backdates each
    span so Chrome-trace export shows one lane per worker process
    (``shard-worker-N``), with pid/worker attributes for correlation.
    """
    for r in results:
        if isinstance(r, Error):
            continue
        sp = sink.open(
            f"shard:{r.task_id}", "kernel",
            worker=r.worker_id, pid=r.pid, flops=r.flops,
            nnz_out=len(r.keys),
        )
        sink.close(sp)
        sp.t0 = sp.t1 - r.seconds
        sp.thread = f"shard-worker-{r.worker_id}"
        sp.tid = 1_000_000 + r.worker_id


def run_level(nodes) -> list:
    """Execute one level; returns ``[(node, exc), ...]`` sorted in program
    order (empty when everything succeeded).  Raises ``Panic`` if the pool
    dies — the driver treats that as failing the entire level."""
    from ..execution.trace import wrap_thunk
    from ..operations.common import execute_sharded

    plans = []
    local_nodes = []
    for node in nodes:
        plan = None
        if getattr(node, "shard", None) is not None:
            try:
                plan = plan_node(node, _publish)
            except Exception:
                plan = None  # planning must never kill a drain: run locally
        if plan is not None and plan.tasks:
            plans.append(plan)
        else:
            local_nodes.append(node)

    failures: list = []

    def attempt(node, fn) -> None:
        try:
            fn()
        except BaseException as exc:  # mirror the thread scheduler: collect
            failures.append((node, exc))

    if not plans:
        for node in local_nodes:
            attempt(node, node.runner)
        failures.sort(key=lambda nf: nf[0].index)
        return failures

    sink = _spans.current()
    lv_sp = (
        sink.open(
            "shard.level", "drain",
            nodes=len(nodes), sharded=len(plans), deferred=True,
            tasks=sum(len(p.tasks) for p in plans),
        )
        if sink is not None
        else None
    )
    leased: list[str] = []
    try:
        for plan in plans:
            for name in plan.seg_names:
                registry.lease(name)
                leased.append(name)

        tasks = []
        owner: dict[int, tuple] = {}  # task_id -> (plan, slot)
        for plan in plans:
            for slot, st in enumerate(plan.tasks):
                tid = len(tasks)
                tasks.append(Task(task_id=tid, op=st))
                owner[tid] = (plan, slot)

        t0 = time.perf_counter()
        results = _pool_mod.get_pool().run_tasks(tasks)  # Panic on crash
        pool_wall = time.perf_counter() - t0

        # unshippable siblings run in the parent, program-ordered
        for node in local_nodes:
            attempt(node, node.runner)

        if sink is not None:
            _emit_task_spans(sink, results.values())
        if _metrics.registry.enabled:
            _metrics.registry.inc("shard.tasks", len(results))
            _metrics.registry.inc("shard.levels")
            for r in results.values():
                if not isinstance(r, Error):
                    _metrics.registry.observe("shard.task_seconds", r.seconds)
        if _diag.detector() is not None:
            # per-(task kind, worker) baselines: a single sick worker shows
            # up as its own suspect, not as noise on the kernel's average
            for tid, r in results.items():
                if not isinstance(r, Error):
                    _diag.observe_kernel(
                        f"shard.{tasks[tid].op.kind}", "shard", r.worker_id,
                        seconds=r.seconds, flops=r.flops,
                    )

        acct = _tracing.current_accounting()
        for plan in plans:
            node = plan.node
            node_results = [
                results[tid] for tid, (p, _) in sorted(owner.items())
                if p is plan
            ]
            errors = [r for r in node_results if isinstance(r, Error)]
            if errors:
                # a task-level failure falls back to the node's local
                # runner: identical semantics, and a genuine kernel error
                # (rather than an infra hiccup) reproduces exactly
                if _metrics.registry.enabled:
                    _metrics.registry.inc("shard.task_errors", len(errors))
                attempt(node, node.runner)
                continue
            parts = [(r.keys, r.vals) for r in node_results]
            flops = sum(r.flops for r in node_results)
            t = _assemble(plan, parts)

            def completion(plan=plan, t=t, flops=flops):
                _tracing.tally_flops(flops)
                execute_sharded(plan.spec, t[0], t[1])

            prov = dict(node.shard.get("prov") or {})
            prov["shard"] = {
                "tasks": len(plan.tasks),
                "merge": plan.merge,
                "flops": flops,
            }
            col = _explain.current_explain()
            if col is not None:
                col.note_shard(
                    node.index,
                    tasks=len(plan.tasks),
                    merge=plan.merge,
                    workers=sorted({r.worker_id for r in node_results}),
                )
            runner = wrap_thunk(
                completion, node.label, deferred=True, provenance=prov
            )
            rids = node.shard.get("rids") or []
            if acct is not None:
                runner = acct.wrap(runner, rids)
            attempt(node, runner)

        if lv_sp is not None:
            lv_sp.attrs.update(pool_seconds=round(pool_wall, 6))
    finally:
        for name in leased:
            registry.release(name)
        if lv_sp is not None:
            sink.close(lv_sp)

    failures.sort(key=lambda nf: nf[0].index)
    return failures
