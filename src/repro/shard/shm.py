"""Refcounted shared-memory lifecycle for the sharded backend.

The parent process is the *only* creator of segments; workers attach
read-only by name.  Every segment is tracked by the process-global
:data:`registry` from the instant it is created, so teardown —
:func:`ShmRegistry.unlink_all`, wired into
:func:`repro.parallel.shutdown_pools` and thence :mod:`atexit` — can
always unlink everything, even after an aborted drain or a worker crash.
Segment names carry the creating pid (``rshard{pid}-{seq}``), which makes
``/dev/shm`` leak checks in tests trivial and collisions across
concurrently fuzzing processes impossible.

Worker side: Python < 3.13 has a long-standing ``resource_tracker`` bug —
attaching to a segment registers it with the *attacher's* tracker, which
unlinks the name when that process exits, yanking the memory out from
under everyone else.  :func:`attach` unregisters the attachment
immediately, leaving lifecycle ownership with the parent where it
belongs.
"""

from __future__ import annotations

import os
import sys
import threading
from multiprocessing import shared_memory

__all__ = ["ShmRegistry", "registry", "attach", "NAME_PREFIX"]

NAME_PREFIX = f"rshard{os.getpid()}-"


class ShmRegistry:
    """Parent-side ledger of every live segment, with lease refcounts.

    A segment stays mapped while any lease is outstanding (the publication
    cache holds one; each in-flight task batch holds one more).  When the
    last lease is released *and* the segment was marked for removal, it is
    closed and unlinked.  :meth:`unlink_all` ignores refcounts — it is the
    crash/teardown path.
    """

    def __init__(self):
        self._mu = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._refs: dict[str, int] = {}
        self._doomed: set[str] = set()
        self._seq = 0
        #: lifetime counters (read by repro.obs via shard.pool stats)
        self.created = 0
        self.unlinked = 0
        self.bytes_created = 0

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Create a tracked segment with one lease held by the caller."""
        with self._mu:
            self._seq += 1
            name = f"{NAME_PREFIX}{self._seq}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 1))
        with self._mu:
            self._segments[seg.name] = seg
            self._refs[seg.name] = 1
            self.created += 1
            self.bytes_created += seg.size
        return seg

    def lease(self, name: str) -> None:
        with self._mu:
            if name not in self._segments:
                raise KeyError(f"unknown shared-memory segment {name!r}")
            self._refs[name] += 1

    def release(self, name: str) -> None:
        """Drop one lease; unlink when doomed and no leases remain."""
        with self._mu:
            if name not in self._segments:
                return
            self._refs[name] -= 1
            dead = self._refs[name] <= 0 and name in self._doomed
            seg = self._segments.pop(name) if dead else None
            if dead:
                self._refs.pop(name, None)
                self._doomed.discard(name)
        if seg is not None:
            self._destroy(seg)

    def discard(self, name: str) -> None:
        """Mark *name* for removal; unlinks now if no leases are out."""
        with self._mu:
            if name not in self._segments:
                return
            self._doomed.add(name)
            dead = self._refs.get(name, 0) <= 0
            seg = self._segments.pop(name) if dead else None
            if dead:
                self._refs.pop(name, None)
                self._doomed.discard(name)
        if seg is not None:
            self._destroy(seg)

    def live_names(self) -> list[str]:
        with self._mu:
            return sorted(self._segments)

    def unlink_all(self) -> None:
        """Close and unlink every tracked segment, refcounts be damned."""
        with self._mu:
            segs = list(self._segments.values())
            self._segments.clear()
            self._refs.clear()
            self._doomed.clear()
        for seg in segs:
            self._destroy(seg)

    def _destroy(self, seg: shared_memory.SharedMemory) -> None:
        for fn in (seg.close, seg.unlink):
            try:
                fn()
            except (FileNotFoundError, OSError):  # already gone — fine
                pass
        self.unlinked += 1

    def stats(self) -> dict:
        with self._mu:
            return {
                "live": len(self._segments),
                "created": self.created,
                "unlinked": self.unlinked,
                "bytes_created": self.bytes_created,
            }


#: the one parent-side registry (workers never import this module's state —
#: spawn gives them a fresh copy whose registry stays empty)
registry = ShmRegistry()


def attach(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach by name, without adopting lifecycle ownership.

    Attaching must not register the segment with the resource tracker
    (bpo-39959): workers share the parent's tracker process, so a worker's
    registration/unregistration would clobber the parent's own entry and
    either unlink live memory early or KeyError at tracker shutdown.
    Python 3.13 has ``track=False`` for exactly this; earlier versions get
    the same effect by suppressing ``register`` for the attach call (the
    worker loop is single-threaded, so the patch window is private).
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig
