"""Shippability gate and task planning for the sharded backend.

:func:`plan_node` decides, per DAG node, whether the drain scheduler may
ship its kernel to the worker pool, and if so cuts it into
:class:`ShardTask` block tasks.  Tasks carry *descriptors only*: shared
segment names, row/inner-dim windows, and operator *registry names* —
never data and never callables.  Workers rebuild the operator from
:mod:`repro.algebra.predefined`'s registries, which is why the gate
demands the spec's operator be the registry's own instance: a user-built
(or user-defined-type) operator has no name the worker could resolve, so
those nodes simply run locally via their normal runner.

Unshippable ≠ failure.  The gate returning ``None`` is the common case —
fused pairs and CSE nodes (their kernels are closures over planner state),
UDT domains (object arrays can't live in shared memory), sub-threshold
work (IPC latency would dominate), and every non-multiply op class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algebra.monoid import Monoid
from ..algebra.predefined import MONOID_REGISTRY, SEMIRING_REGISTRY
from ..algebra.semiring import Semiring
from ..operations._kernels import estimate_flops
from ..parallel import parallel_threshold, shard_grid, shard_workers, row_blocks
from ..types import cast_array

__all__ = ["ShardTask", "NodePlan", "plan_node", "SHIPPABLE_KINDS"]

SHIPPABLE_KINDS = ("mxm", "mxv", "vxm", "reduce")


@dataclass(frozen=True)
class ShardTask:
    """One block task: operator names + shm layouts + index windows."""

    kind: str
    #: registry name of the Semiring (mxm/mxv/vxm) or Monoid (reduce)
    op_name: str
    #: layout of the (already published) primary matrix operand, in the
    #: orientation the descriptor demands
    a: object
    #: GrBType name of A's stored domain (worker casts to the op's input)
    a_type: str
    #: row window [lo, hi) of the output this task produces
    lo: int
    hi: int
    b: object | None = None
    b_type: str | None = None
    #: inline vector operand (mxv/vxm), values pre-cast to the mul domain
    v_keys: object | None = None
    v_vals: object | None = None
    #: vxm operand order: multiply runs as v ⊗ A
    swap: bool = False
    #: inner-dimension window for 2D SpGEMM tiles (None = full stripe)
    klo: int | None = None
    khi: int | None = None


@dataclass
class NodePlan:
    """A shippable node, cut into tasks, plus what assembly needs."""

    node: object
    spec: object
    tasks: list = field(default_factory=list)
    #: "concat" (stripes, any domain) or "tiles" (k-split, exact domains)
    merge: str = "concat"
    #: additive monoid for the tile merge (None when merge == "concat")
    add_monoid: object = None
    out_dtype: object = None
    #: tasks-per-stripe (1 for stripes; pc for tiles, stripe-major order)
    tiles_per_stripe: int = 1
    #: shared segments this plan reads (leased for the level's duration)
    seg_names: tuple = ()
    flops_estimated: int = 0


def _registry_semiring(op) -> Semiring | None:
    if isinstance(op, Semiring) and SEMIRING_REGISTRY.get(op.name) is op:
        return op
    return None


def _registry_monoid(op) -> Monoid | None:
    if isinstance(op, Monoid) and MONOID_REGISTRY.get(op.name) is op:
        return op
    return None


def _kcuts(inner: int, pc: int) -> list[tuple[int, int]]:
    bounds = sorted({inner * i // pc for i in range(pc + 1)} | {0, inner})
    return [
        (bounds[i], bounds[i + 1])
        for i in range(len(bounds) - 1)
        if bounds[i] < bounds[i + 1]
    ] or [(0, inner)]


def plan_node(node, publish) -> NodePlan | None:
    """Gate *node* and, when shippable, plan its block tasks.

    *publish* is the scheduler's publication hook:
    ``publish(obj, orient, view) -> BlockLayout`` (cached per object
    version, so repeated drains over the same matrix ship no new bytes).
    """
    info = getattr(node, "shard", None)
    if info is None:
        return None
    spec = info["spec"]
    if spec is None or spec.kernel is None:
        return None
    kind = spec.kind
    if kind not in SHIPPABLE_KINDS:
        return None
    d = spec.desc
    threshold = parallel_threshold()
    grid = shard_grid()
    pr = grid[0] if grid is not None else shard_workers()

    if kind == "mxm":
        sr = _registry_semiring(spec.op_token)
        if sr is None:
            return None
        A, B = spec.inputs
        if A.type.is_udt or B.type.is_udt or spec.t_type.is_udt:
            return None
        a_view = A.csc() if d.transpose0 else A.csr()
        b_view = B.csc() if d.transpose1 else B.csr()
        flops = estimate_flops(a_view, b_view)
        if flops < threshold:
            return None
        work = np.zeros(a_view.nrows, dtype=np.int64)
        if a_view.nnz:
            np.add.at(
                work, a_view.row_ids(), np.diff(b_view.indptr)[a_view.indices]
            )
        stripes = row_blocks(work, pr)
        # column (inner-dim) splits only where the semiring-add merge of
        # partial products is exactly associative: bool/integer domains
        pc = grid[1] if grid is not None else 1
        if pc > 1 and spec.t_type.np_dtype.kind not in "biu":
            pc = 1
        la = publish(A, "csc" if d.transpose0 else "csr", a_view)
        lb = publish(B, "csc" if d.transpose1 else "csr", b_view)
        plan = NodePlan(
            node=node,
            spec=spec,
            merge="tiles" if pc > 1 else "concat",
            add_monoid=sr.add if pc > 1 else None,
            out_dtype=spec.t_type.np_dtype,
            seg_names=tuple({la.seg_name, lb.seg_name}),
            flops_estimated=flops,
        )
        kwins = _kcuts(b_view.nrows, pc) if pc > 1 else [(None, None)]
        plan.tiles_per_stripe = len(kwins)
        for blk in stripes:
            for klo, khi in kwins:
                plan.tasks.append(
                    ShardTask(
                        kind="mxm",
                        op_name=sr.name,
                        a=la,
                        a_type=A.type.name,
                        lo=blk.start,
                        hi=blk.stop,
                        b=lb,
                        b_type=B.type.name,
                        klo=klo,
                        khi=khi,
                    )
                )
        return plan

    if kind in ("mxv", "vxm"):
        sr = _registry_semiring(spec.op_token)
        if sr is None:
            return None
        if kind == "mxv":
            A, u = spec.inputs
            a_view = A.csc() if d.transpose0 else A.csr()
            orient = "csc" if d.transpose0 else "csr"
            v_dst, swap = sr.d_in2, False
        else:
            u, A = spec.inputs
            # vxm runs the row kernel on the transposed orientation
            a_view = A.csr() if d.transpose1 else A.csc()
            orient = "csr" if d.transpose1 else "csc"
            v_dst, swap = sr.d_in1, True
        if A.type.is_udt or u.type.is_udt or spec.t_type.is_udt:
            return None
        if a_view.nnz < threshold:
            return None
        la = publish(A, orient, a_view)
        v_keys, v_raw = u._content()
        v_vals = cast_array(v_raw, u.type, v_dst)
        plan = NodePlan(
            node=node,
            spec=spec,
            out_dtype=spec.t_type.np_dtype,
            seg_names=(la.seg_name,),
            flops_estimated=a_view.nnz,
        )
        for blk in row_blocks(np.diff(a_view.indptr), pr):
            plan.tasks.append(
                ShardTask(
                    kind=kind,
                    op_name=sr.name,
                    a=la,
                    a_type=A.type.name,
                    lo=blk.start,
                    hi=blk.stop,
                    v_keys=v_keys,
                    v_vals=v_vals,
                    swap=swap,
                )
            )
        return plan

    # kind == "reduce": matrix → vector row reduction
    red = _registry_monoid(spec.reducer)
    if red is None:
        return None
    (A,) = spec.inputs
    if A.type.is_udt or spec.t_type.is_udt:
        return None
    a_view = A.csc() if d.transpose0 else A.csr()
    if a_view.nnz < threshold:
        return None
    la = publish(A, "csc" if d.transpose0 else "csr", a_view)
    plan = NodePlan(
        node=node,
        spec=spec,
        out_dtype=spec.t_type.np_dtype,
        seg_names=(la.seg_name,),
        flops_estimated=a_view.nnz,
    )
    for blk in row_blocks(np.diff(a_view.indptr), pr):
        plan.tasks.append(
            ShardTask(
                kind="reduce",
                op_name=red.name,
                a=la,
                a_type=A.type.name,
                lo=blk.start,
                hi=blk.stop,
            )
        )
    return plan
