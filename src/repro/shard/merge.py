"""Merging block partials back into the canonical flat-key stream.

Two merge rules, matching the two block shapes:

* **stripes** — partials cover disjoint, ascending row windows with
  absolute keys, so concatenation in stripe order *is* the globally sorted
  result.  No arithmetic happens at merge time, hence bitwise identity for
  every domain (the same argument the thread pool's block concat uses).
* **tiles** — k-split SpGEMM partials overlap on output cells; the merge
  folds same-key partials with the semiring's additive monoid, in k order
  (a stable sort on the concatenation preserves it).  Per output cell the
  serial kernel folds products in k-ascending order too — CSR column
  indices are sorted — so the fold-of-contiguous-subfolds equals the
  serial fold exactly when the add is associative *in machine arithmetic*:
  the planner only cuts tiles for bool/integer add-domains.

Reductions (matrix→vector) are stripes over row ids; vector keys
concatenate the same way.
"""

from __future__ import annotations

import numpy as np

from .._sparseutil import group_starts, segment_reduce

__all__ = ["concat_stripes", "merge_tiles"]


def _empty(out_dtype) -> tuple[np.ndarray, np.ndarray]:
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=out_dtype)


def concat_stripes(parts, out_dtype) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate (keys, vals) partials of ascending disjoint windows."""
    parts = [p for p in parts if len(p[0])]
    if not parts:
        return _empty(out_dtype)
    if len(parts) == 1:
        return parts[0][0], parts[0][1]
    keys = np.concatenate([p[0] for p in parts])
    vals = np.concatenate([p[1] for p in parts])
    return keys, vals


def merge_tiles(parts, add_monoid, out_dtype) -> tuple[np.ndarray, np.ndarray]:
    """Fold same-key partials (given in k order) with the additive monoid."""
    parts = [p for p in parts if len(p[0])]
    if not parts:
        return _empty(out_dtype)
    if len(parts) == 1:
        return parts[0][0], parts[0][1]
    keys = np.concatenate([p[0] for p in parts])
    vals = np.concatenate([p[1] for p in parts])
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]
    uniq, starts = group_starts(keys)
    out = segment_reduce(vals, starts, add_monoid)
    if out.dtype != out_dtype:
        out = out.astype(out_dtype)
    return uniq, out
