"""The persistent spawn-based worker pool and its task loop.

One pool per parent process, sized by :func:`repro.parallel.shard_workers`
and rebuilt on resize or after a crash.  Dispatch is classic master/worker
with at most one task in flight per worker: the parent sends a task only
to an idle worker and always drains results as they arrive, so the duplex
pipes can never fill in both directions at once (the deadlock mode of
fire-hose dispatch when tasks carry inline vector payloads).

A worker dying mid-level surfaces as ``EOFError`` on its pipe; the pool
raises :class:`repro.info.Panic`, marks itself dead (the next drain
respawns a fresh pool), and the caller's teardown path — ultimately
:func:`repro.parallel.shutdown_pools` at interpreter exit — unlinks every
registered segment, so even a crashed drain leaks nothing in ``/dev/shm``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from multiprocessing import get_context

from ..info import Panic
from ..obs import diag as _diag
from ..obs import metrics as _metrics
from .protocol import Free, Hello, Result, Shutdown, Task, recv_msg, send_msg
from .worker import worker_main

__all__ = ["ShardPool", "get_pool", "shutdown_pool", "pool_stats"]

_HELLO_TIMEOUT_S = 120.0


class ShardPool:
    def __init__(self, nworkers: int):
        self.size = int(max(1, nworkers))
        self.dead = False
        self._mu = threading.Lock()
        self._workers: list = []  # (Process, Connection)
        self.tasks_done = 0
        self.task_seconds = 0.0
        #: worker_id -> parent-clock minus worker-clock at handshake (the
        #: flight-recorder stitch maps shipped span times through this)
        self.clock_offsets: dict[int, float] = {}
        ctx = get_context("spawn")
        try:
            for wid in range(self.size):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_main,
                    args=(child_conn, wid),
                    daemon=True,
                    name=f"repro-shard-{wid}",
                )
                proc.start()
                child_conn.close()
                self._workers.append((proc, parent_conn))
            for _, conn in self._workers:
                if not conn.poll(_HELLO_TIMEOUT_S):
                    raise Panic("shard worker failed to start (no handshake)")
                hello = recv_msg(conn)
                if not isinstance(hello, Hello):
                    raise Panic(f"bad shard handshake: {hello!r}")
                self.clock_offsets[hello.worker_id] = (
                    time.perf_counter() - hello.t_mono
                )
        except BaseException:
            self._kill()
            raise

    @property
    def pids(self) -> list[int]:
        return [p.pid for p, _ in self._workers]

    def run_tasks(self, tasks: list[Task]) -> dict:
        """Run *tasks* to completion; returns {task_id: Result | Error}.

        Serialized by the pool lock — concurrent service drains queue here
        rather than interleaving frames on the pipes.  Raises ``Panic`` if
        a worker dies; the pool is unusable afterwards.
        """
        with self._mu:
            if self.dead:
                raise Panic("shard pool is dead")
            results: dict = {}
            queue = deque(tasks)
            busy: dict = {}  # Connection -> Task
            idle = deque(conn for _, conn in self._workers)
            try:
                while queue or busy:
                    while queue and idle:
                        conn = idle.popleft()
                        task = queue.popleft()
                        try:
                            send_msg(conn, task)
                        except (BrokenPipeError, OSError):
                            raise Panic(
                                "shard worker died (send failed); "
                                "aborting the drain"
                            ) from None
                        busy[conn] = task
                    ready = mp_connection.wait(list(busy))
                    for conn in ready:
                        try:
                            msg = recv_msg(conn)
                        except (EOFError, OSError):
                            raise Panic(
                                "shard worker died mid-level (pipe closed); "
                                "aborting the drain"
                            ) from None
                        busy.pop(conn, None)
                        idle.append(conn)
                        results[msg.task_id] = msg
                        self.tasks_done += 1
                        self.task_seconds += getattr(msg, "seconds", 0.0)
                        if isinstance(msg, Result):
                            self._absorb(msg)
            except BaseException as exc:
                self._kill()
                if isinstance(exc, Panic):
                    _diag.trigger_dump("panic", detail=str(exc))
                raise
            return results

    def _absorb(self, msg: Result) -> None:
        """Merge a Result's piggybacked counter deltas into the parent
        registry and stitch its shipped spans into the flight recorder."""
        reg = _metrics.registry
        for name, delta in msg.metrics:
            reg.inc(name, delta)
        if msg.spans:
            _diag.note_worker_spans(
                msg.worker_id,
                msg.pid,
                self.clock_offsets.get(msg.worker_id, 0.0),
                msg.spans,
            )

    def broadcast_free(self, names) -> None:
        """Tell every worker to drop cached attachments for *names*."""
        if self.dead or not names:
            return
        with self._mu:
            for _, conn in self._workers:
                try:
                    send_msg(conn, Free(names=tuple(names)))
                except Exception:
                    pass

    def shutdown(self) -> None:
        with self._mu:
            if self.dead:
                return
            for _, conn in self._workers:
                try:
                    send_msg(conn, Shutdown())
                except Exception:
                    pass
            for proc, conn in self._workers:
                proc.join(timeout=5)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
                try:
                    conn.close()
                except Exception:
                    pass
            self._workers.clear()
            self.dead = True

    def _kill(self) -> None:
        self.dead = True
        for proc, conn in self._workers:
            try:
                conn.close()
            except Exception:
                pass
            if proc.is_alive():
                proc.terminate()
        for proc, _ in self._workers:
            proc.join(timeout=5)
        self._workers.clear()


_pool: ShardPool | None = None
_pool_mu = threading.Lock()


def get_pool() -> ShardPool:
    """The process-wide pool, (re)built to the current worker count."""
    global _pool
    from ..parallel import shard_workers

    with _pool_mu:
        want = shard_workers()
        if _pool is not None and (_pool.dead or _pool.size != want):
            _pool.shutdown()
            _pool = None
        if _pool is None:
            _pool = ShardPool(want)
        return _pool


def shutdown_pool() -> None:
    """Stop the pool if one exists (idempotent; used by atexit teardown)."""
    global _pool
    with _pool_mu:
        if _pool is not None:
            _pool.shutdown()
            _pool = None


def pool_stats() -> dict:
    with _pool_mu:
        if _pool is None or _pool.dead:
            return {"workers": 0, "tasks_done": 0, "task_seconds": 0.0}
        return {
            "workers": _pool.size,
            "tasks_done": _pool.tasks_done,
            "task_seconds": _pool.task_seconds,
        }
