"""Scaling baseline for the sharded backend: ``python -m repro.shard.bench``.

Times the drain-path SpGEMM and SpMV workloads on the same Erdős–Rényi
graph under the ``serial`` backend and under the ``processes`` backend
with an N-worker shard pool, and writes a ``repro-bench/1`` baseline
(``BENCH_pr6.json`` by default) that ``tools/bench_trajectory.py``
validates in CI.  The processes entries carry a ``speedup_vs_serial``
field plus the host core count, so a reader can tell a genuine scaling
number from a 1-core CI box oversubscribing its pool.

Must be launched as a real module (``python -m repro.shard.bench``):
the spawn start method re-imports ``__main__`` in every worker.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _run_backend(backend: str, shard_workers: int, args) -> dict:
    """Median-of-N timings for mxm/mxv under *backend*; fresh context."""
    import repro as grb
    from repro import context, obs, parallel
    from repro.io import erdos_renyi

    context._reset()
    context.init(context.Mode.NONBLOCKING)
    parallel.set_backend(backend)
    if backend == "processes":
        parallel.set_shard_workers(shard_workers)

    rec = obs.BenchRecorder()
    try:
        E1 = erdos_renyi(args.nodes, args.edges, seed=1, domain=grb.FP64)
        E2 = erdos_renyi(args.nodes, args.edges, seed=2, domain=grb.FP64)
        C = grb.Matrix(grb.FP64, args.nodes, args.nodes)

        def run_mxm():
            grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], E1, E2)
            grb.wait()
            return C.nvals()

        rec.measure(
            f"shard.mxm.er{args.nodes}x{args.edges}.{backend}",
            run_mxm, repeat=args.repeat, nnz_in=E1.nvals(),
        )

        import numpy as np

        v = grb.Vector.from_coo(
            grb.FP64, args.nodes, np.arange(args.nodes),
            np.ones(args.nodes, dtype=np.float64),
        )
        w = grb.Vector(grb.FP64, args.nodes)

        def run_mxv():
            grb.mxv(w, None, None, grb.PLUS_TIMES[grb.FP64], E1, v)
            grb.wait()
            return w.nvals()

        rec.measure(
            f"shard.mxv.er{args.nodes}x{args.edges}.{backend}",
            run_mxv, repeat=args.repeat, nnz_in=E1.nvals(),
        )
    finally:
        parallel.shutdown_pools()
        parallel.set_backend("threads")
        context._reset()
    return {e["name"]: e for e in rec.entries}


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.shard.bench",
        description="serial-vs-processes scaling baseline for the shard pool",
    )
    p.add_argument("--out", default="BENCH_pr6.json",
                   help="bench JSON output path")
    p.add_argument("--nodes", type=int, default=131072)
    p.add_argument("--edges", type=int, default=1_000_000)
    p.add_argument("--repeat", type=int, default=3,
                   help="measured runs per workload (default 3)")
    p.add_argument("--shard-workers", type=int, default=8,
                   help="shard pool size for the processes run (default 8)")
    args = p.parse_args(argv)

    from repro import obs

    cores = os.cpu_count() or 1
    print(f"shard bench: er({args.nodes}, {args.edges}), "
          f"{args.shard_workers}-worker pool on {cores} core(s)", flush=True)

    serial = _run_backend("serial", args.shard_workers, args)
    procs = _run_backend("processes", args.shard_workers, args)

    rec = obs.BenchRecorder(meta={
        "suite": "repro.shard.bench",
        "nodes": args.nodes,
        "edges": args.edges,
        "shard_workers": args.shard_workers,
        "host_cores": cores,
    })
    for entry in {**serial, **procs}.values():
        rec.entries.append(entry)

    for kind in ("mxm", "mxv"):
        s_name = f"shard.{kind}.er{args.nodes}x{args.edges}.serial"
        p_name = f"shard.{kind}.er{args.nodes}x{args.edges}.processes"
        s_med, p_med = serial[s_name]["median_s"], procs[p_name]["median_s"]
        speedup = s_med / p_med if p_med else float("inf")
        procs[p_name]["speedup_vs_serial"] = speedup
        procs[p_name]["pool_workers"] = args.shard_workers
        print(f"  {kind}: serial {s_med * 1e3:.1f}ms  "
              f"processes[{args.shard_workers}] {p_med * 1e3:.1f}ms  "
              f"speedup {speedup:.2f}x", flush=True)

    doc = rec.write(args.out)
    with open(args.out) as fh:
        loaded = json.load(fh)
    if not loaded.get("benchmarks"):
        print(f"error: {args.out} has no benchmark entries", file=sys.stderr)
        return 1
    print(f"wrote {args.out}: {len(doc['benchmarks'])} entries", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
