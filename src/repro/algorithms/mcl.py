"""Markov clustering (MCL) — flow simulation by alternating semiring
matrix powers and elementwise inflation.

A showcase of operation composition: *expansion* is plain ``mxm`` over
arithmetic +.×, *inflation* is ``apply`` with a bound power operator
followed by a column rescale built from ``reduce`` + ``Matrix.diag`` +
``mxm`` — no step leaves the GraphBLAS vocabulary.
"""

from __future__ import annotations

import numpy as np

from ..algebra import PLUS_MONOID, PLUS_TIMES
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import DESC_T0
from ..info import DimensionMismatch, InvalidValue
from ..operations import (
    apply,
    apply_bind_first,
    apply_bind_second,
    ewise_add,
    mxm,
    reduce_to_vector,
    select,
)
from ..ops import DIV, ONE, POW, index_unary
from ..types import FP64

__all__ = ["markov_clustering"]


def _column_normalize(M: Matrix) -> Matrix:
    """Scale every column to sum 1: ``M · diag(1/colsum)``."""
    colsum = Vector(FP64, M.ncols)
    reduce_to_vector(colsum, None, None, PLUS_MONOID[FP64], M, DESC_T0)
    inv = Vector(FP64, M.ncols)
    apply_bind_first(inv, None, None, DIV[FP64], 1.0, colsum, None)
    D = Matrix.diag(inv)
    out = Matrix(FP64, M.nrows, M.ncols)
    mxm(out, None, None, PLUS_TIMES[FP64], M, D, None)
    colsum.free()
    inv.free()
    D.free()
    return out


def markov_clustering(
    A: Matrix,
    expansion: int = 2,
    inflation: float = 2.0,
    prune: float = 1e-6,
    max_iters: int = 60,
    tol: float = 1e-8,
) -> np.ndarray:
    """Cluster labels (attractor row indices) for a symmetric graph *A*.

    Classic van Dongen MCL: add self-loops, column-normalize, then iterate
    expansion (matrix power), inflation (elementwise power + renormalize),
    and pruning, until the flow matrix is (numerically) doubly idempotent.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("MCL requires a square adjacency matrix")
    if expansion < 2:
        raise InvalidValue("expansion must be >= 2")
    if inflation <= 1.0:
        raise InvalidValue("inflation must be > 1")
    n = A.nrows

    # self-loops keep the walk lazy: M0 = pattern(A) + I, as FP64
    loops = Vector(FP64, n)
    loops.build(np.arange(n), np.ones(n))
    eye = Matrix.diag(loops)
    base = Matrix(FP64, n, n)
    apply(base, None, None, ONE[FP64], A, None)
    M = Matrix(FP64, n, n)
    from ..ops import PLUS

    ewise_add(M, None, None, PLUS[FP64], base, eye, None)
    loops.free()
    eye.free()
    base.free()

    M = _column_normalize(M)
    prev = M.to_dense(0.0)
    for _ in range(max_iters):
        # expansion: M <- M**expansion over +.×
        for _ in range(expansion - 1):
            nxt = Matrix(FP64, n, n)
            mxm(nxt, None, None, PLUS_TIMES[FP64], M, M, None)
            M.free()
            M = nxt
        # inflation: elementwise power, then renormalize columns
        infl = Matrix(FP64, n, n)
        apply_bind_second(infl, None, None, POW[FP64], M, inflation, None)
        M.free()
        # prune numerically-dead flow before normalizing
        kept = Matrix(FP64, n, n)
        select(kept, None, None, index_unary.VALUEGT[FP64], infl, prune)
        infl.free()
        M = _column_normalize(kept)
        kept.free()

        cur = M.to_dense(0.0)
        if np.abs(cur - prev).max() < tol:
            break
        prev = cur

    # interpretation: column j belongs to the attractor row with the most
    # flow; relabel attractors canonically by their smallest member
    flow = M.to_dense(0.0)
    M.free()
    attractor = flow.argmax(axis=0)
    labels = np.empty(n, dtype=np.int64)
    canonical: dict[int, int] = {}
    for j in range(n):
        a = int(attractor[j])
        canonical.setdefault(a, j)
    for j in range(n):
        labels[j] = canonical[int(attractor[j])]
    # make the label of each cluster its smallest member
    remap: dict[int, int] = {}
    for j in range(n):
        remap.setdefault(labels[j], j)
    return np.array([remap[labels[j]] for j in range(n)], dtype=np.int64)
