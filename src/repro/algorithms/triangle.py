"""Triangle counting with masked SpGEMM.

The Sandia/LL formulation: split the (symmetric) adjacency pattern into its
strictly-lower triangle L with ``select(TRIL)``, then count
``Σ (L ⊕.⊗ L)⟨L⟩`` with the ``PLUS_PAIR`` semiring — every stored product
contributes exactly 1, and the L mask keeps only wedge closures, so the sum
is the triangle count.  This is the showcase workload for the mask
push-down optimization the benchmark suite ablates.
"""

from __future__ import annotations

from ..algebra import PLUS_MONOID, PLUS_PAIR
from ..containers.matrix import Matrix
from ..info import DimensionMismatch
from ..operations import mxm, reduce_to_scalar, select
from ..ops import TRIL
from ..types import INT64

__all__ = ["triangle_count", "lower_triangle"]


def lower_triangle(A: Matrix) -> Matrix:
    """Strictly-lower-triangular pattern of A as an INT64 matrix of ones."""
    L = Matrix(INT64, A.nrows, A.ncols)
    select(L, None, None, TRIL, A, -1, None)
    return L


def triangle_count(A: Matrix) -> int:
    """Number of triangles of the undirected graph with symmetric pattern A.

    Self-loops are ignored (they never satisfy the strict triangle
    inequality i > j > k).  Equals ``sum(networkx.triangles)/3``.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("triangle counting requires a square matrix")
    L = lower_triangle(A)
    C = Matrix(INT64, A.nrows, A.ncols)
    # C⟨L⟩ = L ⊕.⊗ L with PLUS_PAIR: wedges i>k, k>j closed by edge i>j
    mxm(C, L, None, PLUS_PAIR[INT64], L, L, None)
    total = int(reduce_to_scalar(PLUS_MONOID[INT64], C))
    L.free()
    C.free()
    return total
