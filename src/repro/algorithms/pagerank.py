"""PageRank via semiring matrix-vector products.

Power iteration on ``r ← α·Aᵀ(r/deg) + teleport``, entirely in GraphBLAS:
out-degrees by row-reduce, the scaled rank by eWiseMult, the push by vxm
over arithmetic +.×, dangling mass folded into the teleport term.  Matches
``networkx.pagerank`` to the iteration tolerance.
"""

from __future__ import annotations

import numpy as np

from ..algebra import PLUS_MONOID, PLUS_TIMES
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import ALL
from ..info import DimensionMismatch
from ..operations import (
    ewise_mult,
    reduce_to_vector,
    vector_assign_scalar,
    vxm,
)
from ..ops import DIV, PLUS, TIMES
from ..operations import apply_bind_first, apply_bind_second, ewise_add
from ..types import FP64

__all__ = ["pagerank"]


def pagerank(
    A: Matrix,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
) -> np.ndarray:
    """PageRank scores of the digraph *A* (any numeric domain; edge
    multiplicity via values is honoured, like networkx's weighted default).

    Returns a dense FP64 array summing to 1.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("PageRank requires a square adjacency matrix")
    n = A.nrows

    # out-degree (weighted): deg(i) = Σ_j A(i, j)
    deg = Vector(FP64, n)
    reduce_to_vector(deg, None, None, PLUS_MONOID[FP64], A, None)
    inv_deg = Vector(FP64, n)
    # 1/deg on stored (non-dangling) vertices: bind the *first* operand
    apply_bind_first(inv_deg, None, None, DIV[FP64], 1.0, deg, None)

    # dangling detection: vertices with no stored out-degree
    deg_dense = deg.to_dense(0.0)
    dangling = np.nonzero(deg_dense == 0.0)[0]

    r = Vector(FP64, n)
    vector_assign_scalar(r, None, None, 1.0 / n, ALL, None)

    scaled = Vector(FP64, n)
    semiring = PLUS_TIMES[FP64]
    for _ in range(max_iters):
        r_dense = r.to_dense(0.0)
        dangling_mass = float(r_dense[dangling].sum()) if len(dangling) else 0.0
        teleport = (1.0 - damping) / n + damping * dangling_mass / n

        # scaled = r ./ deg on non-dangling vertices
        ewise_mult(scaled, None, None, TIMES[FP64], r, inv_deg, None)
        # r_new = damping * (scaledᵀ A) + teleport, dense
        r_new = Vector(FP64, n)
        vector_assign_scalar(r_new, None, None, teleport, ALL, None)
        push = Vector(FP64, n)
        vxm(push, None, None, semiring, scaled, A, None)
        apply_bind_second(push, None, None, TIMES[FP64], push, damping, None)
        # fold the push into the dense teleport baseline
        ewise_add(r_new, None, None, PLUS[FP64], r_new, push, None)

        delta = float(np.abs(r_new.to_dense(0.0) - r_dense).sum())
        r.free()
        r = r_new
        push.free()
        if delta < tol * n:
            break

    out = r.to_dense(0.0)
    for v in (deg, inv_deg, scaled, r):
        v.free()
    return out / out.sum()
