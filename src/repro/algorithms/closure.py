"""Algebraic-closure algorithms: transitive closure, all-pairs shortest
paths, and the eccentricity family derived from them.

These are the "matrix powers over exotic semirings" workloads: closure is
repeated squaring over Boolean OR-AND; APSP is repeated squaring over
min-plus (both converge in ⌈log₂ n⌉ rounds).  Quadratic memory — meant for
the laptop-scale graphs of this reproduction.
"""

from __future__ import annotations

import numpy as np

from ..algebra import LOR_LAND, MIN_PLUS
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..info import DimensionMismatch
from ..operations import apply, ewise_add, mxm
from ..ops import LOR, MIN, ONE
from ..types import BOOL, FP64

__all__ = [
    "transitive_closure",
    "apsp",
    "eccentricity",
    "diameter",
    "radius",
]


def transitive_closure(A: Matrix, reflexive: bool = False) -> Matrix:
    """Reachability matrix: ``R(i,j)`` stored iff j is reachable from i.

    Repeated squaring over the Boolean OR-AND semiring:
    ``R ← R ∨ (R ∧.∨ R)`` until the pattern stops growing.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("closure requires a square matrix")
    n = A.nrows
    R = Matrix(BOOL, n, n)
    apply(R, None, None, ONE[BOOL], A, None)
    if reflexive:
        eye = Matrix.diag(
            Vector.from_coo(BOOL, n, np.arange(n), np.ones(n, bool))
        )
        ewise_add(R, None, None, LOR, R, eye, None)
        eye.free()
    while True:
        before = R.nvals()
        sq = Matrix(BOOL, n, n)
        mxm(sq, None, None, LOR_LAND[BOOL], R, R, None)
        ewise_add(R, None, None, LOR, R, sq, None)
        sq.free()
        if R.nvals() == before:
            return R


def apsp(A: Matrix) -> np.ndarray:
    """All-pairs shortest path distances as a dense array (∞ = unreachable).

    Min-plus repeated squaring: ``D ← D min (D min.+ D)``, ⌈log₂ n⌉ rounds.
    Matches ``scipy.sparse.csgraph.floyd_warshall``.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("APSP requires a square matrix")
    n = A.nrows
    D = Matrix(FP64, n, n)
    apply(D, None, None, _identity_fp64(), A, None)
    # distance 0 to self (min with any stored self-loop)
    zero_diag = Matrix.diag(
        Vector.from_coo(FP64, n, np.arange(n), np.zeros(n))
    )
    ewise_add(D, None, None, MIN[FP64], D, zero_diag, None)
    zero_diag.free()

    rounds = max(1, int(np.ceil(np.log2(max(2, n)))))
    for _ in range(rounds):
        sq = Matrix(FP64, n, n)
        mxm(sq, None, None, MIN_PLUS[FP64], D, D, None)
        ewise_add(D, None, None, MIN[FP64], D, sq, None)
        sq.free()
    out = D.to_dense(np.inf)
    D.free()
    return out


def _identity_fp64():
    from ..ops import IDENTITY

    return IDENTITY[FP64]


def eccentricity(A: Matrix) -> np.ndarray:
    """ecc(v) = max over reachable u of d(v, u); ∞ if some vertex is
    unreachable (the standard convention on disconnected graphs)."""
    D = apsp(A)
    return D.max(axis=1)


def diameter(A: Matrix) -> float:
    """max eccentricity (∞ when not strongly connected)."""
    return float(eccentricity(A).max())


def radius(A: Matrix) -> float:
    """min eccentricity."""
    return float(eccentricity(A).min())
