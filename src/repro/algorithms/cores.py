"""Peeling algorithms: k-core, core numbers, k-truss, and local clustering
coefficients — the second-wave workloads (all masked-SpGEMM and
masked-reduce compositions over the PLUS_PAIR counting semiring).

All expect an undirected graph given as a symmetric-pattern matrix without
self-loops.
"""

from __future__ import annotations

import numpy as np

from ..algebra import PLUS_MONOID, PLUS_PAIR
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import MASK, OUTP, REPLACE, STRUCTURE, Descriptor
from ..info import DimensionMismatch, InvalidValue
from ..operations import (
    apply_bind_second,
    ewise_add,
    mxm,
    mxv,
    reduce_to_vector,
    select,
)
from ..ops import PLUS, TIMES, index_unary
from ..types import BOOL, INT64

__all__ = ["k_core", "core_numbers", "k_truss", "local_clustering_coefficient"]


def _check_square(A: Matrix) -> None:
    if A.nrows != A.ncols:
        raise DimensionMismatch("requires a square adjacency matrix")


def _alive_degrees(A: Matrix, alive: Vector) -> Vector:
    """deg(i) = |N(i) ∩ alive| for i ∈ alive, via one masked mxv."""
    deg = Vector(INT64, A.nrows)
    d = Descriptor().set(MASK, STRUCTURE).set(OUTP, REPLACE)
    # PLUS_PAIR: every stored (A(i,j), alive(j)) intersection contributes 1
    mxv(deg, alive, None, PLUS_PAIR[INT64], A, alive, d)
    return deg


def k_core(A: Matrix, k: int) -> np.ndarray:
    """Vertex indices of the maximal subgraph with min degree >= k."""
    _check_square(A)
    if k < 0:
        raise InvalidValue("k must be non-negative")
    n = A.nrows
    alive = Vector(BOOL, n)
    alive.build(np.arange(n), np.ones(n, dtype=bool))
    while True:
        if alive.nvals() == 0:
            return np.empty(0, dtype=np.int64)
        deg = _alive_degrees(A, alive)
        dense = deg.to_dense(0)
        idx, _ = alive.extract_tuples()
        survivors = idx[dense[idx] >= k]
        if len(survivors) == len(idx):
            return survivors
        alive.clear()
        if len(survivors):
            alive.build(survivors, np.ones(len(survivors), dtype=bool))
        else:
            return np.empty(0, dtype=np.int64)


def core_numbers(A: Matrix) -> np.ndarray:
    """Core number of every vertex (the largest k whose k-core contains it).

    Standard peeling by increasing k; matches ``networkx.core_number``.
    """
    _check_square(A)
    n = A.nrows
    core = np.zeros(n, dtype=np.int64)
    remaining = np.arange(n)
    k = 0
    alive = Vector(BOOL, n)
    alive.build(np.arange(n), np.ones(n, dtype=bool))
    while alive.nvals() > 0:
        deg = _alive_degrees(A, alive).to_dense(0)
        idx, _ = alive.extract_tuples()
        peel = idx[deg[idx] <= k]
        if len(peel) == 0:
            k += 1
            continue
        core[peel] = k
        survivors = np.setdiff1d(idx, peel)
        alive.clear()
        if len(survivors):
            alive.build(survivors, np.ones(len(survivors), dtype=bool))
    return core


def k_truss(A: Matrix, k: int) -> Matrix:
    """The k-truss: the maximal subgraph where every edge lies in at least
    ``k - 2`` triangles.  Returns the truss's (symmetric) pattern as an
    INT64 matrix whose values are the edge supports.

    The classic masked-SpGEMM loop: support(e) = (A ⊕.pair A)⟨A⟩, prune
    edges below ``k-2``, repeat to fixpoint.
    """
    _check_square(A)
    if k < 2:
        raise InvalidValue("truss order k must be >= 2")
    # working copy as INT64 pattern
    work = Matrix(INT64, A.nrows, A.ncols)
    from ..operations import apply
    from ..ops import ONE

    apply(work, None, None, ONE[INT64], A, None)
    threshold = np.int64(k - 2)
    while True:
        nv_before = work.nvals()
        if nv_before == 0:
            return work
        support = Matrix(INT64, A.nrows, A.ncols)
        d = Descriptor().set(MASK, STRUCTURE).set(OUTP, REPLACE)
        mxm(support, work, None, PLUS_PAIR[INT64], work, work, d)
        # edges with no wedge at all have no entry in `support`; give every
        # surviving edge an explicit (possibly 0) support before filtering
        zeros = Matrix(INT64, A.nrows, A.ncols)
        apply_bind_second(zeros, None, None, TIMES[INT64], work, 0, None)
        full = Matrix(INT64, A.nrows, A.ncols)
        ewise_add(full, None, None, PLUS[INT64], support, zeros, None)
        pruned = Matrix(INT64, A.nrows, A.ncols)
        select(
            pruned, None, None, index_unary.VALUEGE[INT64], full, threshold
        )
        zeros.free()
        full.free()
        if pruned.nvals() == nv_before:
            return pruned
        work.free()
        support.free()
        work = pruned


def local_clustering_coefficient(A: Matrix) -> np.ndarray:
    """LCC(v) = 2·tri(v) / (deg(v)·(deg(v)−1)), 0 for degree < 2.

    The LDBC Graphalytics kernel; triangles per vertex come from the
    masked counting SpGEMM row-reduced.
    """
    _check_square(A)
    n = A.nrows
    C = Matrix(INT64, n, n)
    mxm(C, A, None, PLUS_PAIR[INT64], A, A, Descriptor().set(OUTP, REPLACE))
    wedge = Vector(INT64, n)
    reduce_to_vector(wedge, None, None, PLUS_MONOID[INT64], C, None)
    tri = wedge.to_dense(0) / 2.0
    deg = np.diff(A.csr().indptr).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        lcc = np.where(deg >= 2, 2.0 * tri / (deg * (deg - 1.0)), 0.0)
    return lcc
