"""Connected components by minimum-label propagation.

Each vertex starts labelled with its own index; every round each vertex
adopts the minimum label in its closed neighbourhood, via ``vxm`` over the
``MIN_FIRST`` semiring with a ``MIN`` accumulator.  On a symmetric pattern
the fixed point labels every component by its smallest vertex id.  (The
classic HCC/label-propagation formulation — simpler than FastSV but the
same primitive mix.)
"""

from __future__ import annotations

import numpy as np

from ..algebra import MIN_FIRST
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import ALL
from ..info import DimensionMismatch
from ..operations import vector_assign_scalar, vxm
from ..ops import MIN
from ..types import INT64

__all__ = ["connected_components"]


def connected_components(A: Matrix, max_iters: int | None = None) -> np.ndarray:
    """Component labels (smallest member id) for a symmetric-pattern graph.

    Returns a dense int64 array of length n; isolated vertices keep their
    own index.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("components require a square matrix")
    n = A.nrows
    labels = Vector(INT64, n)
    labels.build(np.arange(n), np.arange(n))

    rounds = max_iters if max_iters is not None else n
    prev = labels.to_dense(-1)
    for _ in range(rounds):
        # labels ⊙min= labels min.first A : adopt the smallest neighbour label
        vxm(labels, None, MIN[INT64], MIN_FIRST[INT64], labels, A, None)
        cur = labels.to_dense(-1)
        if np.array_equal(cur, prev):
            break
        prev = cur
    return prev
