"""Greedy distance-1 graph coloring via repeated independent sets
(Jones–Plassmann / Luby style).

Each round extracts a maximal independent set of the still-uncolored
subgraph and assigns it the next color — every step is the masked
GraphBLAS machinery the MIS kernel already exercises.  Produces a proper
coloring with at most Δ+1 colors on any graph.
"""

from __future__ import annotations

import numpy as np

from ..algebra import MAX_SECOND
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..info import DimensionMismatch
from ..operations import vxm
from ..types import BOOL, FP64

__all__ = ["greedy_coloring"]


def greedy_coloring(A: Matrix, seed: int = 42) -> np.ndarray:
    """Color the symmetric graph *A*; returns an int64 array of colors
    (0-based) with ``colors[u] != colors[v]`` for every edge (u, v)."""
    if A.nrows != A.ncols:
        raise DimensionMismatch("coloring requires a square matrix")
    n = A.nrows
    rng = np.random.default_rng(seed)
    colors = np.full(n, -1, dtype=np.int64)
    uncolored = np.ones(n, dtype=bool)
    color = 0
    while uncolored.any():
        # one Luby round restricted to the uncolored subgraph
        members = _independent_round(A, uncolored, rng)
        colors[members] = color
        uncolored[members] = False
        color += 1
    return colors


def _independent_round(
    A: Matrix, active: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """A maximal independent set of the subgraph induced on *active*."""
    n = A.nrows
    candidates = active.copy()
    selected = np.zeros(n, dtype=bool)
    while candidates.any():
        cand_idx = np.nonzero(candidates)[0]
        scores = Vector(FP64, n)
        scores.build(cand_idx, rng.uniform(0.01, 1.0, len(cand_idx)))
        nbr = Vector(FP64, n)
        vxm(nbr, None, None, MAX_SECOND[FP64], scores, A, None)
        nbr_dense = nbr.to_dense(0.0)
        score_dense = scores.to_dense(0.0)
        winners = candidates & (score_dense > nbr_dense)
        if not winners.any():
            best = cand_idx[np.argmax(score_dense[cand_idx])]
            winners[best] = True
        selected |= winners

        wv = Vector(BOOL, n)
        widx = np.nonzero(winners)[0]
        wv.build(widx, np.ones(len(widx), dtype=bool))
        blocked = Vector(BOOL, n)
        vxm(blocked, None, None, MAX_SECOND[BOOL], wv, A, None)
        removed = winners.copy()
        bidx, _ = blocked.extract_tuples()
        removed[bidx] = True
        candidates &= ~removed
        for v in (scores, nbr, wv, blocked):
            v.free()
    return np.nonzero(selected)[0]
