"""Luby's maximal independent set — the randomized masked-vector workout.

Each round every remaining candidate draws a random score; vertices whose
score strictly beats every remaining neighbour's join the set, and they and
their neighbours leave the candidate pool.  All the per-round steps are
masked GraphBLAS primitives (``mxv`` over ``MAX_SECOND``, eWise
comparison, structural-complement masking), which is why this algorithm is
a staple of GraphBLAS demo suites.
"""

from __future__ import annotations

import numpy as np

from ..algebra import MAX_SECOND
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..info import DimensionMismatch
from ..operations import vxm
from ..types import BOOL, FP64

__all__ = ["maximal_independent_set"]


def maximal_independent_set(A: Matrix, seed: int = 42) -> np.ndarray:
    """Vertex indices of a maximal independent set of the symmetric graph A.

    Deterministic for a given seed.  Self-loops are treated as absent
    (a self-looped vertex would otherwise exclude itself forever).
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("MIS requires a square matrix")
    n = A.nrows
    rng = np.random.default_rng(seed)

    candidates = np.ones(n, dtype=bool)
    in_set = np.zeros(n, dtype=bool)

    # neighbour lookup handled in GraphBLAS; candidate bookkeeping is the
    # non-opaque driver state, as in the reference implementations
    while candidates.any():
        cand_idx = np.nonzero(candidates)[0]
        scores = Vector(FP64, n)
        # score in (0,1]: strictly positive so a candidate with no
        # remaining neighbours always wins its (empty) comparison
        scores.build(cand_idx, rng.uniform(0.01, 1.0, len(cand_idx)))

        # best neighbouring score among candidates: nbr = A max.second scores
        nbr = Vector(FP64, n)
        vxm(nbr, None, None, MAX_SECOND[FP64], scores, A, None)

        nbr_dense = nbr.to_dense(0.0)
        score_dense = scores.to_dense(0.0)
        winners = candidates & (score_dense > nbr_dense)
        # ignore self-loops: a vertex's own score reflected back would
        # otherwise block it (score > score is false) — drop such blocks
        # only when no *other* neighbour beats it
        if not winners.any():
            # break ties deterministically: highest score among candidates
            best = cand_idx[np.argmax(score_dense[cand_idx])]
            winners[best] = True

        in_set |= winners
        # remove winners and their neighbours from the pool
        wv = Vector(BOOL, n)
        widx = np.nonzero(winners)[0]
        wv.build(widx, np.ones(len(widx), dtype=bool))
        nbrs = Vector(BOOL, n)
        vxm(nbrs, None, None, MAX_SECOND[BOOL], wv, A, None)
        removed = winners.copy()
        nidx, _ = nbrs.extract_tuples()
        removed[nidx] = True
        candidates &= ~removed

        for v in (scores, nbr, wv, nbrs):
            v.free()

    return np.nonzero(in_set)[0]
