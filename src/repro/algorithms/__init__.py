"""Graph algorithms composed from GraphBLAS primitives — the workloads the
paper's introduction motivates (traversal, centrality, components) plus the
batched-Brandes BC of section VII."""

from .bc import bc_update, betweenness_centrality, brandes_baseline
from .cores import core_numbers, k_core, k_truss, local_clustering_coefficient
from .bfs import bfs_levels, bfs_parents
from .closure import apsp, diameter, eccentricity, radius, transitive_closure
from .coloring import greedy_coloring
from .components import connected_components
from .mcl import markov_clustering
from .mis import maximal_independent_set
from .pagerank import pagerank
from .scc import is_dag, strongly_connected_components, topological_sort
from .sssp import sssp, sssp_delta_log
from .triangle import lower_triangle, triangle_count

__all__ = [
    "bc_update",
    "k_core",
    "core_numbers",
    "k_truss",
    "local_clustering_coefficient",
    "betweenness_centrality",
    "brandes_baseline",
    "bfs_levels",
    "bfs_parents",
    "sssp",
    "sssp_delta_log",
    "pagerank",
    "strongly_connected_components",
    "topological_sort",
    "is_dag",
    "triangle_count",
    "lower_triangle",
    "connected_components",
    "greedy_coloring",
    "transitive_closure",
    "apsp",
    "eccentricity",
    "diameter",
    "radius",
    "markov_clustering",
    "maximal_independent_set",
]
