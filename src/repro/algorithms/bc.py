"""Batched betweenness centrality — the paper's running example (section
VII, Fig. 3), transliterated call-for-call from the C listing.

``bc_update`` computes the BC contributions ``delta`` from a batch of
source vertices: a forward sweep of simultaneous BFS traversals counting
shortest paths (lines 39–46), then a backward sweep tallying dependencies
(lines 69–75).  Comments quote the figure's line numbers so the two can be
read side by side.

``betweenness_centrality`` runs batches over all (or sampled) sources and
sums the updates — over all sources this equals Brandes' exact BC, i.e.
``networkx.betweenness_centrality(G, normalized=False)`` on the digraph.
``brandes_baseline`` is the classical per-source queue-based Brandes
algorithm in plain Python, the non-GraphBLAS comparator for the Fig. 3
benchmark.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..algebra import PLUS_MONOID, PLUS_TIMES
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import ALL, INP0, MASK, OUTP, REPLACE, SCMP, TRAN, Descriptor
from ..info import DimensionMismatch, InvalidValue
from ..operations import (
    apply,
    ewise_add,
    ewise_mult,
    matrix_assign_scalar,
    matrix_extract,
    mxm,
    reduce_to_vector,
    vector_assign_scalar,
)
from ..ops import IDENTITY, MINV, PLUS, TIMES
from ..types import BOOL, FP32, FP64, INT32

__all__ = ["bc_update", "betweenness_centrality", "brandes_baseline"]


def bc_update(A: Matrix, s) -> Vector:
    """Fig. 3's ``BC_update``: BC contributions from source batch *s*.

    Parameters
    ----------
    A:
        n×n adjacency matrix of an unweighted digraph (stored 1 per edge).
    s:
        array of source vertex indices (the batch).

    Returns the FP32 vector ``delta`` of BC contributions.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("BC requires a square adjacency matrix")
    s = np.asarray(s, dtype=np.int64)
    nsver = len(s)
    if nsver == 0:
        raise InvalidValue("source batch must not be empty")

    n = A.nrows                                   # l.6: n = # of vertices
    delta = Vector(FP32, n)                       # l.7: Vector<float> delta(n)

    int32_add_mul = PLUS_TIMES[INT32]             # l.9-12: Int32Add/Int32AddMul

    desc_tsr = Descriptor()                       # l.14-18: desc_tsr
    desc_tsr.set(INP0, TRAN)
    desc_tsr.set(MASK, SCMP)
    desc_tsr.set(OUTP, REPLACE)

    # l.20-29: numsp holds discovered vertices / shortest-path counts,
    # initialized with numsp[s[i], i] = 1
    numsp = Matrix(INT32, n, nsver)
    numsp.build(s, np.arange(nsver), np.ones(nsver, np.int64), PLUS[INT32])

    # l.31-33: frontier initialized to the out-neighbours of each source,
    # via extract on Aᵀ with the complemented numsp mask
    frontier = Matrix(INT32, n, nsver)
    matrix_extract(frontier, numsp, None, A, ALL, s, desc_tsr)

    sigmas: list[Matrix] = []                     # l.36: BFS level frontiers
    d = 0                                         # l.37: BFS level number
    while True:                                   # l.39: forward sweep
        sigma_d = Matrix(BOOL, n, nsver)          # l.40
        # l.41: sigmas[d] = (Boolean) frontier
        apply(sigma_d, None, None, IDENTITY[BOOL], frontier, None)
        sigmas.append(sigma_d)
        # l.42: numsp += frontier
        ewise_add(numsp, None, None, PLUS[INT32], numsp, frontier, None)
        # l.43: f<!numsp> = Aᵀ +.* f
        mxm(frontier, numsp, None, int32_add_mul, A, frontier, desc_tsr)
        d += 1                                    # l.45
        if frontier.nvals() == 0:                 # l.44/46: while (nvals)
            break

    fp32_add_mul = PLUS_TIMES[FP32]               # l.48-53: FP32 semiring

    nspinv = Matrix(FP32, n, nsver)               # l.55-57: nspinv = 1./numsp
    apply(nspinv, None, None, MINV[FP32], numsp, None)

    bcu = Matrix(FP32, n, nsver)                  # l.59-61: bcu = all 1.0
    matrix_assign_scalar(bcu, None, None, 1.0, ALL, ALL, None)

    desc_r = Descriptor()                         # l.63-65: replace-only
    desc_r.set(OUTP, REPLACE)

    w = Matrix(FP32, n, nsver)                    # l.67-68: workspace
    for i in range(d - 1, 0, -1):                 # l.69: backward sweep
        # l.70: w<sigmas[i]> = (1 ./ nsp) .* bcu
        ewise_mult(w, sigmas[i], None, TIMES[FP32], bcu, nspinv, desc_r)
        # l.73: w<sigmas[i-1]> = (A +.* w)
        mxm(w, sigmas[i - 1], None, fp32_add_mul, A, w, desc_r)
        # l.74: bcu += w .* numsp
        ewise_mult(bcu, None, PLUS[FP32], TIMES[FP32], w, numsp, None)

    # l.77: delta filled with -nsver (1 extra per bcu element crept in)
    vector_assign_scalar(delta, None, None, -float(nsver), ALL, None)
    # l.78: delta += row-reduce(bcu)
    reduce_to_vector(delta, None, PLUS[FP32], PLUS[FP32], bcu, None)

    for sig in sigmas:                            # l.80-81: free resources
        sig.free()
    numsp.free()
    frontier.free()
    nspinv.free()
    bcu.free()
    w.free()
    return delta                                  # l.83


def betweenness_centrality(
    A: Matrix, batch_size: int = 32, sources=None
) -> np.ndarray:
    """Exact (or source-sampled) BC by summing batched updates.

    Over all sources this equals Brandes' algorithm; *sources* restricts to
    a sample (the standard approximation the batched formulation exists to
    accelerate).
    """
    n = A.nrows
    src = np.arange(n, dtype=np.int64) if sources is None else np.asarray(sources)
    total = np.zeros(n, dtype=np.float64)
    for lo in range(0, len(src), batch_size):
        batch = src[lo : lo + batch_size]
        delta = bc_update(A, batch)
        total += delta.to_dense(0.0).astype(np.float64)
        delta.free()
    return total


def brandes_baseline(A: Matrix, sources=None) -> np.ndarray:
    """Classical per-source Brandes BC on adjacency lists (no GraphBLAS).

    The O(mn) queue-based algorithm of [9], used as the comparison baseline
    in the Fig. 3 benchmark and as an independent oracle in tests.
    """
    n = A.nrows
    rows, cols, _ = A.extract_tuples()
    adj: list[list[int]] = [[] for _ in range(n)]
    for i, j in zip(rows, cols):
        adj[int(i)].append(int(j))
    src = range(n) if sources is None else [int(s) for s in sources]

    bc = np.zeros(n, dtype=np.float64)
    for s in src:
        sigma = np.zeros(n)
        dist = np.full(n, -1)
        sigma[s] = 1.0
        dist[s] = 0
        order: list[int] = []
        q = deque([s])
        while q:
            v = q.popleft()
            order.append(v)
            for w_ in adj[v]:
                if dist[w_] < 0:
                    dist[w_] = dist[v] + 1
                    q.append(w_)
                if dist[w_] == dist[v] + 1:
                    sigma[w_] += sigma[v]
        delta = np.zeros(n)
        for v in reversed(order):
            for w_ in adj[v]:
                if dist[w_] == dist[v] + 1 and sigma[w_] > 0:
                    delta[v] += sigma[v] / sigma[w_] * (1.0 + delta[w_])
            if v != s:
                bc[v] += delta[v]
    return bc
