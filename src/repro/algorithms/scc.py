"""Strongly connected components (forward-backward reachability) and
topological sorting (in-degree peeling).

SCC uses the classic FW-BW-trim scheme: pick a pivot in an unassigned
vertex set, compute its forward and backward reachable sets with masked
BFS sweeps (``vxm`` and the same sweep on the transpose descriptor), and
their intersection is the pivot's component; the three remainders recurse.
Every reachability step is a GraphBLAS frontier expansion; the worklist
bookkeeping is driver state, as in the LAGraph formulation.
"""

from __future__ import annotations

import numpy as np

from ..algebra import LOR_LAND
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import DESC_T1, Descriptor, INP1, TRAN
from ..info import DimensionMismatch, InvalidValue
from ..operations import vxm
from ..types import BOOL, INT64

__all__ = ["strongly_connected_components", "topological_sort", "is_dag"]


def _reachable(A: Matrix, start: np.ndarray, allowed: np.ndarray, backward: bool) -> np.ndarray:
    """Vertices of *allowed* reachable from *start* (start ⊆ allowed)."""
    n = A.nrows
    visited = np.zeros(n, dtype=bool)
    visited[start] = True
    frontier_idx = start
    desc = DESC_T1 if backward else None
    while len(frontier_idx):
        f = Vector(BOOL, n)
        f.build(frontier_idx, np.ones(len(frontier_idx), dtype=bool))
        nxt = Vector(BOOL, n)
        vxm(nxt, None, None, LOR_LAND[BOOL], f, A, desc)
        idx, _ = nxt.extract_tuples()
        f.free()
        nxt.free()
        fresh = idx[allowed[idx] & ~visited[idx]]
        visited[fresh] = True
        frontier_idx = fresh
    return np.nonzero(visited & allowed)[0]


def strongly_connected_components(A: Matrix) -> np.ndarray:
    """Component labels (smallest member id per SCC) for a digraph.

    Matches ``networkx.strongly_connected_components``.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("SCC requires a square adjacency matrix")
    n = A.nrows
    labels = np.full(n, -1, dtype=np.int64)
    worklist: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    while worklist:
        subset = worklist.pop()
        if len(subset) == 0:
            continue
        if len(subset) == 1:
            labels[subset[0]] = subset[0]
            continue
        allowed = np.zeros(n, dtype=bool)
        allowed[subset] = True
        pivot = np.array([subset[0]], dtype=np.int64)
        fw = _reachable(A, pivot, allowed, backward=False)
        bw = _reachable(A, pivot, allowed, backward=True)
        fw_set = np.zeros(n, dtype=bool)
        fw_set[fw] = True
        bw_set = np.zeros(n, dtype=bool)
        bw_set[bw] = True
        scc = subset[fw_set[subset] & bw_set[subset]]
        labels[scc] = scc.min()
        worklist.append(subset[fw_set[subset] & ~bw_set[subset]])
        worklist.append(subset[bw_set[subset] & ~fw_set[subset]])
        worklist.append(subset[~fw_set[subset] & ~bw_set[subset]])
    return labels


def topological_sort(A: Matrix) -> np.ndarray:
    """A topological order of the DAG *A* (edge i→j puts i before j).

    In-degree peeling: each round removes the zero-in-degree layer; the
    in-degrees come from a column reduce restricted to the surviving
    subgraph.  Raises ``InvalidValue`` if the graph has a cycle.
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("topological sort requires a square matrix")
    n = A.nrows
    alive = np.ones(n, dtype=bool)
    order: list[int] = []
    from ..algebra import PLUS_PAIR
    from ..operations import mxv

    while alive.any():
        alive_idx = np.nonzero(alive)[0]
        av = Vector(BOOL, n)
        av.build(alive_idx, np.ones(len(alive_idx), dtype=bool))
        indeg = Vector(INT64, n)
        # indeg(j) = |{i alive : A(i,j)}| — one transposed masked mxv
        d = Descriptor()
        from ..descriptor import INP0, MASK, OUTP, REPLACE, STRUCTURE

        d.set(INP0, TRAN)
        d.set(MASK, STRUCTURE)
        d.set(OUTP, REPLACE)
        mxv(indeg, av, None, PLUS_PAIR[INT64], A, av, d)
        deg_dense = indeg.to_dense(0)
        av.free()
        indeg.free()
        layer = alive_idx[deg_dense[alive_idx] == 0]
        if len(layer) == 0:
            raise InvalidValue("graph has a cycle: topological sort impossible")
        order.extend(sorted(int(v) for v in layer))
        alive[layer] = False
    return np.array(order, dtype=np.int64)


def is_dag(A: Matrix) -> bool:
    """True iff the digraph has no directed cycle."""
    try:
        topological_sort(A)
        return True
    except InvalidValue:
        return False
