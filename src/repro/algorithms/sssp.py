"""Single-source shortest paths over the min-plus (tropical) semiring —
Table I's "max-plus algebras" row mirrored for minimization.

The Bellman-Ford relaxation is one line of GraphBLAS:
``d ⊙min= d min.+ A`` — repeated until the distance vector reaches a fixed
point.  Stored elements are reachable vertices; unreachable ones stay
undefined (no +∞ bookkeeping, again the no-implied-zero payoff).
"""

from __future__ import annotations

import numpy as np

from ..algebra import MIN_PLUS
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..info import DimensionMismatch, InvalidValue
from ..operations import vxm
from ..ops import MIN
from ..types import FP64

__all__ = ["sssp", "sssp_delta_log"]


def sssp(A: Matrix, source: int, max_iters: int | None = None) -> Vector:
    """Bellman-Ford SSSP distances from *source* on edge-weight matrix *A*.

    Negative edge weights are allowed (no negative cycles — iteration is
    capped at n rounds, the Bellman-Ford bound, and raises if the vector is
    still improving, which certifies a negative cycle).
    """
    if A.nrows != A.ncols:
        raise DimensionMismatch("SSSP requires a square matrix")
    n = A.nrows
    d = Vector(FP64, n)
    d.set_element(int(source), 0.0)

    rounds = max_iters if max_iters is not None else n
    prev_idx, prev_vals = d.extract_tuples()
    for _ in range(rounds):
        # d = min(d, d min.+ A): the accumulator keeps already-settled
        # distances; vxm relaxes every out-edge of the current estimate
        vxm(d, None, MIN[FP64], MIN_PLUS[FP64], d, A, None)
        idx, vals = d.extract_tuples()
        if len(idx) == len(prev_idx) and np.array_equal(idx, prev_idx) and np.array_equal(vals, prev_vals):
            return d
        prev_idx, prev_vals = idx, vals
    if max_iters is None:
        # n relaxations without convergence ⇒ a negative cycle is reachable
        vxm(d, None, MIN[FP64], MIN_PLUS[FP64], d, A, None)
        idx, vals = d.extract_tuples()
        if not (np.array_equal(idx, prev_idx) and np.array_equal(vals, prev_vals)):
            raise InvalidValue("negative cycle reachable from source")
    return d


def sssp_delta_log(A: Matrix, source: int) -> list[int]:
    """Instrumented SSSP: nvals of the distance vector after each
    relaxation round (the frontier-growth series benchmarks plot)."""
    n = A.nrows
    d = Vector(FP64, n)
    d.set_element(int(source), 0.0)
    series = [d.nvals()]
    prev = d.extract_tuples()
    for _ in range(n):
        vxm(d, None, MIN[FP64], MIN_PLUS[FP64], d, A, None)
        cur = d.extract_tuples()
        series.append(len(cur[0]))
        if len(cur[0]) == len(prev[0]) and np.array_equal(cur[0], prev[0]) and np.array_equal(cur[1], prev[1]):
            break
        prev = cur
    return series
