"""Breadth-first search in the language of linear algebra.

Level BFS is the canonical GraphBLAS loop: a Boolean frontier vector is
pushed through the adjacency matrix with the ``LOR_LAND`` semiring, masked
by the complement of the visited set — the same masked-``vxm`` pattern the
paper's BC forward sweep batches across sources.

Parent BFS demonstrates the ``MIN_FIRST`` "select a parent" semiring and
the index-unary ``ROWINDEX`` operator.
"""

from __future__ import annotations

import numpy as np

from ..algebra import LOR_LAND, MIN_FIRST
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..descriptor import (
    ALL,
    MASK,
    OUTP,
    REPLACE,
    SCMP,
    STRUCTURE,
    Descriptor,
)
from ..info import DimensionMismatch
from ..operations import apply_index, vector_assign, vector_assign_scalar, vxm
from ..ops import ROWINDEX
from ..types import BOOL, INT32, INT64

__all__ = ["bfs_levels", "bfs_parents"]


def _check_square(A: Matrix) -> None:
    if A.nrows != A.ncols:
        raise DimensionMismatch("BFS requires a square adjacency matrix")


def bfs_levels(A: Matrix, source: int) -> Vector:
    """Levels of every vertex reachable from *source* (source = 0).

    Unreachable vertices have no stored element — undefined, not ∞;
    exactly the no-implied-zero semantics of section III-A.
    """
    _check_square(A)
    n = A.nrows
    levels = Vector(INT32, n)
    frontier = Vector(BOOL, n)
    frontier.set_element(int(source), True)

    # mask on the *structure* of levels: level 0 is a stored false-y value,
    # so a value mask would wrongly re-discover the source
    desc = Descriptor()
    desc.set(MASK, SCMP)
    desc.set(MASK, STRUCTURE)
    desc.set(OUTP, REPLACE)

    level = 0
    while frontier.nvals() > 0:
        # levels<frontier-structure> = level  (merge mode)
        sdesc = Descriptor()
        sdesc.set(MASK, STRUCTURE)
        vector_assign_scalar(levels, frontier, None, level, ALL, sdesc)
        # frontier<¬levels-structure> = frontier ∨.∧ A
        vxm(frontier, levels, None, LOR_LAND[BOOL], frontier, A, desc)
        level += 1
    return levels


def bfs_parents(A: Matrix, source: int) -> Vector:
    """BFS tree parents: ``parents(v)`` is the predecessor of v; the source
    is its own parent.  Ties resolve to the minimum-index parent via the
    ``MIN_FIRST`` semiring (deterministic, unlike the C API's ``ANY``)."""
    _check_square(A)
    n = A.nrows
    parents = Vector(INT64, n)
    parents.set_element(int(source), int(source))

    # frontier carries, at each discovered vertex, the id of its parent;
    # re-stamped to the vertex's own id before the next expansion
    frontier = Vector(INT64, n)
    frontier.set_element(int(source), int(source))

    desc = Descriptor()
    desc.set(MASK, SCMP)
    desc.set(MASK, STRUCTURE)
    desc.set(OUTP, REPLACE)

    while True:
        # next(j) = min over frontier i of frontier(i)  [FIRST selects u(i)]
        vxm(frontier, parents, None, MIN_FIRST[INT64], frontier, A, desc)
        if frontier.nvals() == 0:
            break
        # record parents for the newly discovered vertices (merge mode)
        sdesc = Descriptor()
        sdesc.set(MASK, STRUCTURE)
        vector_assign(parents, frontier, None, frontier, ALL, sdesc)
        # re-stamp the frontier with each vertex's own index
        apply_index(frontier, None, None, ROWINDEX, frontier, 0, None)
    return parents
