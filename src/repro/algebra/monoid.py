"""GraphBLAS monoids (paper section III-B, Fig. 1).

A monoid ``M = <D, ⊙, 0>`` is a single-domain associative binary operator
with an identity element.  Per the paper, a monoid is built from a binary
operator whose three domains coincide (``GrB_Monoid_new``); the identity is
supplied by the caller and *must* be the identity of the operator — we
verify this on a small probe set for built-in domains, which catches the
common misuse without claiming to prove the algebraic law.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..info import DomainMismatch, InvalidValue
from ..ops.base import BinaryOp
from ..types import GrBType, cast_scalar

__all__ = ["Monoid", "monoid_new"]


class Monoid:
    """``M = <D, ⊙, 0>``: an associative operator with identity over one domain."""

    __slots__ = ("name", "op", "identity", "terminal")

    def __init__(
        self,
        op: BinaryOp,
        identity: Any,
        *,
        name: str | None = None,
        terminal: Any = None,
        _check: bool = True,
    ):
        if not op.has_monoid_domains:
            raise DomainMismatch(
                f"monoid requires a binary op with one domain; {op.name} has "
                f"({op.d_in1.name}, {op.d_in2.name}) -> {op.d_out.name}"
            )
        if _check and not op.associative:
            # The paper requires an associative ⊙ (footnote 1 tolerates
            # IEEE-754).  User-defined ops must declare associative=True.
            raise InvalidValue(
                f"monoid requires an associative operator; {op.name} is not "
                "flagged associative"
            )
        self.name = name or f"{op.name}_MONOID"
        self.op = op
        self.identity = (
            identity
            if op.d_out.is_udt
            else cast_scalar(identity, op.d_out, op.d_out)
        )
        #: optional annihilator: once a reduction hits this value it cannot
        #: change (e.g. +inf for MAX); kernels may early-exit on it.
        self.terminal = terminal
        if _check and not op.d_out.is_udt:
            self._check_identity()

    @property
    def domain(self) -> GrBType:
        return self.op.d_out

    def _check_identity(self) -> None:
        dtype = self.domain.np_dtype
        if dtype.kind == "b":
            probes = np.array([False, True])
        elif dtype.kind in ("i", "u"):
            probes = np.array([0, 1, 2, 5], dtype=dtype)
        else:
            probes = np.array([0.0, 1.0, -3.5], dtype=dtype)
        ident = np.full(len(probes), self.identity, dtype=dtype)
        left = self.op.apply_arrays(ident, probes)
        right = self.op.apply_arrays(probes, ident)
        same = np.array_equal(left, probes) and np.array_equal(right, probes)
        if not same:
            raise InvalidValue(
                f"{self.identity!r} is not an identity of {self.op.name}"
            )

    def __call__(self, x: Any, y: Any) -> Any:
        return self.op(x, y)

    def reduce_array(self, values: np.ndarray) -> Any:
        """Fold an array of domain values (returns identity when empty)."""
        if len(values) == 0:
            return self.identity
        if self.op.ufunc is not None and values.dtype != np.dtype(object):
            # numpy promotes integer sums/products to 64 bits; the monoid's
            # arithmetic lives in its own domain, so fold back (for modular
            # ops, wrapping once at the end equals wrapping every step)
            return values.dtype.type(self.op.ufunc.reduce(values))
        acc = values[0]
        for v in values[1:]:
            acc = self.op(acc, v)
        return acc

    def __repr__(self) -> str:
        return f"Monoid({self.name}, identity={self.identity!r})"


def monoid_new(
    op: BinaryOp,
    identity: Any,
    *,
    name: str | None = None,
    terminal: Any = None,
) -> Monoid:
    """Create a monoid from a binary operator and its identity
    (``GrB_Monoid_new``, Table VI)."""
    return Monoid(op, identity, name=name, terminal=terminal)
