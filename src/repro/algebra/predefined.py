"""Predefined monoids and semirings, including every row of Table I.

Table I of the paper lists the semirings most used in graph algorithms:

=====================  =====  =====  ==============  =========  ===
Semiring               ⊕      ⊗      domain          0          1
=====================  =====  =====  ==============  =========  ===
standard arithmetic    ``+``  ``×``  reals           0          1
max-plus algebra       max    ``+``  reals ∪ {-∞}    -∞         0
min-max algebra        min    max    nonneg reals    +∞         0
Galois field GF(2)     xor    and    {0, 1}          0          1
power-set algebra      ∪      ∩      P(Z)            ∅          U
=====================  =====  =====  ==============  =========  ===

All of them (and the wider set the GraphBLAS community predefines, e.g.
``MIN_PLUS`` for SSSP, ``LOR_LAND`` for reachability, ``PLUS_PAIR`` for
triangle counting) are constructed here as :class:`OpFamily`-style maps
indexed by domain, plus the power-set semiring over a user-defined
frozenset domain.
"""

from __future__ import annotations

import numpy as np

from ..info import InvalidValue
from ..ops import binary
from ..ops.base import BinaryOp, OpFamily
from ..types import (
    BOOL,
    BUILTIN_TYPES,
    FLOAT_TYPES,
    INTEGER_TYPES,
    GrBType,
    type_new,
)
from .monoid import Monoid
from .semiring import Semiring

__all__ = [
    "PLUS_MONOID",
    "TIMES_MONOID",
    "MIN_MONOID",
    "MAX_MONOID",
    "LAND_MONOID",
    "LOR_MONOID",
    "LXOR_MONOID",
    "LXNOR_MONOID",
    "BOR_MONOID",
    "BAND_MONOID",
    "BXOR_MONOID",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_PLUS",
    "MIN_TIMES",
    "MAX_TIMES",
    "MIN_MAX",
    "MAX_MIN",
    "PLUS_MIN",
    "PLUS_MAX",
    "MIN_FIRST",
    "MIN_SECOND",
    "MAX_FIRST",
    "MAX_SECOND",
    "PLUS_FIRST",
    "PLUS_SECOND",
    "PLUS_PAIR",
    "LOR_LAND",
    "LAND_LOR",
    "LXOR_LAND",
    "EQ_EQ",
    "monoid",
    "semiring",
    "MONOID_REGISTRY",
    "SEMIRING_REGISTRY",
    "powerset_type",
    "powerset_semiring",
    "TABLE1_SEMIRINGS",
]

MONOID_REGISTRY: dict[str, Monoid] = {}
SEMIRING_REGISTRY: dict[str, Semiring] = {}


def _domain_min(t: GrBType):
    if t is BOOL:
        return False
    if t in FLOAT_TYPES:
        return -np.inf
    return np.iinfo(t.np_dtype).min


def _domain_max(t: GrBType):
    if t is BOOL:
        return True
    if t in FLOAT_TYPES:
        return np.inf
    return np.iinfo(t.np_dtype).max


def _monoid_family(
    name: str,
    op_family: OpFamily | BinaryOp,
    identity_of,
    terminal_of=None,
    domains: tuple[GrBType, ...] = BUILTIN_TYPES,
) -> dict[GrBType, Monoid]:
    fam: dict[GrBType, Monoid] = {}
    for t in domains:
        op = op_family if isinstance(op_family, BinaryOp) else op_family[t]
        short = t.name.removeprefix("GrB_")
        m = Monoid(
            op,
            identity_of(t),
            name=f"GrB_{name}_MONOID_{short}",
            terminal=None if terminal_of is None else terminal_of(t),
        )
        MONOID_REGISTRY[m.name] = m
        fam[t] = m
    return fam


# --------------------------------------------------------------------------
# Monoid families
# --------------------------------------------------------------------------

PLUS_MONOID = _monoid_family("PLUS", binary.PLUS, lambda t: False if t is BOOL else 0)
TIMES_MONOID = _monoid_family(
    "TIMES",
    binary.TIMES,
    lambda t: True if t is BOOL else 1,
    terminal_of=lambda t: (False if t is BOOL else (0 if t in INTEGER_TYPES else None)),
)
MIN_MONOID = _monoid_family("MIN", binary.MIN, _domain_max, terminal_of=_domain_min)
MAX_MONOID = _monoid_family("MAX", binary.MAX, _domain_min, terminal_of=_domain_max)

LAND_MONOID = _monoid_family(
    "LAND", binary.LAND, lambda t: True, terminal_of=lambda t: False, domains=(BOOL,)
)
LOR_MONOID = _monoid_family(
    "LOR", binary.LOR, lambda t: False, terminal_of=lambda t: True, domains=(BOOL,)
)
LXOR_MONOID = _monoid_family("LXOR", binary.LXOR, lambda t: False, domains=(BOOL,))
LXNOR_MONOID = _monoid_family("LXNOR", binary.LXNOR, lambda t: True, domains=(BOOL,))

BOR_MONOID = _monoid_family(
    "BOR", binary.BOR, lambda t: 0, domains=INTEGER_TYPES
)
BAND_MONOID = _monoid_family(
    "BAND",
    binary.BAND,
    lambda t: np.iinfo(t.np_dtype).max
    if t.np_dtype.kind == "u"
    else np.int64(-1).astype(t.np_dtype)[()],
    domains=INTEGER_TYPES,
)
BXOR_MONOID = _monoid_family("BXOR", binary.BXOR, lambda t: 0, domains=INTEGER_TYPES)


# --------------------------------------------------------------------------
# Semiring families
# --------------------------------------------------------------------------

def _semiring_family(
    name: str,
    add_family: dict[GrBType, Monoid],
    mul_family: OpFamily | BinaryOp,
    domains: tuple[GrBType, ...] | None = None,
) -> dict[GrBType, Semiring]:
    fam: dict[GrBType, Semiring] = {}
    if domains is None:
        domains = tuple(t for t in BUILTIN_TYPES if t in add_family)
    for t in domains:
        mul = mul_family if isinstance(mul_family, BinaryOp) else mul_family[t]
        short = t.name.removeprefix("GrB_")
        s = Semiring(
            add_family[t], mul, name=f"GrB_{name}_SEMIRING_{short}"
        )
        SEMIRING_REGISTRY[s.name] = s
        fam[t] = s
    return fam


PLUS_TIMES = _semiring_family("PLUS_TIMES", PLUS_MONOID, binary.TIMES)
MIN_PLUS = _semiring_family("MIN_PLUS", MIN_MONOID, binary.PLUS)
MAX_PLUS = _semiring_family("MAX_PLUS", MAX_MONOID, binary.PLUS)
MIN_TIMES = _semiring_family("MIN_TIMES", MIN_MONOID, binary.TIMES)
MAX_TIMES = _semiring_family("MAX_TIMES", MAX_MONOID, binary.TIMES)
MIN_MAX = _semiring_family("MIN_MAX", MIN_MONOID, binary.MAX)
MAX_MIN = _semiring_family("MAX_MIN", MAX_MONOID, binary.MIN)
PLUS_MIN = _semiring_family("PLUS_MIN", PLUS_MONOID, binary.MIN)
PLUS_MAX = _semiring_family("PLUS_MAX", PLUS_MONOID, binary.MAX)
MIN_FIRST = _semiring_family("MIN_FIRST", MIN_MONOID, binary.FIRST)
MIN_SECOND = _semiring_family("MIN_SECOND", MIN_MONOID, binary.SECOND)
MAX_FIRST = _semiring_family("MAX_FIRST", MAX_MONOID, binary.FIRST)
MAX_SECOND = _semiring_family("MAX_SECOND", MAX_MONOID, binary.SECOND)
PLUS_FIRST = _semiring_family("PLUS_FIRST", PLUS_MONOID, binary.FIRST)
PLUS_SECOND = _semiring_family("PLUS_SECOND", PLUS_MONOID, binary.SECOND)
PLUS_PAIR = _semiring_family("PLUS_PAIR", PLUS_MONOID, binary.PAIR)

LOR_LAND = _semiring_family("LOR_LAND", LOR_MONOID, binary.LAND, domains=(BOOL,))
LAND_LOR = _semiring_family("LAND_LOR", LAND_MONOID, binary.LOR, domains=(BOOL,))
#: GF(2): ⊕ = xor, ⊗ = and — Table I row 4.
LXOR_LAND = _semiring_family("LXOR_LAND", LXOR_MONOID, binary.LAND, domains=(BOOL,))
EQ_EQ = _semiring_family("EQ_EQ", LXNOR_MONOID, binary.LXNOR, domains=(BOOL,))


# --------------------------------------------------------------------------
# Power-set algebra (Table I row 5) — a user-defined-type semiring
# --------------------------------------------------------------------------

def powerset_type() -> GrBType:
    """The UDT domain P(Z): values are ``frozenset`` instances."""
    return type_new("PowerSet", frozenset)


def powerset_semiring(
    universe: frozenset | None = None, domain: GrBType | None = None
) -> Semiring:
    """Build the ``<P(Z), ∪, ∩, ∅, U>`` semiring of Table I.

    ``universe`` is the multiplicative identity *U*; it is only needed when
    callers want ``1`` explicitly (the GraphBLAS semiring does not require
    one — exactly the point the paper makes about Fig. 1).
    """
    pset = domain or powerset_type()
    union = BinaryOp(
        "PSET_UNION",
        pset,
        pset,
        pset,
        scalar_fn=lambda x, y: x | y,
        commutative=True,
        associative=True,
    )
    intersect = BinaryOp(
        "PSET_INTERSECT",
        pset,
        pset,
        pset,
        scalar_fn=lambda x, y: x & y,
        commutative=True,
        associative=True,
    )
    del universe  # the multiplicative identity U is not part of the object —
    # exactly the point the paper makes about Fig. 1's hierarchy.
    add = Monoid(union, frozenset(), name="PSET_UNION_MONOID")
    return Semiring(add, intersect, name="PSET_UNION_INTERSECT_SEMIRING")


#: The five Table I rows, as (label, semiring, domain-note, one-note).
TABLE1_SEMIRINGS = [
    ("standard arithmetic", lambda: PLUS_TIMES[FLOAT_TYPES[1]], "R", "1"),
    ("max-plus algebra", lambda: MAX_PLUS[FLOAT_TYPES[1]], "R ∪ {-inf}", "0"),
    ("min-max algebra", lambda: MIN_MAX[FLOAT_TYPES[1]], "R>=0 ∪ {inf}", "0"),
    ("Galois field GF(2)", lambda: LXOR_LAND[BOOL], "{0,1}", "1"),
    ("power set algebra", powerset_semiring, "P(Z)", "U"),
]


def monoid(name: str) -> Monoid:
    """Look up a predefined monoid, e.g. ``"GrB_PLUS_MONOID_INT32"``."""
    for candidate in (name, f"GrB_{name}", f"GxB_{name}"):
        if candidate in MONOID_REGISTRY:
            return MONOID_REGISTRY[candidate]
    raise InvalidValue(f"unknown monoid {name!r}")


def semiring(name: str) -> Semiring:
    """Look up a predefined semiring, e.g. ``"GrB_PLUS_TIMES_SEMIRING_FP32"``."""
    for candidate in (name, f"GrB_{name}", f"GxB_{name}"):
        if candidate in SEMIRING_REGISTRY:
            return SEMIRING_REGISTRY[candidate]
    raise InvalidValue(f"unknown semiring {name!r}")
