"""GraphBLAS semirings (paper section III-B, Fig. 1).

``S = <D1, D2, D3, ⊕, ⊗, 0>``: an *additive* monoid ``<D3, ⊕, 0>`` paired
with a *multiplicative* binary operator ``⊗ : D1 × D2 → D3``.  As the paper
notes, this differs from a textbook semiring: the inputs of ⊗ may come from
different domains, and no multiplicative identity is required
(``GrB_Semiring_new`` takes only a monoid and a binary op).
"""

from __future__ import annotations

from typing import Any

from ..info import DomainMismatch
from ..ops.base import BinaryOp
from ..types import GrBType
from .monoid import Monoid

__all__ = ["Semiring", "semiring_new"]


class Semiring:
    """``S = <M, F>``: additive monoid plus multiplicative binary operator."""

    __slots__ = ("name", "add", "mul")

    def __init__(self, add: Monoid, mul: BinaryOp, *, name: str | None = None):
        if not (mul.d_out is add.domain or mul.d_out == add.domain):
            raise DomainMismatch(
                f"semiring: multiply output domain {mul.d_out.name} does not "
                f"match additive monoid domain {add.domain.name}"
            )
        self.add = add
        self.mul = mul
        self.name = name or f"{add.op.name}_{mul.name}_SEMIRING"

    # -- accessors mirroring the paper's <D1,D2,D3,⊕,⊗,0> tuple --------------
    @property
    def d_in1(self) -> GrBType:
        return self.mul.d_in1

    @property
    def d_in2(self) -> GrBType:
        return self.mul.d_in2

    @property
    def d_out(self) -> GrBType:
        return self.add.domain

    @property
    def zero(self) -> Any:
        """The additive identity — the semiring's *implied zero* (section II)."""
        return self.add.identity

    @property
    def add_op(self) -> BinaryOp:
        return self.add.op

    def __repr__(self) -> str:
        return (
            f"Semiring({self.name}: <{self.d_in1.name}, {self.d_in2.name}, "
            f"{self.d_out.name}, {self.add.op.name}, {self.mul.name}, "
            f"{self.zero!r}>)"
        )


def semiring_new(add: Monoid, mul: BinaryOp, *, name: str | None = None) -> Semiring:
    """Create a semiring from a monoid and a binary operator
    (``GrB_Semiring_new``, Table VI)."""
    return Semiring(add, mul, name=name)
