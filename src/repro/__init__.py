"""repro — a Python reproduction of the GraphBLAS C API design.

Implements the objects, operations, execution model, and error model of
*"Design of the GraphBLAS API for C"* (Buluç, Mattson, McMillan, Moreira,
Yang — GABB @ IPDPS 2017): opaque :class:`Vector`/:class:`Matrix`
collections, user-composable monoids and semirings, write-masks with
structural complement, accumulators, descriptors, blocking/nonblocking
execution with deferred sequences, and the two-class error model.

Quick start::

    import repro as grb

    A = grb.Matrix.from_coo(grb.INT32, 4, 4, [0,1,2,3], [1,2,3,0], [1]*4)
    w = grb.Vector(grb.INT32, 4)
    u = grb.Vector.from_coo(grb.INT32, 4, [0], [1])
    grb.mxv(w, None, None, grb.PLUS_TIMES[grb.INT32], A, u, grb.DESC_T0)
    print(w.extract_tuples())

Higher-level graph algorithms built on the API live in
:mod:`repro.algorithms`; graph generators and Matrix Market I/O in
:mod:`repro.io`; a spec-literal reference implementation (the test oracle
and benchmark baseline) in :mod:`repro.reference`.
"""

from . import algebra, algorithms, io, obs, ops, reference, types, utils, validation
from .algebra import (
    EQ_EQ,
    LAND_MONOID,
    LOR_LAND,
    LOR_MONOID,
    LXOR_LAND,
    LXOR_MONOID,
    MAX_MIN,
    MAX_MONOID,
    MAX_PLUS,
    MAX_SECOND,
    MAX_TIMES,
    MIN_FIRST,
    MIN_MAX,
    MIN_MONOID,
    MIN_PLUS,
    MIN_SECOND,
    MIN_TIMES,
    Monoid,
    PLUS_MIN,
    PLUS_MONOID,
    PLUS_PAIR,
    PLUS_TIMES,
    Semiring,
    TIMES_MONOID,
    monoid,
    monoid_new,
    powerset_semiring,
    powerset_type,
    semiring,
    semiring_new,
)
from .containers import Matrix, Scalar, Vector, matrix_new, scalar_new, vector_new
from .context import (
    Mode,
    complete,
    current_mode,
    error,
    finalize,
    init,
    queue_stats,
    wait,
)
from .descriptor import (
    ALL,
    DESC_R,
    DESC_RSC,
    DESC_SC,
    DESC_T0,
    DESC_T0T1,
    DESC_T1,
    DESC_TSR,
    INP0,
    INP1,
    MASK,
    NULL,
    OUTP,
    REPLACE,
    SCMP,
    STRUCTURE,
    TRAN,
    Descriptor,
    descriptor_new,
    descriptor_set,
)
from .info import (
    ApiError,
    DimensionMismatch,
    DomainMismatch,
    ExecutionError,
    GraphBLASError,
    IndexOutOfBounds,
    Info,
    InvalidIndex,
    InvalidObject,
    InvalidValue,
    NoValue,
    NullPointer,
    OutputNotEmpty,
    UninitializedObject,
)
from .operations import (
    apply,
    ewise_union,
    reduce_scalar_object,
    apply_bind_first,
    apply_bind_second,
    apply_index,
    assign,
    col_assign,
    col_extract,
    eWiseAdd,
    eWiseMult,
    ewise_add,
    ewise_mult,
    extract,
    kronecker,
    matrix_assign,
    matrix_assign_scalar,
    matrix_extract,
    mxm,
    mxv,
    reduce,
    reduce_to_scalar,
    reduce_to_vector,
    row_assign,
    select,
    transpose,
    vector_assign,
    vector_assign_scalar,
    vector_extract,
    vxm,
)
from .ops import (
    ABS,
    AINV,
    DIV,
    EQ,
    FIRST,
    GE,
    GT,
    IDENTITY,
    LAND,
    LE,
    LNOT,
    LOR,
    LT,
    LXOR,
    MAX,
    MIN,
    MINUS,
    MINV,
    NE,
    ONE,
    PAIR,
    PLUS,
    SECOND,
    TIMES,
    TRIL,
    TRIU,
    BinaryOp,
    IndexUnaryOp,
    UnaryOp,
    binary_op,
    binary_op_new,
    index_unary_op,
    index_unary_op_new,
    unary_op,
    unary_op_new,
)
from .types import (
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    GrBType,
    type_new,
)

# imported last: the planner's runners reach back into repro.operations
from .execution import planner

__version__ = "1.0.0"
