"""Descriptors and the literal constants of Table V (paper section III-C).

A descriptor is "a lightweight object [that] pairs a set of flags
representing the possible modifiers with each mask, vector, or matrix
argument of a GraphBLAS method".  Fields name the method argument
(``OUTP``/``MASK``/``INP0``/``INP1``); values select the modifier
(``REPLACE``/``SCMP``/``TRAN``, plus the ``STRUCTURE`` mask extension).
"""

from __future__ import annotations

import enum

from .info import InvalidValue, NullPointer, UninitializedObject

__all__ = [
    "Field",
    "Value",
    "Descriptor",
    "descriptor_new",
    "descriptor_set",
    "OUTP",
    "MASK",
    "INP0",
    "INP1",
    "REPLACE",
    "SCMP",
    "TRAN",
    "STRUCTURE",
    "ALL",
    "NULL",
    "DESC_T0",
    "DESC_T1",
    "DESC_T0T1",
    "DESC_R",
    "DESC_SC",
    "DESC_RSC",
    "DESC_TSR",
]


class Field(enum.Enum):
    """Descriptor field: which argument of the method the value modifies."""

    OUTP = "GrB_OUTP"
    MASK = "GrB_MASK"
    INP0 = "GrB_INP0"
    INP1 = "GrB_INP1"


class Value(enum.Enum):
    """Descriptor values (Table V)."""

    #: clear the output object before the masked result is stored (replace mode)
    REPLACE = "GrB_REPLACE"
    #: use the structural complement of the mask
    SCMP = "GrB_SCMP"
    #: use the transpose of the corresponding input matrix
    TRAN = "GrB_TRAN"
    #: (extension) use only the mask's structure, ignoring stored values
    STRUCTURE = "GrB_STRUCTURE"


OUTP = Field.OUTP
MASK = Field.MASK
INP0 = Field.INP0
INP1 = Field.INP1
REPLACE = Value.REPLACE
SCMP = Value.SCMP
TRAN = Value.TRAN
STRUCTURE = Value.STRUCTURE

#: ``GrB_ALL`` — "all of an object's indices in order" (Table V).
ALL = type("GrB_ALL", (), {"__repr__": lambda self: "GrB_ALL"})()

#: ``GrB_NULL`` — "null value used to indicate when a parameter is not
#: provided and a default behavior should be used" (Table V).  Python's
#: ``None`` plays the same role; this alias keeps transliterated C code
#: readable.
NULL = None

_VALID = {
    Field.OUTP: {Value.REPLACE},
    Field.MASK: {Value.SCMP, Value.STRUCTURE},
    Field.INP0: {Value.TRAN},
    Field.INP1: {Value.TRAN},
}


class Descriptor:
    """An opaque set of (field, value) modifier pairs.

    Multiple values may be set on the MASK field (``SCMP`` and ``STRUCTURE``
    compose); the other fields hold at most their single valid value.
    """

    __slots__ = ("_flags", "_valid")

    def __init__(self):
        self._flags: dict[Field, set[Value]] = {f: set() for f in Field}
        self._valid = True

    def set(self, field: Field, value: Value) -> "Descriptor":
        """``GrB_Descriptor_set`` (Table VI).  Returns self for chaining."""
        if not self._valid:
            raise UninitializedObject("descriptor has been freed")
        if not isinstance(field, Field):
            raise InvalidValue(f"{field!r} is not a descriptor field")
        if not isinstance(value, Value):
            raise InvalidValue(f"{value!r} is not a descriptor value")
        if value not in _VALID[field]:
            raise InvalidValue(
                f"value {value.value} is not valid for field {field.value}"
            )
        self._flags[field].add(value)
        return self

    def is_set(self, field: Field, value: Value) -> bool:
        if not self._valid:
            raise UninitializedObject("descriptor has been freed")
        return value in self._flags[field]

    # convenience accessors used by the operations
    @property
    def replace(self) -> bool:
        return self.is_set(Field.OUTP, Value.REPLACE)

    @property
    def mask_complement(self) -> bool:
        return self.is_set(Field.MASK, Value.SCMP)

    @property
    def mask_structure(self) -> bool:
        return self.is_set(Field.MASK, Value.STRUCTURE)

    @property
    def transpose0(self) -> bool:
        return self.is_set(Field.INP0, Value.TRAN)

    @property
    def transpose1(self) -> bool:
        return self.is_set(Field.INP1, Value.TRAN)

    def free(self) -> None:
        self._valid = False

    def __repr__(self) -> str:
        parts = [
            f"{f.value}={{{','.join(v.value for v in vs)}}}"
            for f, vs in self._flags.items()
            if vs
        ]
        return f"Descriptor({', '.join(parts) or 'default'})"


def descriptor_new() -> Descriptor:
    """``GrB_Descriptor_new`` (Table VI): create an empty descriptor."""
    return Descriptor()


def descriptor_set(desc: Descriptor, field: Field, value: Value) -> None:
    """``GrB_Descriptor_set`` free-function form, as in Fig. 3 lines 16-18."""
    if desc is None:
        raise NullPointer("descriptor is GrB_NULL")
    desc.set(field, value)


def _preset(*pairs: tuple[Field, Value]) -> Descriptor:
    d = Descriptor()
    for f, v in pairs:
        d.set(f, v)
    return d


# Common preset descriptors (the C API ships these as GrB_DESC_* constants).
DESC_T0 = _preset((INP0, TRAN))
DESC_T1 = _preset((INP1, TRAN))
DESC_T0T1 = _preset((INP0, TRAN), (INP1, TRAN))
DESC_R = _preset((OUTP, REPLACE))
DESC_SC = _preset((MASK, SCMP))
DESC_RSC = _preset((OUTP, REPLACE), (MASK, SCMP))
#: The BC example's ``desc_tsr`` (Fig. 3 lines 14-18): transpose INP0,
#: complement the mask, replace the output.
DESC_TSR = _preset((INP0, TRAN), (MASK, SCMP), (OUTP, REPLACE))


def effective(desc: Descriptor | None) -> Descriptor:
    """Resolve ``GrB_NULL`` to the default (empty) descriptor."""
    return desc if desc is not None else _DEFAULT


_DEFAULT = Descriptor()
