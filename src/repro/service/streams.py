"""Service-side streaming state: incremental handles over shared graphs.

One :class:`StreamState` per service.  It owns the incremental-algorithm
handles (:mod:`repro.stream.incremental`) maintained for shared graphs and
keeps them in lock-step with the snapshot store:

* a ``stream_mutate`` request notes its in-flight flush at issue time;
* when the writer publishes, :meth:`on_publish` resolves the flush's
  :class:`~repro.stream.delta.EdgeDelta` (the batch drain already ran) and
  **advances every handle of the mutated graph eagerly** — the handle's
  state always corresponds to the *current* snapshot version, so there is
  nothing to retain per old version and memory stays bounded no matter how
  fast publishes storm;
* a non-stream mutation of a name (point update, re-define, free, program
  write) has no delta, so its handles are dropped and rebuilt lazily;
* a reader request serves from a handle only when its pinned version id
  equals the handle's — anything older falls back to the normal
  from-scratch path.

Handles are advanced/served under one lock: the writer advancing a handle
and a reader extracting its result never interleave.
"""

from __future__ import annotations

import threading
from typing import Any

from ..obs import metrics
from ..stream.incremental import make_handle

__all__ = ["StreamState", "STREAMABLE_ALGOS"]

#: algorithms with an incremental handle implementation
STREAMABLE_ALGOS = frozenset(("pagerank", "bfs_levels", "connected_components"))


def _args_key(args: dict | None) -> tuple:
    try:
        return tuple(sorted((str(k), v) for k, v in (args or {}).items()))
    except TypeError:
        return ("__unhashable__",)


class _Handle:
    __slots__ = ("impl", "vid")

    def __init__(self, impl, vid: int):
        self.impl = impl
        self.vid = vid


class StreamState:
    """Incremental handles + in-flight flush notes for the shared store."""

    def __init__(self, max_handles: int = 32):
        self._mu = threading.Lock()
        self.max_handles = max_handles
        #: (graph name, algo, args key) → _Handle
        self._handles: dict[tuple, _Handle] = {}
        #: flushes issued by the in-flight writer request, resolved at publish
        self._pending: list[tuple[str, Any]] = []
        self.advanced = 0
        self.dropped = 0
        self.created = 0
        self.served = 0

    # -------------------------------------------------------------- writer
    def note_flush(self, name: str, flush_result) -> None:
        """Record an issued (still possibly deferred) stream flush."""
        with self._mu:
            self._pending.append((name, flush_result))

    def on_abort(self) -> None:
        """The writer request failed; its flush never publishes."""
        with self._mu:
            self._pending.clear()

    def on_publish(self, version, changed: set[str]) -> dict[str, int]:
        """Advance/drop handles for one publication.

        *version* is the freshly published
        :class:`~repro.service.snapshot.GraphVersion`; *changed* the names
        whose objects differ from the previous version (identity compare —
        copy-on-write preserves identity for untouched names).  Returns
        ``{name: delta_size}`` for the stream-flushed names (the memo layer
        reports them in timing meta).
        """
        reg = metrics.registry
        with self._mu:
            pending, self._pending = self._pending, []
            deltas: dict[str, Any] = {}
            for name, fr in pending:
                # the publish path drained the batch, so the rebuild ran
                if fr.ready:
                    deltas[name] = fr.delta
            sizes: dict[str, int] = {}
            for key in list(self._handles):
                name = key[0]
                if name not in changed:
                    # copy-on-write: an untouched name is the same object,
                    # so the handle's state is valid for the new version too
                    self._handles[key].vid = version.vid
                    continue
                delta = deltas.get(name)
                obj = version.objects.get(name)
                h = self._handles[key]
                if delta is None or obj is None:
                    # mutated outside the stream path (or freed): no delta
                    # to advance over — drop, rebuild lazily on next read
                    del self._handles[key]
                    self.dropped += 1
                    reg.inc("stream.handle.dropped")
                    continue
                try:
                    h.impl.update(obj, delta)
                except Exception:
                    del self._handles[key]
                    self.dropped += 1
                    reg.inc("stream.handle.dropped")
                    continue
                h.vid = version.vid
                self.advanced += 1
                reg.inc("stream.handle.advanced")
            for name, delta in deltas.items():
                sizes[name] = delta.size
            return sizes

    # -------------------------------------------------------------- readers
    def serve(
        self, name: str, algo: str, args: dict | None, vid: int, graph,
        current_vid: int,
    ):
        """Result for (*name*, *algo*, *args*) at snapshot *vid*, or None.

        Creates the handle on first use — but only when *vid* is the
        store's current version, so every later publish (each of which
        passes through :meth:`on_publish`) advances it without gaps.  A
        pinned version older than the handle's state cannot be served
        incrementally and returns None (normal full execution follows).
        """
        if algo not in STREAMABLE_ALGOS:
            return None
        key = (name, algo, _args_key(args))
        reg = metrics.registry
        with self._mu:
            h = self._handles.get(key)
            if h is None:
                if vid != current_vid or len(self._handles) >= self.max_handles:
                    return None
                impl = make_handle(algo, graph, args)
                if impl is None:
                    return None
                self._handles[key] = h = _Handle(impl, vid)
                self.created += 1
                reg.inc("stream.handle.created")
            elif h.vid != vid:
                return None
            self.served += 1
            reg.inc("stream.handle.served")
            return h.impl.result()

    # ---------------------------------------------------------------- intro
    def stats(self) -> dict:
        with self._mu:
            return {
                "handles": len(self._handles),
                "created": self.created,
                "advanced": self.advanced,
                "dropped": self.dropped,
                "served": self.served,
            }
