"""The request model: what clients may ask the service to do.

A request is plain data — a *kind* plus a JSON-able payload — so the same
model serves the in-process :class:`~repro.service.client.Client` and the
JSON-lines TCP front-end without translation.  Programs reuse the fuzzer's
declarative :class:`~repro.fuzz.program.Call` representation verbatim: a
client-submitted program is exactly a fuzz program body executed against
the session's named objects, which keeps the served operation surface and
the conformance-tested surface one and the same.

Data kinds (queued per session, executed by the worker pool):

=============  ==============================================================
``define``     create a named Matrix/Vector from a declarative payload
               (``kind``/``dtype``/``shape``/``entries``)
``upload``     create a named object from a serialized blob (``blob``)
``download``   serialize a named object (result carries ``blob`` bytes)
``program``    run a sequence of Table II calls (``calls``; optional
               ``declare`` for new outputs, ``fetch`` to return contents)
``algorithm``  run a registered graph algorithm (``algo``, ``graph``,
               optional ``args`` and ``store_as``)
``update``     point graph mutation: ``set`` / ``remove`` edge lists applied
               one element at a time
``stream_mutate``  batched streaming mutation: ``set`` / ``remove`` edge
               lists buffered through :class:`repro.stream.EdgeBuffer` and
               rebuilt as one deferred planner op; on the shared session
               the publish carries the edge delta to incremental handles
``query``      read ``nvals`` / ``tuples`` / ``element`` of a named object
``free``       drop a named object
=============  ==============================================================

Admin kinds (``open_session``, ``close_session``, ``metrics``, ``stats``,
``health``, ``validate``, ``ping``) are executed synchronously by the
service, outside the admission pipeline.

Every admitted request carries a :class:`~repro.obs.tracing.TraceContext`
— minted at admission when the client did not supply one — and an opt-in
``timing`` flag; when set, the response gains a ``timing`` dict with the
request's queue-wait / issue / drain-share latency decomposition.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from ..obs.tracing import TraceContext
from .errors import BadRequest

__all__ = ["Request", "DATA_KINDS", "ADMIN_KINDS", "new_request"]

DATA_KINDS = frozenset(
    ("define", "upload", "download", "program", "algorithm", "update",
     "stream_mutate", "query", "free")
)
ADMIN_KINDS = frozenset(
    ("open_session", "close_session", "metrics", "stats", "health",
     "validate", "ping", "dump", "explain")
)

_ids = itertools.count(1)
_ids_lock = threading.Lock()


@dataclass
class Request:
    """One admitted unit of work, tracked from submission to completion."""

    rid: int
    session: str
    kind: str
    payload: dict
    #: absolute ``time.monotonic`` deadline, or None
    deadline: float | None
    future: Future = field(default_factory=Future)
    #: submission instant (monotonic) — latency is measured from here
    t_submit: float = 0.0
    #: instant a worker began executing the batch containing this request
    t_start: float = 0.0
    #: request identity for span provenance and drain accounting
    trace: TraceContext | None = None
    #: include the latency decomposition in the response dict
    timing: bool = False
    #: include the drain-time planner's EXPLAIN record in the response
    explain: bool = False
    #: shared-store :class:`~repro.service.snapshot.GraphVersion` pinned at
    #: admission (None for shared-session requests, which see live state)
    version: Any = None
    #: :class:`~repro.service.memo.CacheDecision` precomputed at admission —
    #: analysis is pure in ``(kind, payload)``, so the submitting thread does
    #: it instead of the worker's serialized issue loop
    memo_decision: Any = None
    #: the store that pinned ``version`` (unpin goes back to it)
    _snapshots: Any = None

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline

    def pin_version(self, snapshots) -> None:
        """Pin the current shared-store version to this request."""
        self.version = snapshots.pin()
        self._snapshots = snapshots

    def release_version(self) -> None:
        """Unpin the admitted version (idempotent — every completion path
        calls this, including failure and shutdown paths)."""
        if self.version is not None and self._snapshots is not None:
            self._snapshots.unpin(self.version)
            self.version = None
            self._snapshots = None


def new_request(
    session: str,
    kind: str,
    payload: dict | None = None,
    *,
    timeout: float | None = None,
    trace: TraceContext | None = None,
    timing: bool = False,
    explain: bool = False,
) -> Request:
    """Build a :class:`Request`, validating the kind eagerly.

    *timeout* is a relative per-request deadline in seconds; admission and
    execution both honour it.  *trace* propagates a client-minted
    :class:`TraceContext`; when absent one is minted here so every admitted
    request is attributable.
    """
    if kind not in DATA_KINDS:
        raise BadRequest(
            f"unknown request kind {kind!r} (data kinds: {sorted(DATA_KINDS)})"
        )
    payload = dict(payload or {})
    now = time.monotonic()
    with _ids_lock:
        rid = next(_ids)
    if trace is None:
        trace = TraceContext.mint(request_id=f"r{rid}")
    return Request(
        rid=rid,
        session=session,
        kind=kind,
        payload=payload,
        deadline=None if timeout is None else now + timeout,
        t_submit=now,
        trace=trace,
        timing=timing,
        explain=explain,
    )
