"""``python -m repro.service.loadgen`` — deterministic multi-tenant load.

Drives N concurrent clients against the service, each with a seeded
request stream over a private graph plus a shared graph, then **replays
every stream serially** (one worker, no batching, cache off) and diffs
the responses: a concurrency or caching bug anywhere in the sessions /
admission / snapshot / memoization stack shows up as a divergence,
exactly like the conformance fuzzer's reference diffing.

The replay is *version ordered*: every live response records which
shared-graph snapshot version the request observed (``shared_version``)
and which version each shared mutation published (``published_version``),
so the serial replay applies shared writes in exactly their live
publication order and issues each read against the same snapshot it saw
live.  That keeps the diff sound even under ``--zipf-s`` mixes where
concurrent writers stream updates into the shared graph while readers
hammer a zipf-skewed pool of repeated (memoizable) requests.

Two transports: direct in-process (default; also measures planner
batching on vs off — or cache on vs off under ``--zipf-s`` — and writes
a ``repro-bench/1`` baseline) and ``--connect HOST:PORT`` against a
running ``python -m repro.service`` (CI's service-smoke job).  Exit
status is non-zero on any request error, divergence, or a cache hit
rate below ``--min-hit-rate``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from collections import deque

import math

from .. import obs
from ..obs import metrics
from ..obs.export import BenchRecorder, timeline_html
from ..obs.metrics import percentile
from .errors import QueueFull
from .service import Service, ServiceConfig
from .session import SHARED_PREFIX, SHARED_SESSION

__all__ = [
    "build_streams",
    "build_zipf_streams",
    "run_direct",
    "run_tcp",
    "replay_versioned",
    "main",
]

_SEMIRING = "GrB_PLUS_TIMES_SEMIRING_FP64"
_BINOP = "GrB_PLUS_FP64"
_MONOID = "GrB_PLUS_MONOID_FP64"
_GRAPH_N = 24          # private graph dimension
_SHARED_N = 32         # shared graph dimension


# --------------------------------------------------------------------------
# Workload construction (pure data — shared by live run and serial replay)
# --------------------------------------------------------------------------

def _random_entries(rng: random.Random, n: int, density: float):
    cells = [(i, j) for i in range(n) for j in range(n) if i != j]
    picked = rng.sample(cells, max(1, int(len(cells) * density)))
    return [[i, j, round(rng.uniform(0.5, 2.0), 3)] for i, j in picked]


def shared_graph_payload(seed: int) -> dict:
    """The one shared, read-only graph every client may reference."""
    rng = random.Random(seed ^ 0x5EED)
    return {
        "name": "G",
        "kind": "matrix",
        "dtype": "FP64",
        "shape": [_SHARED_N, _SHARED_N],
        "entries": _random_entries(rng, _SHARED_N, 0.12),
    }


def _op_program(rng: random.Random, graph: str) -> tuple[str, dict]:
    # two products off the same input + an eWiseAdd combining them: the
    # planner can CSE the duplicated A*A across requests of one batch
    return ("program", {
        "declare": [
            {"name": "t0", "kind": "matrix", "dtype": "FP64",
             "shape": [_GRAPH_N, _GRAPH_N]},
            {"name": "t1", "kind": "matrix", "dtype": "FP64",
             "shape": [_GRAPH_N, _GRAPH_N]},
        ],
        "calls": [
            {"kind": "mxm", "out": "t0",
             "args": {"a": graph, "b": graph, "semiring": _SEMIRING}},
            {"kind": "ewise_add", "out": "t1",
             "args": {"a": "t0", "b": graph, "binop": _BINOP}},
        ],
        "fetch": ["t1"] if rng.random() < 0.5 else [],
    })


def _op_shared_program(rng: random.Random) -> tuple[str, dict]:
    g = SHARED_PREFIX + "G"
    return ("program", {
        "declare": [
            {"name": "s0", "kind": "matrix", "dtype": "FP64",
             "shape": [_SHARED_N, _SHARED_N]},
        ],
        "calls": [
            {"kind": "mxm", "out": "s0",
             "args": {"a": g, "b": g, "semiring": _SEMIRING}},
        ],
        "fetch": [],
    })


def _op_algorithm(rng: random.Random, graph: str, n: int) -> tuple[str, dict]:
    algo = rng.choice(("bfs_levels", "sssp", "pagerank", "triangle_count"))
    payload: dict = {"algo": algo, "graph": graph, "args": {}}
    if algo in ("bfs_levels", "sssp"):
        payload["args"]["source"] = rng.randrange(n)
    return ("algorithm", payload)


def _op_update(rng: random.Random, graph: str, n: int) -> tuple[str, dict]:
    sets = [[rng.randrange(n), rng.randrange(n), round(rng.uniform(0.5, 2.0), 3)]
            for _ in range(rng.randrange(1, 4))]
    removes = [[rng.randrange(n), rng.randrange(n)]
               for _ in range(rng.randrange(0, 3))]
    return ("update", {"graph": graph, "set": sets, "remove": removes})


def _op_stream_mutate(rng: random.Random, graph: str, n: int) -> tuple[str, dict]:
    # bigger batches than the point-update path: the whole batch is one
    # deferred rebuild, and on the shared graph one snapshot publish
    sets = [[rng.randrange(n), rng.randrange(n), round(rng.uniform(0.5, 2.0), 3)]
            for _ in range(rng.randrange(2, 9))]
    removes = [[rng.randrange(n), rng.randrange(n)]
               for _ in range(rng.randrange(0, 5))]
    return ("stream_mutate", {"graph": graph, "set": sets, "remove": removes})


def _op_query(rng: random.Random, graph: str) -> tuple[str, dict]:
    what = rng.choice(("nvals", "tuples"))
    return ("query", {"name": graph, "what": what})


def build_streams(seed: int, clients: int, requests: int) -> list[list]:
    """Per-client deterministic ``(kind, payload)`` streams.

    The first op of every stream defines the client's private graph; the
    rest is a seeded mix of programs, algorithms, streaming updates, and
    queries over the private graph and the read-only shared graph.
    """
    streams = []
    per_client = max(1, requests // clients)
    for i in range(clients):
        rng = random.Random(seed * 7919 + i)
        ops: list = [("define", {
            "name": "g", "kind": "matrix", "dtype": "FP64",
            "shape": [_GRAPH_N, _GRAPH_N],
            "entries": _random_entries(rng, _GRAPH_N, 0.10),
        })]
        for _ in range(per_client - 1):
            r = rng.random()
            if r < 0.35:
                ops.append(_op_program(rng, "g"))
            elif r < 0.45:
                ops.append(_op_shared_program(rng))
            elif r < 0.65:
                if rng.random() < 0.7:
                    ops.append(_op_algorithm(rng, "g", _GRAPH_N))
                else:
                    ops.append(_op_algorithm(
                        rng, SHARED_PREFIX + "G", _SHARED_N
                    ))
            elif r < 0.85:
                if rng.random() < 0.5:
                    ops.append(_op_update(rng, "g", _GRAPH_N))
                else:
                    ops.append(_op_stream_mutate(rng, "g", _GRAPH_N))
            else:
                ops.append(_op_query(rng, "g"))
        streams.append(ops)
    return streams


# --------------------------------------------------------------------------
# Zipf workload: repeated shared-graph reads + streaming shared writes
# --------------------------------------------------------------------------

def _zipf_cdf(k: int, s: float) -> list[float]:
    weights = [1.0 / (rank + 1) ** s for rank in range(k)]
    total = sum(weights)
    acc, cdf = 0.0, []
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def _zipf_pick(rng: random.Random, cdf: list[float]) -> int:
    x = rng.random()
    for rank, edge in enumerate(cdf):
        if x <= edge:
            return rank
    return len(cdf) - 1


def _shared_read_pool(seed: int, pool: int) -> list[tuple[str, dict]]:
    """Deterministic pool of *memoizable* read requests over ``shared:G``.

    Every template reads only the shared graph (plus its own declared
    temporaries), uses registry operators, and fetches what it computes,
    so the result cache can serve repeats without touching session state.
    """
    rng = random.Random(seed * 104729 + 11)
    g = SHARED_PREFIX + "G"
    templates: list[tuple[str, dict]] = [
        ("query", {"name": g, "what": "nvals"}),
        ("algorithm", {"algo": "pagerank", "graph": g, "args": {}}),
        ("algorithm", {"algo": "triangle_count", "graph": g, "args": {}}),
    ]
    while len(templates) < pool:
        r = rng.random()
        if r < 0.25:
            templates.append(("query", {
                "name": g, "what": "element",
                "row": rng.randrange(_SHARED_N),
                "col": rng.randrange(_SHARED_N),
            }))
        elif r < 0.50:
            templates.append(("algorithm", {
                "algo": rng.choice(("bfs_levels", "sssp")),
                "graph": g,
                "args": {"source": rng.randrange(_SHARED_N)},
            }))
        else:
            src = rng.randrange(_SHARED_N)
            val = round(rng.uniform(0.5, 2.0), 3)
            templates.append(("program", {
                "declare": [
                    {"name": "v", "kind": "vector", "dtype": "FP64",
                     "shape": [_SHARED_N], "entries": [[src, val]]},
                    {"name": "t", "kind": "vector", "dtype": "FP64",
                     "shape": [_SHARED_N]},
                ],
                "calls": [
                    {"kind": "mxv", "out": "t",
                     "args": {"a": g, "u": "v", "semiring": _SEMIRING}},
                    {"kind": "reduce_scalar", "out": None,
                     "args": {"a": "t", "monoid": _MONOID}},
                ],
                "fetch": ["t"],
            }))
    return templates[:pool]


def _unique_read(rng: random.Random, nonce: int) -> tuple[str, dict]:
    # a never-repeating seed value makes the program's canonical digest
    # unique, so a stream of these is the 0%-hit-rate control mix
    g = SHARED_PREFIX + "G"
    return ("program", {
        "declare": [
            {"name": "v", "kind": "vector", "dtype": "FP64",
             "shape": [_SHARED_N],
             "entries": [[rng.randrange(_SHARED_N), 1.0 + nonce * 1e-6]]},
            {"name": "t", "kind": "vector", "dtype": "FP64",
             "shape": [_SHARED_N]},
        ],
        "calls": [
            {"kind": "mxv", "out": "t",
             "args": {"a": g, "u": "v", "semiring": _SEMIRING}},
        ],
        "fetch": ["t"],
    })


def build_zipf_streams(
    seed: int,
    clients: int,
    requests: int,
    *,
    zipf_s: float = 1.2,
    write_rate: float = 0.05,
    pool: int = 32,
    unique: bool = False,
) -> list[list]:
    """Per-client ``(kind, payload, to_shared)`` streams over ``shared:G``.

    Reads are drawn zipf(s)-skewed from a request pool shared by every
    client, so popular requests repeat across clients and are servable
    from the cross-request result cache.  A ``write_rate`` fraction of
    ops are streaming ``update`` mutations submitted *to the shared
    session* (``to_shared=True``), each of which publishes a new snapshot
    version and invalidates the cache.  ``unique=True`` replaces the
    zipf pool with never-repeating programs — the 0%-hit-rate control.
    """
    templates = _shared_read_pool(seed, pool)
    cdf = _zipf_cdf(len(templates), zipf_s)
    streams: list[list] = []
    per_client = max(1, requests // clients)
    for i in range(clients):
        rng = random.Random(seed * 7919 + 31 * i + 1)
        ops: list = []
        for j in range(per_client):
            if rng.random() < write_rate:
                # mostly batched streaming mutations (one rebuild + one
                # publish carrying the edge delta to incremental handles),
                # with point updates mixed in to exercise handle drops
                if rng.random() < 0.7:
                    kind, payload = _op_stream_mutate(rng, "G", _SHARED_N)
                else:
                    kind, payload = _op_update(rng, "G", _SHARED_N)
                ops.append((kind, payload, True))
            elif unique:
                kind, payload = _unique_read(rng, i * per_client + j)
                ops.append((kind, payload, False))
            else:
                kind, payload = templates[_zipf_pick(rng, cdf)]
                ops.append((kind, payload, False))
        streams.append(ops)
    return streams


# --------------------------------------------------------------------------
# Runners
# --------------------------------------------------------------------------

def _setup_shared(svc: Service, seed: int) -> None:
    svc.request(SHARED_SESSION, "define", shared_graph_payload(seed))


def run_direct(
    streams: list[list],
    *,
    seed: int,
    workers: int | None = None,
    queue_capacity: int = 64,
    batching: bool = True,
    pipeline: int = 8,
    slo_p99_ms: float | None = None,
    backend: str = "threads",
    shard_workers: int | None = None,
    cache: bool = True,
    diag_dir: str | None = None,
) -> dict:
    """Run the streams in-process; returns results, errors, and stats."""
    svc = Service(ServiceConfig(
        workers=workers, queue_capacity=queue_capacity, batching=batching,
        slo_p99_ms=slo_p99_ms, backend=backend, shard_workers=shard_workers,
        cache=cache, diag_dir=diag_dir,
    ))
    before = metrics.registry.snapshot()
    try:
        _setup_shared(svc, seed)
        results: list[list] = [[] for _ in streams]
        errors: list[tuple] = []
        lock = threading.Lock()

        def client_fn(ci: int) -> None:
            sess = svc.open_session(f"lg{ci}")
            inflight: deque = deque()

            def settle(n: int) -> None:
                while len(inflight) > n:
                    kind, fut = inflight.popleft()
                    try:
                        results[ci].append(fut.result(timeout=120))
                    except Exception as exc:
                        results[ci].append({"__error__": type(exc).__name__})
                        with lock:
                            errors.append((ci, kind, exc))

            for kind, payload, *rest in streams[ci]:
                target = SHARED_SESSION if (rest and rest[0]) else sess
                while True:
                    try:
                        fut = svc.submit(target, kind, payload, timing=True)
                        break
                    except QueueFull:
                        settle(0)       # backpressure: drain, then retry
                        time.sleep(0.001)
                inflight.append((kind, fut))
                settle(pipeline)
            settle(0)

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=client_fn, args=(i,), name=f"lg-client-{i}")
            for i in range(len(streams))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        stats = svc.stats()
        diag_st = svc.diag_stats()
    finally:
        svc.shutdown()
    delta = metrics.MetricsRegistry.delta(before, metrics.registry.snapshot())
    lat = delta["histograms"].get("service.latency_us")
    return {
        "results": results,
        "errors": errors,
        "elapsed_s": elapsed,
        "stats": stats,
        "diag": diag_st,
        "counters": delta["counters"],
        "latency_p50_us": percentile(lat, 0.50) if lat else None,
        "latency_p99_us": percentile(lat, 0.99) if lat else None,
    }


def run_tcp(streams: list[list], *, seed: int, host: str, port: int) -> dict:
    """Run the streams against a live TCP server (one connection each)."""
    from .client import TCPClient

    shared = TCPClient(host, port, session=SHARED_SESSION)
    try:
        shared.call("define", shared_graph_payload(seed))
    finally:
        shared.close(close_session=False)

    results: list[list] = [[] for _ in streams]
    errors: list[tuple] = []
    lock = threading.Lock()

    def client_fn(ci: int) -> None:
        cli = TCPClient(host, port, session=f"lg{ci}")
        shared_cli = None
        try:
            for kind, payload, *rest in streams[ci]:
                if rest and rest[0]:
                    if shared_cli is None:
                        shared_cli = TCPClient(
                            host, port, session=SHARED_SESSION
                        )
                    conn = shared_cli
                else:
                    conn = cli
                try:
                    results[ci].append(conn.call(kind, payload, timing=True))
                except Exception as exc:
                    results[ci].append({"__error__": type(exc).__name__})
                    with lock:
                        errors.append((ci, kind, exc))
        finally:
            cli.close(close_session=False)
            if shared_cli is not None:
                shared_cli.close(close_session=False)

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=client_fn, args=(i,), name=f"lg-client-{i}")
        for i in range(len(streams))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    probe = TCPClient(host, port)
    try:
        stats = probe.stats()
    finally:
        probe.close()
    return {"results": results, "errors": errors, "elapsed_s": elapsed,
            "stats": stats}


def replay_versioned(
    streams: list[list],
    live_results: list[list],
    *,
    seed: int,
    queue_capacity: int = 64,
) -> dict:
    """Serial, cache-off replay that honours the live run's version order.

    Shared mutations are re-applied in the exact order they *published*
    live (``timing["published_version"]``), and every read is issued only
    once the replay's shared store has reached the snapshot version that
    read observed live (``timing["shared_version"]``).  Per-client read
    order is preserved (admission pins are monotonic per client), so the
    replay reproduces both the private-state evolution of each client and
    the shared-state epoch each response was computed against — which is
    what makes diffing sound under a streaming-write mix.
    """
    svc = Service(ServiceConfig(
        workers=1, queue_capacity=max(queue_capacity, 4),
        batching=False, cache=False,
    ))
    problems: list[tuple] = []
    out: list[list] = [[None] * len(s) for s in streams]
    try:
        _setup_shared(svc, seed)
        writers: dict[int, tuple] = {}
        pending: list[deque] = []
        for ci, stream in enumerate(streams):
            dq: deque = deque()
            last_v = svc.snapshots.current_vid()
            for oi, (kind, payload, *rest) in enumerate(stream):
                live = (live_results[ci][oi]
                        if oi < len(live_results[ci]) else None)
                timing = live.get("timing") if isinstance(live, dict) else None
                timing = timing or {}
                if rest and rest[0]:
                    pv = timing.get("published_version")
                    if pv is None:
                        # the live mutation failed before publishing; replay
                        # it at the client's current position so the replay
                        # fails (or diverges) visibly at the same op
                        dq.append((oi, kind, payload, last_v, True))
                    else:
                        writers[pv] = (ci, oi, kind, payload)
                else:
                    v = timing.get("shared_version", last_v)
                    last_v = v
                    dq.append((oi, kind, payload, v, False))
            pending.append(dq)

        sessions = [svc.open_session(f"rp{ci}") for ci in range(len(streams))]

        def run_one(sess_name, ci, oi, kind, payload) -> None:
            try:
                out[ci][oi] = svc.request(sess_name, kind, payload,
                                          timing=True)
            except Exception as exc:
                out[ci][oi] = {"__error__": type(exc).__name__}

        cur = svc.snapshots.current_vid()
        while True:
            for ci, dq in enumerate(pending):
                while dq and dq[0][3] <= cur:
                    oi, kind, payload, _v, to_shared = dq.popleft()
                    sess = SHARED_SESSION if to_shared else sessions[ci]
                    run_one(sess, ci, oi, kind, payload)
            nxt = cur + 1
            if nxt in writers:
                ci, oi, kind, payload = writers.pop(nxt)
                run_one(SHARED_SESSION, ci, oi, kind, payload)
                cur = svc.snapshots.current_vid()
                if cur < nxt:
                    problems.append((ci, oi,
                                     f"replayed mutation did not publish "
                                     f"version {nxt}"))
                    break
            elif any(pending):
                for ci, dq in enumerate(pending):
                    for oi, _k, _p, v, _s in dq:
                        problems.append((ci, oi,
                                         f"observed version {v} unreachable "
                                         f"(replay stuck at {cur})"))
                break
            else:
                break
    finally:
        svc.shutdown()
    return {"results": out, "problems": problems}


def _strip_timing(r):
    # timing is measurement, not semantics — a replay diverges on results,
    # never on how long they took
    if isinstance(r, dict) and "timing" in r:
        return {k: v for k, v in r.items() if k != "timing"}
    return r


#: absolute float tolerance of the replay diff — incremental pagerank is
#: exact only up to O(tol·n/(1-α)) against from-scratch (docs/streaming.md)
_FLOAT_ATOL = 1e-5


def _approx_eq(a, b) -> bool:
    """Structural equality with a float tolerance.

    Only float-typed leaves compare approximately (NaN equals NaN);
    everything else — ints, bools, strings, shapes — must match exactly,
    so count/pattern bugs cannot hide behind the tolerance.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _approx_eq(v, b[k]) for k, v in a.items()
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _approx_eq(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        if math.isnan(a) and math.isnan(b):
            return True
        if math.isinf(a) or math.isinf(b):
            return a == b
        return abs(a - b) <= _FLOAT_ATOL
    return a == b


def diff_results(live: list[list], ref: list[list]) -> list[tuple]:
    """Compare live responses with the serial replay; list divergences."""
    out = []
    for ci, (a, b) in enumerate(zip(live, ref)):
        if len(a) != len(b):
            out.append((ci, -1, f"response count {len(a)} != {len(b)}"))
            continue
        for oi, (ra, rb) in enumerate(zip(a, b)):
            ra, rb = _strip_timing(ra), _strip_timing(rb)
            if not _approx_eq(ra, rb):
                out.append((ci, oi, f"{ra!r} != {rb!r}"))
    return out


#: request kinds that mutate graph state (everything else is a read)
_MUTATE_KINDS = frozenset(("define", "upload", "update", "stream_mutate", "free"))


def _aggregate_timings(rows: list[dict]) -> dict:
    if not rows:
        return {"count": 0}

    def pct(vals: list, q: float) -> float:
        vals = sorted(vals)
        return vals[max(0, math.ceil(q * len(vals)) - 1)]

    out: dict = {"count": len(rows)}
    for stage in ("queue_wait_us", "issue_us", "drain_share_us", "total_us"):
        vals = [row[stage] for row in rows]
        out[stage] = {
            "mean": sum(vals) / len(vals),
            "p50": pct(vals, 0.50),
            "p99": pct(vals, 0.99),
        }
    # how much of each wall latency the decomposition explains
    covered = [
        (row["queue_wait_us"] + row["issue_us"] + row["drain_share_us"])
        / row["total_us"]
        for row in rows if row["total_us"] > 0
    ]
    if covered:
        out["coverage_mean"] = sum(covered) / len(covered)
    return out


def timing_summary(results: list[list], streams: list[list] | None = None) -> dict:
    """Aggregate the per-request latency decompositions of a run.

    With *streams* (the submitted ``(kind, payload, ...)`` lists, index-
    aligned with *results*), the summary additionally splits into a
    ``by_kind`` read/mutate breakdown — a mutation's latency includes its
    snapshot publish and handle advancement, so one merged histogram
    hides the asymmetry a mixed workload actually serves.
    """
    rows: list[dict] = []
    read_rows: list[dict] = []
    mutate_rows: list[dict] = []
    kind_rows: dict[str, list[dict]] = {}
    for ci, stream in enumerate(results):
        for oi, r in enumerate(stream):
            if not (isinstance(r, dict) and "timing" in r):
                continue
            row = r["timing"]
            rows.append(row)
            if streams is not None and ci < len(streams) \
                    and oi < len(streams[ci]):
                kind = streams[ci][oi][0]
                (mutate_rows if kind in _MUTATE_KINDS else read_rows).append(row)
                kind_rows.setdefault(kind, []).append(row)
    out = _aggregate_timings(rows)
    if streams is not None and rows:
        out["by_kind"] = {
            "read": _aggregate_timings(read_rows),
            "mutate": _aggregate_timings(mutate_rows),
        }
        # the coarse read/mutate split hides that a stream_mutate pays for
        # a whole deferred rebuild while an update pays per element — keep
        # every submitted kind separately addressable
        out["by_request_kind"] = {
            kind: _aggregate_timings(krows)
            for kind, krows in sorted(kind_rows.items())
        }
    return out


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="deterministic load + serial-replay divergence check",
    )
    p.add_argument("--requests", type=int, default=200,
                   help="total requests across all clients")
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--queue-capacity", type=int, default=64)
    p.add_argument("--pipeline", type=int, default=8,
                   help="per-client in-flight request window (direct mode)")
    p.add_argument("--repeat", type=int, default=3,
                   help="timed repetitions per bench entry (direct mode)")
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="drive a running TCP server instead of in-process")
    p.add_argument("--bench-out", default=None,
                   help="write a repro-bench/1 JSON baseline here")
    p.add_argument("--trace-out", default=None,
                   help="write a Chrome trace of one serving window here")
    p.add_argument("--timeline-out", default=None,
                   help="write a per-request timeline/flamegraph HTML here")
    p.add_argument("--no-replay", action="store_true",
                   help="skip the serial-replay divergence check")
    p.add_argument("--stats-out", default=None,
                   help="write the final service stats JSON here")
    p.add_argument("--slo-p99-ms", type=float, default=None,
                   help="fail (exit nonzero) when the run's p99 latency "
                        "exceeds this many milliseconds")
    p.add_argument("--backend", choices=("serial", "threads", "processes"),
                   default="threads",
                   help="drain execution backend (direct mode)")
    p.add_argument("--shard-workers", type=int, default=None,
                   help="shard pool size for the processes backend")
    p.add_argument("--zipf-s", type=float, default=None,
                   help="switch to the zipf-skewed shared-read mix with "
                        "this skew exponent (repeated memoizable requests "
                        "+ streaming shared writes)")
    p.add_argument("--write-rate", type=float, default=0.05,
                   help="fraction of zipf-mix ops that mutate the shared "
                        "graph (each publishes a snapshot version)")
    p.add_argument("--unique-mix", action="store_true",
                   help="zipf mode with never-repeating reads: the "
                        "0%%-hit-rate control workload")
    p.add_argument("--cache", dest="cache", action="store_true",
                   default=True, help="enable the result cache (default)")
    p.add_argument("--no-cache", dest="cache", action="store_false",
                   help="disable the cross-request result cache")
    p.add_argument("--min-hit-rate", type=float, default=None,
                   help="fail (exit nonzero) when the run's cache hit "
                        "rate falls below this fraction")
    p.add_argument("--diag-dir", default=None,
                   help="flight-recorder dump directory (direct mode); "
                        "dumps land here on SLO-budget exhaustion, "
                        "deadline misses, panics, or anomaly flags")
    args = p.parse_args(argv)

    zipf_mode = args.zipf_s is not None or args.unique_mix
    if zipf_mode:
        streams = build_zipf_streams(
            args.seed, args.clients, args.requests,
            zipf_s=args.zipf_s if args.zipf_s is not None else 1.2,
            write_rate=args.write_rate, unique=args.unique_mix,
        )
    else:
        streams = build_streams(args.seed, args.clients, args.requests)
    total = sum(len(s) for s in streams)
    mix = "unique" if args.unique_mix else (
        f"zipf(s={args.zipf_s})" if zipf_mode else "classic")
    print(f"loadgen: {len(streams)} clients x {len(streams[0])} ops "
          f"= {total} requests (seed {args.seed}, mix {mix}, "
          f"cache {'on' if args.cache else 'off'})", flush=True)

    if args.connect:
        host, _, port = args.connect.rpartition(":")
        live = run_tcp(streams, seed=args.seed, host=host or "127.0.0.1",
                       port=int(port))
    else:
        live = run_direct(
            streams, seed=args.seed, workers=args.workers,
            queue_capacity=args.queue_capacity, pipeline=args.pipeline,
            slo_p99_ms=args.slo_p99_ms, backend=args.backend,
            shard_workers=args.shard_workers, cache=args.cache,
            diag_dir=args.diag_dir,
        )

    st = live["stats"]
    print(f"  elapsed {live['elapsed_s']:.3f}s  "
          f"admitted {st['admitted']}  completed {st['completed']}  "
          f"failed {st['failed']}  rejected {st['rejected_queue_full']}  "
          f"p50 {st['latency_p50_us']}us  p99 {st['latency_p99_us']}us",
          flush=True)
    for ci, kind, exc in live["errors"][:10]:
        print(f"  ERROR client {ci} {kind}: {type(exc).__name__}: {exc}")

    hit_rate_missed = False
    cache_st = st.get("cache")
    if cache_st:
        print(f"  cache: hit_rate {cache_st['hit_rate']:.2f} "
              f"({cache_st['hits']}h/{cache_st['misses']}m/"
              f"{cache_st['bypasses']}b)  "
              f"entries {cache_st['entries']}  "
              f"invalidations {cache_st['invalidations']}", flush=True)
    snap_st = st.get("snapshots")
    if snap_st:
        print(f"  snapshots: version {snap_st['version']}  "
              f"published {snap_st['published']}  "
              f"retired {snap_st['retired']}  "
              f"live {snap_st['live_versions']}", flush=True)
    if args.min_hit_rate is not None:
        observed = cache_st["hit_rate"] if cache_st else 0.0
        hit_rate_missed = observed < args.min_hit_rate
        print(f"  hit-rate target {args.min_hit_rate:.2f}, observed "
              f"{observed:.2f}: "
              f"{'MISSED' if hit_rate_missed else 'met'}", flush=True)

    timings = timing_summary(live["results"], streams)
    if timings.get("count"):
        print(f"  per-request breakdown ({timings['count']} timed): "
              f"queue p50 {timings['queue_wait_us']['p50']:.0f}us  "
              f"issue p50 {timings['issue_us']['p50']:.0f}us  "
              f"drain-share p50 {timings['drain_share_us']['p50']:.0f}us  "
              f"coverage {timings.get('coverage_mean', 0.0):.2f}",
              flush=True)
        by_kind = timings.get("by_kind") or {}
        for group in ("read", "mutate"):
            g = by_kind.get(group) or {}
            if g.get("count"):
                print(f"    {group}: {g['count']} reqs  "
                      f"p50 {g['total_us']['p50']:.0f}us  "
                      f"p99 {g['total_us']['p99']:.0f}us", flush=True)
    diag_st = live.get("diag")
    if diag_st and diag_st.get("dumps"):
        print(f"  diag: {diag_st['dumps']} flight dump(s) -> "
              f"{diag_st['dump_dir']}", flush=True)
    streams_st = st.get("streams")
    if streams_st and (streams_st["created"] or streams_st["served"]):
        print(f"  streams: handles {streams_st['handles']}  "
              f"created {streams_st['created']}  "
              f"advanced {streams_st['advanced']}  "
              f"dropped {streams_st['dropped']}  "
              f"served {streams_st['served']}", flush=True)

    slo_missed = False
    if args.slo_p99_ms is not None:
        target_us = args.slo_p99_ms * 1e3
        slo = st.get("slo") or {}
        observed = slo.get("window_p99_us")
        if observed is None:
            observed = st.get("latency_p99_us")
        slo_missed = observed is not None and observed > target_us
        shown = f"{observed:.0f}us" if observed is not None else "n/a"
        print(f"  SLO p99 target {target_us:.0f}us, observed {shown}: "
              f"{'MISSED' if slo_missed else 'met'}", flush=True)

    if args.stats_out:
        doc = {
            "stats": st,
            "errors": len(live["errors"]),
            "request_timing": timings,
            # pinned schema: memo re-key activity must stay visible even
            # when st["cache"] is absent (cache off), and dashboards key
            # on cache_rekeys without digging through the stats tree
            "cache_rekeys": (st.get("cache") or {}).get("rekeys", 0),
        }
        if live.get("diag") is not None:
            doc["diag"] = live["diag"]
        if args.slo_p99_ms is not None:
            doc["slo_p99_ms"] = args.slo_p99_ms
            doc["slo_missed"] = slo_missed
        with open(args.stats_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"stats -> {args.stats_out}", flush=True)

    divergences: list = []
    if not args.no_replay:
        print("replaying serially (1 worker, no batching, cache off, "
              "version-ordered shared writes)...", flush=True)
        ref = replay_versioned(streams, live["results"], seed=args.seed,
                               queue_capacity=args.queue_capacity)
        divergences = diff_results(live["results"], ref["results"])
        divergences += ref["problems"]
        for ci, oi, what in divergences[:10]:
            print(f"  DIVERGENCE client {ci} op {oi}: {what}")
        print(f"  {len(divergences)} divergences", flush=True)

    if args.bench_out and not args.connect:
        rec = BenchRecorder(meta={
            "workload": "service.loadgen",
            "seed": args.seed,
            "clients": args.clients,
            "requests": total,
            "backend": args.backend,
            "mix": mix,
        })

        def timed(name: str, bench_streams: list[list], **kw) -> None:
            times, extra = [], {}
            for _ in range(args.repeat):
                run = run_direct(
                    bench_streams, seed=args.seed, workers=args.workers,
                    queue_capacity=args.queue_capacity,
                    pipeline=args.pipeline, backend=args.backend,
                    shard_workers=args.shard_workers, **kw,
                )
                times.append(run["elapsed_s"])
                cache_stats = run["stats"].get("cache")
                extra = {
                    "qps": total / run["elapsed_s"],
                    "batches": run["counters"].get("service.batches", 0),
                    "mean_batch": (
                        run["counters"].get("service.batch_size", 0)
                        / max(1, run["counters"].get("service.batches", 0))
                    ),
                    "p50_us": run["latency_p50_us"],
                    "p99_us": run["latency_p99_us"],
                    "errors": len(run["errors"]),
                    "hit_rate": (cache_stats or {}).get("hit_rate", 0.0),
                }
            rec.record(name, times, **extra)

        if zipf_mode:
            # cache on vs off on the skewed (memoizable) mix, plus the
            # 0%-hit-rate unique control: the cache must win the former
            # and stay out of the way on the latter
            for on in (True, False):
                timed(f"service.loadgen.zipf_cache_{'on' if on else 'off'}",
                      streams, cache=on)
            unique_streams = build_zipf_streams(
                args.seed, args.clients, args.requests,
                zipf_s=args.zipf_s if args.zipf_s is not None else 1.2,
                write_rate=args.write_rate, unique=True,
            )
            for on in (True, False):
                timed(f"service.loadgen.unique_cache_{'on' if on else 'off'}",
                      unique_streams, cache=on)
        else:
            for batching in (True, False):
                timed(
                    f"service.loadgen.batching_{'on' if batching else 'off'}",
                    streams, batching=batching,
                )
        rec.write(args.bench_out)
        print(f"bench baseline -> {args.bench_out}", flush=True)

    if (args.trace_out or args.timeline_out) and not args.connect:
        with obs.capture() as cap:
            window = run_direct(streams[:2], seed=args.seed, workers=2,
                                queue_capacity=args.queue_capacity, pipeline=4)
        if args.trace_out:
            cap.export_chrome(args.trace_out)
            print(f"chrome trace -> {args.trace_out} "
                  f"({len(cap.spans)} spans)", flush=True)
        if args.timeline_out:
            per_request = {
                r["timing"]["request_id"]: r["timing"]
                for stream in window["results"] for r in stream
                if isinstance(r, dict) and "timing" in r
            }
            with open(args.timeline_out, "w") as fh:
                fh.write(timeline_html(
                    cap.spans,
                    title="repro loadgen serving window",
                    request_timings=per_request,
                ))
            print(f"timeline -> {args.timeline_out}", flush=True)

    ok = (not live["errors"] and not divergences and not slo_missed
          and not hit_rate_missed)
    print("loadgen: OK" if ok else "loadgen: FAILED", flush=True)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
