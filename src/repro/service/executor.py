"""Batch executor: drains one session's queue through the planner.

A worker hands this module a session plus the batch of requests it popped.
Execution happens inside the session's activated context, in program
order.  Each request **issues** — performs its eager parts (builds,
uploads, edge updates, algorithm calls), *enqueues* its deferred GraphBLAS
ops, and computes its result dict.  Reads (``nvals``, ``extract_tuples``,
serialization, program fetches) are the paper's sequence points: they
force completion of exactly the pending ops they touch, so every response
reflects the session state at that request's own point in program order —
never a later request's mutations.  Ops nobody read stay deferred; one
batch-final ``wait()`` drains them all, and the drain-time planner sees
the union across request boundaries and applies dead-op elimination,
fusion, CSE, and parallel scheduling to it.

With batching disabled (``ServiceConfig.batching=False``) the executor
waits after each request instead — no cross-request optimization; the
load generator measures the difference.

Error attribution: an issue-phase error fails only its request.  Futures
are fulfilled after the batch drain; an error surfacing there poisons the
failed op's outputs and the un-run tail (section V semantics), so it is
reported to every not-yet-failed request of the batch — the same
over-approximation ``GrB_wait`` itself makes when a sequence fails.
"""

from __future__ import annotations

import base64
import contextlib
import time
from typing import Any, Callable

import numpy as np

from .. import context, validation
from ..containers.matrix import Matrix
from ..containers.scalar import Scalar
from ..containers.vector import Vector
from ..fuzz.executor import build_decl, dispatch_call
from ..fuzz.program import _CANONICAL, Call, Decl
from ..info import GraphBLASError, NoValue
from ..io.serialize import deserialize, serialize
from ..obs import diag, metrics, spans, tracing
from ..obs.diag import explain as diag_explain
from ..stream import EdgeBuffer
from ..types.grb_type import lookup_type
from .errors import BadRequest, DeadlineExceeded, ObjectNotFound
from .memo import analyze_request, build_entry, materialize
from .session import SHARED_PREFIX, Session
from .streams import STREAMABLE_ALGOS

__all__ = ["run_batch", "ALGORITHMS", "jsonable"]


# --------------------------------------------------------------------------
# Algorithm registry
# --------------------------------------------------------------------------

def _algorithms() -> dict[str, Callable]:
    from .. import algorithms as alg

    return {
        "pagerank": alg.pagerank,
        "bfs_levels": alg.bfs_levels,
        "bfs_parents": alg.bfs_parents,
        "sssp": alg.sssp,
        "triangle_count": alg.triangle_count,
        "connected_components": alg.connected_components,
        "betweenness_centrality": alg.betweenness_centrality,
        "core_numbers": alg.core_numbers,
        "greedy_coloring": alg.greedy_coloring,
    }


ALGORITHMS = _algorithms()


def jsonable(v: Any) -> Any:
    """Coerce numpy scalars/arrays and containers into JSON-able values."""
    item = getattr(v, "item", None)
    if callable(item) and np.ndim(v) == 0:
        return v.item()
    if isinstance(v, np.ndarray):
        return [jsonable(x) for x in v.tolist()]
    if isinstance(v, (list, tuple)):
        return [jsonable(x) for x in v]
    if isinstance(v, dict):
        return {str(k): jsonable(x) for k, x in v.items()}
    if isinstance(v, frozenset):
        return sorted(v)
    return v


def _contents(obj) -> dict:
    """JSON-able content of a collection (the ``fetch`` payload)."""
    if isinstance(obj, Matrix):
        rows, cols, vals = obj.extract_tuples()
        return {
            "kind": "matrix",
            "shape": [obj.nrows, obj.ncols],
            "rows": jsonable(rows),
            "cols": jsonable(cols),
            "values": jsonable(vals),
        }
    if isinstance(obj, Vector):
        idx, vals = obj.extract_tuples()
        return {
            "kind": "vector",
            "shape": [obj.size],
            "indices": jsonable(idx),
            "values": jsonable(vals),
        }
    if isinstance(obj, Scalar):
        if obj.nvals() == 0:
            return {"kind": "scalar", "value": None}
        return {"kind": "scalar", "value": jsonable(obj.extract_value())}
    raise BadRequest(f"cannot fetch {type(obj).__name__}")


# --------------------------------------------------------------------------
# Name resolution
# --------------------------------------------------------------------------

class _Exec:
    """Per-request execution context.

    *version* is the immutable shared-store :class:`GraphVersion` the
    request pinned at admission (None for shared-session requests, which
    operate on the live working set).  *fresh* is the copy-on-write
    tracking set of a shared-session request: names created or duplicated
    since the last publication, i.e. safe to mutate in place.
    """

    __slots__ = ("version", "fresh")

    def __init__(self, version=None, fresh=None):
        self.version = version
        self.fresh = fresh


def _namespace(service, session: Session, ectx: _Exec | None = None) -> tuple[dict, dict]:
    """Effective (objects, dtype-tokens) visible to *session*.

    Shared objects appear under their ``shared:`` prefix and are read-only
    for ordinary sessions; they resolve out of the request's **pinned
    snapshot version**, so the view is frozen even while the writer
    publishes.  The shared session sees its own live names bare.
    """
    ns: dict[str, Any] = {}
    dt: dict[str, str] = {}
    if not session.is_shared:
        if ectx is not None and ectx.version is not None:
            src_obj, src_dt = ectx.version.objects, ectx.version.dtypes
        else:  # direct handler calls outside the admission pipeline
            shared = service.shared_session
            src_obj, src_dt = shared.objects, shared.dtypes
        for k, v in src_obj.items():
            ns[SHARED_PREFIX + k] = v
            dt[SHARED_PREFIX + k] = src_dt[k]
    ns.update(session.objects)
    dt.update(session.dtypes)
    return ns, dt


def _cow(session: Session, ectx: _Exec | None, name: str):
    """Writer-side copy-on-write: duplicate *name* before its first
    mutation since the last publication, so every published version stays
    frozen.  Returns the (possibly replacement) object, or None when the
    name does not resolve."""
    obj = session.objects.get(name)
    if obj is None or ectx is None or ectx.fresh is None or name in ectx.fresh:
        return obj
    dup = getattr(obj, "dup", None)
    if callable(dup):
        obj = dup()
        session.objects[name] = obj
    ectx.fresh.add(name)
    return obj


def _mark_fresh(ectx: _Exec | None, name: str) -> None:
    if ectx is not None and ectx.fresh is not None:
        ectx.fresh.add(name)


def _get(session: Session, ns: dict, name: str):
    try:
        return ns[name]
    except KeyError:
        raise ObjectNotFound(
            f"session {session.name!r} has no object named {name!r}"
        ) from None


def _check_writable(session: Session, name: str) -> None:
    if name.startswith(SHARED_PREFIX) and not session.is_shared:
        raise BadRequest(
            f"{name!r} is read-only here: shared objects are mutated through "
            f"the {SHARED_PREFIX.rstrip(':')!r} session"
        )


def _store(session: Session, name: str, obj, dtype_token: str | None = None) -> None:
    _check_writable(session, name)
    if dtype_token is None:
        dtype_token = obj.type.name
    session.objects[name] = obj
    session.dtypes[name] = dtype_token


# --------------------------------------------------------------------------
# Per-kind issue handlers — each returns the request's result dict,
# computed at issue time so responses reflect the request's own point in
# the session's program order (a later request of the same batch must not
# leak into an earlier response).  Reads (nvals / extract / serialize) are
# the sequence points of the paper: they force completion of exactly the
# pending ops they touch, and everything a batch leaves un-read drains in
# one planner pass at the end.
# --------------------------------------------------------------------------

def _need(payload: dict, key: str):
    try:
        return payload[key]
    except KeyError:
        raise BadRequest(f"request payload is missing {key!r}") from None


def _decl_from_payload(d: dict) -> Decl:
    try:
        return Decl.from_dict(
            {"entries": [], **{k: d[k] for k in d if k in
                               ("name", "kind", "dtype", "shape", "entries")}}
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise BadRequest(f"malformed declaration: {exc}") from None


def _issue_define(service, session: Session, payload: dict, ectx: _Exec | None = None):
    decl = _decl_from_payload(payload)
    _check_writable(session, decl.name)
    try:
        obj = build_decl(decl, session.env)
    except GraphBLASError:
        raise
    except Exception as exc:
        raise BadRequest(f"cannot build {decl.name!r}: {exc}") from None
    _store(session, decl.name, obj, decl.dtype)
    _mark_fresh(ectx, decl.name)
    return {"name": decl.name, "nvals": obj.nvals()}

def _issue_upload(service, session: Session, payload: dict, ectx: _Exec | None = None):
    name = _need(payload, "name")
    blob = payload.get("blob")
    if blob is None and "blob_b64" in payload:
        blob = base64.b64decode(payload["blob_b64"])
    if not isinstance(blob, (bytes, bytearray)):
        raise BadRequest("upload needs a 'blob' (bytes) or 'blob_b64' field")
    obj = deserialize(bytes(blob))
    _store(session, name, obj)
    _mark_fresh(ectx, name)
    kind = type(obj).__name__.lower()
    return {"name": name, "kind": kind, "nvals": obj.nvals()}

def _issue_download(service, session: Session, payload: dict, ectx: _Exec | None = None):
    name = _need(payload, "name")
    ns, _ = _namespace(service, session, ectx)
    obj = _get(session, ns, name)
    return {"name": name, "blob": serialize(obj)}

def _issue_program(service, session: Session, payload: dict, ectx: _Exec | None = None):
    raw_calls = _need(payload, "calls")
    declares = payload.get("declare", [])
    fetch = payload.get("fetch", [])
    for d in declares:
        decl = _decl_from_payload(d)
        _check_writable(session, decl.name)
        _store(session, decl.name, build_decl(decl, session.env), decl.dtype)
        _mark_fresh(ectx, decl.name)
    ns, dtypes = _namespace(service, session, ectx)
    calls = []
    for c in raw_calls:
        try:
            call = Call.from_dict(c) if isinstance(c, dict) else c
        except (KeyError, TypeError) as exc:
            raise BadRequest(f"malformed call: {exc}") from None
        if call.kind not in _CANONICAL:
            raise BadRequest(f"unknown program op {call.kind!r}")
        if call.out is not None:
            _check_writable(session, call.out)
            if session.is_shared and call.out in session.objects:
                # all duplication happens here, before any call is
                # dispatched, while nothing is deferred against the target
                ns[call.out] = _cow(session, ectx, call.out)
            if call.out not in ns:
                raise ObjectNotFound(
                    f"program output {call.out!r} is not declared"
                )
        calls.append(call)
    scalars: list[Any] = []
    for call in calls:
        try:
            dispatch_call(call, ns, session.env, scalars, dtypes)
        except KeyError as exc:
            raise ObjectNotFound(f"program references unknown name {exc}") from None

    out: dict[str, Any] = {"scalars": jsonable(scalars)}
    if fetch:
        out["fetched"] = {
            name: _contents(_get(session, ns, name)) for name in fetch
        }
    return out

def _issue_algorithm(service, session: Session, payload: dict, ectx: _Exec | None = None):
    algo = _need(payload, "algo")
    fn = ALGORITHMS.get(algo)
    if fn is None:
        raise BadRequest(
            f"unknown algorithm {algo!r} (available: {sorted(ALGORITHMS)})"
        )
    ns, _ = _namespace(service, session, ectx)
    graph_name = _need(payload, "graph")
    A = _get(session, ns, graph_name)
    args = dict(payload.get("args", {}))
    store_as = payload.get("store_as")
    result = None
    streams = getattr(service, "streams", None)
    if (
        streams is not None
        and not session.is_shared
        and ectx is not None
        and ectx.version is not None
        and isinstance(graph_name, str)
        and graph_name.startswith(SHARED_PREFIX)
        and algo in STREAMABLE_ALGOS
        and isinstance(A, Matrix)
    ):
        # incremental serving: a maintained handle re-validated against
        # this request's pinned snapshot version answers without running
        # the full algorithm (falls through to it when no handle applies)
        result = streams.serve(
            graph_name[len(SHARED_PREFIX):], algo, args,
            ectx.version.vid, A, service.snapshots.current_vid(),
        )
    if result is None:
        result = fn(A, **args)
    if isinstance(result, np.ndarray) and result.ndim == 1:
        # dense-array results (pagerank, connected_components) store as a
        # dense Vector so later programs can consume them by name
        dom = lookup_type("FP64" if result.dtype.kind == "f" else "INT64")
        result = Vector.from_coo(
            dom, len(result), np.arange(len(result)), result.astype(dom.np_dtype)
        )
    if isinstance(result, (Matrix, Vector)):
        if store_as:
            _check_writable(session, store_as)
            _store(session, store_as, result)
            _mark_fresh(ectx, store_as)
            return {"stored": store_as, "nvals": result.nvals()}
        return {"result": _contents(result)}
    if store_as:
        raise BadRequest(f"{algo!r} returns a plain value; cannot store_as")
    return {"result": jsonable(result)}

def _issue_update(service, session: Session, payload: dict, ectx: _Exec | None = None):
    name = _need(payload, "graph")
    _check_writable(session, name)
    ns, _ = _namespace(service, session, ectx)
    obj = _get(session, ns, name)
    if session.is_shared:
        # in-place edits must never reach a published version's object
        obj = _cow(session, ectx, name) or obj
    sets = payload.get("set", [])
    removes = payload.get("remove", [])
    env = session.env
    token = session.dtypes.get(name, obj.type.name)
    if isinstance(obj, Matrix):
        for i, j, v in sets:
            obj.set_element(int(i), int(j), env.value(token, v))
        for entry in removes:
            i, j = entry[0], entry[1]
            try:
                obj.remove_element(int(i), int(j))
            except NoValue:  # removing an absent edge is a no-op, not an error
                pass
    elif isinstance(obj, Vector):
        for i, v in sets:
            obj.set_element(int(i), env.value(token, v))
        for entry in removes:
            i = entry[0] if isinstance(entry, (list, tuple)) else entry
            try:
                obj.remove_element(int(i))
            except NoValue:
                pass
    else:
        raise BadRequest(f"cannot stream updates into {type(obj).__name__}")
    return {"name": name, "nvals": obj.nvals()}

def _issue_stream_mutate(
    service, session: Session, payload: dict, ectx: _Exec | None = None
):
    """Batched edge mutation through the streaming ingest path.

    The whole ``set``/``remove`` batch lands in one
    :class:`~repro.stream.EdgeBuffer` flush — a single deferred rebuild in
    the planner DAG — instead of ``update``'s per-element edits.  On the
    shared session the flush is noted with the service's
    :class:`~repro.service.streams.StreamState` so the publication that
    follows advances incremental algorithm handles from the edge delta.
    """
    name = _need(payload, "graph")
    _check_writable(session, name)
    ns, _ = _namespace(service, session, ectx)
    obj = _get(session, ns, name)
    if session.is_shared:
        obj = _cow(session, ectx, name) or obj
    if not isinstance(obj, Matrix):
        raise BadRequest("stream_mutate requires a Matrix graph")
    sets = payload.get("set", []) or []
    removes = payload.get("remove", []) or []
    buf = EdgeBuffer(obj)
    if sets:
        buf.set_edges(
            [int(e[0]) for e in sets],
            [int(e[1]) for e in sets],
            [e[2] for e in sets],
        )
    if removes:
        buf.remove_edges(
            [int(e[0]) for e in removes],
            [int(e[1]) for e in removes],
        )
    fr = buf.flush()
    streams = getattr(service, "streams", None)
    if streams is not None and session.is_shared:
        streams.note_flush(name, fr)
    metrics.registry.inc("service.stream_mutate")
    return {
        "name": name,
        "accepted": {"set": len(sets), "remove": len(removes)},
    }


def _issue_query(service, session: Session, payload: dict, ectx: _Exec | None = None):
    name = _need(payload, "name")
    what = payload.get("what", "nvals")
    ns, _ = _namespace(service, session, ectx)
    obj = _get(session, ns, name)
    if what == "nvals":
        return {"nvals": obj.nvals()}
    if what == "tuples":
        return _contents(obj)
    if what == "element":
        try:
            if isinstance(obj, Matrix):
                v = obj.extract_element(
                    int(_need(payload, "row")), int(_need(payload, "col"))
                )
            elif isinstance(obj, Vector):
                v = obj.extract_element(int(_need(payload, "index")))
            else:
                raise BadRequest("element query needs a matrix or vector")
        except NoValue:
            return {"value": None, "stored": False}
        return {"value": jsonable(v), "stored": True}
    raise BadRequest(f"unknown query {what!r} (nvals | tuples | element)")

def _issue_free(service, session: Session, payload: dict, ectx: _Exec | None = None):
    name = _need(payload, "name")
    _check_writable(session, name)
    if name not in session.objects:
        raise ObjectNotFound(f"session {session.name!r} has no {name!r}")
    obj = session.objects.pop(name)
    session.dtypes.pop(name, None)
    if not session.is_shared:
        # a shared object may still be referenced by published (pinned)
        # versions: drop the working-set name only, let GC reclaim buffers
        obj.free()
    return {"freed": name}


_ISSUE = {
    "define": _issue_define,
    "upload": _issue_upload,
    "download": _issue_download,
    "program": _issue_program,
    "algorithm": _issue_algorithm,
    "update": _issue_update,
    "stream_mutate": _issue_stream_mutate,
    "query": _issue_query,
    "free": _issue_free,
}


# --------------------------------------------------------------------------
# The batch driver
# --------------------------------------------------------------------------

def _mutates(kind: str, payload: dict) -> bool:
    """Does this shared-session request change the shared store?  A True
    answer triggers a snapshot publication after it executes."""
    if kind in ("define", "upload", "update", "stream_mutate", "free"):
        return True
    if kind == "program":
        if payload.get("declare"):
            return True
        for c in payload.get("calls", []) or []:
            out = c.get("out") if isinstance(c, dict) else getattr(c, "out", None)
            if out is not None:
                return True
        return False
    if kind == "algorithm":
        return payload.get("store_as") is not None
    return False


def _writer_reset(service, session: Session) -> None:
    """Discard a failed shared mutation's partial working state.

    Every successful mutating request publishes immediately, so the
    current version *is* the pre-request state; swinging the working set
    back to it makes shared mutations transactional per request."""
    try:
        context.wait()
    except GraphBLASError:
        pass
    streams = getattr(service, "streams", None)
    if streams is not None:
        streams.on_abort()
    current = service.snapshots.current
    session.objects = dict(current.objects)
    session.dtypes = dict(current.dtypes)


def _fail(service, req, exc: BaseException) -> None:
    req.release_version()
    if req.future.done():  # pragma: no cover - defensive
        return
    reg = metrics.registry
    reg.inc("service.failed")
    reg.inc(f"service.failed.{type(exc).__name__}")
    reg.observe(
        "service.latency_us", (time.monotonic() - req.t_submit) * 1e6
    )
    slo = getattr(service, "slo", None)
    if slo is not None:
        slo.record_failure()
        if slo.budget_exhausted():
            diag.trigger_dump(
                "slo-budget", detail={"request": req.rid, "kind": req.kind}
            )
    req.future.set_exception(exc)


def _fulfil(service, req, result: dict) -> None:
    req.release_version()
    reg = metrics.registry
    reg.inc("service.completed")
    latency_us = (time.monotonic() - req.t_submit) * 1e6
    reg.observe("service.latency_us", latency_us)
    slo = getattr(service, "slo", None)
    if slo is not None:
        slo.observe(latency_us)
        # the exhaustion check only runs on a breach — the happy path pays
        # one float compare
        if latency_us > slo.target_us and slo.budget_exhausted():
            diag.trigger_dump(
                "slo-budget",
                detail={"request": req.rid, "latency_us": round(latency_us)},
            )
    req.future.set_result(result)


def run_batch(service, session: Session, batch: list) -> None:
    """Execute *batch* (requests of one session) on the calling worker.

    Reader sessions run lock-free against the snapshot version each
    request pinned at admission.  The shared (writer) session runs
    copy-on-write: mutated objects are duplicated before their first
    in-place edit, the request's deferred ops are drained, and the
    resulting working set is published as the next immutable version —
    one publication per mutating request, so version numbers order the
    write history densely.
    """
    reg = metrics.registry
    sink = spans.current()
    reg.inc("service.batches")
    reg.observe("service.batch_size", len(batch))
    batching = service.config.batching
    is_writer = session.is_shared
    memo = getattr(service, "memo", None)
    snapshots = getattr(service, "snapshots", None)
    # EXPLAIN is collected batch-wide (the planner sees the whole batch, so
    # per-request records are a filtered view of shared plans) but only
    # when at least one member opted in — otherwise zero recording cost
    col = (
        diag_explain.ExplainCollector()
        if any(getattr(req, "explain", False) for req in batch)
        else None
    )
    with context.activate(session.context), (
        diag_explain.collect(col)
        if col is not None
        else contextlib.nullcontext()
    ):
        bsp = (
            sink.open("batch", "batch", session=session.name, requests=len(batch))
            if sink is not None
            else None
        )
        # (req, result, issue_us, own_drain_us, meta) — own_drain_us is the
        # per-request wait when batching is off; the batched drain is
        # apportioned by the accounting below instead.  meta carries the
        # snapshot/cache facts of the request for the timing response.
        issued: list[tuple] = []
        try:
            for req in batch:
                req.t_start = time.monotonic()
                reg.observe(
                    "service.queue_wait_us", (req.t_start - req.t_submit) * 1e6
                )
                if req.expired(req.t_start):
                    reg.inc("service.deadline_exceeded")
                    session.failed += 1
                    diag.trigger_dump(
                        "deadline",
                        detail={
                            "request": req.rid,
                            "kind": req.kind,
                            "queued_us": round(
                                (req.t_start - req.t_submit) * 1e6
                            ),
                        },
                    )
                    _fail(service, req, DeadlineExceeded(
                        f"request {req.rid} ({req.kind}) expired in queue"
                    ))
                    continue
                span_kw: dict = {"session": session.name, "rid": req.rid}
                if req.trace is not None:
                    # set provenance on the request span so every child —
                    # including sequence-point drains forced mid-issue —
                    # inherits the originating ids
                    span_kw["trace_id"] = req.trace.trace_id
                    span_kw["request_ids"] = [str(req.trace.request_id)]
                    span_kw["trace_ids"] = [req.trace.trace_id]
                rsp = (
                    sink.open(f"request:{req.kind}", "request", **span_kw)
                    if sink is not None
                    else None
                )
                ectx = _Exec(
                    version=req.version, fresh=set() if is_writer else None
                )
                meta: dict = {}
                if req.version is not None:
                    meta["shared_version"] = req.version.vid
                try:
                    t_i0 = time.perf_counter()
                    with tracing.use(req.trace):
                        result = None
                        decision = None
                        if memo is not None and not is_writer and req.version is not None:
                            decision = req.memo_decision
                            if decision is None:  # admitted before the cache
                                decision = analyze_request(req.kind, req.payload)
                            if decision.cacheable:
                                entry = memo.lookup(
                                    req.version.vid, decision.digest
                                )
                                if entry is not None:
                                    result = materialize(entry, decision, session)
                                meta["cache"] = "hit" if result is not None else "miss"
                            else:
                                memo.note_bypass(decision.reason)
                                meta["cache"] = "bypass"
                        if result is None:
                            result = _ISSUE[req.kind](
                                service, session, req.payload, ectx
                            )
                            if (
                                is_writer
                                and snapshots is not None
                                and _mutates(req.kind, req.payload)
                            ):
                                # freeze this mutation's effects, then make
                                # them visible to future admissions
                                context.wait()
                                prev = snapshots.current
                                v = snapshots.publish(
                                    dict(session.objects), dict(session.dtypes)
                                )
                                meta["published_version"] = v.vid
                                # copy-on-write keeps untouched objects
                                # identical, so identity names the changed set
                                changed = {
                                    k for k, o in v.objects.items()
                                    if prev.objects.get(k) is not o
                                } | (set(prev.objects) - set(v.objects))
                                streams = getattr(service, "streams", None)
                                if streams is not None:
                                    sizes = streams.on_publish(v, changed)
                                    if sizes:
                                        meta["stream_delta"] = sum(
                                            sizes.values()
                                        )
                                if memo is not None:
                                    memo.on_publish(v.vid, changed=changed)
                            if (
                                decision is not None
                                and decision.cacheable
                                and memo is not None
                            ):
                                # building the entry serializes the declared
                                # outputs — a sequence point that forces this
                                # request's ops, so the blobs capture exactly
                                # its view; errors propagate like any other
                                # failure of this request's deferred work
                                memo.insert(
                                    req.version.vid,
                                    decision.digest,
                                    build_entry(decision, session, result),
                                )
                    issue_us = (time.perf_counter() - t_i0) * 1e6
                    own_drain_us = 0.0
                    if not batching:
                        # no cross-request batch → the whole drain is this
                        # request's; no apportioning needed
                        t_d0 = time.perf_counter()
                        context.wait()
                        own_drain_us = (time.perf_counter() - t_d0) * 1e6
                        reg.observe("service.drain_us", own_drain_us)
                    reg.observe("service.issue_us", issue_us)
                    issued.append((req, result, issue_us, own_drain_us, meta))
                except GraphBLASError as exc:
                    session.failed += 1
                    if is_writer:
                        _writer_reset(service, session)
                    _fail(service, req, exc)
                    if rsp is not None:
                        rsp.attrs["error"] = type(exc).__name__
                except Exception as exc:
                    session.failed += 1
                    if is_writer:
                        _writer_reset(service, session)
                    _fail(service, req, BadRequest(
                        f"request {req.rid} ({req.kind}) failed: {exc!r}"
                    ))
                    if rsp is not None:
                        rsp.attrs["error"] = type(exc).__name__
                finally:
                    # the span covers the issue phase; deferred work appears
                    # under the batch's drain span carrying per-node
                    # request_ids provenance instead
                    if rsp is not None:
                        if "cache" in meta:
                            rsp.attrs["cache"] = meta["cache"]
                        sink.close(rsp)

            drain_error: GraphBLASError | None = None
            shares: dict[str, float] = {}
            if batching:
                # one drain for the whole batch: install accounting so the
                # planner bills each scheduled node's wall/flops to the
                # requests whose deferred ops it runs, then apportion the
                # measured drain wall-clock by those tallies
                acc = tracing.DrainAccounting()
                t_d0 = time.perf_counter()
                try:
                    with tracing.accounting(acc):
                        context.wait()
                except GraphBLASError as exc:
                    drain_error = exc
                drain_wall = time.perf_counter() - t_d0
                reg.observe("service.drain_us", drain_wall * 1e6)
                shares = {
                    rid: s * 1e6 for rid, s in acc.shares(drain_wall).items()
                }

            # futures are fulfilled only after the drain: an error surfacing
            # at the batch wait() poisons the failed op's outputs and the
            # un-run tail (section V), so it fails every request whose
            # deferred work may be involved — the same over-approximation
            # GrB_wait itself makes
            for req, result, issue_us, own_drain_us, meta in issued:
                if drain_error is not None:
                    session.failed += 1
                    _fail(service, req, drain_error)
                    continue
                rid_key = (
                    str(req.trace.request_id) if req.trace is not None
                    else str(req.rid)
                )
                drain_share_us = (
                    shares.get(rid_key, 0.0) if batching else own_drain_us
                )
                reg.observe("service.drain_share_us", drain_share_us)
                if req.timing:
                    result = dict(result)
                    result["timing"] = {
                        "trace_id": req.trace.trace_id if req.trace else None,
                        "request_id": rid_key,
                        "queue_wait_us": (req.t_start - req.t_submit) * 1e6,
                        "issue_us": issue_us,
                        "drain_share_us": drain_share_us,
                        "total_us": (time.monotonic() - req.t_submit) * 1e6,
                        **meta,
                    }
                if col is not None and getattr(req, "explain", False):
                    record = col.for_request(rid_key)
                    record["memo"] = meta.get("cache")
                    record["snapshot"] = (
                        meta.get("shared_version")
                        if meta.get("shared_version") is not None
                        else meta.get("published_version")
                    )
                    record["text"] = diag_explain.render_text(record)
                    result = dict(result)
                    result["explain"] = record
                session.completed += 1
                _fulfil(service, req, result)
            if col is not None:
                # the wire `explain` command replays the last collected
                # batch, so opted-in runs are inspectable after the fact
                service.last_explain = col.record()
        finally:
            # a batch must never leave deferred tenant work behind on this
            # worker thread, whatever went wrong above
            try:
                context.wait()
            except GraphBLASError:
                pass
            if bsp is not None:
                sink.close(bsp)


def validate_session(session: Session) -> None:
    """Structural-invariant check of every object the session holds."""
    with context.activate(session.context):
        validation.check_all(session.objects.values())
