"""Copy-on-write versioned snapshots of the shared graph store.

This module replaces the service's former ``RWLock``.  The old design
serialized every reader batch against every writer batch; under the
read-mostly traffic the service targets, that lock *was* the hot path.
The snapshot design removes it entirely:

* the shared store is a sequence of **immutable versions**; a version is
  a plain ``{name: object}`` mapping whose objects are never mutated
  after publication;
* a **reader pins** the current version at admission — an O(1) pointer
  grab plus a refcount bump under a mutex that is never held across any
  graph work, so readers never wait for writers and writers never wait
  for readers;
* a **writer publishes** a new version atomically: the shared session's
  batch executor builds a copy-on-write working set (untouched objects
  are carried over by reference, mutated ones are duplicated first) and
  swaps the current-version pointer;
* an old version is **retired** as soon as it is unpinned and no longer
  current, so the store's memory footprint is bounded by the number of
  in-flight reader batches, not by write traffic.

This is the paper's "read-only objects may be shared between sequences"
rule made first-class: every reader sequence sees one frozen, fully
drained publication of the shared store, and the writer sequence is the
only mutator — of private duplicates, never of anything published.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["GraphVersion", "SnapshotStore"]


class GraphVersion:
    """One immutable publication of the shared store.

    ``objects`` / ``dtypes`` must never be mutated after construction —
    the store hands the same instance to any number of concurrent
    readers.  Refcounting fields are guarded by the owning store's lock.
    """

    __slots__ = ("vid", "objects", "dtypes", "pins", "retired")

    def __init__(self, vid: int, objects: dict[str, Any], dtypes: dict[str, str]):
        self.vid = vid
        self.objects = objects
        self.dtypes = dtypes
        self.pins = 0
        self.retired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GraphVersion v{self.vid} objects={len(self.objects)} "
            f"pins={self.pins}{' retired' if self.retired else ''}>"
        )


class SnapshotStore:
    """The versioned shared store: pin / publish / retire.

    The single mutex guards only the version table and refcounts; it is
    held for O(1) pointer work.  All graph copying happens in the writer
    *before* :meth:`publish` is called, and all graph reading happens in
    readers *after* :meth:`pin` returns — neither under the lock.
    """

    def __init__(self):
        self._mu = threading.Lock()
        self._current = GraphVersion(0, {}, {})
        self._versions: dict[int, GraphVersion] = {0: self._current}
        #: total versions ever retired (monotonic; the stress suite
        #: asserts this tracks publication count, i.e. no version leaks)
        self.retired = 0
        #: total publications (monotonic)
        self.published = 0

    # ---------------------------------------------------------------- reads
    @property
    def current(self) -> GraphVersion:
        """The latest publication (an unpinned peek — executor-internal
        uses only; readers that outlive a lock region must :meth:`pin`)."""
        return self._current

    def current_vid(self) -> int:
        return self._current.vid

    def pin(self) -> GraphVersion:
        """Pin and return the current version.  The caller must
        :meth:`unpin` exactly once; until then the version's objects are
        guaranteed immutable and alive."""
        with self._mu:
            v = self._current
            v.pins += 1
            return v

    def unpin(self, version: GraphVersion) -> None:
        with self._mu:
            version.pins -= 1
            self._maybe_retire(version)

    # --------------------------------------------------------------- writes
    def publish(self, objects: dict[str, Any], dtypes: dict[str, str]) -> GraphVersion:
        """Atomically install *objects*/*dtypes* as the next version.

        The caller transfers ownership: the mappings (and any objects in
        them not shared with prior versions) must not be mutated after
        this call.  Returns the new version.  The superseded version is
        retired immediately if nobody holds a pin on it.
        """
        with self._mu:
            old = self._current
            v = GraphVersion(old.vid + 1, objects, dtypes)
            self._versions[v.vid] = v
            self._current = v
            self.published += 1
            self._maybe_retire(old)
            return v

    # -------------------------------------------------------------- interna
    def _maybe_retire(self, version: GraphVersion) -> None:
        # lock held.  Retiring only drops the store's reference: objects
        # may be shared with newer versions (copy-on-write), so their
        # buffers are reclaimed by the garbage collector once the last
        # version referencing them goes away — never freed eagerly.
        if version.pins == 0 and version is not self._current and not version.retired:
            version.retired = True
            del self._versions[version.vid]
            self.retired += 1

    # ----------------------------------------------------------------- intro
    def live_versions(self) -> int:
        with self._mu:
            return len(self._versions)

    def stats(self) -> dict:
        with self._mu:
            return {
                "version": self._current.vid,
                "objects": len(self._current.objects),
                "live_versions": len(self._versions),
                "pinned": sum(v.pins for v in self._versions.values()),
                "published": self.published,
                "retired": self.retired,
            }
