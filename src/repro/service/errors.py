"""Typed errors of the multi-tenant graph service.

The service extends the paper's two-class error model (section V) one layer
up: every way a *request* can fail — rejected at admission, expired before
execution, aimed at a missing session or object, malformed — is a distinct
exception class carrying a ``GrB_Info``-style code, exactly as
``OutOfMemory`` and friends do for operations.  The TCP front-end maps the
class name and ``info`` code onto the wire, so remote clients see the same
taxonomy as in-process ones.
"""

from __future__ import annotations

from ..info import GraphBLASError, Info

__all__ = [
    "ServiceError",
    "QueueFull",
    "DeadlineExceeded",
    "SessionNotFound",
    "ObjectNotFound",
    "BadRequest",
    "ServiceClosed",
]


class ServiceError(GraphBLASError):
    """Base class for service-layer failures."""

    info = Info.PANIC


class QueueFull(ServiceError):
    """Admission rejected the request: the session's bounded queue is full.

    The backpressure signal — typed, immediate, and never silent, in the
    spirit of ``GrB_INSUFFICIENT_SPACE``: the caller's request was left
    untouched and may be retried.
    """

    info = Info.INSUFFICIENT_SPACE


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before a worker could execute it."""

    info = Info.PANIC


class SessionNotFound(ServiceError):
    """The request names a session that was never opened (or was closed)."""

    info = Info.INVALID_VALUE


class ObjectNotFound(ServiceError):
    """The request references a graph/vector name the session does not hold."""

    info = Info.INVALID_VALUE


class BadRequest(ServiceError):
    """The request payload is structurally invalid (unknown kind, missing
    fields, write to a read-only shared name, unsupported dtype, ...)."""

    info = Info.INVALID_VALUE


class ServiceClosed(ServiceError):
    """The service is draining or stopped; no new work is admitted."""

    info = Info.PANIC
