"""Multi-tenant graph service on top of the GraphBLAS reproduction.

The service promotes the paper's *sequence* — the unit of deferred,
reorderable execution in nonblocking mode — to a serving primitive: each
tenant session owns an isolated nonblocking :class:`repro.context.Context`
plus a store of named graphs, and the worker pool drains each session's
bounded admission queue through the planner as one batch, so fusion / CSE /
parallel scheduling apply *across* independently submitted requests.

Entry points
============

* :class:`Service` / :class:`ServiceConfig` — the in-process service;
* :class:`Client` — direct in-process client bound to one session;
* :class:`TCPClient` — JSON-lines client for the TCP front-end;
* ``python -m repro.service`` — threaded JSON-lines TCP server;
* ``python -m repro.service.loadgen`` — deterministic load generator with
  serial-replay divergence checking and ``repro-bench/1`` output.
"""

from __future__ import annotations

from .client import Client, TCPClient
from .errors import (
    BadRequest,
    DeadlineExceeded,
    ObjectNotFound,
    QueueFull,
    ServiceClosed,
    ServiceError,
    SessionNotFound,
)
from .memo import CacheDecision, ResultCache, analyze_request
from .request import ADMIN_KINDS, DATA_KINDS, Request
from .service import Service, ServiceConfig
from .session import SHARED_PREFIX, SHARED_SESSION, Session
from .snapshot import GraphVersion, SnapshotStore

__all__ = [
    "Service",
    "ServiceConfig",
    "Client",
    "TCPClient",
    "Session",
    "Request",
    "GraphVersion",
    "SnapshotStore",
    "ResultCache",
    "CacheDecision",
    "analyze_request",
    "ServiceError",
    "QueueFull",
    "DeadlineExceeded",
    "SessionNotFound",
    "ObjectNotFound",
    "BadRequest",
    "ServiceClosed",
    "DATA_KINDS",
    "ADMIN_KINDS",
    "SHARED_SESSION",
    "SHARED_PREFIX",
]
