"""The in-process multi-tenant graph service.

:class:`Service` fronts the whole stack: sessions own isolated nonblocking
contexts and named graphs, an admission pipeline applies backpressure per
session, and a worker pool drains session queues in planner-batched
sequences.  The design in one paragraph: **a session is a sequence** — the
paper's unit of deferred execution — promoted to a serving primitive.
Admission keeps each sequence bounded, scheduling keeps it serial (one
worker per session at a time, many sessions in parallel), and batching
hands the planner whole queue-fuls so fusion/CSE/parallel scheduling work
across independently submitted requests.

Admission control:

* per-session bounded FIFO queue (``queue_capacity``); a full queue
  rejects immediately with the typed :class:`~repro.service.errors.QueueFull`
  — callers see backpressure, never silent drops or unbounded growth;
* per-request deadlines (absolute, checked when a worker picks the
  request up) fail with :class:`DeadlineExceeded`;
* a draining/stopped service rejects with :class:`ServiceClosed`.

Observability: counters and power-of-4 histograms land in the process
:data:`repro.obs.metrics.registry` (enabled for the service's lifetime —
the "production profile" of the metrics module); :meth:`Service.stats`
derives queue depths, QPS, and p50/p99 latency from them, and any
serving window can be span-captured with :func:`repro.obs.capture` for
Chrome-trace export.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any

from .. import context
from ..obs import diag, metrics
from ..obs.metrics import SLOTracker, percentile
from ..obs.tracing import TraceContext
from .. import parallel
from ..parallel import get_num_threads
from .errors import QueueFull, ServiceClosed, SessionNotFound
from .executor import run_batch, validate_session
from .memo import ResultCache, analyze_request
from .request import Request, new_request
from .session import SHARED_SESSION, Session
from .snapshot import SnapshotStore
from .streams import StreamState

__all__ = ["Service", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Tunables of one :class:`Service` instance."""

    #: worker-pool size; None → ``max(2, repro.parallel.get_num_threads())``
    workers: int | None = None
    #: bound of each session's admission queue
    queue_capacity: int = 64
    #: most requests one batch may drain from a session's queue
    max_batch: int = 32
    #: batch each drained queue through the planner (False → per-request wait)
    batching: bool = True
    #: default per-request timeout in seconds (None → no deadline)
    default_timeout: float | None = None
    #: execution mode of newly opened session contexts
    session_mode: context.Mode = context.Mode.NONBLOCKING
    #: start the worker pool in __init__ (tests may start manually)
    autostart: bool = True
    #: rolling-window p99 latency target in milliseconds (None → no SLO)
    slo_p99_ms: float | None = None
    #: width of the SLO observation window in seconds
    slo_window_s: float = 60.0
    #: kernel execution backend for drained batches
    #: (``serial`` | ``threads`` | ``processes`` — see :mod:`repro.parallel`)
    backend: str = "threads"
    #: kernel suite for drained batches (``interpreter`` | ``codegen`` —
    #: see :mod:`repro.kernels`); codegen compiles eligible fused chains
    kernel_backend: str = "interpreter"
    #: shard-pool size for the ``processes`` backend (None → leave the
    #: process-wide :func:`repro.parallel.shard_workers` setting alone)
    shard_workers: int | None = None
    #: cross-request result cache (memoization of cacheable reads on
    #: shared graphs, keyed by snapshot version + canonical program hash)
    cache: bool = True
    #: LRU byte budget of the result cache
    cache_bytes: int = 64 * 1024 * 1024
    #: install the diagnostics layer (flight recorder + anomaly detector)
    diag: bool = True
    #: flight-recorder dump directory (None → $REPRO_DIAG_DIR or tmpdir)
    diag_dir: str | None = None
    #: flight-recorder ring capacity (spans retained)
    diag_capacity: int = 4096
    #: dump horizon: only spans younger than this many seconds are written
    diag_horizon_s: float = 30.0
    #: rate limit between *automatic* dumps (explicit ``dump`` bypasses)
    diag_min_dump_interval_s: float = 5.0

    def worker_count(self) -> int:
        if self.workers:
            return self.workers
        if self.backend == "processes":
            # drain batches fan out across the shard pool; a small service
            # pool is enough to keep it fed (get_num_threads() is pinned to
            # 1 under non-thread backends)
            return 2
        return max(2, get_num_threads())


class Service:
    """Multi-tenant graph service: sessions, admission, batched execution."""

    def __init__(self, config: ServiceConfig | None = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config
        self._mu = threading.Lock()
        self._work = threading.Condition(self._mu)
        self._ready: deque[Session] = deque()
        self._sessions: dict[str, Session] = {}
        self._names = itertools.count(1)
        self._workers: list[threading.Thread] = []
        self._stopping = False
        self._stopped = False
        self._started = False
        self._t0 = time.monotonic()
        # the shared graph store is a sequence of immutable copy-on-write
        # versions: every non-shared request pins the current version at
        # admission; the shared session is the single writer and publishes
        # a new version per mutating request
        self.snapshots = SnapshotStore()
        self.memo: ResultCache | None = (
            ResultCache(config.cache_bytes) if config.cache else None
        )
        # incremental-algorithm handles over shared graphs, advanced in
        # lock-step with snapshot publications by streaming edge deltas
        self.streams = StreamState()
        # mutations to shared graphs queue through the shared session — the
        # only path that sees (and builds) unpublished working state
        self._shared = Session(
            SHARED_SESSION,
            capacity=config.queue_capacity,
            mode=config.session_mode,
        )
        self._sessions[SHARED_SESSION] = self._shared
        self.slo: SLOTracker | None = (
            SLOTracker(config.slo_p99_ms * 1e3, window_s=config.slo_window_s)
            if config.slo_p99_ms is not None
            else None
        )
        metrics.registry.enable()
        # the production diagnostics layer: an always-on flight-recorder
        # ring plus the online anomaly detector (both process-global, so a
        # later Service instance supersedes an earlier one's installation)
        self.diag_recorder = self.diag_detector = None
        #: the most recent drain's EXPLAIN record (the `explain` wire command)
        self.last_explain: dict | None = None
        if config.diag:
            self.diag_recorder, self.diag_detector = diag.install(
                dump_dir=config.diag_dir,
                capacity=config.diag_capacity,
                horizon_s=config.diag_horizon_s,
                min_dump_interval_s=config.diag_min_dump_interval_s,
            )
        parallel.set_backend(config.backend)
        parallel.set_kernel_backend(config.kernel_backend)
        if config.shard_workers is not None:
            parallel.set_shard_workers(config.shard_workers)
        if config.autostart:
            self.start()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._mu:
            if self._started:
                return
            self._started = True
            n = self.config.worker_count()
            for i in range(n):
                t = threading.Thread(
                    target=self._worker_loop, name=f"svc-worker-{i}", daemon=True
                )
                self._workers.append(t)
                t.start()

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.

        With ``drain=True`` (graceful) new admissions are rejected while
        already-admitted requests run to completion before the workers
        exit.  With ``drain=False`` still-queued requests fail with
        :class:`ServiceClosed`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._work:
            if self._stopped:
                return
            self._stopping = True
            if not self._started:
                drain = False  # nothing can drain without a worker pool
            if not drain:
                for sess in self._sessions.values():
                    while sess.pending:
                        req = sess.pending.popleft()
                        req.release_version()
                        if not req.future.done():
                            req.future.set_exception(
                                ServiceClosed("service shut down before execution")
                            )
                if not self._started:
                    self._ready.clear()
                    for sess in self._sessions.values():
                        sess.scheduled = False
            while any(s.pending or s.scheduled for s in self._sessions.values()):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._work.wait(timeout=remaining)
            self._stopped = True
            self._work.notify_all()
        for t in self._workers:
            t.join(timeout=5.0)
        if self.diag_recorder is not None:
            # only tears down if still the installed pair (a later Service
            # instance's install wins)
            diag.uninstall(self.diag_recorder)

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------- sessions
    def open_session(
        self, name: str | None = None, *, mode: context.Mode | None = None
    ) -> str:
        """Create a session; returns its name (generated when omitted)."""
        with self._mu:
            if self._stopping:
                raise ServiceClosed("service is shutting down")
            if name is None:
                name = f"s{next(self._names)}"
                while name in self._sessions:
                    name = f"s{next(self._names)}"
            elif name in self._sessions:
                sess = self._sessions[name]
                if not sess.closed:
                    return name  # reopening an open session is a no-op
                raise SessionNotFound(f"session {name!r} was closed")
            self._sessions[name] = Session(
                name,
                capacity=self.config.queue_capacity,
                mode=mode or self.config.session_mode,
            )
            return name

    def close_session(self, name: str) -> None:
        """Stop admitting to *name*; queued work still completes."""
        with self._work:
            sess = self._sessions.get(name)
            if sess is None or sess.closed:
                raise SessionNotFound(f"no open session {name!r}")
            if sess.is_shared:
                raise SessionNotFound("the shared session cannot be closed")
            sess.closed = True
            while sess.pending or sess.scheduled:
                self._work.wait()

    def _session(self, name: str) -> Session:
        sess = self._sessions.get(name)
        if sess is None or sess.closed:
            raise SessionNotFound(f"no open session {name!r}")
        return sess

    @property
    def shared_session(self) -> Session:
        return self._shared

    # ------------------------------------------------------------ admission
    def submit(
        self,
        session: str,
        kind: str,
        payload: dict | None = None,
        *,
        timeout: float | None = None,
        trace: TraceContext | None = None,
        timing: bool = False,
        explain: bool = False,
    ) -> Future:
        """Admit one request; returns its :class:`Future`.

        Raises :class:`QueueFull` / :class:`ServiceClosed` /
        :class:`SessionNotFound` *synchronously* — admission errors never
        travel through the future.  *trace* carries a client-minted
        :class:`TraceContext` (one is minted at admission otherwise);
        *timing* opts the response into the per-request latency
        decomposition; *explain* attaches the drain-time planner's
        EXPLAIN record for this request (Descriptor-style opt-in).
        """
        req = new_request(
            session, kind, payload,
            timeout=self.config.default_timeout if timeout is None else timeout,
            trace=trace, timing=timing, explain=explain,
        )
        if self.memo is not None:
            # pure in (kind, payload): canonicalize on the submitting
            # thread, outside the admission lock, so the worker's issue
            # loop only pays for the lookup
            req.memo_decision = analyze_request(req.kind, req.payload)
        reg = metrics.registry
        with self._work:
            if self._stopping or self._stopped:
                reg.inc("service.rejected.closed")
                raise ServiceClosed("service is shutting down")
            sess = self._session(session)
            if len(sess.pending) >= sess.capacity:
                reg.inc("service.rejected.queue_full")
                raise QueueFull(
                    f"session {session!r} queue is full "
                    f"({sess.capacity} pending)"
                )
            reg.inc("service.admitted")
            sess.admitted += 1
            if not sess.is_shared:
                # the read path: pin the current shared-store version now so
                # the request sees one frozen publication regardless of any
                # writer publishing between admission and execution
                req.pin_version(self.snapshots)
            sess.pending.append(req)
            if not sess.scheduled:
                sess.scheduled = True
                self._ready.append(sess)
                self._work.notify()
        return req.future

    def request(
        self,
        session: str,
        kind: str,
        payload: dict | None = None,
        *,
        timeout: float | None = None,
        wait_timeout: float | None = 60.0,
        trace: TraceContext | None = None,
        timing: bool = False,
        explain: bool = False,
    ) -> dict:
        """Submit and wait: the synchronous convenience the Client uses."""
        fut = self.submit(
            session, kind, payload, timeout=timeout, trace=trace,
            timing=timing, explain=explain,
        )
        return fut.result(timeout=wait_timeout)

    # -------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not self._ready and not self._stopped:
                    self._work.wait()
                if self._stopped and not self._ready:
                    return
                sess = self._ready.popleft()
                batch = []
                while sess.pending and len(batch) < self.config.max_batch:
                    batch.append(sess.pending.popleft())
            try:
                if batch:
                    run_batch(self, sess, batch)
            except BaseException as exc:  # executor bug: fail, don't kill worker
                for req in batch:
                    req.release_version()
                    if not req.future.done():
                        req.future.set_exception(
                            ServiceClosed(f"internal executor failure: {exc!r}")
                        )
            finally:
                with self._work:
                    if sess.pending:
                        self._ready.append(sess)
                        self._work.notify()
                    else:
                        sess.scheduled = False
                    # wake shutdown/close_session drain waiters
                    self._work.notify_all()

    # ---------------------------------------------------------------- intro
    def stats(self) -> dict:
        """Service-level view: queues, totals, QPS, latency percentiles."""
        snap = metrics.registry.snapshot()
        counters = snap["counters"]
        hists = snap["histograms"]
        lat = hists.get("service.latency_us")
        uptime = time.monotonic() - self._t0
        completed = counters.get("service.completed", 0)
        with self._mu:
            sessions = {
                name: {
                    "depth": s.depth(),
                    "admitted": s.admitted,
                    "completed": s.completed,
                    "failed": s.failed,
                    "objects": len(s.objects),
                    "closed": s.closed,
                }
                for name, s in self._sessions.items()
            }
        return {
            "uptime_s": uptime,
            "workers": len(self._workers),
            "batching": self.config.batching,
            "queue_capacity": self.config.queue_capacity,
            "sessions": sessions,
            "queue_depth": sum(s["depth"] for s in sessions.values()),
            "admitted": counters.get("service.admitted", 0),
            "completed": completed,
            "failed": counters.get("service.failed", 0),
            "rejected_queue_full": counters.get("service.rejected.queue_full", 0),
            "rejected_closed": counters.get("service.rejected.closed", 0),
            "deadline_exceeded": counters.get("service.deadline_exceeded", 0),
            "batches": counters.get("service.batches", 0),
            "qps": (completed / uptime) if uptime > 0 else 0.0,
            "latency_p50_us": percentile(lat, 0.50) if lat else None,
            "latency_p99_us": percentile(lat, 0.99) if lat else None,
            "breakdown": {
                stage: {
                    "p50_us": percentile(h, 0.50) if h else None,
                    "p99_us": percentile(h, 0.99) if h else None,
                    "count": h["count"] if h else 0,
                }
                for stage, h in (
                    ("queue_wait", hists.get("service.queue_wait_us")),
                    ("issue", hists.get("service.issue_us")),
                    ("drain", hists.get("service.drain_us")),
                    ("drain_share", hists.get("service.drain_share_us")),
                )
            },
            "slo": self.slo.summary() if self.slo is not None else None,
            "snapshots": self.snapshots.stats(),
            "cache": self.memo.stats() if self.memo is not None else None,
            "streams": self.streams.stats(),
            "diag": self.diag_stats(),
        }

    def diag_stats(self) -> dict | None:
        """Flight-recorder / anomaly-detector view (None when diag is off)."""
        rec, det = self.diag_recorder, self.diag_detector
        if rec is None:
            return None
        return {
            "dump_dir": rec.dump_dir,
            "dumps": len(rec.dumps),
            "ring_spans": len(rec.ring.ring),
            "anomaly": det.stats() if det is not None else None,
            "suspects": det.suspects() if det is not None else [],
        }

    def health(self) -> dict:
        """Liveness/readiness: cheap enough for a probe loop."""
        with self._mu:
            depth = sum(
                len(s.pending) for s in self._sessions.values()
            )
            sessions = sum(
                1 for s in self._sessions.values() if not s.closed
            )
            status = (
                "stopping" if self._stopping or self._stopped
                else "ok" if self._started
                else "idle"
            )
        suspects: list = []
        if status == "ok" and self.diag_detector is not None:
            # a running service with sustained kernel-latency anomalies is
            # degraded: alive, serving, but someone should look at it
            suspects = self.diag_detector.suspects()
            if suspects:
                status = "degraded"
        out = {
            "status": status,
            "uptime_s": time.monotonic() - self._t0,
            "workers": len(self._workers),
            "sessions": sessions,
            "queue_depth": depth,
        }
        if suspects:
            out["suspects"] = suspects
        if self.slo is not None:
            s = self.slo.summary()
            out["slo_met"] = s["window_met"]
            out["slo_burn_rate"] = s["burn_rate"]
        return out

    def metrics_snapshot(self) -> dict:
        """Raw counter/histogram snapshot of the process registry."""
        return metrics.registry.snapshot()

    def validate_all(self) -> int:
        """``check_all`` every session's objects; returns objects checked."""
        with self._mu:
            sessions = [s for s in self._sessions.values()]
        n = 0
        for sess in sessions:
            validate_session(sess)
            n += len(sess.objects)
        return n
