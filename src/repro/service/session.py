"""Sessions: the unit of tenancy, isolation, and serialization.

A :class:`Session` owns

* an isolated :class:`repro.context.Context` (nonblocking by default) — its
  GraphBLAS sequences never share mode, queue, or pending-error state with
  any other tenant;
* a **named-object store**: matrices/vectors/scalars addressed by client
  chosen names, plus the dtype token of each (the declarative program
  executor needs it for scalar coercion);
* a fresh operator :class:`~repro.fuzz.executor.Env` (UDT domains compare
  by identity, so each session materializes its own);
* a **bounded request queue** with FIFO order — the admission-control
  surface.  One worker executes a session's queue at a time, so a session
  is exactly one of the paper's "sequences" writ large: per-tenant program
  order with no intra-session races, while distinct sessions run in
  parallel across the worker pool.

Queue fields (``pending``, ``scheduled``, ``closed``) are guarded by the
owning service's single admission lock, not by the session itself — the
service is the only mutator, which keeps lock ordering trivial.

The module also provides the :class:`RWLock` the service uses around the
shared graph store: session batches that *read* shared objects take it
shared, mutations routed through the internal shared session take it
exclusively — the "read-only objects may be shared between sequences" rule
of section IV, enforced at serving granularity.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from .. import context
from ..fuzz.executor import Env

__all__ = ["Session", "RWLock", "SHARED_SESSION", "SHARED_PREFIX"]

#: reserved session name whose object store is readable by every tenant
SHARED_SESSION = "shared"
#: operand-name prefix that resolves into the shared store
SHARED_PREFIX = "shared:"


class Session:
    """One tenant: context + named objects + bounded request queue."""

    def __init__(
        self,
        name: str,
        *,
        capacity: int,
        mode: context.Mode = context.Mode.NONBLOCKING,
    ):
        self.name = name
        self.context = context.Context(mode, name=f"session:{name}")
        self.env = Env()
        self.objects: dict[str, Any] = {}
        self.dtypes: dict[str, str] = {}
        self.capacity = capacity
        self.pending: deque = deque()
        self.scheduled = False
        self.closed = False
        # monotonically increasing counters (read for stats, written only
        # by the admission path / executing worker)
        self.admitted = 0
        self.completed = 0
        self.failed = 0

    @property
    def is_shared(self) -> bool:
        return self.name == SHARED_SESSION

    def depth(self) -> int:
        return len(self.pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Session {self.name} objects={len(self.objects)} "
            f"pending={len(self.pending)}>"
        )


class RWLock:
    """Classic writer-preference readers/writer lock (no upgrade)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Guard:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire, release):
            self._acquire = acquire
            self._release = release

        def __enter__(self):
            self._acquire()

        def __exit__(self, *exc):
            self._release()

    def read(self) -> "_Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def write(self) -> "_Guard":
        return self._Guard(self.acquire_write, self.release_write)
