"""Sessions: the unit of tenancy, isolation, and serialization.

A :class:`Session` owns

* an isolated :class:`repro.context.Context` (nonblocking by default) — its
  GraphBLAS sequences never share mode, queue, or pending-error state with
  any other tenant;
* a **named-object store**: matrices/vectors/scalars addressed by client
  chosen names, plus the dtype token of each (the declarative program
  executor needs it for scalar coercion);
* a fresh operator :class:`~repro.fuzz.executor.Env` (UDT domains compare
  by identity, so each session materializes its own);
* a **bounded request queue** with FIFO order — the admission-control
  surface.  One worker executes a session's queue at a time, so a session
  is exactly one of the paper's "sequences" writ large: per-tenant program
  order with no intra-session races, while distinct sessions run in
  parallel across the worker pool.

Queue fields (``pending``, ``scheduled``, ``closed``) are guarded by the
owning service's single admission lock, not by the session itself — the
service is the only mutator, which keeps lock ordering trivial.

Shared-store coherence is **lock-free for readers**: batches that read
shared objects execute against an immutable :class:`~repro.service.snapshot.GraphVersion`
pinned at admission, and mutations routed through the internal shared
session publish new versions through the service's
:class:`~repro.service.snapshot.SnapshotStore` — the "read-only objects
may be shared between sequences" rule of section IV, enforced by
copy-on-write publication instead of the RWLock earlier revisions used.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .. import context
from ..fuzz.executor import Env

__all__ = ["Session", "SHARED_SESSION", "SHARED_PREFIX"]

#: reserved session name whose object store is readable by every tenant
SHARED_SESSION = "shared"
#: operand-name prefix that resolves into the shared store
SHARED_PREFIX = "shared:"


class Session:
    """One tenant: context + named objects + bounded request queue."""

    def __init__(
        self,
        name: str,
        *,
        capacity: int,
        mode: context.Mode = context.Mode.NONBLOCKING,
    ):
        self.name = name
        self.context = context.Context(mode, name=f"session:{name}")
        self.env = Env()
        self.objects: dict[str, Any] = {}
        self.dtypes: dict[str, str] = {}
        self.capacity = capacity
        self.pending: deque = deque()
        self.scheduled = False
        self.closed = False
        # monotonically increasing counters (read for stats, written only
        # by the admission path / executing worker)
        self.admitted = 0
        self.completed = 0
        self.failed = 0

    @property
    def is_shared(self) -> bool:
        return self.name == SHARED_SESSION

    def depth(self) -> int:
        return len(self.pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Session {self.name} objects={len(self.objects)} "
            f"pending={len(self.pending)}>"
        )
