"""Cross-request result memoization for the graph service.

The planner's CSE pass deduplicates identical subexpressions *within one
drain*; this package is the same idea lifted across requests, sessions,
and time.  A cacheable request is canonicalized into a dataflow digest
(:mod:`.hashing`), paired with the shared-store snapshot version it was
admitted against, and looked up in an LRU byte-budgeted store
(:mod:`.cache`).  A hit replays the original request's observable
effects — response and declared session objects — without touching the
planner at all.
"""

from .cache import CacheEntry, ResultCache, build_entry, materialize
from .hashing import CACHEABLE_KINDS, CacheDecision, analyze_request

__all__ = [
    "CacheEntry",
    "ResultCache",
    "build_entry",
    "materialize",
    "CacheDecision",
    "analyze_request",
    "CACHEABLE_KINDS",
]
