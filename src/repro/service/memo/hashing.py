"""Request canonicalization: is it cacheable, and under which digest?

:func:`analyze_request` inspects one admitted data request and either
produces a :class:`CacheDecision` carrying a **canonical program key**
— built on :mod:`repro.execution.planner.canonical`, the CSE
fingerprint generalized across requests — or a typed bypass reason.
States chain as plain tuple trees (no hashing while walking the
program); only the handful of *final* states are condensed to hex
digests, once each, so downstream cache keys and entry maps stay cheap
flat strings.

Cacheability is deliberately conservative; a request is cacheable only
when serving it from an old result is *observationally identical* to
executing it:

* every external operand resolves into the **shared store** (``shared:``
  prefix) — shared content is pinned by the snapshot version in the
  cache key, while session-private objects have no version discipline;
* every output is **freshly declared by the request itself** (or, for
  ``algorithm``, lands under ``store_as``) — the entry can then
  materialize those objects into the session store on a hit, preserving
  the request's side effects exactly;
* every operator token resolves in the **built-in registries** — a
  non-registry UDF (the ``PSET_*`` algebra, unknown tokens) has no
  process-stable identity, so such programs always execute;
* the request kind is ``program``, ``algorithm``, or ``query`` — the
  read-path kinds; mutations are never cached.

Alpha-equivalence comes from canonicalizing *dataflow*, not names: a
declared temporary's identity is the state tuple of its declaration and
of the chain of operations writing it, so renamed temporaries and
reordered independent operations converge to the same state.  Response
parts whose order is observable (scalar results) are chained in order;
parts whose order is not (the set of declared objects, the fetched set)
enter the key as sorted multisets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...execution.planner.canonical import DataflowHasher, digest
from ...fuzz.program import _CANONICAL
from ..session import SHARED_PREFIX

__all__ = ["CacheDecision", "analyze_request", "CACHEABLE_KINDS"]

#: request kinds the cache may serve (the pure / freshly-declaring reads)
CACHEABLE_KINDS = frozenset(("program", "algorithm", "query"))

#: argument keys holding operand *names* (everything else is structural)
_NAME_KEYS = ("a", "b", "u", "mask")

#: operator-token argument keys, with the registry resolving each
_TOKEN_KEYS = ("semiring", "binop", "monoid", "unary", "iuop", "accum")


@dataclass(frozen=True)
class CacheDecision:
    """Outcome of analyzing one request for cacheability."""

    cacheable: bool
    kind: str
    #: bypass reason (stable token, for metrics) when not cacheable
    reason: str = ""
    #: canonical program key (cache key half; version is the other) — a
    #: hashable tuple tree compared exactly, so no collision risk
    digest: Any = None
    #: ``(user_name, dtype_token, state)`` per declared object, in
    #: declaration order — the hit path materializes these
    declared: tuple = ()
    #: ``(user_name, state)`` per fetched name
    fetches: tuple = ()
    #: user-chosen ``store_as`` name of an algorithm request
    store_as: str | None = None
    #: ``state -> declaration spec`` for declared objects whose final
    #: state is still their declaration state — i.e. never written by
    #: any call.  A hit rebuilds these from the hit request's own
    #: (key-equal, hence identical) declaration instead of a serialized
    #: blob, so entries skip serializing them entirely.
    pristine: Any = None
    #: bare (prefix-stripped) shared-store names the request reads — the
    #: delta-aware invalidation set: a publish that leaves all of them
    #: untouched re-keys the entry to the new version instead of dropping
    shared_reads: frozenset = frozenset()


def _bypass(kind: str, reason: str) -> CacheDecision:
    return CacheDecision(cacheable=False, kind=kind, reason=reason)


def _plain(value: Any) -> Any:
    """Canonicalize *value* to a hashable tree.

    Strings, numbers, bools and None pass through; lists/tuples become
    tuples; dicts become key-sorted ``(key, value)`` pair tuples; numpy
    scalars unwrap via ``.item()``.  Anything else raises ``TypeError``
    — the caller's "unhashable → bypass" rule.  The trees feed straight
    into :class:`DataflowHasher` states and cache keys, so hashability
    here is what makes the whole decision dict-keyable downstream.
    """
    t = type(value)
    if t is str or t is int or t is float or t is bool or value is None:
        return value
    if t is list or t is tuple:
        return tuple(_plain(v) for v in value)
    if t is dict:
        return tuple(sorted(
            ((str(k), _plain(v)) for k, v in value.items()),
            key=lambda kv: kv[0],
        ))
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars (and 0-d arrays)
        try:
            return _plain(item())
        except (TypeError, ValueError):
            raise TypeError(f"not canonicalizable: {value!r}") from None
    # subclasses (IntEnum, str-enums, ...) normalize to the base type
    if isinstance(value, str):
        return str(value)
    if isinstance(value, bool):
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (list, tuple)):
        return tuple(_plain(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted(
            ((str(k), _plain(v)) for k, v in value.items()),
            key=lambda kv: kv[0],
        ))
    raise TypeError(f"not canonicalizable: {value!r}")


_REGISTRY_TABLE: dict[str, Any] = {}


def _registry_token_ok(key: str, token: Any) -> bool:
    if not isinstance(token, str) or token.startswith("PSET"):
        return False
    if not _REGISTRY_TABLE:  # deferred: the registries import heavy modules
        from ...algebra.predefined import MONOID_REGISTRY, SEMIRING_REGISTRY
        from ...ops.binary import BINARY_REGISTRY
        from ...ops.index_unary import INDEXUNARY_REGISTRY
        from ...ops.unary import UNARY_REGISTRY

        _REGISTRY_TABLE.update({
            "semiring": SEMIRING_REGISTRY,
            "binop": BINARY_REGISTRY,
            "accum": BINARY_REGISTRY,
            "monoid": MONOID_REGISTRY,
            "unary": UNARY_REGISTRY,
            "iuop": INDEXUNARY_REGISTRY,
        })
    return token in _REGISTRY_TABLE[key]


# --------------------------------------------------------------------------
# Per-kind analyzers
# --------------------------------------------------------------------------

def _analyze_program(payload: dict) -> CacheDecision:
    declares = payload.get("declare", []) or []
    raw_calls = payload.get("calls")
    fetch = payload.get("fetch", []) or []
    if not isinstance(raw_calls, list) or not isinstance(declares, list):
        return _bypass("program", "malformed")

    hasher = DataflowHasher()
    shared_reads: set[str] = set()
    declared: list[tuple[str, str, Any]] = []  # states filled in at the end
    decl_names: set[str] = set()
    decl_dtypes: dict[str, str] = {}
    decl_states: dict[str, Any] = {}
    decl_specs: dict[str, dict] = {}
    for d in declares:
        if not isinstance(d, dict):
            return _bypass("program", "malformed")
        try:
            name, kind_, dtype = d["name"], d["kind"], d["dtype"]
            shape = _plain(list(d["shape"]))
            entries = _plain(list(d.get("entries", [])))
            kind_, dtype = _plain(kind_), _plain(dtype)
        except (KeyError, TypeError):
            return _bypass("program", "malformed")
        if not isinstance(name, str) or name.startswith(SHARED_PREFIX):
            return _bypass("program", "shared-out")
        if dtype == "PSET":
            return _bypass("program", "udf")
        decl_states[name] = hasher.declare(name, kind_, dtype, shape, entries)
        decl_specs[name] = {
            "name": name, "kind": kind_, "dtype": dtype,
            "shape": shape, "entries": entries,
        }
        decl_names.add(name)
        decl_dtypes[name] = dtype
        declared.append((name, dtype, ""))

    scalar_chain: list[Any] = []
    for c in raw_calls:
        if isinstance(c, dict):
            kind_, out = c.get("kind"), c.get("out")
            args = c.get("args", {})
        else:  # an in-process fuzz Call object
            kind_, out, args = getattr(c, "kind", None), getattr(c, "out", None), \
                getattr(c, "args", {})
        if kind_ == "wait":
            continue  # a sequence point, observationally a no-op
        if kind_ not in _CANONICAL or not isinstance(args, dict):
            return _bypass("program", "unknown-op")
        for key in _TOKEN_KEYS:
            tok = args.get(key)
            if tok is not None and not _registry_token_ok(key, tok):
                return _bypass("program", "udf")
        reads: list[tuple[str, str | None]] = []
        for key in _NAME_KEYS:
            ref = args.get(key)
            if ref is None:
                reads.append((key, None))
                continue
            if not isinstance(ref, str):
                return _bypass("program", "malformed")
            if ref not in decl_names and not ref.startswith(SHARED_PREFIX):
                return _bypass("program", "private-ref")
            if ref.startswith(SHARED_PREFIX):
                shared_reads.add(ref[len(SHARED_PREFIX):])
            reads.append((key, ref))
        if out is not None and out not in decl_names:
            # writing into a pre-existing session object: the write is a
            # visible mutation the cache could not replay
            return _bypass("program", "external-out")
        try:
            attrs = tuple(sorted(
                ((str(k), _plain(v))
                 for k, v in args.items() if k not in _NAME_KEYS),
                key=lambda kv: kv[0],
            ))
        except (TypeError, RecursionError):
            return _bypass("program", "unhashable")
        call_state = hasher.record(kind_, attrs, reads, out)
        if _CANONICAL.get(kind_) == "reduce" and out is None:
            # scalar results never land under a name; condense now
            scalar_chain.append(digest(call_state))

    # condense each *final* state to hex exactly once per name — entry
    # maps, sorts and the cache key then handle flat strings only
    state_hex: dict[str, str] = {}

    def _hex(name: str) -> str:
        h = state_hex.get(name)
        if h is None:
            h = digest(hasher.state(name))
            state_hex[name] = h
        return h

    fetches: list[tuple[str, Any]] = []
    for name in fetch:
        if not isinstance(name, str):
            return _bypass("program", "malformed")
        if name not in decl_names and not name.startswith(SHARED_PREFIX):
            return _bypass("program", "private-ref")
        if name.startswith(SHARED_PREFIX):
            shared_reads.add(name[len(SHARED_PREFIX):])
        fetches.append((name, _hex(name)))

    # pristine ⇔ never written: the "decl"/"call" state tags make this a
    # property of the state value, so any key-equal request agrees on it
    # and carries an identical declaration for the state
    pristine = {
        _hex(name): decl_specs[name]
        for name, _dtype, _ in declared
        if decl_states[name] == hasher.state(name)
    }
    declared = [(name, dtype, _hex(name)) for name, dtype, _ in declared]
    program_digest = (
        "program",
        tuple(sorted((state, dtype) for _, dtype, state in declared)),
        tuple(scalar_chain),
        tuple(sorted(state for _, state in fetches)),
    )
    return CacheDecision(
        cacheable=True,
        kind="program",
        digest=program_digest,
        declared=tuple(declared),
        fetches=tuple(fetches),
        pristine=pristine,
        shared_reads=frozenset(shared_reads),
    )


def _analyze_algorithm(payload: dict) -> CacheDecision:
    graph = payload.get("graph")
    algo = payload.get("algo")
    store_as = payload.get("store_as")
    if not isinstance(graph, str) or not graph.startswith(SHARED_PREFIX):
        return _bypass("algorithm", "private-ref")
    if not isinstance(algo, str):
        return _bypass("algorithm", "malformed")
    if store_as is not None and (
        not isinstance(store_as, str) or store_as.startswith(SHARED_PREFIX)
    ):
        return _bypass("algorithm", "shared-out")
    try:
        args = _plain(payload.get("args", {}) or {})
    except (TypeError, RecursionError):
        return _bypass("algorithm", "unhashable")
    d = (
        "algorithm", algo, DataflowHasher().external(graph), args,
        store_as is not None,
    )
    return CacheDecision(
        cacheable=True, kind="algorithm", digest=d, store_as=store_as,
        shared_reads=frozenset((graph[len(SHARED_PREFIX):],)),
    )


def _analyze_query(payload: dict) -> CacheDecision:
    name = payload.get("name")
    if not isinstance(name, str) or not name.startswith(SHARED_PREFIX):
        return _bypass("query", "private-ref")
    what = payload.get("what", "nvals")
    try:
        coords = _plain({
            k: payload.get(k) for k in ("row", "col", "index") if k in payload
        })
    except (TypeError, RecursionError):
        return _bypass("query", "unhashable")
    d = ("query", DataflowHasher().external(name), str(what), coords)
    return CacheDecision(
        cacheable=True, kind="query", digest=d,
        shared_reads=frozenset((name[len(SHARED_PREFIX):],)),
    )


def analyze_request(kind: str, payload: dict) -> CacheDecision:
    """Classify one data request for the cross-request result cache."""
    if kind not in CACHEABLE_KINDS:
        return _bypass(kind, "kind")
    if kind == "program":
        return _analyze_program(payload)
    if kind == "algorithm":
        return _analyze_algorithm(payload)
    return _analyze_query(payload)
