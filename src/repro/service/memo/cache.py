"""The cross-request result cache: LRU entries keyed on
``(snapshot version, canonical program digest)``.

An entry is everything needed to *replay a request's observable effects*
without executing it: the response dict, plus serialized blobs of every
object the request declared into its session (a cached program still has
side effects — its declared temporaries must land in the hitting
session's store, under the hitting request's own names).  Blobs and
fetched contents are keyed by **state digest**, not user name, so an
alpha-renamed twin of the original request materializes the same bytes
under its own identifiers.

Coherence is structural, not temporal: the snapshot version in the key
pins the shared-store content the entry was computed against, so a
writer publishing version *n+1* makes every version-*n* entry
unreachable by construction.  :meth:`ResultCache.on_publish` merely
reclaims that dead space (counted as invalidations).
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ...containers.matrix import Matrix
from ...containers.vector import Vector
from ...fuzz.executor import build_decl
from ...fuzz.program import Decl
from ...io.serialize import deserialize, serialize
from ...obs import metrics
from ...types.grb_type import lookup_type
from ..session import Session
from .hashing import CacheDecision

__all__ = ["CacheEntry", "ResultCache", "build_entry", "materialize"]


@dataclass
class CacheEntry:
    """One replayable result (immutable once inserted)."""

    kind: str
    #: response template — everything name-independent (``scalars``,
    #: ``nvals``, query answers); materialization deep-copies it
    response: dict
    #: state digest → serialized declared object (programs)
    blobs: dict = field(default_factory=dict)
    #: state digest → fetched-contents dict (programs)
    contents: dict = field(default_factory=dict)
    #: serialized ``store_as`` result (algorithms)
    store_blob: bytes | None = None
    nbytes: int = 0
    #: bare shared names the cached request read (from the decision) — a
    #: publish that touches none of them re-keys the entry instead of
    #: dropping it
    shared_reads: frozenset = frozenset()


#: sentinel "kind" for states with no fetched contents (never matches)
_NO_CONTENTS = {"kind": ""}


def _object_from_contents(contents: dict, dtype: str):
    """Rebuild a collection from its fetched-contents dict (the inverse
    of the executor's fetch rendering); None for kinds that need a blob."""
    dom = lookup_type(dtype)
    if contents["kind"] == "vector":
        return Vector.from_coo(
            dom, contents["shape"][0], contents["indices"], contents["values"]
        )
    if contents["kind"] == "matrix":
        nrows, ncols = contents["shape"]
        return Matrix.from_coo(
            dom, nrows, ncols,
            contents["rows"], contents["cols"], contents["values"],
        )
    return None


def _approx_bytes(value: Any) -> int:
    # budget accounting only needs the right order of magnitude; repr is
    # one C-level traversal vs. a Python-level recursive walk, and insert
    # runs on the miss path of every cacheable request
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    return len(repr(value))


def build_entry(decision: CacheDecision, session: Session, result: dict) -> CacheEntry:
    """Snapshot *result* (and its session side effects) into an entry.

    Called at issue time, inside the session's activated context, right
    after the handler returned: serializing a declared object is a
    sequence point that forces exactly this request's pending deferred
    ops, so the blobs capture this request's view — never a later batch
    member's mutations.
    """
    if decision.kind == "program":
        contents = {
            state: result["fetched"][name] for name, state in decision.fetches
        }
        pristine = decision.pristine or {}
        blobs: dict[str, bytes] = {}
        for name, _dtype, state in decision.declared:
            if state in blobs or state in pristine:
                continue
            if contents.get(state, _NO_CONTENTS)["kind"] in ("vector", "matrix"):
                continue  # the fetched contents already determine the object
            blobs[state] = serialize(session.objects[name])
        response = {"scalars": result["scalars"]}
        entry = CacheEntry("program", response, blobs=blobs, contents=contents)
    elif decision.kind == "algorithm" and decision.store_as is not None:
        blob = serialize(session.objects[decision.store_as])
        response = {k: v for k, v in result.items() if k != "stored"}
        entry = CacheEntry("algorithm", response, store_blob=blob)
    else:
        entry = CacheEntry(decision.kind, dict(result))
    entry.nbytes = (
        sum(len(b) for b in entry.blobs.values())
        + (len(entry.store_blob) if entry.store_blob else 0)
        + _approx_bytes(entry.response)
        + _approx_bytes(entry.contents)
    )
    entry.shared_reads = decision.shared_reads
    return entry


def materialize(
    entry: CacheEntry, decision: CacheDecision, session: Session
) -> dict | None:
    """Replay *entry* for the (alpha-equivalent) hit request.

    Stores declared objects into the session under the hit request's own
    names and rebuilds the response with the hit request's identifiers.
    Returns None when the entry cannot serve the decision (defensive:
    equal digests guarantee state-set equality, so this indicates a
    hashing bug rather than an expected path) — the caller then executes
    normally.
    """
    if entry.kind == "program":
        pristine = decision.pristine or {}
        for _name, _dtype, state in decision.declared:
            if state not in entry.blobs and state not in pristine and (
                entry.contents.get(state, _NO_CONTENTS)["kind"]
                not in ("vector", "matrix")
            ):
                return None
        for _name, state in decision.fetches:
            if state not in entry.contents:
                return None
        for name, dtype, state in decision.declared:
            blob = entry.blobs.get(state)
            if blob is not None:
                obj = deserialize(blob)
            elif state in pristine:
                # never written: rebuild from the hit request's own
                # (digest-equal) declaration through the executor's path
                obj = build_decl(
                    Decl.from_dict({**pristine[state], "name": name}),
                    session.env,
                )
            else:
                obj = _object_from_contents(entry.contents[state], dtype)
            session.objects[name] = obj
            session.dtypes[name] = dtype
        response = copy.deepcopy(entry.response)
        if decision.fetches:
            response["fetched"] = {
                name: copy.deepcopy(entry.contents[state])
                for name, state in decision.fetches
            }
        return response
    if entry.kind == "algorithm" and decision.store_as is not None:
        if entry.store_blob is None:
            return None
        obj = deserialize(entry.store_blob)
        session.objects[decision.store_as] = obj
        session.dtypes[decision.store_as] = obj.type.name
        return {"stored": decision.store_as, **copy.deepcopy(entry.response)}
    return copy.deepcopy(entry.response)


class ResultCache:
    """Thread-safe LRU over ``(version id, digest)`` with a byte budget."""

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        self.max_bytes = max_bytes
        self._mu = threading.Lock()
        self._entries: OrderedDict[tuple[int, str], CacheEntry] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0
        self.invalidations = 0
        self.inserts = 0
        self.rekeys = 0

    # ------------------------------------------------------------------ hits
    def lookup(self, vid: int, digest: str) -> CacheEntry | None:
        reg = metrics.registry
        with self._mu:
            entry = self._entries.get((vid, digest))
            if entry is None:
                self.misses += 1
                reg.inc("service.cache.miss")
                return None
            self._entries.move_to_end((vid, digest))
            self.hits += 1
            reg.inc("service.cache.hit")
            return entry

    def insert(self, vid: int, digest: str, entry: CacheEntry) -> None:
        if entry.nbytes > self.max_bytes:
            return  # a single over-budget result would just thrash
        reg = metrics.registry
        with self._mu:
            key = (vid, digest)
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            self.inserts += 1
            reg.inc("service.cache.insert")
            while self._bytes > self.max_bytes and self._entries:
                _k, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
                reg.inc("service.cache.eviction")

    def note_bypass(self, reason: str) -> None:
        with self._mu:
            self.bypasses += 1
        metrics.registry.inc("service.cache.bypass")
        metrics.registry.inc(f"service.cache.bypass.{reason}")

    # ---------------------------------------------------------- invalidation
    def on_publish(self, new_vid: int, changed: set | None = None) -> None:
        """Reclaim or carry over entries of superseded versions.

        Stale entries are already unreachable (readers pin the new
        version, and the version id is in the key).  Without *changed*
        (the delta-blind legacy path) every superseded entry is dropped.
        With *changed* — the set of bare shared names whose objects this
        publication replaced — entries reading only *untouched* names are
        **re-keyed** to the new version instead: their result is
        observationally identical there (copy-on-write keeps untouched
        objects byte-for-byte the same object), so the cache survives a
        stream of publishes that never touch what it holds.
        """
        reg = metrics.registry
        with self._mu:
            dead: list[tuple[int, str]] = []
            moves: list[tuple[tuple[int, str], CacheEntry]] = []
            for k, e in self._entries.items():
                if k[0] >= new_vid:
                    continue
                if changed is not None and not (e.shared_reads & changed):
                    moves.append((k, e))
                else:
                    dead.append(k)
            for k in dead:
                entry = self._entries.pop(k)
                self._bytes -= entry.nbytes
                self.invalidations += 1
            if dead:
                reg.inc("service.cache.invalidation", len(dead))
            rekeyed = 0
            for k, e in moves:
                del self._entries[k]
                nk = (new_vid, k[1])
                if nk in self._entries:
                    # already recomputed at the new version; keep that one
                    self._bytes -= e.nbytes
                    self.invalidations += 1
                    continue
                self._entries[nk] = e
                rekeyed += 1
            if rekeyed:
                self.rekeys += rekeyed
                reg.inc("service.cache.rekeyed", rekeyed)

    def clear(self) -> None:
        with self._mu:
            self._entries.clear()
            self._bytes = 0

    # ----------------------------------------------------------------- intro
    def stats(self) -> dict:
        with self._mu:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "bypasses": self.bypasses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "inserts": self.inserts,
                "rekeys": self.rekeys,
                "hit_rate": metrics.ratio(self.hits, self.hits + self.misses),
            }
