"""Threaded JSON-lines TCP front-end for the in-process service.

One JSON object per line in each direction.  Requests carry ``id``,
``kind``, ``session``, optional ``timeout``, ``trace`` (a client-minted
``{"trace_id", "request_id"}`` identity), ``timing`` (opt into the
latency decomposition) and a kind-specific ``payload`` object; responses
echo the ``id`` with either ``{"ok": true, "result": {...}}`` or
``{"ok": false, "error": {"kind": ..., "message": ..., "info": ...}}``.
Binary blobs travel base64-encoded under ``<field>_b64`` keys at any
nesting depth.

Four bare plaintext commands escape the JSON protocol for probes and
scrapers: a line reading exactly ``metrics`` answers with Prometheus
text exposition, ``health`` with a one-line JSON health document,
``dump`` forces a flight-recorder dump and answers with its path, and
``explain`` renders the most recent EXPLAIN-collected batch as text;
all close the connection after answering, so
``printf 'metrics\\n' | nc HOST PORT`` just works.

Each connection gets a handler thread; requests on one connection are
served in order (the admission pipeline still batches across them when
they target the same session).  The server owns its :class:`Service` only
when it created it — an externally supplied service is left running on
``close()``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading

from ..obs.export import prometheus_text
from ..obs.tracing import TraceContext
from .client import error_from_wire, wire_decode, wire_encode  # noqa: F401
from .errors import BadRequest, ServiceError, SessionNotFound
from .request import ADMIN_KINDS, DATA_KINDS
from .service import Service, ServiceConfig

__all__ = ["Server", "serve"]

#: bare (non-JSON) one-shot commands: answer in plaintext, close the socket
PLAIN_COMMANDS = frozenset((b"metrics", b"health", b"dump", b"explain"))


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "Server" = self.server.owner  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionError, OSError):
                return
            if not line:
                return
            stripped = line.strip()
            if not stripped:
                continue
            if stripped in PLAIN_COMMANDS:
                try:
                    self.wfile.write(
                        server.handle_plain(stripped.decode()).encode()
                    )
                except (ConnectionError, OSError):
                    pass
                return  # one-shot: close so `nc`-style probes terminate
            resp = server.handle_line(line)
            try:
                self.wfile.write(wire_encode(resp))
            except (ConnectionError, OSError):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class Server:
    """JSON-lines TCP server wrapping one :class:`Service`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7411,
        service: Service | None = None,
        config: ServiceConfig | None = None,
    ):
        self._owns_service = service is None
        self.service = service or Service(config)
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.owner = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address[:2]

    # -------------------------------------------------------------- protocol
    def handle_line(self, line: bytes) -> dict:
        """Dispatch one request line; always returns a response dict."""
        rid = None
        try:
            doc = wire_decode(line)
            rid = doc.get("id")
            kind = doc.get("kind")
            session = doc.get("session")
            payload = doc.get("payload") or {}
            if not isinstance(payload, dict):
                raise BadRequest("'payload' must be a JSON object")
            if kind in ADMIN_KINDS:
                result = self._admin(kind, session, payload)
            elif kind in DATA_KINDS:
                if not session:
                    raise BadRequest("data requests need a 'session' field")
                result = self.service.request(
                    session, kind, payload, timeout=doc.get("timeout"),
                    trace=TraceContext.from_wire(doc.get("trace")),
                    timing=bool(doc.get("timing")),
                    explain=bool(doc.get("explain")),
                )
            else:
                raise BadRequest(f"unknown request kind {kind!r}")
            return {"id": rid, "ok": True, "result": result}
        except Exception as exc:  # every failure becomes a typed wire error
            info = getattr(exc, "info", None)
            return {
                "id": rid,
                "ok": False,
                "error": {
                    "kind": type(exc).__name__,
                    "message": str(exc),
                    "info": getattr(info, "name", None),
                },
            }

    def _admin(self, kind: str, session: str | None, payload: dict) -> dict:
        svc = self.service
        if kind == "open_session":
            return {"session": svc.open_session(payload.get("session") or session)}
        if kind == "close_session":
            name = payload.get("session") or session
            if not name:
                raise SessionNotFound("close_session needs a session name")
            svc.close_session(name)
            return {"closed": name}
        if kind == "metrics":
            return svc.metrics_snapshot()
        if kind == "stats":
            return svc.stats()
        if kind == "health":
            return svc.health()
        if kind == "validate":
            return {"objects_checked": svc.validate_all()}
        if kind == "ping":
            return {"pong": True}
        if kind == "dump":
            return self._dump(payload.get("reason") or "wire")
        if kind == "explain":
            if svc.last_explain is None:
                raise BadRequest(
                    "no EXPLAIN record yet — submit a request with "
                    "'explain': true first"
                )
            return svc.last_explain
        raise BadRequest(f"unhandled admin kind {kind!r}")  # pragma: no cover

    def _dump(self, reason: str) -> dict:
        from ..obs import diag

        path = diag.trigger_dump(reason, force=True)
        if path is None:
            raise ServiceError("flight recorder not installed")
        return {"dump": path}

    def handle_plain(self, cmd: str) -> str:
        """Answer a bare plaintext ``metrics`` / ``health`` probe line."""
        if cmd == "metrics":
            h = self.service.health()
            gauges = {
                "service.up": 1,
                "service.queue_depth": h["queue_depth"],
                "service.sessions_open": h["sessions"],
                "service.workers": h["workers"],
                "service.uptime_seconds": h["uptime_s"],
            }
            snap = self.service.snapshots.stats()
            gauges["service.snapshot_version"] = snap["version"]
            gauges["service.snapshot_live_versions"] = snap["live_versions"]
            gauges["service.snapshot_pinned"] = snap["pinned"]
            if self.service.memo is not None:
                cache = self.service.memo.stats()
                gauges["service.cache_entries"] = cache["entries"]
                gauges["service.cache_bytes"] = cache["bytes"]
                gauges["service.cache_hit_rate"] = cache["hit_rate"]
            streams = self.service.streams.stats()
            gauges["stream.handles"] = streams["handles"]
            gauges["stream.handles_created"] = streams["created"]
            gauges["stream.handles_advanced"] = streams["advanced"]
            gauges["stream.handles_dropped"] = streams["dropped"]
            gauges["stream.handles_served"] = streams["served"]
            return prometheus_text(self.service.metrics_snapshot(),
                                   gauges=gauges)
        if cmd == "health":
            return json.dumps(self.service.health()) + "\n"
        if cmd == "dump":
            try:
                return json.dumps(self._dump("wire")) + "\n"
            except ServiceError as exc:
                return json.dumps({"error": str(exc)}) + "\n"
        if cmd == "explain":
            record = self.service.last_explain
            if record is None:
                return json.dumps({"error": "no EXPLAIN record yet"}) + "\n"
            from ..obs.diag.explain import render_text

            return render_text(record)
        raise BadRequest(f"unknown plain command {cmd!r}")  # pragma: no cover

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "Server":
        """Serve in a background thread; returns self once listening."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="svc-tcp", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._tcp.serve_forever()

    def close(self, *, drain: bool = True) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._owns_service:
            self.service.shutdown(drain=drain)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 7411,
    config: ServiceConfig | None = None,
) -> Server:
    """Start a background server; convenience for tests and notebooks."""
    return Server(host, port, config=config).start()
