"""``python -m repro.service`` — run the JSON-lines TCP graph service.

Prints one ``READY host port`` line to stdout once the socket is
listening (CI and scripts wait on it), then serves until SIGINT/SIGTERM,
draining admitted work before exiting.
"""

from __future__ import annotations

import argparse
import signal
import sys

from .. import context
from .server import Server
from .service import ServiceConfig


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="JSON-lines TCP front-end for the multi-tenant graph service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7411)
    p.add_argument("--workers", type=int, default=None,
                   help="worker pool size (default: repro.parallel thread count)")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="per-session admission queue bound")
    p.add_argument("--max-batch", type=int, default=32,
                   help="max requests drained into one planner batch")
    p.add_argument("--no-batching", action="store_true",
                   help="wait per request instead of per batch")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-request deadline in seconds")
    p.add_argument("--slo-p99-ms", type=float, default=None,
                   help="rolling-window p99 latency target in milliseconds "
                        "(reported by stats/health/metrics)")
    p.add_argument("--backend", choices=("serial", "threads", "processes"),
                   default="threads",
                   help="drain execution backend")
    p.add_argument("--shard-workers", type=int, default=None,
                   help="shard pool size for the processes backend")
    p.add_argument("--diag-dir", default=None,
                   help="flight-recorder dump directory (default: "
                        "$REPRO_DIAG_DIR or the system tmpdir)")
    p.add_argument("--no-diag", action="store_true",
                   help="disable the flight recorder / anomaly detector")
    args = p.parse_args(argv)

    cfg = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        max_batch=args.max_batch,
        batching=not args.no_batching,
        default_timeout=args.timeout,
        slo_p99_ms=args.slo_p99_ms,
        backend=args.backend,
        shard_workers=args.shard_workers,
        diag=not args.no_diag,
        diag_dir=args.diag_dir,
    )
    server = Server(args.host, args.port, config=cfg)
    host, port = server.address

    def _stop(signum, frame):  # noqa: ARG001
        # shutdown() joins the serve_forever loop, which is suspended while
        # this handler runs on the main thread — delegate to a helper
        import threading

        threading.Thread(target=server._tcp.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)

    print(f"READY {host} {port}", flush=True)
    try:
        server.serve_forever()
    finally:
        server._tcp.server_close()
        server.service.shutdown(drain=True)
        context.finalize()
    print("DRAINED", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
