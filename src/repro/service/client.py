"""Client front-ends: the in-process :class:`Client` and the JSON-lines
:class:`TCPClient`.

Both speak the same request model (:mod:`repro.service.request`), so code
written against one works against the other; the TCP client only adds the
wire encoding (one JSON object per line, blobs base64 in ``blob_b64``).
Clients are synchronous by default — each call waits for its future /
response — with ``submit`` exposed for pipelined use.
"""

from __future__ import annotations

import base64
import json
import socket
from concurrent.futures import Future
from typing import Any, Iterable

from ..io.serialize import serialize
from ..obs.tracing import TraceContext
from . import errors as _errors
from .errors import BadRequest, ServiceError

__all__ = ["Client", "TCPClient", "wire_encode", "wire_decode", "error_from_wire"]


def _encode_blobs(value):
    """Recursively replace bytes values with ``<key>_b64`` base64 strings."""
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if isinstance(v, (bytes, bytearray)):
                out[str(k) + "_b64"] = base64.b64encode(bytes(v)).decode("ascii")
            else:
                out[str(k)] = _encode_blobs(v)
        return out
    if isinstance(value, (list, tuple)):
        return [_encode_blobs(v) for v in value]
    return value


def _decode_blobs(value):
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if k.endswith("_b64") and isinstance(v, str):
                out[k[:-4]] = base64.b64decode(v)
            else:
                out[k] = _decode_blobs(v)
        return out
    if isinstance(value, list):
        return [_decode_blobs(v) for v in value]
    return value


def wire_encode(obj: dict) -> bytes:
    """Encode a request/response dict as one JSON line (blobs → base64)."""
    return json.dumps(_encode_blobs(obj), separators=(",", ":")).encode() + b"\n"


def wire_decode(line: bytes) -> dict:
    """Decode one JSON line (base64 blobs → bytes)."""
    try:
        doc = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"malformed wire line: {exc}") from None
    if not isinstance(doc, dict):
        raise BadRequest("wire line must be a JSON object")
    return _decode_blobs(doc)


def error_from_wire(err: dict) -> ServiceError:
    """Rebuild a typed exception from a wire error descriptor."""
    cls = getattr(_errors, err.get("kind", ""), None)
    if cls is None or not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = ServiceError
    return cls(err.get("message", "remote error"))


class Client:
    """Direct in-process client bound to one session of a Service."""

    def __init__(self, service, session: str | None = None):
        self._service = service
        self.session = service.open_session(session)

    # ------------------------------------------------------------- plumbing
    def submit(self, kind: str, payload: dict | None = None, **kw) -> Future:
        # mint the trace here — the outermost edge — so everything one
        # client call causes shares a trace_id
        kw.setdefault("trace", TraceContext.mint())
        return self._service.submit(self.session, kind, payload, **kw)

    def request(self, kind: str, payload: dict | None = None, **kw) -> dict:
        kw.setdefault("trace", TraceContext.mint())
        return self._service.request(self.session, kind, payload, **kw)

    # ------------------------------------------------------------- surface
    def define(
        self, name: str, kind: str, dtype: str, shape: Iterable[int],
        entries: Iterable = (),
    ) -> dict:
        return self.request("define", {
            "name": name, "kind": kind, "dtype": dtype,
            "shape": list(shape), "entries": [list(e) for e in entries],
        })

    def upload(self, name: str, obj: Any = None, *, blob: bytes | None = None) -> dict:
        if (obj is None) == (blob is None):
            raise BadRequest("upload takes exactly one of obj= or blob=")
        return self.request("upload", {
            "name": name, "blob": blob if blob is not None else serialize(obj),
        })

    def download(self, name: str):
        """Fetch a named object back as a live Matrix/Vector/Scalar."""
        from ..io.serialize import deserialize

        return deserialize(self.request("download", {"name": name})["blob"])

    def download_blob(self, name: str) -> bytes:
        return self.request("download", {"name": name})["blob"]

    def program(
        self, calls: Iterable, *, declare: Iterable = (), fetch: Iterable[str] = (),
        **kw,
    ) -> dict:
        calls = [c.to_dict() if hasattr(c, "to_dict") else dict(c) for c in calls]
        declare = [d.to_dict() if hasattr(d, "to_dict") else dict(d) for d in declare]
        return self.request("program", {
            "calls": calls, "declare": declare, "fetch": list(fetch),
        }, **kw)

    def algorithm(
        self, algo: str, graph: str, *, store_as: str | None = None, **args
    ) -> dict:
        payload: dict = {"algo": algo, "graph": graph, "args": args}
        if store_as:
            payload["store_as"] = store_as
        return self.request("algorithm", payload)

    def update(self, graph: str, *, set: Iterable = (), remove: Iterable = ()) -> dict:
        return self.request("update", {
            "graph": graph,
            "set": [list(e) for e in set],
            "remove": [list(e) if isinstance(e, (list, tuple)) else [e]
                       for e in remove],
        })

    def query(self, name: str, what: str = "nvals", **kw) -> dict:
        return self.request("query", {"name": name, "what": what, **kw})

    def free(self, name: str) -> dict:
        return self.request("free", {"name": name})

    def stats(self) -> dict:
        return self._service.stats()

    def metrics(self) -> dict:
        return self._service.metrics_snapshot()

    def health(self) -> dict:
        return self._service.health()

    def ping(self) -> dict:
        return {"pong": True}

    def close(self) -> None:
        self._service.close_session(self.session)


class TCPClient:
    """Synchronous JSON-lines client for ``python -m repro.service``.

    Speaks the identical surface as :class:`Client`; one request is in
    flight at a time per connection, so responses arrive in order.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7411,
        session: str | None = None, timeout: float = 60.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._ids = 0
        self.session = self.call("open_session", {"session": session})["session"]

    def call(
        self, kind: str, payload: dict | None = None, *,
        timeout: float | None = None,
        trace: TraceContext | None = None,
        timing: bool = False,
        explain: bool = False,
    ) -> dict:
        """Send one request and wait for its response (raises typed errors).

        A :class:`TraceContext` is minted per call (or supplied) and rides
        the wire, so server-side spans and drain accounting attribute back
        to this client call; *timing* asks the server to include the
        request's latency decomposition in the result; *explain* asks for
        the drain-time planner's EXPLAIN record under ``result["explain"]``.
        """
        self._ids += 1
        doc = {
            "id": self._ids,
            "kind": kind,
            "session": getattr(self, "session", None),
            "payload": payload or {},
            "trace": (trace or TraceContext.mint()).to_wire(),
        }
        if timing:
            doc["timing"] = True
        if explain:
            doc["explain"] = True
        if timeout is not None:
            doc["timeout"] = timeout
        self._sock.sendall(wire_encode(doc))
        while True:
            line = self._rfile.readline()
            if not line:
                raise ServiceError("server closed the connection")
            resp = wire_decode(line)
            if resp.get("id") != self._ids:
                continue  # stale response from an abandoned pipeline
            if resp.get("ok"):
                return resp.get("result", {})
            raise error_from_wire(resp.get("error", {}))

    # ----- the same convenience surface as the direct client --------------
    def define(self, name, kind, dtype, shape, entries=()):
        return self.call("define", {
            "name": name, "kind": kind, "dtype": dtype,
            "shape": list(shape), "entries": [list(e) for e in entries],
        })

    def upload(self, name, obj=None, *, blob: bytes | None = None):
        if (obj is None) == (blob is None):
            raise BadRequest("upload takes exactly one of obj= or blob=")
        return self.call("upload", {
            "name": name, "blob": blob if blob is not None else serialize(obj),
        })

    def download(self, name):
        from ..io.serialize import deserialize

        return deserialize(self.call("download", {"name": name})["blob"])

    def program(self, calls, *, declare=(), fetch=(), **kw):
        calls = [c.to_dict() if hasattr(c, "to_dict") else dict(c) for c in calls]
        declare = [d.to_dict() if hasattr(d, "to_dict") else dict(d) for d in declare]
        return self.call("program", {
            "calls": calls, "declare": declare, "fetch": list(fetch),
        }, **kw)

    def algorithm(self, algo, graph, *, store_as=None, **args):
        payload = {"algo": algo, "graph": graph, "args": args}
        if store_as:
            payload["store_as"] = store_as
        return self.call("algorithm", payload)

    def update(self, graph, *, set=(), remove=()):
        return self.call("update", {
            "graph": graph,
            "set": [list(e) for e in set],
            "remove": [list(e) if isinstance(e, (list, tuple)) else [e]
                       for e in remove],
        })

    def query(self, name, what="nvals", **kw):
        return self.call("query", {"name": name, "what": what, **kw})

    def free(self, name):
        return self.call("free", {"name": name})

    def metrics(self) -> dict:
        return self.call("metrics")

    def stats(self) -> dict:
        return self.call("stats")

    def health(self) -> dict:
        return self.call("health")

    def ping(self) -> dict:
        return self.call("ping")

    def close(self, *, close_session: bool = True) -> None:
        try:
            if close_session:
                self.call("close_session", {"session": self.session})
        finally:
            try:
                self._rfile.close()
            finally:
                self._sock.close()
