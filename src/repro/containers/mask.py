"""Write-masks (paper section III-C).

A mask has *structure* but no values: the set of positions where an
operation may write its result.  The C API lets any vector/matrix act as a
mask — "the elements of the boolean write mask that exist and are true"
(section VI) form the structure, after casting stored values to BOOL.  Two
descriptor modifiers change the interpretation:

* ``GrB_SCMP`` — use the structural complement ``L(¬m) = {i : i ∉ L(m)}``;
* ``GrB_STRUCTURE`` (extension) — every *stored* element is in the
  structure, regardless of its value.

The complement of a sparse mask is dense, so it is never materialized:
:class:`MaskView` keeps the base pattern plus the complement flag and
answers membership queries lazily.
"""

from __future__ import annotations

import numpy as np

from .._sparseutil import membership
from ..info import DomainMismatch
from ..types import BOOL, cast_array

__all__ = ["MaskView", "build_mask_view", "validate_mask_domain"]


class MaskView:
    """Lazy view of a mask's structure (possibly complemented)."""

    __slots__ = ("pattern", "complemented")

    def __init__(self, pattern: np.ndarray, complemented: bool):
        self.pattern = pattern
        self.complemented = complemented

    def allows(self, keys: np.ndarray) -> np.ndarray:
        """Boolean array: which *keys* lie in the mask's structure."""
        base = membership(keys, self.pattern)
        return ~base if self.complemented else base

    def count_allowed_in(self, total_space: int) -> int:
        """|structure| within a space of *total_space* positions."""
        n = len(self.pattern)
        return total_space - n if self.complemented else n


def validate_mask_domain(mask) -> None:
    """API check: the mask's domain must be bool or any built-in type
    (Fig. 2b's Mask parameter description)."""
    if mask is None:
        return
    if mask.type.is_udt:
        raise DomainMismatch(
            "mask domain must be bool or a built-in GraphBLAS type, got "
            f"{mask.type.name}"
        )


def build_mask_view(mask, complemented: bool, structural: bool) -> MaskView | None:
    """Materialize the mask's structure from its *current* content.

    Must run at execution time (inside the deferred thunk), since in
    nonblocking mode the mask object's content may be produced by an earlier
    op in the same sequence.  Returns ``None`` for "no mask".
    """
    if mask is None:
        return None
    keys, values = mask._content()
    if structural:
        pattern = keys
    else:
        truthy = cast_array(values, mask.type, BOOL)
        pattern = keys[truthy] if len(keys) else keys
    return MaskView(pattern, complemented)
