"""GraphBLAS matrices (paper section III-A).

``A = <D, M, N, {(i, j, A_ij)}>``: a domain, dimensions, and a set of
row/column/value tuples.  As with vectors, elements not in the content are
*undefined* rather than zero — "a fundamental difference between the
GraphBLAS and traditional sparse matrix libraries".

Storage: sorted row-major flat keys ``i*ncols + j`` plus parallel values.
CSR and CSC views are derived lazily and cached; any mutation invalidates
the caches.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from .. import context
from .._sparseutil import check_flat_capacity, flatten_keys, unflatten_keys
from ..info import (
    DimensionMismatch,
    IndexOutOfBounds,
    InvalidValue,
    NoValue,
    NullPointer,
    OutputNotEmpty,
)
from ..ops.base import BinaryOp
from ..types import GrBType
from .base import OpaqueObject
from .formats import (
    CSRView,
    DCSRView,
    assemble,
    check_indices,
    csr_from_keys,
    dcsr_from_keys,
    transpose_permutation,
)

__all__ = ["Matrix", "matrix_new"]


class Matrix(OpaqueObject):
    """An opaque GraphBLAS matrix."""

    __slots__ = (
        "_type", "_nrows", "_ncols", "_keys", "_values", "_csr", "_csc",
        "_dcsr", "_version",
    )

    def __init__(self, domain: GrBType, nrows: int, ncols: int, *, name: str = ""):
        super().__init__(name)
        if domain is None:
            raise NullPointer("matrix domain is GrB_NULL")
        if not isinstance(domain, GrBType):
            raise InvalidValue(f"{domain!r} is not a GraphBLAS type")
        if nrows <= 0 or ncols <= 0:
            raise InvalidValue(
                "matrix dimensions must be positive (paper: M > 0, N > 0)"
            )
        check_flat_capacity(nrows, ncols)
        self._type = domain
        self._nrows = int(nrows)
        self._ncols = int(ncols)
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=domain.np_dtype)
        self._csr: CSRView | None = None
        self._csc: CSRView | None = None
        self._dcsr: DCSRView | None = None
        #: bumped on every content mutation — the shard publication cache
        #: keys shared-memory copies by ``(id(A), A._version)`` so a stale
        #: block layout can never be shipped after a hazard-ordered write
        self._version = 0

    # ------------------------------------------------------------ metadata
    @property
    def type(self) -> GrBType:
        self._check_valid()
        return self._type

    @property
    def nrows(self) -> int:
        """``GrB_Matrix_nrows`` (Table VI)."""
        self._check_valid()
        return self._nrows

    @property
    def ncols(self) -> int:
        """``GrB_Matrix_ncols``."""
        self._check_valid()
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        self._check_valid()
        return (self._nrows, self._ncols)

    def nvals(self) -> int:
        """``GrB_Matrix_nvals``: |L(A)|.  Forces completion (Fig. 3 line 44
        uses exactly this to detect an empty BFS frontier)."""
        self._check_valid()
        context.complete(self)
        return len(self._keys)

    # ------------------------------------------------------------- content
    def _content(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw flat keys/values (kernel use at execution time)."""
        return self._keys, self._values

    def _set_content(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._keys = keys
        self._values = values
        self._csr = None
        self._csc = None
        self._dcsr = None
        self._version += 1
        self._poisoned = False

    def csr(self) -> CSRView:
        """Cached CSR view of the current content (kernel use)."""
        if self._csr is None:
            self._csr = csr_from_keys(
                self._keys, self._values, self._nrows, self._ncols
            )
        return self._csr

    def csc(self) -> CSRView:
        """Cached CSC view: the CSR of the transpose."""
        if self._csc is None:
            t_keys, perm = transpose_permutation(
                self._keys, self._nrows, self._ncols
            )
            self._csc = csr_from_keys(
                t_keys, self._values[perm], self._ncols, self._nrows
            )
        return self._csc

    def dcsr(self) -> DCSRView:
        """Cached hypersparse DCSR view: only non-empty rows are stored."""
        if self._dcsr is None:
            self._dcsr = dcsr_from_keys(
                self._keys, self._values, self._nrows, self._ncols
            )
        return self._dcsr

    def build(self, rows, cols, values, dup: BinaryOp | None = None) -> "Matrix":
        """``GrB_Matrix_build`` (Table VI): copy tuples into an empty matrix."""
        self._check_valid()
        ri = check_indices(rows, self._nrows, "row")
        ci = check_indices(cols, self._ncols, "column")
        if len(ri) != len(ci):
            raise DimensionMismatch("row and column index arrays differ in length")
        vals = self._coerce_values(values, len(ri))
        if self.nvals() != 0:
            raise OutputNotEmpty("build target matrix already has elements")
        keys = flatten_keys(ri, ci, self._ncols)

        def thunk():
            k, v = assemble(keys, vals, dup, self._type.np_dtype)
            self._set_content(k, v)

        context.submit(
            thunk, reads=(), writes=self, label="Matrix_build", deferrable=False
        )
        return self

    def _coerce_values(self, values, n: int) -> np.ndarray:
        if self._type.is_udt:
            seq = list(values)
            if len(seq) != n:
                raise DimensionMismatch("index and value arrays differ in length")
            vals = np.empty(n, dtype=object)
            for k, v in enumerate(seq):
                vals[k] = self._type.validate_scalar(v)
            return vals
        vals = np.asarray(values)
        if vals.ndim == 0:
            vals = np.broadcast_to(vals, (n,))
        if len(vals) != n:
            raise DimensionMismatch("index and value arrays differ in length")
        return vals.astype(self._type.np_dtype, copy=True)

    def set_element(self, row: int, col: int, value: Any) -> "Matrix":
        """``GrB_Matrix_setElement``: A(i, j) = value."""
        self._check_valid()
        i, j = self._check_coords(row, col)
        if self._type.is_udt:
            self._type.validate_scalar(value)
        key = np.int64(i) * self._ncols + j

        def thunk():
            v = (
                value
                if self._type.is_udt
                else np.asarray([value]).astype(self._type.np_dtype)[0]
            )
            pos = int(np.searchsorted(self._keys, key))
            if pos < len(self._keys) and self._keys[pos] == key:
                self._values[pos] = v
                self._csr = None
                self._csc = None
                self._dcsr = None
                self._version += 1
            else:
                self._set_content(
                    np.insert(self._keys, pos, key),
                    np.insert(self._values, pos, v),
                )

        context.submit(
            thunk, reads=(self,), writes=self, label="Matrix_setElement",
            deferrable=False,
        )
        return self

    def extract_element(self, row: int, col: int) -> Any:
        """``GrB_Matrix_extractElement``; raises ``NoValue`` if undefined."""
        self._check_valid()
        i, j = self._check_coords(row, col)
        context.complete(self)
        key = np.int64(i) * self._ncols + j
        pos = int(np.searchsorted(self._keys, key))
        if pos < len(self._keys) and self._keys[pos] == key:
            return self._values[pos]
        raise NoValue(f"no element stored at ({row}, {col})")

    def remove_element(self, row: int, col: int) -> "Matrix":
        """``GrB_Matrix_removeElement``: delete A(i, j) if present."""
        self._check_valid()
        i, j = self._check_coords(row, col)
        key = np.int64(i) * self._ncols + j

        def thunk():
            pos = int(np.searchsorted(self._keys, key))
            if pos < len(self._keys) and self._keys[pos] == key:
                self._set_content(
                    np.delete(self._keys, pos), np.delete(self._values, pos)
                )

        context.submit(
            thunk, reads=(self,), writes=self, label="Matrix_removeElement",
            deferrable=False,
        )
        return self

    def extract_tuples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``GrB_Matrix_extractTuples``: (I, J, X) copies; forces completion."""
        self._check_valid()
        context.complete(self)
        rows, cols = unflatten_keys(self._keys, self._ncols)
        return rows, cols, self._values.copy()

    def clear(self) -> "Matrix":
        """``GrB_Matrix_clear``: drop all stored elements (dims unchanged)."""
        self._check_valid()

        def thunk():
            self._set_content(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=self._type.np_dtype),
            )

        context.submit(
            thunk, reads=(), writes=self, label="Matrix_clear",
            overwrites_output=True,
        )
        return self

    def dup(self) -> "Matrix":
        """``GrB_Matrix_dup``: independent deep copy."""
        self._check_valid()
        context.complete(self)
        out = Matrix(self._type, self._nrows, self._ncols, name=f"dup({self.name})")
        out._set_content(self._keys.copy(), self._values.copy())
        return out

    # ------------------------------------------------------- conveniences
    def _check_coords(self, row: int, col: int) -> tuple[int, int]:
        i, j = int(row), int(col)
        if not 0 <= i < self._nrows:
            raise IndexOutOfBounds(f"row {row} out of range [0, {self._nrows})")
        if not 0 <= j < self._ncols:
            raise IndexOutOfBounds(f"column {col} out of range [0, {self._ncols})")
        return i, j

    def __iter__(self) -> Iterator[tuple[int, int, Any]]:
        self._check_valid()
        context.complete(self)
        rows, cols = unflatten_keys(self._keys, self._ncols)
        return iter(
            (int(r), int(c), v) for r, c, v in zip(rows, cols, self._values)
        )

    def to_dense(self, fill: Any) -> np.ndarray:
        """Dense export with explicit *fill* for undefined elements."""
        self._check_valid()
        context.complete(self)
        dtype = self._type.np_dtype if not self._type.is_udt else object
        out = np.full((self._nrows, self._ncols), fill, dtype=dtype)
        if len(self._keys):
            rows, cols = unflatten_keys(self._keys, self._ncols)
            out[rows, cols] = self._values
        return out

    @classmethod
    def from_coo(
        cls,
        domain: GrBType,
        nrows: int,
        ncols: int,
        rows,
        cols,
        values,
        dup: BinaryOp | None = None,
        *,
        name: str = "",
    ) -> "Matrix":
        """Construct-and-build in one step (convenience, not in the C API)."""
        m = cls(domain, nrows, ncols, name=name)
        m.build(rows, cols, values, dup)
        return m

    @classmethod
    def from_dense(
        cls, domain: GrBType, array, implied_zero: Any = 0, *, name: str = ""
    ) -> "Matrix":
        """Build from a dense 2-D array, storing entries != *implied_zero*."""
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise InvalidValue("from_dense requires a 2-D array")
        rows, cols = np.nonzero(arr != implied_zero)
        return cls.from_coo(
            domain, arr.shape[0], arr.shape[1], rows, cols, arr[rows, cols],
            name=name,
        )

    # --------------------------------------------------- spec 1.3/2.0 extras
    def resize(self, nrows: int, ncols: int) -> "Matrix":
        """``GrB_Matrix_resize``: change dimensions in place.

        Shrinking discards stored elements outside the new bounds; growing
        keeps everything.  Flat keys are re-encoded for the new column
        count.
        """
        self._check_valid()
        if nrows <= 0 or ncols <= 0:
            raise InvalidValue("matrix dimensions must be positive")
        check_flat_capacity(nrows, ncols)
        context.complete(self)
        rows, cols = unflatten_keys(self._keys, self._ncols)
        keep = (rows < nrows) & (cols < ncols)
        new_keys = flatten_keys(rows[keep], cols[keep], ncols)
        # row-major order is preserved under pure re-encoding of in-bounds
        # keys, so no re-sort is needed
        self._nrows, self._ncols = int(nrows), int(ncols)
        self._set_content(new_keys, self._values[keep])
        return self

    @classmethod
    def diag(cls, v, k: int = 0, *, name: str = "") -> "Matrix":
        """``GrB_Matrix_diag``: a square matrix with *v* on diagonal *k*."""
        from .vector import Vector

        if not isinstance(v, Vector):
            raise InvalidValue("Matrix.diag requires a Vector")
        v._check_valid()
        context.complete(v)
        n = v.size + abs(int(k))
        out = cls(v.type, n, n, name=name)
        idx, vals = v._content()
        if k >= 0:
            rows, cols = idx, idx + k
        else:
            rows, cols = idx - k, idx
        out._set_content(flatten_keys(rows, cols, n), vals.copy())
        return out

    # ------------------------------------------------------- import/export
    def export_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``GrB_Matrix_exportHint CSR``: (indptr, col_indices, values) copies."""
        self._check_valid()
        context.complete(self)
        view = self.csr()
        return view.indptr.copy(), view.indices.copy(), view.values.copy()

    def export_csc(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSC export: (indptr, row_indices, values) copies."""
        self._check_valid()
        context.complete(self)
        view = self.csc()
        return view.indptr.copy(), view.indices.copy(), view.values.copy()

    @classmethod
    def import_csr(
        cls,
        domain: GrBType,
        nrows: int,
        ncols: int,
        indptr,
        col_indices,
        values,
        *,
        name: str = "",
    ) -> "Matrix":
        """``GrB_Matrix_import`` (CSR): adopt raw arrays after validation.

        Column indices must be sorted and unique within each row (the
        canonical CSR the export produces); violations are
        ``GrB_INVALID_VALUE``.
        """
        out = cls(domain, nrows, ncols, name=name)
        indptr = np.asarray(indptr, dtype=np.int64)
        cols = np.asarray(col_indices, dtype=np.int64)
        if len(indptr) != nrows + 1 or indptr[0] != 0 or indptr[-1] != len(cols):
            raise InvalidValue("malformed CSR indptr")
        if np.any(np.diff(indptr) < 0):
            raise InvalidValue("CSR indptr must be nondecreasing")
        if len(cols) and (cols.min() < 0 or cols.max() >= ncols):
            raise IndexOutOfBounds("CSR column index out of range")
        rows = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(indptr))
        keys = flatten_keys(rows, cols, ncols)
        if np.any(np.diff(keys) <= 0):
            raise InvalidValue(
                "CSR columns must be sorted and unique within each row"
            )
        vals = out._coerce_values(values, len(cols))
        out._set_content(keys, vals)
        return out

    def __repr__(self) -> str:
        state = "freed" if self._freed else ("invalid" if self._poisoned else "ok")
        return (
            f"Matrix<{self._type.name}, {self._nrows}x{self._ncols}, "
            f"nvals={len(self._keys)}, {state}>"
        )


def matrix_new(domain: GrBType, nrows: int, ncols: int, *, name: str = "") -> Matrix:
    """``GrB_Matrix_new`` (Table VI): create an empty matrix."""
    return Matrix(domain, nrows, ncols, name=name)
