"""GraphBLAS scalars (``GrB_Scalar``, introduced in spec 2.0).

An opaque scalar is a 0-or-1-element collection: it either holds a value
of its domain or is *empty* — the same "undefined, not zero" semantics as
the other collections, lifted to rank 0.  It exists so that operations can
produce and consume scalars without leaving the opaque world (e.g.
``reduce`` into a Scalar keeps a nonblocking sequence deferrable).
"""

from __future__ import annotations

from typing import Any

from .. import context
from ..info import InvalidValue, NoValue, NullPointer
from ..types import GrBType
from .base import OpaqueObject

__all__ = ["Scalar", "scalar_new"]


class Scalar(OpaqueObject):
    """An opaque scalar: a domain plus zero or one stored value."""

    __slots__ = ("_type", "_has_value", "_value")

    def __init__(self, domain: GrBType, *, name: str = ""):
        super().__init__(name)
        if domain is None:
            raise NullPointer("scalar domain is GrB_NULL")
        if not isinstance(domain, GrBType):
            raise InvalidValue(f"{domain!r} is not a GraphBLAS type")
        self._type = domain
        self._has_value = False
        self._value = None

    @property
    def type(self) -> GrBType:
        self._check_valid()
        return self._type

    def nvals(self) -> int:
        """``GrB_Scalar_nvals``: 0 (empty) or 1.  Forces completion."""
        self._check_valid()
        context.complete(self)
        return 1 if self._has_value else 0

    def is_empty(self) -> bool:
        return self.nvals() == 0

    def set_value(self, value: Any) -> "Scalar":
        """``GrB_Scalar_setElement``."""
        self._check_valid()
        if self._type.is_udt:
            coerced = self._type.validate_scalar(value)
        else:
            import numpy as np

            coerced = np.asarray([value]).astype(self._type.np_dtype)[0]

        def thunk():
            self._has_value = True
            self._value = coerced

        context.submit(
            thunk, reads=(self,), writes=self, label="Scalar_setElement",
            deferrable=False,
        )
        return self

    def extract_value(self) -> Any:
        """``GrB_Scalar_extractElement``: the value, or ``NoValue`` if empty.

        Forces completion (it exports a non-opaque value).
        """
        self._check_valid()
        context.complete(self)
        if not self._has_value:
            raise NoValue("scalar holds no value")
        return self._value

    def clear(self) -> "Scalar":
        """``GrB_Scalar_clear``: make the scalar empty."""
        self._check_valid()

        def thunk():
            self._has_value = False
            self._value = None

        context.submit(
            thunk, reads=(), writes=self, label="Scalar_clear",
            overwrites_output=True,
        )
        return self

    def dup(self) -> "Scalar":
        """``GrB_Scalar_dup``."""
        self._check_valid()
        context.complete(self)
        out = Scalar(self._type, name=f"dup({self.name})")
        out._has_value = self._has_value
        out._value = self._value
        return out

    # internal hook used by reduce-into-scalar
    def _set_internal(self, value: Any) -> None:
        self._has_value = True
        self._value = value
        self._poisoned = False

    @classmethod
    def from_value(cls, domain: GrBType, value: Any, *, name: str = "") -> "Scalar":
        s = cls(domain, name=name)
        s.set_value(value)
        return s

    def __repr__(self) -> str:
        state = "freed" if self._freed else ("invalid" if self._poisoned else "ok")
        content = repr(self._value) if self._has_value else "empty"
        return f"Scalar<{self._type.name}, {content}, {state}>"


def scalar_new(domain: GrBType, *, name: str = "") -> Scalar:
    """``GrB_Scalar_new``: create an empty scalar."""
    return Scalar(domain, name=name)
