"""Opaque-object plumbing shared by collections.

GraphBLAS collections are opaque: their content is reachable only through
API methods, which lets implementations pick storage freely (section III-A).
This base class carries the lifecycle states every opaque object has:

* *valid* — usable;
* *freed* — after ``free()``; any use is ``UNINITIALIZED_OBJECT``;
* *poisoned* — a deferred op that was supposed to produce this object's
  value failed; any use is ``INVALID_OBJECT`` ("caused by a previous
  execution error", Fig. 2c).
"""

from __future__ import annotations

from ..info import InvalidObject, UninitializedObject

__all__ = ["OpaqueObject"]


class OpaqueObject:
    __slots__ = ("_freed", "_poisoned", "name")

    def __init__(self, name: str = ""):
        self._freed = False
        self._poisoned = False
        self.name = name

    def _check_valid(self) -> None:
        if self._freed:
            raise UninitializedObject(
                f"{type(self).__name__} {self.name or ''} has been freed"
            )
        if self._poisoned:
            raise InvalidObject(
                f"{type(self).__name__} {self.name or ''} is invalid: a prior "
                "execution error prevented its value from being computed"
            )

    def _poison(self) -> None:
        self._poisoned = True

    def free(self) -> None:
        """``GrB_free``: release the object; subsequent use is an API error.

        If a deferred op in the current sequence still references this
        object, the sequence is completed first (the paper's Fig. 3 frees
        its temporaries without an intervening ``GrB_wait``; that must be
        legal in nonblocking mode too).
        """
        from .. import context

        context.complete_before_free(self)
        self._freed = True
