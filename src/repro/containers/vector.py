"""GraphBLAS vectors (paper section III-A).

``v = <D, N, {(i, v_i)}>``: a domain, a size, and a set of index/value
tuples.  Indices not present in the content are *undefined* — not zero;
that distinction (no implied zeros stored) is what lets the semiring change
between operations without reinterpreting the stored data (section II).

Storage: a sorted, duplicate-free ``int64`` index array plus a parallel
value array in the domain's storage dtype.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from .. import context
from .._sparseutil import membership
from ..info import (
    DimensionMismatch,
    IndexOutOfBounds,
    InvalidValue,
    NoValue,
    NullPointer,
    OutputNotEmpty,
)
from ..ops.base import BinaryOp
from ..types import GrBType, cast_scalar
from .base import OpaqueObject
from .formats import assemble, check_indices

__all__ = ["Vector", "vector_new"]


class Vector(OpaqueObject):
    """An opaque GraphBLAS vector."""

    __slots__ = ("_type", "_size", "_keys", "_values")

    def __init__(self, domain: GrBType, size: int, *, name: str = ""):
        super().__init__(name)
        if domain is None:
            raise NullPointer("vector domain is GrB_NULL")
        if not isinstance(domain, GrBType):
            raise InvalidValue(f"{domain!r} is not a GraphBLAS type")
        if size <= 0:
            raise InvalidValue("vector size must be positive (paper: N > 0)")
        self._type = domain
        self._size = int(size)
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=domain.np_dtype)

    # ------------------------------------------------------------ metadata
    @property
    def type(self) -> GrBType:
        """The vector's domain D."""
        self._check_valid()
        return self._type

    @property
    def size(self) -> int:
        """``GrB_Vector_size``: the paper's nelem(v) = N."""
        self._check_valid()
        return self._size

    def nvals(self) -> int:
        """``GrB_Vector_nvals``: number of stored tuples |L(v)|.

        Forces completion of this object (it exports a non-opaque value).
        """
        self._check_valid()
        context.complete(self)
        return len(self._keys)

    # ------------------------------------------------------------- content
    def _content(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw storage (kernel use at execution time; no completion)."""
        return self._keys, self._values

    def _set_content(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Install canonical content (sorted unique keys, storage dtype)."""
        self._keys = keys
        self._values = values
        self._poisoned = False

    def build(
        self,
        indices,
        values,
        dup: BinaryOp | None = None,
    ) -> "Vector":
        """``GrB_Vector_build``: copy tuples into an empty vector.

        Duplicates are combined with *dup*; without one they are an error.
        The target must hold no stored elements (``OUTPUT_NOT_EMPTY``).
        """
        self._check_valid()
        idx = check_indices(indices, self._size, "vector")
        vals = self._coerce_values(values, len(idx))
        if self.nvals() != 0:
            raise OutputNotEmpty("build target vector already has elements")

        def thunk():
            k, v = assemble(idx, vals, dup, self._type.np_dtype)
            self._set_content(k, v)

        context.submit(
            thunk, reads=(), writes=self, label="Vector_build", deferrable=False
        )
        return self

    def _coerce_values(self, values, n: int) -> np.ndarray:
        if self._type.is_udt:
            vals = np.empty(n, dtype=object)
            seq = list(values)
            if len(seq) != n:
                raise DimensionMismatch("index and value arrays differ in length")
            for k, v in enumerate(seq):
                vals[k] = self._type.validate_scalar(v)
            return vals
        vals = np.asarray(values)
        if vals.ndim == 0:
            vals = np.broadcast_to(vals, (n,))
        if len(vals) != n:
            raise DimensionMismatch("index and value arrays differ in length")
        return vals.astype(self._type.np_dtype, copy=True)

    def set_element(self, index: int, value: Any) -> "Vector":
        """``GrB_Vector_setElement``: v(i) = value (insert or overwrite)."""
        self._check_valid()
        i = self._check_index(index)
        val = self._type.validate_scalar(value) if self._type.is_udt else None

        def thunk():
            v = (
                val
                if self._type.is_udt
                else np.asarray([value]).astype(self._type.np_dtype)[0]
            )
            pos = int(np.searchsorted(self._keys, i))
            if pos < len(self._keys) and self._keys[pos] == i:
                self._values[pos] = v
            else:
                self._keys = np.insert(self._keys, pos, i)
                self._values = np.insert(self._values, pos, v)

        context.submit(
            thunk, reads=(self,), writes=self, label="Vector_setElement",
            deferrable=False,
        )
        return self

    def extract_element(self, index: int) -> Any:
        """``GrB_Vector_extractElement``: return v(i).

        Raises :class:`~repro.info.NoValue` when no element is stored at *i*
        (the C API's ``GrB_NO_VALUE`` informational code).
        """
        self._check_valid()
        i = self._check_index(index)
        context.complete(self)
        pos = int(np.searchsorted(self._keys, i))
        if pos < len(self._keys) and self._keys[pos] == i:
            return self._values[pos]
        raise NoValue(f"no element stored at index {index}")

    def remove_element(self, index: int) -> "Vector":
        """``GrB_Vector_removeElement``: delete v(i) if present."""
        self._check_valid()
        i = self._check_index(index)

        def thunk():
            pos = int(np.searchsorted(self._keys, i))
            if pos < len(self._keys) and self._keys[pos] == i:
                self._keys = np.delete(self._keys, pos)
                self._values = np.delete(self._values, pos)

        context.submit(
            thunk, reads=(self,), writes=self, label="Vector_removeElement",
            deferrable=False,
        )
        return self

    def extract_tuples(self) -> tuple[np.ndarray, np.ndarray]:
        """``GrB_Vector_extractTuples``: copy content to non-opaque arrays.

        Forces completion (section IV: methods that output non-opaque
        objects may not defer).
        """
        self._check_valid()
        context.complete(self)
        return self._keys.copy(), self._values.copy()

    def clear(self) -> "Vector":
        """``GrB_Vector_clear``: remove all stored elements (size unchanged)."""
        self._check_valid()

        def thunk():
            self._set_content(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=self._type.np_dtype),
            )

        context.submit(
            thunk, reads=(), writes=self, label="Vector_clear",
            overwrites_output=True,
        )
        return self

    def dup(self) -> "Vector":
        """``GrB_Vector_dup``: an independent copy with the same content."""
        self._check_valid()
        context.complete(self)
        out = Vector(self._type, self._size, name=f"dup({self.name})")
        out._set_content(self._keys.copy(), self._values.copy())
        return out

    # ------------------------------------------------------- conveniences
    def _check_index(self, index: int) -> int:
        i = int(index)
        if not 0 <= i < self._size:
            raise IndexOutOfBounds(
                f"index {index} out of range for vector of size {self._size}"
            )
        return i

    def __contains__(self, index: int) -> bool:
        self._check_valid()
        context.complete(self)
        return bool(membership(np.asarray([int(index)]), self._keys)[0])

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        self._check_valid()
        context.complete(self)
        keys, vals = self._keys, self._values
        return iter((int(k), v) for k, v in zip(keys, vals))

    def to_dense(self, fill: Any) -> np.ndarray:
        """Export to a dense numpy array, writing *fill* at undefined indices.

        The fill value is mandatory: per the paper, missing elements are
        *undefined*, so the caller must pick the implied value that matches
        the semiring in use.
        """
        self._check_valid()
        context.complete(self)
        out = np.full(
            self._size,
            fill,
            dtype=self._type.np_dtype if not self._type.is_udt else object,
        )
        out[self._keys] = self._values
        return out

    @classmethod
    def from_coo(
        cls,
        domain: GrBType,
        size: int,
        indices,
        values,
        dup: BinaryOp | None = None,
        *,
        name: str = "",
    ) -> "Vector":
        """Construct-and-build in one step (convenience, not in the C API)."""
        v = cls(domain, size, name=name)
        v.build(indices, values, dup)
        return v

    @classmethod
    def from_dense(
        cls, domain: GrBType, array, implied_zero: Any = 0, *, name: str = ""
    ) -> "Vector":
        """Build from a dense array, storing only entries != *implied_zero*."""
        arr = np.asarray(array)
        keep = np.nonzero(arr != implied_zero)[0]
        return cls.from_coo(domain, len(arr), keep, arr[keep], name=name)

    # --------------------------------------------------- spec 1.3/2.0 extras
    def resize(self, size: int) -> "Vector":
        """``GrB_Vector_resize``: change the size in place.

        Shrinking discards stored elements past the new bound.
        """
        self._check_valid()
        if size <= 0:
            raise InvalidValue("vector size must be positive")
        context.complete(self)
        keep = self._keys < size
        self._size = int(size)
        self._set_content(self._keys[keep], self._values[keep])
        return self

    @classmethod
    def from_diag(cls, A, k: int = 0, *, name: str = "") -> "Vector":
        """``GxB_Vector_diag``: extract diagonal *k* of a matrix."""
        from .matrix import Matrix

        if not isinstance(A, Matrix):
            raise InvalidValue("from_diag requires a Matrix")
        A._check_valid()
        context.complete(A)
        from .._sparseutil import unflatten_keys

        keys, vals = A._content()
        rows, cols = unflatten_keys(keys, A.ncols)
        on_diag = cols == rows + k
        if k >= 0:
            size = min(A.nrows, A.ncols - k)
            idx = rows[on_diag]
        else:
            size = min(A.nrows + k, A.ncols)
            idx = cols[on_diag]
        if size <= 0:
            raise InvalidValue(f"diagonal {k} is outside the matrix")
        out = cls(A.type, size, name=name)
        out._set_content(idx.astype(np.int64), vals[on_diag].copy())
        return out

    def export_sparse(self) -> tuple[np.ndarray, np.ndarray]:
        """Export: (indices, values) copies of the stored content."""
        return self.extract_tuples()

    @classmethod
    def import_sparse(
        cls, domain: GrBType, size: int, indices, values, *, name: str = ""
    ) -> "Vector":
        """Adopt raw sorted-unique index/value arrays after validation."""
        out = cls(domain, size, name=name)
        idx = np.asarray(indices, dtype=np.int64)
        if len(idx) and (idx.min() < 0 or idx.max() >= size):
            raise IndexOutOfBounds("vector index out of range")
        if np.any(np.diff(idx) <= 0):
            raise InvalidValue("indices must be sorted and unique")
        vals = out._coerce_values(values, len(idx))
        out._set_content(idx, vals)
        return out

    def __repr__(self) -> str:
        state = "freed" if self._freed else ("invalid" if self._poisoned else "ok")
        return (
            f"Vector<{self._type.name}, size={self._size}, "
            f"nvals={len(self._keys)}, {state}>"
        )


def vector_new(domain: GrBType, size: int, *, name: str = "") -> Vector:
    """``GrB_Vector_new`` (Table VI): create an empty vector."""
    return Vector(domain, size, name=name)
