"""Storage formats: COO assembly for builds and CSR/CSC views for kernels."""

from .coo import assemble, check_indices
from .csr import CSRView, csr_from_keys, transpose_permutation

__all__ = [
    "assemble",
    "check_indices",
    "CSRView",
    "csr_from_keys",
    "transpose_permutation",
]
