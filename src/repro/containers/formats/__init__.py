"""Storage formats: COO assembly, CSR/CSC kernel views, DCSR hypersparse."""

from .coo import assemble, check_indices
from .csr import CSRView, csr_from_keys, transpose_permutation
from .dcsr import DCSRView, dcsr_from_keys

__all__ = [
    "assemble",
    "check_indices",
    "CSRView",
    "csr_from_keys",
    "transpose_permutation",
    "DCSRView",
    "dcsr_from_keys",
]
