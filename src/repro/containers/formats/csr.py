"""CSR/CSC views over the canonical flat-key storage.

A matrix stores sorted row-major flat keys plus values.  Because the keys
are already in CSR order, the CSR view is nearly free: the row pointer comes
from a bincount, the column indices from a modulo.  The CSC view (equals the
CSR of the transpose) needs one argsort of the transposed keys and is what
column-oriented kernels (``vxm`` without transpose, ``extract`` by column)
consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSRView", "csr_from_keys", "transpose_permutation"]


@dataclass(frozen=True, slots=True)
class CSRView:
    """Read-only CSR triple over a matrix's storage arrays."""

    indptr: np.ndarray  # int64, len nrows+1
    indices: np.ndarray  # int64 column ids, sorted within each row
    values: np.ndarray  # parallel to indices
    nrows: int
    ncols: int

    @property
    def nnz(self) -> int:
        return len(self.indices)

    def row_slice(self, i: int) -> slice:
        return slice(int(self.indptr[i]), int(self.indptr[i + 1]))

    def row_counts(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row_ids(self) -> np.ndarray:
        """Row id of every stored element, in storage order."""
        return np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr)
        )


def csr_from_keys(
    keys: np.ndarray, values: np.ndarray, nrows: int, ncols: int
) -> CSRView:
    """Build the CSR view of sorted row-major flat keys (O(nnz))."""
    if ncols > 0:
        rows = keys // np.int64(ncols)
        cols = keys % np.int64(ncols)
    else:  # degenerate; no keys can exist
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    counts = np.bincount(rows, minlength=nrows) if len(keys) else np.zeros(
        nrows, dtype=np.int64
    )
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRView(indptr=indptr, indices=cols, values=values, nrows=nrows, ncols=ncols)


def transpose_permutation(
    keys: np.ndarray, nrows: int, ncols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Keys of the transpose plus the permutation mapping old values to them.

    ``t_keys[p] = transpose(keys)[perm[p]]`` — i.e. ``values[perm]`` is the
    value array of the transposed matrix.
    """
    rows = keys // np.int64(ncols)
    cols = keys % np.int64(ncols)
    t_keys = cols * np.int64(nrows) + rows
    perm = np.argsort(t_keys, kind="stable")
    return t_keys[perm], perm
