"""COO assembly: turning user tuple lists into the canonical sorted form.

``GrB_Matrix_build`` / ``GrB_Vector_build`` accept tuples in any order and a
``dup`` binary operator for combining duplicates ("in case there are any
duplicate entries", Fig. 3 line 28); without ``dup`` a duplicate index is an
API error.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...info import IndexOutOfBounds, InvalidValue
from ..._sparseutil import group_starts
from ...ops.base import BinaryOp

__all__ = ["assemble"]


def assemble(
    keys: np.ndarray,
    values: np.ndarray,
    dup: BinaryOp | None,
    out_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort flat *keys*, combine duplicates with *dup*, return canonical arrays.

    ``values`` must already be in the collection's storage dtype.
    """
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=out_dtype)

    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values = values[order]

    uniq, starts = group_starts(keys)
    if len(uniq) == len(keys):
        return keys, values

    if dup is None:
        raise InvalidValue(
            "duplicate indices in build and no dup operator given"
        )

    ends = np.empty(len(starts), dtype=np.int64)
    ends[:-1] = starts[1:]
    ends[-1] = len(keys)

    if dup.ufunc is not None and values.dtype != np.dtype(object):
        out_vals = dup.ufunc.reduceat(values, starts)
        if out_vals.dtype != out_dtype:
            out_vals = out_vals.astype(out_dtype)
    else:
        out_vals = np.empty(len(starts), dtype=out_dtype)
        for k in range(len(starts)):
            seg = values[starts[k] : ends[k]]
            acc = seg[0]
            # dup combines in index order: acc = dup(acc, next)
            for v in seg[1:]:
                acc = dup(acc, v)
            out_vals[k] = acc
    return uniq, out_vals


def check_indices(indices: np.ndarray, bound: int, what: str) -> np.ndarray:
    """Validate a user index array against a dimension bound; returns int64."""
    arr = np.asarray(indices, dtype=np.int64)
    if arr.ndim != 1:
        raise InvalidValue(f"{what} index array must be one-dimensional")
    if len(arr) and (arr.min() < 0 or arr.max() >= bound):
        raise IndexOutOfBounds(
            f"{what} index out of range [0, {bound})"
        )
    return arr
