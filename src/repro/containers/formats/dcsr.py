"""DCSR (doubly-compressed sparse row) hypersparse views.

CSR spends ``O(nrows)`` on the row pointer even when almost every row is
empty — exactly the regime streaming ingest produces (a few hot rows of a
huge vertex space receive edges).  DCSR compresses the row dimension too:
only rows with at least one stored entry appear, named explicitly in
``row_ids`` with their own compact pointer array.  A hash index over
``row_ids`` gives O(1) expected row lookup without materialising a dense
``nrows``-length table.

The view is derived from the same canonical sorted flat-key storage as
:class:`~repro.containers.formats.csr.CSRView`, so building it is one
``unique`` over the row ids — O(nnz) — and it never disagrees with the CSR
view of the same version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DCSRView", "dcsr_from_keys"]


@dataclass(frozen=True, slots=True)
class DCSRView:
    """Read-only doubly-compressed row view over flat-key storage.

    ``row_ids[k]`` is the k-th non-empty row; its entries live in
    ``indices/values[indptr[k]:indptr[k+1]]``.  ``nvec`` (the number of
    non-empty rows) is ``len(row_ids)`` — the hypersparsity ratio is
    ``nvec / nrows``.
    """

    row_ids: np.ndarray  # int64, sorted, the non-empty rows
    indptr: np.ndarray  # int64, len nvec+1, into indices/values
    indices: np.ndarray  # int64 column ids, sorted within each row
    values: np.ndarray  # parallel to indices
    nrows: int
    ncols: int
    _index: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def nvec(self) -> int:
        return len(self.row_ids)

    @property
    def hypersparsity(self) -> float:
        """Fraction of rows that are non-empty (0.0 for an empty matrix)."""
        return self.nvec / self.nrows if self.nrows else 0.0

    def _hash_index(self) -> dict:
        if not self._index and self.nvec:
            self._index.update(
                (int(r), k) for k, r in enumerate(self.row_ids)
            )
        return self._index

    def row_slice(self, i: int) -> slice:
        """Entry slice of row *i*; empty slice when the row is not stored."""
        k = self._hash_index().get(int(i))
        if k is None:
            return slice(0, 0)
        return slice(int(self.indptr[k]), int(self.indptr[k + 1]))

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column ids, values) of row *i* — empty arrays for empty rows."""
        sl = self.row_slice(i)
        return self.indices[sl], self.values[sl]

    def row_counts(self) -> np.ndarray:
        """Entry count per *stored* row (parallel to ``row_ids``)."""
        return np.diff(self.indptr)


def dcsr_from_keys(
    keys: np.ndarray, values: np.ndarray, nrows: int, ncols: int
) -> DCSRView:
    """Build the DCSR view of sorted row-major flat keys (O(nnz))."""
    if len(keys) and ncols > 0:
        rows = keys // np.int64(ncols)
        cols = keys % np.int64(ncols)
        row_ids, starts = np.unique(rows, return_index=True)
        indptr = np.empty(len(row_ids) + 1, dtype=np.int64)
        indptr[:-1] = starts
        indptr[-1] = len(keys)
    else:
        row_ids = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        indptr = np.zeros(1, dtype=np.int64)
    return DCSRView(
        row_ids=row_ids,
        indptr=indptr,
        indices=cols,
        values=values,
        nrows=nrows,
        ncols=ncols,
    )
