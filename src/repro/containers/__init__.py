"""GraphBLAS collections: opaque vectors and matrices, their storage formats,
and lazy mask views."""

from .base import OpaqueObject
from .mask import MaskView, build_mask_view, validate_mask_domain
from .matrix import Matrix, matrix_new
from .scalar import Scalar, scalar_new
from .vector import Vector, vector_new

__all__ = [
    "OpaqueObject",
    "Vector",
    "Matrix",
    "Scalar",
    "scalar_new",
    "vector_new",
    "matrix_new",
    "MaskView",
    "build_mask_view",
    "validate_mask_domain",
]
