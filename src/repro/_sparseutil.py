"""Low-level sorted-index-set primitives shared by all kernels.

Both GraphBLAS collections reduce to the same internal shape: a sorted,
duplicate-free ``int64`` key array plus a parallel value array.  For a vector
the keys are element indices; for a matrix they are flattened ``i*ncols + j``
keys (row-major, matching CSR order).  Every eWise merge, mask application,
accumulation and write-pipeline step is then a handful of set operations on
sorted key arrays, implemented here once with ``searchsorted``.

All functions assume (and preserve) the sorted-unique invariant.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .info import InsufficientSpace

__all__ = [
    "check_flat_capacity",
    "flatten_keys",
    "unflatten_keys",
    "membership",
    "intersect_indices",
    "setdiff_mask",
    "union_keys",
    "segment_reduce",
    "group_starts",
    "ranges_concat",
]

#: Largest nrows*ncols product for which flat int64 keys are safe.
_FLAT_LIMIT = np.int64(2) ** 62


def check_flat_capacity(nrows: int, ncols: int) -> None:
    """Guard the flat-key representation against int64 overflow.

    The C spec's ``GrB_INDEX_MAX`` allows dimensions up to 2**60; flattened
    row-major keys need ``nrows*ncols`` to fit in int64.  Laptop-scale
    reproduction never hits this, but fail loudly rather than corrupt keys.
    """
    if int(nrows) * int(ncols) >= int(_FLAT_LIMIT):
        raise InsufficientSpace(
            f"matrix of shape {nrows}x{ncols} exceeds the flat-key capacity "
            "of this implementation"
        )


def flatten_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Row-major flat keys ``i*ncols + j`` (int64)."""
    return rows.astype(np.int64) * np.int64(ncols) + cols.astype(np.int64)


def unflatten_keys(keys: np.ndarray, ncols: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`flatten_keys`."""
    rows, cols = np.divmod(keys, np.int64(ncols))
    return rows, cols


def membership(keys: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Boolean mask: which of *keys* appear in sorted-unique *table*."""
    if len(table) == 0:
        return np.zeros(len(keys), dtype=bool)
    pos = np.searchsorted(table, keys)
    pos_c = np.minimum(pos, len(table) - 1)
    return table[pos_c] == keys


def intersect_indices(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Positions ``(ia, ib)`` such that ``a[ia] == b[ib]`` (set intersection).

    This is the paper's ``ind(A(i,:)) ∩ ind(B(:,j))`` primitive: the ⊗ operator
    is applied only on the intersection of stored index sets.
    """
    if len(a) == 0 or len(b) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    in_b = membership(a, b)
    ia = np.nonzero(in_b)[0]
    ib = np.searchsorted(b, a[ia])
    return ia.astype(np.int64), ib.astype(np.int64)


def setdiff_mask(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean mask over *a*: entries NOT present in sorted-unique *b*."""
    return ~membership(a, b)


def union_keys(
    a_keys: np.ndarray,
    a_vals: np.ndarray,
    b_keys: np.ndarray,
    b_vals: np.ndarray,
    out_dtype: np.dtype,
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray],
    cast_a: Callable[[np.ndarray], np.ndarray] | None = None,
    cast_b: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted key/value sets.

    Keys only in ``a`` keep ``cast_a(a_vals)``; keys only in ``b`` keep
    ``cast_b(b_vals)``; on the intersection ``combine(a, b)`` (already-cast
    inputs are the caller's responsibility — ``combine`` receives the *raw*
    paired values).  Returns sorted-unique keys with values of *out_dtype*.
    """
    cast_a = cast_a or (lambda x: x)
    cast_b = cast_b or (lambda x: x)
    if len(a_keys) == 0:
        return b_keys.copy(), np.array(cast_b(b_vals), dtype=out_dtype, copy=True)
    if len(b_keys) == 0:
        return a_keys.copy(), np.array(cast_a(a_vals), dtype=out_dtype, copy=True)

    ia, ib = intersect_indices(a_keys, b_keys)
    only_a = np.ones(len(a_keys), dtype=bool)
    only_a[ia] = False
    only_b = np.ones(len(b_keys), dtype=bool)
    only_b[ib] = False

    keys = np.concatenate([a_keys[only_a], b_keys[only_b], a_keys[ia]])
    n_total = len(keys)
    vals = np.empty(n_total, dtype=out_dtype)
    na, nb = int(only_a.sum()), int(only_b.sum())
    vals[:na] = cast_a(a_vals[only_a])
    vals[na : na + nb] = cast_b(b_vals[only_b])
    if len(ia):
        vals[na + nb :] = combine(a_vals[ia], b_vals[ib])

    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]


def group_starts(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique keys of a *sorted* array plus the start offset of each run."""
    if len(sorted_keys) == 0:
        return sorted_keys, np.empty(0, dtype=np.int64)
    boundary = np.empty(len(sorted_keys), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0].astype(np.int64)
    return sorted_keys[starts], starts


def segment_reduce(values: np.ndarray, starts: np.ndarray, monoid) -> np.ndarray:
    """Reduce each segment ``values[starts[k]:starts[k+1]]`` with a monoid.

    Uses ``ufunc.reduceat`` when the monoid's operator has a genuine numpy
    ufunc (the fast path every predefined monoid hits); otherwise a Python
    loop over segments.  Segments must be non-empty.
    """
    if len(starts) == 0:
        return np.empty(0, dtype=values.dtype)
    uf = monoid.op.ufunc
    if uf is not None and values.dtype != np.dtype(object):
        # keep the reduction in the monoid's domain: reduceat promotes
        # integer sums/products to 64 bits, which would leak non-wrapped
        # values to callers that trust t_type
        return uf.reduceat(values, starts).astype(values.dtype, copy=False)
    ends = np.empty(len(starts), dtype=np.int64)
    ends[:-1] = starts[1:]
    ends[-1] = len(values)
    out = np.empty(len(starts), dtype=values.dtype)
    for k in range(len(starts)):
        seg = values[starts[k] : ends[k]]
        acc = seg[0]
        for v in seg[1:]:
            acc = monoid.op(acc, v)
        out[k] = acc
    return out


def ranges_concat(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], starts[k]+counts[k])`` for all k.

    The standard vectorized gather of CSR row segments: given per-segment
    start offsets and lengths, produce the flat index array selecting every
    element of every segment, in order.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # within-segment offsets: arange(total) minus the cumulative start of
    # each segment, repeated per element
    seg_offsets = np.repeat(
        np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
    )
    within = np.arange(total, dtype=np.int64) - seg_offsets
    return np.repeat(starts.astype(np.int64), counts) + within
