"""Predefined binary operators (paper Table IV).

The C API predefines typed instances of each operator family —
``GrB_PLUS_INT32``, ``GrB_TIMES_FP32``, ... — over the eleven built-in
domains.  Here each family is an :class:`~repro.ops.base.OpFamily` indexed by
domain (``PLUS[INT32]``), and every instance is also registered under its
spec-style name for string lookup (:func:`binary_op`).

Arithmetic fidelity notes (documented deviations are deliberate):

* Integer arithmetic wraps modulo 2**n, as C's does in practice.
* Integer division truncates toward zero (C semantics, not Python's floor),
  and division by zero yields 0 — C leaves it undefined; a fixed total
  function keeps vectorized kernels exception-free.
* ``MIN``/``MAX`` on floats use ``fmin``/``fmax`` NaN-omitting semantics,
  matching C's ``fminf``/``fmaxf``.
* Boolean arithmetic follows the standard GraphBLAS collapse: PLUS=∨,
  TIMES=∧, MINUS=xor, MIN=∧, MAX=∨.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..info import InvalidValue
from ..types import (
    BOOL,
    BUILTIN_TYPES,
    FLOAT_TYPES,
    INTEGER_TYPES,
    GrBType,
)
from .base import BinaryOp, OpFamily

__all__ = [
    "FIRST",
    "SECOND",
    "PAIR",
    "ONEB",
    "MIN",
    "MAX",
    "PLUS",
    "MINUS",
    "RMINUS",
    "TIMES",
    "DIV",
    "RDIV",
    "POW",
    "EQ",
    "NE",
    "GT",
    "LT",
    "GE",
    "LE",
    "LAND",
    "LOR",
    "LXOR",
    "LXNOR",
    "BOR",
    "BAND",
    "BXOR",
    "BXNOR",
    "binary_op",
    "binary_op_new",
    "BINARY_REGISTRY",
    "ALL_BINARY_FAMILIES",
]

BINARY_REGISTRY: dict[str, BinaryOp] = {}


def _register(op: BinaryOp) -> BinaryOp:
    BINARY_REGISTRY[op.name] = op
    return op


def _as1(value: Any, dtype: np.dtype) -> np.ndarray:
    """One-element array in *dtype*, wrapping out-of-range ints like C."""
    try:
        return np.asarray([value], dtype=dtype)
    except (OverflowError, ValueError):
        return np.asarray([value]).astype(dtype)


def _scalarize(array_fn: Callable, d1: GrBType, d2: GrBType, d_out: GrBType):
    """Derive a scalar function from the vectorized one so that scalar and
    array applications agree bit-for-bit (wrapping, NaN handling, ...)."""

    def scalar_fn(x: Any, y: Any) -> Any:
        out = array_fn(_as1(x, d1.np_dtype), _as1(y, d2.np_dtype))
        return d_out.np_dtype.type(out[0])

    return scalar_fn


def _trunc_div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """C-style integer division: truncate toward zero, x/0 == 0."""
    out = np.zeros(len(x), dtype=np.result_type(x, y))
    nz = y != 0
    xs, ys = x[nz], y[nz]
    q = np.floor_divide(xs, ys)
    r = np.remainder(xs, ys)
    if x.dtype.kind == "i":
        # floor and trunc differ when signs differ and division is inexact
        q = q + ((r != 0) & ((xs < 0) != (ys < 0)))
    out[nz] = q
    return out.astype(x.dtype)


def _float_div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(x, y)


def _int_pow(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    # numpy raises on negative integer exponents; C pow would go through
    # double.  Clamp negative exponents to the truncated double result.
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        f = np.power(x.astype(np.float64), y.astype(np.float64))
    f = np.where(np.isfinite(f), f, 0.0)
    return f.astype(x.dtype)


def _make_family(
    name: str,
    domains: tuple[GrBType, ...],
    build: Callable[[GrBType], tuple[Callable, np.ufunc | None]],
    d_out_of: Callable[[GrBType], GrBType] | None = None,
    commutative: bool = False,
    associative: bool = False,
    spec_prefix: str = "GrB",
) -> OpFamily:
    ops: dict[GrBType, BinaryOp] = {}
    for t in domains:
        array_fn, ufunc = build(t)
        d_out = d_out_of(t) if d_out_of is not None else t
        short = t.name.removeprefix("GrB_")
        op = BinaryOp(
            name=f"{spec_prefix}_{name}_{short}",
            d_in1=t,
            d_in2=t,
            d_out=d_out,
            scalar_fn=_scalarize(array_fn, t, t, d_out),
            array_fn=array_fn,
            ufunc=ufunc,
            commutative=commutative,
            associative=associative,
        )
        ops[t] = _register(op)
    return OpFamily(name, ops)


# --------------------------------------------------------------------------
# Selection operators
# --------------------------------------------------------------------------

def _first_build(t: GrBType):
    return (lambda x, y: x.copy()), None


def _second_build(t: GrBType):
    return (lambda x, y: y.copy()), None


def _pair_build(t: GrBType):
    one = t.np_dtype.type(1)
    return (lambda x, y: np.full(len(x), one, dtype=t.np_dtype)), None


FIRST = _make_family("FIRST", BUILTIN_TYPES, _first_build, associative=True)
SECOND = _make_family("SECOND", BUILTIN_TYPES, _second_build, associative=True)
PAIR = _make_family(
    "ONEB", BUILTIN_TYPES, _pair_build, commutative=True, associative=True
)
ONEB = PAIR  # GrB 2.0 renamed GxB_PAIR to GrB_ONEB; both names work here.


# --------------------------------------------------------------------------
# Arithmetic
# --------------------------------------------------------------------------

def _min_build(t: GrBType):
    uf = np.fmin if t in FLOAT_TYPES else np.minimum
    return uf, uf


def _max_build(t: GrBType):
    uf = np.fmax if t in FLOAT_TYPES else np.maximum
    return uf, uf


def _plus_build(t: GrBType):
    uf = np.logical_or if t is BOOL else np.add
    return uf, uf


def _times_build(t: GrBType):
    uf = np.logical_and if t is BOOL else np.multiply
    return uf, uf


def _minus_build(t: GrBType):
    if t is BOOL:
        return np.logical_xor, np.logical_xor
    return np.subtract, np.subtract


def _rminus_build(t: GrBType):
    if t is BOOL:
        return np.logical_xor, None
    return (lambda x, y: np.subtract(y, x)), None


def _div_build(t: GrBType):
    if t is BOOL:
        return (lambda x, y: x.copy()), None  # bool DIV == FIRST
    if t in INTEGER_TYPES:
        return _trunc_div, None
    return _float_div, None


def _rdiv_build(t: GrBType):
    if t is BOOL:
        return (lambda x, y: y.copy()), None
    if t in INTEGER_TYPES:
        return (lambda x, y: _trunc_div(y, x)), None
    return (lambda x, y: _float_div(y, x)), None


def _pow_build(t: GrBType):
    if t is BOOL:
        return (lambda x, y: np.logical_or(x, np.logical_not(y))), None
    if t in INTEGER_TYPES:
        return _int_pow, None

    def fpow(x, y):
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            return np.power(x, y)

    return fpow, None


MIN = _make_family("MIN", BUILTIN_TYPES, _min_build, commutative=True, associative=True)
MAX = _make_family("MAX", BUILTIN_TYPES, _max_build, commutative=True, associative=True)
PLUS = _make_family(
    "PLUS", BUILTIN_TYPES, _plus_build, commutative=True, associative=True
)
MINUS = _make_family("MINUS", BUILTIN_TYPES, _minus_build)
RMINUS = _make_family("RMINUS", BUILTIN_TYPES, _rminus_build, spec_prefix="GxB")
TIMES = _make_family(
    "TIMES", BUILTIN_TYPES, _times_build, commutative=True, associative=True
)
DIV = _make_family("DIV", BUILTIN_TYPES, _div_build)
RDIV = _make_family("RDIV", BUILTIN_TYPES, _rdiv_build, spec_prefix="GxB")
POW = _make_family("POW", BUILTIN_TYPES, _pow_build, spec_prefix="GxB")


# --------------------------------------------------------------------------
# Comparisons: D x D -> BOOL
# --------------------------------------------------------------------------

def _cmp_family(name: str, ufunc: np.ufunc, commutative: bool) -> OpFamily:
    def build(t: GrBType):
        return ufunc, ufunc

    return _make_family(
        name,
        BUILTIN_TYPES,
        build,
        d_out_of=lambda t: BOOL,
        commutative=commutative,
        # associativity is only meaningful for the BOOL instance, where
        # EQ == xnor and NE == xor are associative; flagged per-op below.
        associative=False,
    )


EQ = _cmp_family("EQ", np.equal, commutative=True)
NE = _cmp_family("NE", np.not_equal, commutative=True)
GT = _cmp_family("GT", np.greater, commutative=False)
LT = _cmp_family("LT", np.less, commutative=False)
GE = _cmp_family("GE", np.greater_equal, commutative=False)
LE = _cmp_family("LE", np.less_equal, commutative=False)

EQ[BOOL].associative = True  # xnor
NE[BOOL].associative = True  # xor


# --------------------------------------------------------------------------
# Logical (BOOL only, as in the core spec)
# --------------------------------------------------------------------------

def _bool_op(name: str, ufunc: np.ufunc) -> BinaryOp:
    return _register(
        BinaryOp(
            name=f"GrB_{name}",
            d_in1=BOOL,
            d_in2=BOOL,
            d_out=BOOL,
            scalar_fn=_scalarize(ufunc, BOOL, BOOL, BOOL),
            array_fn=ufunc,
            ufunc=ufunc,
            commutative=True,
            associative=True,
        )
    )


LAND = _bool_op("LAND", np.logical_and)
LOR = _bool_op("LOR", np.logical_or)
LXOR = _bool_op("LXOR", np.logical_xor)
LXNOR = _bool_op("LXNOR", np.equal)


# --------------------------------------------------------------------------
# Bitwise (integer domains)
# --------------------------------------------------------------------------

def _bxnor(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.bitwise_not(np.bitwise_xor(x, y))


BOR = _make_family(
    "BOR",
    INTEGER_TYPES,
    lambda t: (np.bitwise_or, np.bitwise_or),
    commutative=True,
    associative=True,
)
BAND = _make_family(
    "BAND",
    INTEGER_TYPES,
    lambda t: (np.bitwise_and, np.bitwise_and),
    commutative=True,
    associative=True,
)
BXOR = _make_family(
    "BXOR",
    INTEGER_TYPES,
    lambda t: (np.bitwise_xor, np.bitwise_xor),
    commutative=True,
    associative=True,
)
BXNOR = _make_family(
    "BXNOR",
    INTEGER_TYPES,
    lambda t: (_bxnor, None),
    commutative=True,
    associative=True,
)

ALL_BINARY_FAMILIES: dict[str, OpFamily] = {
    f.name: f
    for f in (
        FIRST,
        SECOND,
        PAIR,
        MIN,
        MAX,
        PLUS,
        MINUS,
        RMINUS,
        TIMES,
        DIV,
        RDIV,
        POW,
        EQ,
        NE,
        GT,
        LT,
        GE,
        LE,
        BOR,
        BAND,
        BXOR,
        BXNOR,
    )
}


def binary_op(name: str) -> BinaryOp:
    """Look up a predefined binary operator by spec name, e.g. ``"GrB_PLUS_INT32"``.

    Short forms without the ``GrB_`` prefix are accepted.
    """
    for candidate in (name, f"GrB_{name}", f"GxB_{name}"):
        if candidate in BINARY_REGISTRY:
            return BINARY_REGISTRY[candidate]
    raise InvalidValue(f"unknown binary operator {name!r}")


def binary_op_new(
    fn: Callable[[Any, Any], Any],
    d_in1: GrBType,
    d_in2: GrBType,
    d_out: GrBType,
    *,
    name: str | None = None,
    array_fn: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ufunc: np.ufunc | None = None,
    commutative: bool = False,
    associative: bool = False,
) -> BinaryOp:
    """Create a user-defined binary operator (``GrB_BinaryOp_new``)."""
    return BinaryOp(
        name=name or f"user_binary_{fn.__name__}",
        d_in1=d_in1,
        d_in2=d_in2,
        d_out=d_out,
        scalar_fn=fn,
        array_fn=array_fn,
        ufunc=ufunc,
        commutative=commutative,
        associative=associative,
    )
