"""Index-unary (positional) operators.

These power the ``select`` operation (a GraphBLAS 2.0 / GxB extension the
standard triangle-counting and filtering workloads rely on): each stored
element ``A(i, j)`` is passed with its position and a scalar *thunk* to a
predicate or transformer.

Positional predicates (``TRIL``, ``TRIU``, ``DIAG``, ``OFFDIAG``,
``ROWINDEX`` comparisons) are domain-agnostic; value predicates
(``VALUEEQ``...) are families over the built-in domains.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..info import InvalidValue
from ..types import BOOL, BUILTIN_TYPES, INT64, GrBType
from .base import IndexUnaryOp, OpFamily

__all__ = [
    "TRIL",
    "TRIU",
    "DIAG",
    "OFFDIAG",
    "ROWINDEX",
    "COLINDEX",
    "DIAGINDEX",
    "ROWLE",
    "ROWGT",
    "COLLE",
    "COLGT",
    "VALUEEQ",
    "VALUENE",
    "VALUELT",
    "VALUELE",
    "VALUEGT",
    "VALUEGE",
    "index_unary_op",
    "index_unary_op_new",
    "INDEXUNARY_REGISTRY",
]

INDEXUNARY_REGISTRY: dict[str, IndexUnaryOp] = {}


def _register(op: IndexUnaryOp) -> IndexUnaryOp:
    INDEXUNARY_REGISTRY[op.name] = op
    return op


def _positional(name: str, scalar_fn, array_fn, d_out: GrBType = BOOL) -> IndexUnaryOp:
    """A positional op valid for any input domain (input value is ignored)."""
    return _register(
        IndexUnaryOp(
            name=f"GrB_{name}",
            d_in=None,  # type: ignore[arg-type]  # any domain
            d_thunk=INT64,
            d_out=d_out,
            scalar_fn=scalar_fn,
            array_fn=array_fn,
        )
    )


# Predicates:  keep element when f(a, i, j, thunk) is true.
TRIL = _positional(
    "TRIL",
    lambda a, i, j, k: j <= i + k,
    lambda v, r, c, k: c <= r + k,
)
TRIU = _positional(
    "TRIU",
    lambda a, i, j, k: j >= i + k,
    lambda v, r, c, k: c >= r + k,
)
DIAG = _positional(
    "DIAG",
    lambda a, i, j, k: j == i + k,
    lambda v, r, c, k: c == r + k,
)
OFFDIAG = _positional(
    "OFFDIAG",
    lambda a, i, j, k: j != i + k,
    lambda v, r, c, k: c != r + k,
)
ROWLE = _positional(
    "ROWLE",
    lambda a, i, j, k: i <= k,
    lambda v, r, c, k: r <= k,
)
ROWGT = _positional(
    "ROWGT",
    lambda a, i, j, k: i > k,
    lambda v, r, c, k: r > k,
)
COLLE = _positional(
    "COLLE",
    lambda a, i, j, k: j <= k,
    lambda v, r, c, k: c <= k,
)
COLGT = _positional(
    "COLGT",
    lambda a, i, j, k: j > k,
    lambda v, r, c, k: c > k,
)

# Transformers: produce INT64 positions (usable with apply).
ROWINDEX = _positional(
    "ROWINDEX",
    lambda a, i, j, k: i + k,
    lambda v, r, c, k: (r + k).astype(np.int64),
    d_out=INT64,
)
COLINDEX = _positional(
    "COLINDEX",
    lambda a, i, j, k: j + k,
    lambda v, r, c, k: (c + k).astype(np.int64),
    d_out=INT64,
)
DIAGINDEX = _positional(
    "DIAGINDEX",
    lambda a, i, j, k: j - i + k,
    lambda v, r, c, k: (c - r + k).astype(np.int64),
    d_out=INT64,
)


def _value_family(name: str, ufunc: np.ufunc) -> OpFamily:
    ops: dict[GrBType, IndexUnaryOp] = {}
    for t in BUILTIN_TYPES:
        short = t.name.removeprefix("GrB_")

        def array_fn(v, r, c, k, _uf=ufunc, _t=t):
            return _uf(v, _t.np_dtype.type(k))

        op = IndexUnaryOp(
            name=f"GrB_{name}_{short}",
            d_in=t,
            d_thunk=t,
            d_out=BOOL,
            scalar_fn=lambda a, i, j, k, _uf=ufunc: bool(_uf(a, k)),
            array_fn=array_fn,
        )
        ops[t] = _register(op)
    return OpFamily(name, ops)


VALUEEQ = _value_family("VALUEEQ", np.equal)
VALUENE = _value_family("VALUENE", np.not_equal)
VALUELT = _value_family("VALUELT", np.less)
VALUELE = _value_family("VALUELE", np.less_equal)
VALUEGT = _value_family("VALUEGT", np.greater)
VALUEGE = _value_family("VALUEGE", np.greater_equal)


def index_unary_op(name: str) -> IndexUnaryOp:
    """Look up a predefined index-unary operator by name, e.g. ``"GrB_TRIL"``."""
    for candidate in (name, f"GrB_{name}", f"GxB_{name}"):
        if candidate in INDEXUNARY_REGISTRY:
            return INDEXUNARY_REGISTRY[candidate]
    raise InvalidValue(f"unknown index-unary operator {name!r}")


def index_unary_op_new(
    fn: Callable[[Any, int, int, Any], Any],
    d_in: GrBType,
    d_thunk: GrBType,
    d_out: GrBType,
    *,
    name: str | None = None,
    array_fn: Callable | None = None,
) -> IndexUnaryOp:
    """Create a user-defined index-unary operator (``GrB_IndexUnaryOp_new``)."""
    return IndexUnaryOp(
        name=name or f"user_indexunary_{fn.__name__}",
        d_in=d_in,
        d_thunk=d_thunk,
        d_out=d_out,
        scalar_fn=fn,
        array_fn=array_fn,
    )
