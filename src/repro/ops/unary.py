"""Predefined unary operators (paper Table IV: ``GrB_MINV_FP32``,
``GrB_IDENTITY_BOOL``, ...).

Each family is an :class:`~repro.ops.base.OpFamily` over the built-in
domains; every typed instance is registered under its spec-style name for
lookup via :func:`unary_op`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..info import InvalidValue
from ..types import (
    BOOL,
    BUILTIN_TYPES,
    FLOAT_TYPES,
    INTEGER_TYPES,
    SIGNED_TYPES,
    UNSIGNED_TYPES,
    GrBType,
)
from .base import OpFamily, UnaryOp

__all__ = [
    "IDENTITY",
    "AINV",
    "MINV",
    "ABS",
    "ONE",
    "LNOT",
    "BNOT",
    "SQRT",
    "EXP",
    "LOG",
    "unary_op",
    "unary_op_new",
    "UNARY_REGISTRY",
    "ALL_UNARY_FAMILIES",
]

UNARY_REGISTRY: dict[str, UnaryOp] = {}


def _register(op: UnaryOp) -> UnaryOp:
    UNARY_REGISTRY[op.name] = op
    return op


def _scalarize(array_fn: Callable, d_in: GrBType, d_out: GrBType):
    def scalar_fn(x: Any) -> Any:
        try:
            xa = np.asarray([x], dtype=d_in.np_dtype)
        except (OverflowError, ValueError):
            xa = np.asarray([x]).astype(d_in.np_dtype)
        return d_out.np_dtype.type(array_fn(xa)[0])

    return scalar_fn


def _make_family(
    name: str,
    domains: tuple[GrBType, ...],
    build: Callable[[GrBType], Callable[[np.ndarray], np.ndarray]],
    d_out_of: Callable[[GrBType], GrBType] | None = None,
    spec_prefix: str = "GrB",
) -> OpFamily:
    ops: dict[GrBType, UnaryOp] = {}
    for t in domains:
        array_fn = build(t)
        d_out = d_out_of(t) if d_out_of is not None else t
        short = t.name.removeprefix("GrB_")
        op = UnaryOp(
            name=f"{spec_prefix}_{name}_{short}",
            d_in=t,
            d_out=d_out,
            scalar_fn=_scalarize(array_fn, t, d_out),
            array_fn=array_fn,
        )
        ops[t] = _register(op)
    return OpFamily(name, ops)


def _identity_build(t: GrBType):
    return lambda x: x.copy()


def _ainv_build(t: GrBType):
    if t is BOOL:
        # Boolean "+" is ∨, which has no inverses; the conventional
        # GraphBLAS definition of AINV over BOOL is the identity.
        return lambda x: x.copy()
    if t in UNSIGNED_TYPES:
        # two's-complement wraparound negation, as C's unary minus gives
        def neg_u(x):
            return (np.zeros(1, dtype=t.np_dtype) - x).astype(t.np_dtype)

        return neg_u
    return np.negative


def _minv_build(t: GrBType):
    if t is BOOL:
        # 1/true == true; 1/false is division by zero, fixed at true so that
        # MINV is total (mirrors SuiteSparse's choice).
        return lambda x: np.ones(len(x), dtype=np.bool_)
    if t in INTEGER_TYPES:

        def iminv(x):
            out = np.zeros(len(x), dtype=t.np_dtype)
            nz = x != 0
            # trunc(1/x): 1 for x==1, possibly -1 for x==-1, else 0
            xv = x[nz]
            q = np.zeros(len(xv), dtype=t.np_dtype)
            q[xv == 1] = 1
            if t in SIGNED_TYPES:
                q[xv == -1] = t.np_dtype.type(-1)
            out[nz] = q
            return out

        return iminv

    def fminv(x):
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.divide(t.np_dtype.type(1), x)

    return fminv


def _abs_build(t: GrBType):
    if t is BOOL or t in UNSIGNED_TYPES:
        return lambda x: x.copy()
    return np.abs


def _one_build(t: GrBType):
    one = t.np_dtype.type(1)
    return lambda x: np.full(len(x), one, dtype=t.np_dtype)


IDENTITY = _make_family("IDENTITY", BUILTIN_TYPES, _identity_build)
AINV = _make_family("AINV", BUILTIN_TYPES, _ainv_build)
MINV = _make_family("MINV", BUILTIN_TYPES, _minv_build)
ABS = _make_family("ABS", BUILTIN_TYPES, _abs_build)
ONE = _make_family("ONE", BUILTIN_TYPES, _one_build, spec_prefix="GxB")

LNOT = _register(
    UnaryOp(
        name="GrB_LNOT",
        d_in=BOOL,
        d_out=BOOL,
        scalar_fn=_scalarize(np.logical_not, BOOL, BOOL),
        array_fn=np.logical_not,
    )
)

BNOT = _make_family(
    "BNOT", INTEGER_TYPES, lambda t: np.bitwise_not, spec_prefix="GrB"
)


def _float_math_build(np_fn):
    # domain errors (sqrt/log of a negative) follow C's math.h: NaN/-Inf
    # land in the output instead of raising, like SuiteSparse's kernels
    def build(t: GrBType):
        def fn(x):
            with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
                return np_fn(x).astype(t.np_dtype, copy=False)

        return fn

    return build


SQRT = _make_family(
    "SQRT", FLOAT_TYPES, _float_math_build(np.sqrt), spec_prefix="GxB"
)
EXP = _make_family(
    "EXP", FLOAT_TYPES, _float_math_build(np.exp), spec_prefix="GxB"
)
LOG = _make_family(
    "LOG", FLOAT_TYPES, _float_math_build(np.log), spec_prefix="GxB"
)

ALL_UNARY_FAMILIES: dict[str, OpFamily] = {
    f.name: f for f in (IDENTITY, AINV, MINV, ABS, ONE, BNOT, SQRT, EXP, LOG)
}

# Sanity: float MINV of 2.0 is 0.5, not integer-truncated.
assert MINV[FLOAT_TYPES[0]](2.0) == np.float32(0.5)


def unary_op(name: str) -> UnaryOp:
    """Look up a predefined unary operator by name, e.g. ``"GrB_MINV_FP32"``."""
    for candidate in (name, f"GrB_{name}", f"GxB_{name}"):
        if candidate in UNARY_REGISTRY:
            return UNARY_REGISTRY[candidate]
    raise InvalidValue(f"unknown unary operator {name!r}")


def unary_op_new(
    fn: Callable[[Any], Any],
    d_in: GrBType,
    d_out: GrBType,
    *,
    name: str | None = None,
    array_fn: Callable[[np.ndarray], np.ndarray] | None = None,
) -> UnaryOp:
    """Create a user-defined unary operator (``GrB_UnaryOp_new``)."""
    return UnaryOp(
        name=name or f"user_unary_{fn.__name__}",
        d_in=d_in,
        d_out=d_out,
        scalar_fn=fn,
        array_fn=array_fn,
    )
