"""Operator base classes (paper section III-B, Fig. 1).

A GraphBLAS *binary operator* is ``F_b = <D1, D2, D3, ⊙>`` — three domains
and an operation ``⊙ : D1 × D2 → D3``.  A *unary operator* is
``F_u = <D1, D2, f>`` with ``f : D1 → D2``.  These are the leaves of the
algebraic hierarchy; monoids and semirings are built from them
(:mod:`repro.algebra`).

Implementation notes
--------------------
Each operator carries up to three callables:

``scalar_fn``
    Plain Python function on scalar values.  Always present; the reference
    backend and UDT paths use it.
``array_fn``
    Vectorized numpy implementation taking arrays already cast to the input
    domains and returning an array in the output domain.  When absent, a
    loop over ``scalar_fn`` is used.
``ufunc``
    A genuine ``numpy.ufunc`` equivalent, when one exists.  Only ufuncs
    support ``reduceat``, which the monoid-reduction fast paths need, so this
    is tracked separately from ``array_fn``.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..info import DomainMismatch, NullPointer
from ..types import GrBType, cast_scalar

__all__ = ["UnaryOp", "BinaryOp", "IndexUnaryOp", "OpFamily"]


def _loop_unary(fn: Callable, out_dtype: np.dtype) -> Callable:
    def array_fn(values: np.ndarray) -> np.ndarray:
        out = np.empty(len(values), dtype=out_dtype)
        for k, v in enumerate(values):
            out[k] = fn(v)
        return out

    return array_fn


def _loop_binary(fn: Callable, out_dtype: np.dtype) -> Callable:
    def array_fn(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        out = np.empty(len(x), dtype=out_dtype)
        for k in range(len(x)):
            out[k] = fn(x[k], y[k])
        return out

    return array_fn


class UnaryOp:
    """``F_u = <D1, D2, f>``: a typed unary function."""

    __slots__ = ("name", "d_in", "d_out", "scalar_fn", "_array_fn")

    def __init__(
        self,
        name: str,
        d_in: GrBType,
        d_out: GrBType,
        scalar_fn: Callable[[Any], Any],
        array_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        if scalar_fn is None:
            raise NullPointer("UnaryOp requires a function")
        self.name = name
        self.d_in = d_in
        self.d_out = d_out
        self.scalar_fn = scalar_fn
        self._array_fn = array_fn

    def __call__(self, value: Any) -> Any:
        return self.scalar_fn(value)

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Apply to an array already in the input domain's storage dtype."""
        if self._array_fn is not None:
            return self._array_fn(values)
        return _loop_unary(self.scalar_fn, self.d_out.np_dtype)(values)

    def __repr__(self) -> str:
        return f"UnaryOp({self.name}: {self.d_in.name} -> {self.d_out.name})"


class BinaryOp:
    """``F_b = <D1, D2, D3, ⊙>``: a typed binary function.

    ``commutative``/``associative`` are advisory flags used to validate
    monoid construction and unlock kernel fast paths; they are only set on
    predefined operators where the property is known to hold.
    """

    __slots__ = (
        "name",
        "d_in1",
        "d_in2",
        "d_out",
        "scalar_fn",
        "_array_fn",
        "ufunc",
        "commutative",
        "associative",
    )

    def __init__(
        self,
        name: str,
        d_in1: GrBType,
        d_in2: GrBType,
        d_out: GrBType,
        scalar_fn: Callable[[Any, Any], Any],
        array_fn: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        ufunc: np.ufunc | None = None,
        commutative: bool = False,
        associative: bool = False,
    ):
        if scalar_fn is None:
            raise NullPointer("BinaryOp requires a function")
        self.name = name
        self.d_in1 = d_in1
        self.d_in2 = d_in2
        self.d_out = d_out
        self.scalar_fn = scalar_fn
        self._array_fn = array_fn if array_fn is not None else ufunc
        self.ufunc = ufunc
        self.commutative = commutative
        self.associative = associative

    def __call__(self, x: Any, y: Any) -> Any:
        return self.scalar_fn(x, y)

    def apply_arrays(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Apply elementwise to arrays already in the input storage dtypes."""
        if self._array_fn is not None:
            out = self._array_fn(x, y)
            if (
                isinstance(out, np.ndarray)
                and out.dtype != self.d_out.np_dtype
                and not self.d_out.is_udt
            ):
                out = out.astype(self.d_out.np_dtype)
            return out
        return _loop_binary(self.scalar_fn, self.d_out.np_dtype)(x, y)

    @property
    def has_monoid_domains(self) -> bool:
        """True when all three domains coincide (monoid-eligible)."""
        return self.d_in1 is self.d_in2 and self.d_in1 is self.d_out

    def __repr__(self) -> str:
        return (
            f"BinaryOp({self.name}: {self.d_in1.name} x {self.d_in2.name}"
            f" -> {self.d_out.name})"
        )


class IndexUnaryOp:
    """Positional operator ``f(a_ij, i, j, thunk)`` used by ``select``/``apply``.

    This is the GxB/GrB-2.0 extension the triangle-counting workloads need
    (``TRIL``, ``TRIU``, value filters).  For vectors, ``j`` is passed as 0.
    """

    __slots__ = ("name", "d_in", "d_thunk", "d_out", "scalar_fn", "_array_fn")

    def __init__(
        self,
        name: str,
        d_in: GrBType,
        d_thunk: GrBType,
        d_out: GrBType,
        scalar_fn: Callable[[Any, int, int, Any], Any],
        array_fn: Callable[[np.ndarray, np.ndarray, np.ndarray, Any], np.ndarray]
        | None = None,
    ):
        self.name = name
        self.d_in = d_in
        self.d_thunk = d_thunk
        self.d_out = d_out
        self.scalar_fn = scalar_fn
        self._array_fn = array_fn

    def __call__(self, value: Any, i: int, j: int, thunk: Any) -> Any:
        return self.scalar_fn(value, i, j, thunk)

    def apply_arrays(
        self,
        values: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        thunk: Any,
    ) -> np.ndarray:
        if self._array_fn is not None:
            return self._array_fn(values, rows, cols, thunk)
        out = np.empty(len(values), dtype=self.d_out.np_dtype)
        for k in range(len(values)):
            out[k] = self.scalar_fn(values[k], rows[k], cols[k], thunk)
        return out

    def __repr__(self) -> str:
        return f"IndexUnaryOp({self.name})"


class OpFamily:
    """A named family of same-shaped operators indexed by domain.

    ``PLUS[INT32]`` resolves the INT32 instance of the PLUS family; missing
    domains raise :class:`~repro.info.DomainMismatch`, matching the C API
    where e.g. ``GrB_LNOT_FP32`` simply does not exist.
    """

    __slots__ = ("name", "_by_type")

    def __init__(self, name: str, ops: dict[GrBType, Any]):
        self.name = name
        self._by_type = dict(ops)

    def __getitem__(self, domain: GrBType) -> Any:
        try:
            return self._by_type[domain]
        except KeyError:
            raise DomainMismatch(
                f"operator family {self.name} is not defined for domain "
                f"{getattr(domain, 'name', domain)!r}"
            ) from None

    def __contains__(self, domain: GrBType) -> bool:
        return domain in self._by_type

    def domains(self) -> tuple[GrBType, ...]:
        return tuple(self._by_type)

    def items(self):
        return self._by_type.items()

    def __repr__(self) -> str:
        return f"OpFamily({self.name}, {len(self._by_type)} domains)"
