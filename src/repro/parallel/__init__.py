"""Thread-parallel execution of heavy kernels.

The GraphBLAS C API is agnostic about intra-operation parallelism — it is
exactly the freedom the opaque-object design buys (section III-A).  Here the
expensive kernel (SpGEMM) can optionally split its row space across a thread
pool; numpy releases the GIL inside the vectorized segments, so laptop-scale
speedups are real though modest.

Disabled by default (``set_num_threads(1)``) so results are deterministic
byte-for-byte; the ablation benchmark flips it on.
"""

from .config import (
    get_backend,
    get_kernel_backend,
    get_num_threads,
    register_kernel_backend,
    parallel_threshold,
    pool_stats,
    row_blocks,
    serial_section,
    set_backend,
    set_kernel_backend,
    set_num_threads,
    set_parallel_threshold,
    set_shard_grid,
    set_shard_workers,
    shard_grid,
    shard_workers,
    shutdown_pools,
    thread_pool,
)

__all__ = [
    "get_backend",
    "set_backend",
    "get_kernel_backend",
    "set_kernel_backend",
    "register_kernel_backend",
    "get_num_threads",
    "set_num_threads",
    "parallel_threshold",
    "set_parallel_threshold",
    "shard_workers",
    "set_shard_workers",
    "shard_grid",
    "set_shard_grid",
    "row_blocks",
    "thread_pool",
    "serial_section",
    "pool_stats",
    "shutdown_pools",
]
