"""Execution-backend configuration for parallel kernels.

Three backends share this module's knobs:

* ``serial`` — everything on the calling thread;
* ``threads`` — the original shared thread pool (numpy releases the GIL
  inside vectorized segments, so speedups are real though modest);
* ``processes`` — the sharded multi-process backend
  (:mod:`repro.shard`): CSR blocks in shared memory, OpSpecs shipped to a
  persistent worker pool, partials merged back in the parent.

A single process-wide thread pool is created lazily and resized on demand;
the kernels ask :func:`get_num_threads` and :func:`parallel_threshold` to
decide whether splitting is worthwhile (below the threshold the partition
overhead dominates — the classic HPC rule that you profile before you
parallelize).  :func:`shutdown_pools` — registered with :mod:`atexit` —
tears down both pools *and* unlinks every registered shared-memory
segment, so an aborted drain can never leak ``/dev/shm`` entries past
interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from ..info import InvalidValue

__all__ = [
    "get_backend",
    "set_backend",
    "get_kernel_backend",
    "set_kernel_backend",
    "register_kernel_backend",
    "get_num_threads",
    "set_num_threads",
    "parallel_threshold",
    "set_parallel_threshold",
    "shard_workers",
    "set_shard_workers",
    "shard_grid",
    "set_shard_grid",
    "row_blocks",
    "thread_pool",
    "serial_section",
    "pool_stats",
    "shutdown_pools",
]

BACKENDS = ("serial", "threads", "processes")
#: kernel-suite backends (how a planned op/chain computes T), orthogonal to
#: the execution backend above (where it runs).  "interpreter" is the
#: hand-written kernel suite; "codegen" compiles eligible fused chains
#: (see :mod:`repro.kernels`).  Third-party suites register themselves via
#: :func:`register_kernel_backend`.
KERNEL_BACKENDS = ("interpreter", "codegen")
DEFAULT_THRESHOLD = 200_000
#: hard cap on shard workers — deliberately *not* clamped to cpu_count():
#: oversubscription is how the 2-worker CI grid runs on 1-core runners
_MAX_SHARD_WORKERS = 64

_backend = "threads"
_num_threads = 1
_threshold = DEFAULT_THRESHOLD  # estimated flops below which kernels stay serial
_shard_workers = max(1, min(
    int(os.environ.get("REPRO_SHARD_WORKERS", 0) or (os.cpu_count() or 1)),
    _MAX_SHARD_WORKERS,
))
_shard_grid: tuple[int, int] | None = None
_pool: ThreadPoolExecutor | None = None
_pool_size = 0
_handle: "_PoolHandle | None" = None
_tls = threading.local()

# pool-utilization counters (repro.obs reads window deltas via pool_stats)
_stats_lock = threading.Lock()
_submitted = 0
_completed = 0
_busy_seconds = 0.0


def get_backend() -> str:
    return _backend


def set_backend(name: str) -> None:
    """Select the execution backend: ``serial``, ``threads`` or ``processes``."""
    global _backend
    if name not in BACKENDS:
        raise InvalidValue(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    _backend = name


_kernel_backend = "interpreter"
_known_kernel_backends = set(KERNEL_BACKENDS)


def get_kernel_backend() -> str:
    return _kernel_backend


def set_kernel_backend(name: str) -> None:
    """Select the kernel suite for planned ops and fused chains.

    ``interpreter`` (default) runs the hand-written numpy kernels;
    ``codegen`` compiles eligible fused chains into generated kernels and
    falls back to the interpreter everywhere else.  Results are identical
    by contract — the backend is an execution strategy, never a semantic.
    """
    global _kernel_backend
    if name not in _known_kernel_backends:
        raise InvalidValue(
            f"unknown kernel backend {name!r}; expected one of "
            f"{tuple(sorted(_known_kernel_backends))}"
        )
    _kernel_backend = name


def register_kernel_backend(name: str) -> None:
    """Make *name* accepted by :func:`set_kernel_backend` (called by
    :func:`repro.kernels.register_backend` for out-of-tree suites)."""
    _known_kernel_backends.add(name)


def shard_workers() -> int:
    return _shard_workers


def set_shard_workers(n: int) -> None:
    """Worker count of the shard process pool (``processes`` backend).

    Unlike :func:`set_num_threads` this is *not* clamped to the host core
    count: process workers escape the GIL, and CI deliberately runs a
    2-worker grid on single-core runners to exercise the protocol.
    """
    global _shard_workers
    if n < 1:
        raise InvalidValue("shard worker count must be >= 1")
    _shard_workers = int(min(n, _MAX_SHARD_WORKERS))


def shard_grid() -> tuple[int, int] | None:
    return _shard_grid


def set_shard_grid(grid: tuple[int, int] | None) -> None:
    """Force the 2D (row-stripes × column-splits) block grid for sharded
    SpGEMM; ``None`` restores the automatic policy (stripes only).  Column
    splits apply only to exact add-domains (bool/integer), where the
    semiring-add merge of partial products is bitwise associative."""
    global _shard_grid
    if grid is None:
        _shard_grid = None
        return
    pr, pc = int(grid[0]), int(grid[1])
    if pr < 1 or pc < 1:
        raise InvalidValue("shard grid dimensions must be >= 1")
    _shard_grid = (pr, pc)


def get_num_threads() -> int:
    # Inside a serial section the calling thread *is* a pool worker; letting
    # its kernels submit to the pool again would deadlock a bounded pool.
    if getattr(_tls, "serial", 0):
        return 1
    # the thread pool only fans out under its own backend: serial mode is
    # serial, and the processes backend owns all parallelism (its workers
    # must not find a nested thread pool under themselves)
    if _backend != "threads":
        return 1
    return _num_threads


@contextmanager
def serial_section():
    """Force :func:`get_num_threads` to 1 on this thread (re-entrant).

    The DAG scheduler wraps node execution in this so work already running
    *on* the pool never fans out into it again.
    """
    _tls.serial = getattr(_tls, "serial", 0) + 1
    try:
        yield
    finally:
        _tls.serial -= 1


def set_num_threads(n: int) -> None:
    """Set worker count for parallel kernels; 1 disables splitting."""
    global _num_threads
    if n < 1:
        raise InvalidValue("thread count must be >= 1")
    _num_threads = int(min(n, os.cpu_count() or 1))


def parallel_threshold() -> int:
    return _threshold


def set_parallel_threshold(flops: int) -> None:
    """Minimum estimated work (multiply-adds) before kernels parallelize."""
    global _threshold
    if flops < 0:
        raise InvalidValue("threshold must be non-negative")
    _threshold = int(flops)


def _run_counted(fn, args, kwargs):
    """Worker-side shim: count completion, and busy time when obs is live."""
    global _completed, _busy_seconds
    from ..obs import metrics as _metrics
    from ..obs import spans as _spans

    if _spans.current() is None and not _metrics.registry.enabled:
        try:
            return fn(*args, **kwargs)
        finally:
            with _stats_lock:
                _completed += 1
    import time

    t0 = time.perf_counter()
    try:
        return fn(*args, **kwargs)
    finally:
        busy = time.perf_counter() - t0
        with _stats_lock:
            _completed += 1
            _busy_seconds += busy
        _metrics.registry.inc("pool.tasks")
        _metrics.registry.observe("pool.task_seconds", busy)


class _PoolHandle:
    """Counting facade over the shared executor (same ``submit`` contract)."""

    __slots__ = ("_ex",)

    def __init__(self, ex: ThreadPoolExecutor):
        self._ex = ex

    def submit(self, fn, /, *args, **kwargs):
        global _submitted
        with _stats_lock:
            _submitted += 1
        return self._ex.submit(_run_counted, fn, args, kwargs)


def thread_pool() -> "_PoolHandle":
    """The shared pool, resized to the current thread count."""
    global _pool, _pool_size, _handle
    if _pool is None or _pool_size != _num_threads:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = ThreadPoolExecutor(max_workers=_num_threads)
        _pool_size = _num_threads
        _handle = _PoolHandle(_pool)
    return _handle


def pool_stats() -> dict:
    """Pool-utilization counters: tasks submitted/completed, busy seconds,
    current worker count.  Deltas over a window are the utilization signal
    :class:`repro.obs.Capture` reports."""
    with _stats_lock:
        return {
            "submitted": _submitted,
            "completed": _completed,
            "busy_seconds": _busy_seconds,
            "workers": _pool_size or _num_threads,
        }


def shutdown_pools() -> None:
    """Tear down both execution pools and unlink all shared memory.

    Idempotent and safe to call at any time; registered with :mod:`atexit`
    so an interpreter exiting mid-drain (crash, test abort, Ctrl-C) leaves
    no worker processes and no ``/dev/shm`` segments behind.
    """
    global _pool, _pool_size, _handle
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_size = 0
        _handle = None
    # the shard modules import lazily: a process that never used the
    # processes backend must not pay for (or fail on) their import here
    import sys

    shard_pool = sys.modules.get("repro.shard.pool")
    if shard_pool is not None:
        shard_pool.shutdown_pool()
    shard_sched = sys.modules.get("repro.shard.scheduler")
    if shard_sched is not None:
        shard_sched.invalidate_all()
    shard_shm = sys.modules.get("repro.shard.shm")
    if shard_shm is not None:
        shard_shm.registry.unlink_all()


atexit.register(shutdown_pools)


def row_blocks(work_per_row: np.ndarray, nblocks: int) -> list[slice]:
    """Partition rows into ≤ *nblocks* contiguous slices of balanced work.

    *work_per_row* is the estimated flops of each row (e.g. Σ over A(i,k) of
    nnz(B(k,:)) for SpGEMM).  Greedy prefix splitting on the cumulative work
    keeps blocks contiguous, which preserves the sortedness the flat-key
    representation relies on.
    """
    n = len(work_per_row)
    if n == 0 or nblocks <= 1:
        return [slice(0, n)]
    cum = np.cumsum(work_per_row)
    total = int(cum[-1])
    if total == 0:
        return [slice(0, n)]
    targets = (np.arange(1, nblocks) * total) // nblocks
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.unique(np.concatenate([[0], cuts, [n]]))
    return [
        slice(int(bounds[k]), int(bounds[k + 1]))
        for k in range(len(bounds) - 1)
        if bounds[k] < bounds[k + 1]
    ]
