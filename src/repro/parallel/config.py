"""Thread-pool configuration for parallel kernels.

A single process-wide pool is created lazily and resized on demand; the
kernels ask :func:`get_num_threads` and :func:`parallel_threshold` to decide
whether splitting is worthwhile (below the threshold the partition overhead
dominates — the classic HPC rule that you profile before you parallelize).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from ..info import InvalidValue

__all__ = [
    "get_num_threads",
    "set_num_threads",
    "parallel_threshold",
    "set_parallel_threshold",
    "row_blocks",
    "thread_pool",
    "serial_section",
    "pool_stats",
]

_num_threads = 1
_threshold = 200_000  # estimated flops below which kernels stay serial
_pool: ThreadPoolExecutor | None = None
_pool_size = 0
_handle: "_PoolHandle | None" = None
_tls = threading.local()

# pool-utilization counters (repro.obs reads window deltas via pool_stats)
_stats_lock = threading.Lock()
_submitted = 0
_completed = 0
_busy_seconds = 0.0


def get_num_threads() -> int:
    # Inside a serial section the calling thread *is* a pool worker; letting
    # its kernels submit to the pool again would deadlock a bounded pool.
    if getattr(_tls, "serial", 0):
        return 1
    return _num_threads


@contextmanager
def serial_section():
    """Force :func:`get_num_threads` to 1 on this thread (re-entrant).

    The DAG scheduler wraps node execution in this so work already running
    *on* the pool never fans out into it again.
    """
    _tls.serial = getattr(_tls, "serial", 0) + 1
    try:
        yield
    finally:
        _tls.serial -= 1


def set_num_threads(n: int) -> None:
    """Set worker count for parallel kernels; 1 disables splitting."""
    global _num_threads
    if n < 1:
        raise InvalidValue("thread count must be >= 1")
    _num_threads = int(min(n, os.cpu_count() or 1))


def parallel_threshold() -> int:
    return _threshold


def set_parallel_threshold(flops: int) -> None:
    """Minimum estimated work (multiply-adds) before kernels parallelize."""
    global _threshold
    if flops < 0:
        raise InvalidValue("threshold must be non-negative")
    _threshold = int(flops)


def _run_counted(fn, args, kwargs):
    """Worker-side shim: count completion, and busy time when obs is live."""
    global _completed, _busy_seconds
    from ..obs import metrics as _metrics
    from ..obs import spans as _spans

    if _spans.current() is None and not _metrics.registry.enabled:
        try:
            return fn(*args, **kwargs)
        finally:
            with _stats_lock:
                _completed += 1
    import time

    t0 = time.perf_counter()
    try:
        return fn(*args, **kwargs)
    finally:
        busy = time.perf_counter() - t0
        with _stats_lock:
            _completed += 1
            _busy_seconds += busy
        _metrics.registry.inc("pool.tasks")
        _metrics.registry.observe("pool.task_seconds", busy)


class _PoolHandle:
    """Counting facade over the shared executor (same ``submit`` contract)."""

    __slots__ = ("_ex",)

    def __init__(self, ex: ThreadPoolExecutor):
        self._ex = ex

    def submit(self, fn, /, *args, **kwargs):
        global _submitted
        with _stats_lock:
            _submitted += 1
        return self._ex.submit(_run_counted, fn, args, kwargs)


def thread_pool() -> "_PoolHandle":
    """The shared pool, resized to the current thread count."""
    global _pool, _pool_size, _handle
    if _pool is None or _pool_size != _num_threads:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = ThreadPoolExecutor(max_workers=_num_threads)
        _pool_size = _num_threads
        _handle = _PoolHandle(_pool)
    return _handle


def pool_stats() -> dict:
    """Pool-utilization counters: tasks submitted/completed, busy seconds,
    current worker count.  Deltas over a window are the utilization signal
    :class:`repro.obs.Capture` reports."""
    with _stats_lock:
        return {
            "submitted": _submitted,
            "completed": _completed,
            "busy_seconds": _busy_seconds,
            "workers": _pool_size or _num_threads,
        }


def row_blocks(work_per_row: np.ndarray, nblocks: int) -> list[slice]:
    """Partition rows into ≤ *nblocks* contiguous slices of balanced work.

    *work_per_row* is the estimated flops of each row (e.g. Σ over A(i,k) of
    nnz(B(k,:)) for SpGEMM).  Greedy prefix splitting on the cumulative work
    keeps blocks contiguous, which preserves the sortedness the flat-key
    representation relies on.
    """
    n = len(work_per_row)
    if n == 0 or nblocks <= 1:
        return [slice(0, n)]
    cum = np.cumsum(work_per_row)
    total = int(cum[-1])
    if total == 0:
        return [slice(0, n)]
    targets = (np.arange(1, nblocks) * total) // nblocks
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.unique(np.concatenate([[0], cuts, [n]]))
    return [
        slice(int(bounds[k]), int(bounds[k + 1]))
        for k in range(len(bounds) - 1)
        if bounds[k] < bounds[k + 1]
    ]
