"""Thread-pool configuration for parallel kernels.

A single process-wide pool is created lazily and resized on demand; the
kernels ask :func:`get_num_threads` and :func:`parallel_threshold` to decide
whether splitting is worthwhile (below the threshold the partition overhead
dominates — the classic HPC rule that you profile before you parallelize).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from ..info import InvalidValue

__all__ = [
    "get_num_threads",
    "set_num_threads",
    "parallel_threshold",
    "set_parallel_threshold",
    "row_blocks",
    "thread_pool",
    "serial_section",
]

_num_threads = 1
_threshold = 200_000  # estimated flops below which kernels stay serial
_pool: ThreadPoolExecutor | None = None
_pool_size = 0
_tls = threading.local()


def get_num_threads() -> int:
    # Inside a serial section the calling thread *is* a pool worker; letting
    # its kernels submit to the pool again would deadlock a bounded pool.
    if getattr(_tls, "serial", 0):
        return 1
    return _num_threads


@contextmanager
def serial_section():
    """Force :func:`get_num_threads` to 1 on this thread (re-entrant).

    The DAG scheduler wraps node execution in this so work already running
    *on* the pool never fans out into it again.
    """
    _tls.serial = getattr(_tls, "serial", 0) + 1
    try:
        yield
    finally:
        _tls.serial -= 1


def set_num_threads(n: int) -> None:
    """Set worker count for parallel kernels; 1 disables splitting."""
    global _num_threads
    if n < 1:
        raise InvalidValue("thread count must be >= 1")
    _num_threads = int(min(n, os.cpu_count() or 1))


def parallel_threshold() -> int:
    return _threshold


def set_parallel_threshold(flops: int) -> None:
    """Minimum estimated work (multiply-adds) before kernels parallelize."""
    global _threshold
    if flops < 0:
        raise InvalidValue("threshold must be non-negative")
    _threshold = int(flops)


def thread_pool() -> ThreadPoolExecutor:
    """The shared pool, resized to the current thread count."""
    global _pool, _pool_size
    if _pool is None or _pool_size != _num_threads:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = ThreadPoolExecutor(max_workers=_num_threads)
        _pool_size = _num_threads
    return _pool


def row_blocks(work_per_row: np.ndarray, nblocks: int) -> list[slice]:
    """Partition rows into ≤ *nblocks* contiguous slices of balanced work.

    *work_per_row* is the estimated flops of each row (e.g. Σ over A(i,k) of
    nnz(B(k,:)) for SpGEMM).  Greedy prefix splitting on the cumulative work
    keeps blocks contiguous, which preserves the sortedness the flat-key
    representation relies on.
    """
    n = len(work_per_row)
    if n == 0 or nblocks <= 1:
        return [slice(0, n)]
    cum = np.cumsum(work_per_row)
    total = int(cum[-1])
    if total == 0:
        return [slice(0, n)]
    targets = (np.arange(1, nblocks) * total) // nblocks
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.unique(np.concatenate([[0], cuts, [n]]))
    return [
        slice(int(bounds[k]), int(bounds[k + 1]))
        for k in range(len(bounds) - 1)
        if bounds[k] < bounds[k + 1]
    ]
