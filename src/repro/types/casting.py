"""Domain casting rules.

The C API casts values between built-in domains with ordinary C conversion
rules whenever a collection's domain differs from an operator's input or
output domain (the paper's BC example relies on this: ``numsp`` is INT32 but
is interpreted as BOOL when used as a mask, and fed to an FP32 ``MINV``).

We reproduce C's behaviour with numpy casts:

* bool <-> integer <-> float follow C semantics (nonzero -> True, True -> 1).
* float -> integer truncates toward zero (C's behaviour; numpy ``astype`` on
  float->int also truncates).
* Integer narrowing wraps modulo 2**n, as C unsigned (and in-practice signed)
  conversion does; numpy ``astype`` matches.

Casting to or from a user-defined type is a *domain mismatch* unless the
domains are identical — the C spec has no implicit UDT conversions.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..info import DomainMismatch
from .grb_type import BOOL, GrBType

__all__ = ["can_cast", "cast_array", "cast_scalar", "check_same_udt"]


def can_cast(src: GrBType, dst: GrBType) -> bool:
    """True if a value of domain *src* may be implicitly cast to *dst*."""
    if src is dst or (src.is_builtin and dst.is_builtin and src.name == dst.name):
        return True
    return src.is_builtin and dst.is_builtin


def check_same_udt(src: GrBType, dst: GrBType, what: str = "operand") -> None:
    if not can_cast(src, dst):
        raise DomainMismatch(
            f"{what}: cannot cast {src.name} to {dst.name} "
            "(user-defined domains have no implicit conversions)"
        )


def cast_array(values: np.ndarray, src: GrBType, dst: GrBType) -> np.ndarray:
    """Cast an array of *src*-domain values to domain *dst*.

    Returns the input unchanged when no conversion is needed (so callers must
    not mutate the result in place without copying).
    """
    check_same_udt(src, dst)
    if src is dst or src.np_dtype == dst.np_dtype:
        return values
    if dst.is_bool:
        # C: nonzero -> true.  (astype(bool) already implements this.)
        return values.astype(np.bool_)
    if src.is_float and dst.is_integral:
        # C truncates toward zero; rely on astype but guard non-finite values,
        # whose conversion is undefined in C — map them to 0 deterministically.
        finite = np.isfinite(values)
        if finite.all():
            return values.astype(dst.np_dtype)
        out = np.zeros(values.shape, dtype=dst.np_dtype)
        out[finite] = values[finite].astype(dst.np_dtype)
        return out
    return values.astype(dst.np_dtype)


def cast_scalar(value: Any, src: GrBType, dst: GrBType) -> Any:
    """Scalar version of :func:`cast_array`."""
    check_same_udt(src, dst)
    if src is dst:
        return value
    if dst.is_udt:
        return value
    if dst is BOOL or dst.is_bool:
        return np.bool_(bool(value))
    if src.is_float and dst.is_integral and not np.isfinite(value):
        return dst.np_dtype.type(0)
    try:
        return dst.np_dtype.type(value)
    except (OverflowError, ValueError):
        # numpy 2 refuses out-of-range Python ints; reproduce C's modular
        # wrap-around with an astype conversion instead.
        return np.asarray(value).astype(dst.np_dtype)[()]
