"""GraphBLAS domains (``GrB_Type``), paper Table III / section III-A.

A GraphBLAS collection is defined over a *domain* ``D``: the data type of its
stored elements.  The C API predefines the eleven C scalar domains and lets
users register their own opaque struct types (``GrB_Type_new``).  Here a
domain is a :class:`GrBType` wrapping a numpy dtype; user-defined types use
``dtype=object`` and carry the Python class of their values.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..info import InvalidValue, NullPointer

__all__ = [
    "GrBType",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "BUILTIN_TYPES",
    "INTEGER_TYPES",
    "UNSIGNED_TYPES",
    "SIGNED_TYPES",
    "FLOAT_TYPES",
    "type_new",
    "lookup_type",
]


class GrBType:
    """A GraphBLAS domain.

    Parameters
    ----------
    name:
        Spec-style name (``"GrB_INT32"`` for built-ins, user-chosen for UDTs).
    np_dtype:
        The numpy dtype used to store values of this domain.  User-defined
        types store ``object`` arrays.
    udt_class:
        For user-defined types, the Python class of the values; used for
        validation when building collections.
    """

    __slots__ = ("name", "np_dtype", "udt_class", "_is_builtin")

    def __init__(
        self,
        name: str,
        np_dtype: np.dtype,
        udt_class: type | None = None,
        _builtin: bool = False,
    ):
        if not name:
            raise NullPointer("GrBType requires a name")
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.udt_class = udt_class
        self._is_builtin = _builtin
        if self.np_dtype == np.dtype(object) and udt_class is None and not _builtin:
            raise InvalidValue("user-defined types must supply udt_class")

    # -- classification -----------------------------------------------------
    @property
    def is_builtin(self) -> bool:
        return self._is_builtin

    @property
    def is_udt(self) -> bool:
        return not self._is_builtin

    @property
    def is_bool(self) -> bool:
        return self.np_dtype == np.dtype(bool)

    @property
    def is_integral(self) -> bool:
        return self.np_dtype.kind in ("i", "u")

    @property
    def is_signed(self) -> bool:
        return self.np_dtype.kind == "i"

    @property
    def is_unsigned(self) -> bool:
        return self.np_dtype.kind == "u"

    @property
    def is_float(self) -> bool:
        return self.np_dtype.kind == "f"

    @property
    def is_numeric(self) -> bool:
        return self.np_dtype.kind in ("b", "i", "u", "f")

    @property
    def nbits(self) -> int:
        return self.np_dtype.itemsize * 8

    # -- identity semantics ---------------------------------------------------
    # Domains are compared by identity for UDTs and by name for built-ins; two
    # independently registered UDTs are never the same domain even with the
    # same storage, matching the C API's opaque-handle semantics.
    def __eq__(self, other: Any) -> bool:
        if self is other:
            return True
        if not isinstance(other, GrBType):
            return NotImplemented
        return self._is_builtin and other._is_builtin and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name) if self._is_builtin else id(self)

    def __repr__(self) -> str:
        return f"GrBType({self.name})"

    # -- value handling -------------------------------------------------------
    def validate_scalar(self, value: Any) -> Any:
        """Coerce *value* into this domain; raise ``DomainMismatch``-free errors.

        Built-in domains accept anything numpy can cast; UDTs require an
        instance of (a subclass of) ``udt_class``.
        """
        if self.is_udt:
            if self.udt_class is not None and not isinstance(value, self.udt_class):
                raise InvalidValue(
                    f"value {value!r} is not an instance of UDT {self.name}"
                )
            return value
        return self.np_dtype.type(value)

    def empty_array(self, n: int) -> np.ndarray:
        return np.empty(n, dtype=self.np_dtype)


def _builtin(name: str, dtype: Any) -> GrBType:
    return GrBType(name, np.dtype(dtype), _builtin=True)


BOOL = _builtin("GrB_BOOL", np.bool_)
INT8 = _builtin("GrB_INT8", np.int8)
INT16 = _builtin("GrB_INT16", np.int16)
INT32 = _builtin("GrB_INT32", np.int32)
INT64 = _builtin("GrB_INT64", np.int64)
UINT8 = _builtin("GrB_UINT8", np.uint8)
UINT16 = _builtin("GrB_UINT16", np.uint16)
UINT32 = _builtin("GrB_UINT32", np.uint32)
UINT64 = _builtin("GrB_UINT64", np.uint64)
FP32 = _builtin("GrB_FP32", np.float32)
FP64 = _builtin("GrB_FP64", np.float64)

SIGNED_TYPES = (INT8, INT16, INT32, INT64)
UNSIGNED_TYPES = (UINT8, UINT16, UINT32, UINT64)
INTEGER_TYPES = SIGNED_TYPES + UNSIGNED_TYPES
FLOAT_TYPES = (FP32, FP64)
BUILTIN_TYPES = (BOOL,) + INTEGER_TYPES + FLOAT_TYPES

_BY_NAME: dict[str, GrBType] = {t.name: t for t in BUILTIN_TYPES}
# Short aliases: "INT32", "FP64", ...
_BY_NAME.update({t.name.removeprefix("GrB_"): t for t in BUILTIN_TYPES})


def type_new(
    name: str,
    udt_class: type,
    *,
    validator: Callable[[Any], bool] | None = None,
) -> GrBType:
    """Register a user-defined type (``GrB_Type_new``).

    The returned domain stores its values in an ``object`` array and checks
    membership with ``isinstance(value, udt_class)``.
    """
    del validator  # reserved; isinstance is the membership test
    return GrBType(name, np.dtype(object), udt_class=udt_class)


def lookup_type(name: str) -> GrBType:
    """Resolve a built-in domain by spec name (``"GrB_FP32"``) or alias (``"FP32"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise InvalidValue(f"unknown GraphBLAS type name {name!r}") from None
