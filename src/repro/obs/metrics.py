"""Process-wide metrics registry: named counters and histograms.

The registry aggregates whole-process totals — realized flops, nnz written,
kernel invocations, pool task counts — independently of any span capture.
It is disabled by default; :func:`repro.obs.capture` enables it for the
capture window and reports the window's deltas, or callers can leave it
enabled permanently (a production profile) and poll :meth:`snapshot`.

Cost model: when disabled every ``inc``/``observe`` is an attribute read
and a return; hot kernel paths additionally guard on
``spans.current() is None and not metrics.enabled()`` so the disabled case
does no measurement work at all.
"""

from __future__ import annotations

import threading

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "registry",
    "enabled",
    "enable",
    "disable",
    "BUCKET_BOUNDS",
    "percentile",
]

#: histogram bucket upper bounds (powers of 4; the last bucket is open)
_BOUNDS = tuple(4**k for k in range(1, 16))
BUCKET_BOUNDS = _BOUNDS


class Histogram:
    """Fixed-bucket histogram with count/total/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * (len(_BOUNDS) + 1)

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Thread-safe counter/histogram aggregation, near-free when disabled."""

    def __init__(self):
        self._lock = threading.Lock()
        self._enabled = False
        self._counters: dict[str, int] = {}
        self._hists: dict[str, Histogram] = {}

    # ----------------------------------------------------------- lifecycle
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._hists.clear()

    # ------------------------------------------------------------ emitters
    def inc(self, name: str, value: int = 1) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value) -> None:
        if not self._enabled:
            return
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                h = self._hists[name] = Histogram()
            h.observe(value)

    # ------------------------------------------------------------- queries
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """{"counters": {name: int}, "histograms": {name: {...}}} (a copy)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {k: h.to_dict() for k, h in self._hists.items()},
            }

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Counter/histogram-count deltas between two :meth:`snapshot` dicts."""
        counters = {}
        for name, v in after.get("counters", {}).items():
            d = v - before.get("counters", {}).get(name, 0)
            if d:
                counters[name] = d
        hists = {}
        b_h = before.get("histograms", {})
        for name, h in after.get("histograms", {}).items():
            prev = b_h.get(name, {"count": 0, "total": 0.0})
            d_count = h["count"] - prev["count"]
            if d_count:
                entry = {
                    "count": d_count,
                    "total": h["total"] - prev["total"],
                }
                if "buckets" in h:
                    pb = prev.get("buckets") or [0] * len(h["buckets"])
                    entry["buckets"] = [a - b for a, b in zip(h["buckets"], pb)]
                    # min/max of the window are unknowable from snapshots;
                    # the lifetime bounds are a safe clamp for percentile()
                    entry["min"] = h.get("min")
                    entry["max"] = h.get("max")
                hists[name] = entry
        return {"counters": counters, "histograms": hists}


def percentile(hist: dict, q: float) -> float | None:
    """Estimate the *q*-th percentile (0 < q ≤ 1) of a histogram snapshot.

    *hist* is a :meth:`Histogram.to_dict` payload.  The estimate is the
    upper bound of the first bucket whose cumulative count reaches
    ``q * count``, clamped to the observed min/max — the usual resolution
    trade of fixed power-of-4 buckets (a p99 of "≤ 4096 µs" rather than an
    exact rank statistic).  Returns ``None`` for an empty histogram.
    """
    count = hist.get("count", 0)
    if not count:
        return None
    target = q * count
    cum = 0
    for i, n in enumerate(hist["buckets"]):
        cum += n
        if cum >= target:
            bound = hist["max"] if i >= len(_BOUNDS) else _BOUNDS[i]
            lo = hist.get("min")
            hi = hist.get("max")
            if lo is not None:
                bound = max(bound, lo)
            if hi is not None:
                bound = min(bound, hi)
            return float(bound)
    return float(hist["max"])  # pragma: no cover - counts always sum


#: the process-wide registry
registry = MetricsRegistry()


def enabled() -> bool:
    return registry.enabled


def enable() -> None:
    registry.enable()


def disable() -> None:
    registry.disable()
