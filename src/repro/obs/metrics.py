"""Process-wide metrics registry: named counters and histograms.

The registry aggregates whole-process totals — realized flops, nnz written,
kernel invocations, pool task counts — independently of any span capture.
It is disabled by default; :func:`repro.obs.capture` enables it for the
capture window and reports the window's deltas, or callers can leave it
enabled permanently (a production profile) and poll :meth:`snapshot`.

Cost model: when disabled every ``inc``/``observe`` is an attribute read
and a return; hot kernel paths additionally guard on
``spans.current() is None and not metrics.enabled()`` so the disabled case
does no measurement work at all.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "SLOTracker",
    "registry",
    "enabled",
    "enable",
    "disable",
    "BUCKET_BOUNDS",
    "percentile",
]

#: histogram bucket upper bounds (powers of 4; the last bucket is open)
_BOUNDS = tuple(4**k for k in range(1, 16))
BUCKET_BOUNDS = _BOUNDS


class Histogram:
    """Fixed-bucket histogram with count/total/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * (len(_BOUNDS) + 1)

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Thread-safe counter/histogram aggregation, near-free when disabled."""

    def __init__(self):
        self._lock = threading.Lock()
        self._enabled = False
        self._counters: dict[str, int] = {}
        self._hists: dict[str, Histogram] = {}

    # ----------------------------------------------------------- lifecycle
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._hists.clear()

    # ------------------------------------------------------------ emitters
    def inc(self, name: str, value: int = 1) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value) -> None:
        if not self._enabled:
            return
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                h = self._hists[name] = Histogram()
            h.observe(value)

    # ------------------------------------------------------------- queries
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """{"counters": {name: int}, "histograms": {name: {...}}} (a copy)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {k: h.to_dict() for k, h in self._hists.items()},
            }

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Counter/histogram-count deltas between two :meth:`snapshot` dicts."""
        counters = {}
        for name, v in after.get("counters", {}).items():
            d = v - before.get("counters", {}).get(name, 0)
            if d:
                counters[name] = d
        hists = {}
        b_h = before.get("histograms", {})
        for name, h in after.get("histograms", {}).items():
            prev = b_h.get(name, {"count": 0, "total": 0.0})
            d_count = h["count"] - prev["count"]
            if d_count:
                entry = {
                    "count": d_count,
                    "total": h["total"] - prev["total"],
                }
                if "buckets" in h:
                    pb = prev.get("buckets") or [0] * len(h["buckets"])
                    entry["buckets"] = [a - b for a, b in zip(h["buckets"], pb)]
                    # min/max of the window are unknowable from snapshots;
                    # the lifetime bounds are a safe clamp for percentile()
                    entry["min"] = h.get("min")
                    entry["max"] = h.get("max")
                hists[name] = entry
        return {"counters": counters, "histograms": hists}


def percentile(hist: dict, q: float) -> float | None:
    """Estimate the *q*-th percentile (0 < q ≤ 1) of a histogram snapshot.

    *hist* is a :meth:`Histogram.to_dict` payload.  The estimate is the
    upper bound of the first bucket whose cumulative count reaches
    ``q * count``, clamped to the observed min/max — the usual resolution
    trade of fixed power-of-4 buckets (a p99 of "≤ 4096 µs" rather than an
    exact rank statistic).  Returns ``None`` for an empty histogram.
    """
    count = hist.get("count", 0)
    if not count:
        return None
    target = q * count
    cum = 0
    for i, n in enumerate(hist["buckets"]):
        cum += n
        if cum >= target:
            bound = hist["max"] if i >= len(_BOUNDS) else _BOUNDS[i]
            lo = hist.get("min")
            hi = hist.get("max")
            if lo is not None:
                bound = max(bound, lo)
            if hi is not None:
                bound = min(bound, hi)
            return float(bound)
    return float(hist["max"])  # pragma: no cover - counts always sum


def ratio(numerator: float, denominator: float) -> float:
    """A safe rate for counter pairs (``hits / (hits + misses)``-style):
    0.0 on an empty denominator instead of a division error, so metric
    consumers can report rates before any traffic has arrived."""
    return (numerator / denominator) if denominator else 0.0


class SLOTracker:
    """Rolling-window latency SLO: p99 target, exact window percentile,
    and error-budget burn counters.

    The tracker keeps the last *window_s* seconds of observations (exact
    values, not buckets — a window is small enough that the power-of-4
    resolution trade is the wrong one here).  A request **breaches** when
    its latency exceeds the target or when it fails outright; the error
    budget is the fraction of requests allowed to breach (1% by default —
    the definition of a p99 target), and ``burn_rate`` is breach-fraction
    divided by budget: 1.0 means burning exactly as fast as allowed,
    above 1.0 the SLO is being missed.
    """

    def __init__(
        self,
        target_us: float,
        window_s: float = 60.0,
        error_budget: float = 0.01,
        clock=time.monotonic,
    ):
        if target_us <= 0:
            raise ValueError("SLO target must be positive")
        self.target_us = float(target_us)
        self.window_s = float(window_s)
        self.error_budget = float(error_budget)
        self._clock = clock
        self._lock = threading.Lock()
        self._window: deque[tuple[float, float]] = deque()  # (t, latency_us)
        self.total = 0
        self.breaches = 0

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        w = self._window
        while w and w[0][0] < horizon:
            w.popleft()

    def observe(self, latency_us: float) -> None:
        now = self._clock()
        with self._lock:
            self._prune(now)
            self._window.append((now, float(latency_us)))
            self.total += 1
            if latency_us > self.target_us:
                self.breaches += 1

    def record_failure(self) -> None:
        """A failed request burns budget regardless of how fast it failed."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            self._window.append((now, float("inf")))
            self.total += 1
            self.breaches += 1

    def budget_exhausted(self, min_total: int = 20) -> bool:
        """True once the lifetime breach fraction has consumed the whole
        error budget.  Cheap (two counter reads, no window sort) so it can
        gate a flight-recorder dump on every breach; *min_total* suppresses
        cold-start noise where one early breach is 100% of traffic."""
        with self._lock:
            total, breaches = self.total, self.breaches
        if total < min_total or not self.error_budget:
            return False
        return (breaches / total) >= self.error_budget

    def summary(self) -> dict:
        now = self._clock()
        with self._lock:
            self._prune(now)
            lat = sorted(v for _, v in self._window)
            total, breaches = self.total, self.breaches
        window_p99 = None
        if lat:
            k = max(0, -(-99 * len(lat) // 100) - 1)  # ceil(0.99 n) - 1
            window_p99 = lat[k]
        window_breaches = sum(1 for v in lat if v > self.target_us)
        breach_fraction = (breaches / total) if total else 0.0
        return {
            "target_p99_us": self.target_us,
            "window_s": self.window_s,
            "window_count": len(lat),
            "window_p99_us": window_p99,
            "window_breaches": window_breaches,
            "window_met": window_p99 is None or window_p99 <= self.target_us,
            "total": total,
            "breaches": breaches,
            "error_budget": self.error_budget,
            "burn_rate": (
                breach_fraction / self.error_budget if self.error_budget else None
            ),
            "budget_remaining": max(
                0.0, 1.0 - (breach_fraction / self.error_budget)
            ) if self.error_budget else None,
        }


#: the process-wide registry
registry = MetricsRegistry()


def enabled() -> bool:
    return registry.enabled


def enable() -> None:
    registry.enable()


def disable() -> None:
    registry.disable()
