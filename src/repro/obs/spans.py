"""Structured spans: the timing/provenance records every execution path emits.

A :class:`Span` is one timed region — an operation body, a kernel
invocation, a queue drain, or a user-labelled block — carrying its label,
kind, wall-clock interval, issuing thread, and a free-form ``attrs`` dict
(estimated vs realized flops, input/output nnz, fusion/CSE provenance,
block counts, ...).  Spans nest: each thread keeps a stack of open spans,
so a kernel span opened inside an op body records that op as its parent
and exporters can reconstruct the call tree.

Arming is process-global and *single*: one :class:`SpanSink` at a time
(:func:`arm` / :func:`disarm`, normally driven by :func:`repro.obs.capture`).
The disarmed fast path is one module-global read — hot paths do

    sink = spans.current()
    if sink is None:
        ...  # untouched seed code path

so an un-armed process does literally no extra work per operation.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanSink",
    "span",
    "current",
    "arm",
    "disarm",
    "force_disarm",
    "arm_ring",
    "disarm_ring",
    "current_ring",
    "annotate",
    "annotate_add",
]

_lock = threading.Lock()
_sink: "SpanSink | None" = None  # read lock-free on every hot path
#: an always-on bounded recorder sink (the flight recorder's ring); only
#: consulted when no capture sink is armed, plus teed into on close so the
#: ring keeps rolling through capture windows
_ring: "SpanSink | None" = None
_tls = threading.local()


@dataclass(slots=True)
class Span:
    """One timed region.  ``t0``/``t1`` are ``perf_counter`` instants."""

    sid: int
    parent: int | None
    label: str
    #: "op" (a method body), "kernel", "drain", "region", or "bench"
    kind: str
    t0: float
    t1: float = 0.0
    thread: str = ""
    tid: int = 0
    #: True when the region ran from the deferred queue rather than eagerly
    deferred: bool = False
    attrs: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0


def _stack() -> list:
    s = getattr(_tls, "stack", None)
    if s is None:
        s = []
        _tls.stack = s
    return s


class SpanSink:
    """Thread-safe collector of closed spans (one per capture)."""

    def __init__(self):
        self.spans: list[Span] = []
        self._ids = itertools.count(1)

    def open(self, label: str, kind: str, deferred: bool = False, **attrs) -> Span:
        th = threading.current_thread()
        stack = _stack()
        if stack:
            # request provenance flows downward: a kernel span opened inside
            # a request-attributed op span carries the same originating ids,
            # so exporters can filter a whole trace by request without
            # walking parent chains
            parent_attrs = stack[-1].attrs
            for key in ("request_ids", "trace_ids"):
                if key in parent_attrs and key not in attrs:
                    attrs[key] = parent_attrs[key]
        sp = Span(
            sid=next(self._ids),
            parent=stack[-1].sid if stack else None,
            label=label,
            kind=kind,
            t0=time.perf_counter(),
            thread=th.name,
            tid=th.ident or 0,
            deferred=deferred,
            attrs=attrs,
        )
        stack.append(sp)
        return sp

    def close(self, sp: Span) -> None:
        sp.t1 = time.perf_counter()
        stack = _stack()
        # normally a strict LIFO pop; tolerate a foreign frame so a span
        # leaked across a raised exception cannot corrupt later nesting
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:
            stack.remove(sp)
        with _lock:
            self.spans.append(sp)
        ring = _ring
        if ring is not None and ring is not self:
            # the flight recorder keeps rolling even while a capture owns
            # the spans — a dump during a capture window must not be blind
            ring.record(sp)

    def record(self, sp: Span) -> None:
        """Append an already-closed span (the ring tee path)."""
        with _lock:
            self.spans.append(sp)


class span:
    """Lightweight context manager: ``with spans.span("label", "region"):``.

    A no-op (beyond one global read) when nothing is armed.
    """

    __slots__ = ("_label", "_kind", "_attrs", "_sink", "_sp")

    def __init__(self, label: str, kind: str = "region", **attrs):
        self._label = label
        self._kind = kind
        self._attrs = attrs
        self._sp = None

    def __enter__(self) -> Span | None:
        sink = _sink
        if sink is None:
            sink = _ring
        self._sink = sink
        if sink is not None:
            self._sp = sink.open(self._label, self._kind, **self._attrs)
        return self._sp

    def __exit__(self, *exc) -> None:
        if self._sp is not None:
            self._sink.close(self._sp)


def current() -> SpanSink | None:
    """The sink hot paths should emit into, or None (the zero-cost check).

    A full capture (:func:`arm`) wins; otherwise the flight-recorder ring
    (:func:`arm_ring`), if installed, keeps receiving spans.
    """
    sink = _sink
    return sink if sink is not None else _ring


def arm(sink: SpanSink) -> None:
    """Make *sink* the process-wide span collector (one at a time)."""
    global _sink
    from ..info import InvalidValue

    with _lock:
        if _sink is not None:
            raise InvalidValue("an observability capture is already active")
        _sink = sink


def disarm(sink: SpanSink) -> None:
    """Disarm *sink*; a different armed sink is left untouched."""
    global _sink
    with _lock:
        if _sink is sink:
            _sink = None


def arm_ring(sink: SpanSink) -> None:
    """Install *sink* as the always-on recorder ring (replace semantics —
    unlike :func:`arm`, a later ring simply supersedes the previous one)."""
    global _ring
    with _lock:
        _ring = sink


def disarm_ring(sink: SpanSink) -> None:
    """Remove *sink* as the recorder ring; a different ring is untouched."""
    global _ring
    with _lock:
        if _ring is sink:
            _ring = None


def current_ring() -> SpanSink | None:
    return _ring


def force_disarm() -> None:
    """Clear any armed sink unconditionally (test isolation; ``context._reset``)."""
    global _sink, _ring
    with _lock:
        _sink = None
        _ring = None
    _tls.stack = []


def annotate(**attrs) -> None:
    """Attach *attrs* to the innermost open span on this thread.

    Lets code deep in the call stack (the write pipeline, a kernel block)
    report measurements without threading a span handle through every
    signature.  No-op when disarmed or when no span is open here.
    """
    if _sink is None and _ring is None:
        return
    stack = getattr(_tls, "stack", None)
    if stack:
        stack[-1].attrs.update(attrs)


def annotate_add(key: str, value) -> None:
    """Accumulate *value* into attr *key* of the innermost open span."""
    if _sink is None and _ring is None:
        return
    stack = getattr(_tls, "stack", None)
    if stack:
        attrs = stack[-1].attrs
        attrs[key] = attrs.get(key, 0) + value
