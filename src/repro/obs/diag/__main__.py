"""``python -m repro.obs.diag`` — diagnostics CLI.

Subcommands:

* ``explain <program.json> [--json]`` — run a recorded fuzz program (the
  :class:`repro.fuzz.program.Program` JSON schema) under the full planner
  and print its plan EXPLAIN;
* ``validate-dump <flight.json>`` — sanity-check a flight-recorder dump
  against the Chrome trace-event shape (used by the CI diag-smoke job).
"""

from __future__ import annotations

import argparse
import json
import sys

from . import explain as _explain


def _cmd_explain(ns) -> int:
    from ...fuzz.program import Program

    with open(ns.program) as fh:
        program = Program.from_json(fh.read())
    record = _explain.explain_program(program)
    if ns.json:
        json.dump(record, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
    else:
        print(_explain.render_text(record))
    return 0


def _cmd_validate_dump(ns) -> int:
    with open(ns.dump) as fh:
        doc = json.load(fh)
    errors: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("traceEvents missing or empty")
        events = []
    last_ts = None
    complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i} is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                errors.append(f"event {i} missing {key!r}")
        if ev.get("ph") == "X":
            complete += 1
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"event {i} has bad ts {ts!r}")
                continue
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i} has bad dur {dur!r}")
            if last_ts is not None and ts < last_ts:
                errors.append(
                    f"event {i} breaks causal order (ts {ts} < {last_ts})"
                )
            last_ts = ts
    if not complete:
        errors.append("no complete ('X') events")
    if errors:
        for e in errors[:20]:
            print(f"INVALID: {e}", file=sys.stderr)
        return 1
    print(
        f"ok: {len(events)} events ({complete} spans), "
        f"reason={doc.get('otherData', {}).get('reason')}"
    )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro.obs.diag")
    sub = ap.add_subparsers(dest="cmd", required=True)
    p = sub.add_parser("explain", help="EXPLAIN a recorded fuzz program")
    p.add_argument("program", help="path to a Program JSON file")
    p.add_argument("--json", action="store_true", help="emit the raw record")
    p.set_defaults(fn=_cmd_explain)
    p = sub.add_parser(
        "validate-dump", help="check a flight-recorder dump's schema"
    )
    p.add_argument("dump", help="path to a flight-*.json dump")
    p.set_defaults(fn=_cmd_validate_dump)
    ns = ap.parse_args(argv)
    return ns.fn(ns)


if __name__ == "__main__":
    raise SystemExit(main())
