"""``repro.obs.diag`` — production diagnostics over the spans/metrics layer.

Three pieces (see the sibling modules):

* :mod:`~repro.obs.diag.recorder` — the flight recorder: an always-on
  bounded ring of recent spans, dumped to Chrome-trace JSON on Panic,
  SLO budget exhaustion, deadline misses, anomalies, or request;
* :mod:`~repro.obs.diag.explain` — plan EXPLAIN: what the drain-time
  planner decided, per node and per request;
* :mod:`~repro.obs.diag.anomaly` — online per-kernel latency baselines
  with sustained-deviation flagging.

This module owns the process-wide installation: :func:`install` arms one
:class:`FlightRecorder` (and an :class:`AnomalyDetector`) for the whole
process, and the free functions (:func:`trigger_dump`,
:func:`observe_kernel`, :func:`note_worker_spans`, ...) are safe no-ops
when nothing is installed — deep layers (the shard pool, the executor)
call them unconditionally without importing service machinery.
"""

from __future__ import annotations

import threading

from .anomaly import LOCAL_WORKER, AnomalyDetector
from .explain import ExplainCollector, collect, current_explain, render_text
from .recorder import FlightRecorder, RingSink

__all__ = [
    "FlightRecorder",
    "RingSink",
    "AnomalyDetector",
    "ExplainCollector",
    "collect",
    "current_explain",
    "render_text",
    "LOCAL_WORKER",
    "install",
    "uninstall",
    "installed",
    "recorder",
    "detector",
    "trigger_dump",
    "observe_kernel",
    "note_worker_spans",
    "suspects",
]

_mu = threading.Lock()
_recorder: FlightRecorder | None = None
_detector: AnomalyDetector | None = None


def install(
    recorder: FlightRecorder | None = None,
    detector: AnomalyDetector | None = None,
    **recorder_kwargs,
) -> tuple[FlightRecorder, AnomalyDetector]:
    """Install (replacing any previous) the process-wide recorder+detector.

    Extra keyword arguments construct the default :class:`FlightRecorder`
    (``dump_dir=``, ``capacity=``, ``horizon_s=``, ...).
    """
    global _recorder, _detector
    with _mu:
        if _recorder is not None:
            _recorder.uninstall()
        _recorder = recorder if recorder is not None else FlightRecorder(
            **recorder_kwargs
        )
        _detector = detector if detector is not None else AnomalyDetector()
        _recorder.install()
        return _recorder, _detector


def uninstall(recorder: FlightRecorder | None = None) -> None:
    """Tear down the installed pair; with *recorder* given, only if it is
    still the installed one (a later :func:`install` wins)."""
    global _recorder, _detector
    with _mu:
        if recorder is not None and recorder is not _recorder:
            return
        if _recorder is not None:
            _recorder.uninstall()
        _recorder = None
        _detector = None


def installed() -> bool:
    return _recorder is not None


def recorder() -> FlightRecorder | None:
    return _recorder


def detector() -> AnomalyDetector | None:
    return _detector


def trigger_dump(reason: str, detail=None, *, force: bool = False) -> str | None:
    """Dump the flight recorder now; None when none installed (or the
    automatic rate limit suppressed this one)."""
    rec = _recorder
    if rec is None:
        return None
    return rec.dump(reason, detail, force=force)


def note_worker_spans(worker_id: int, pid: int, clock_offset: float, entries) -> None:
    """Stitch shard-worker span tuples into the recorder (no-op uninstalled)."""
    rec = _recorder
    if rec is not None and entries:
        rec.note_worker_spans(worker_id, pid, clock_offset, entries)


def observe_kernel(
    kernel: str,
    backend: str,
    worker: int = LOCAL_WORKER,
    *,
    seconds: float,
    flops: float = 0.0,
) -> dict | None:
    """Feed the anomaly detector; on a sustained deviation, dumps the
    flight recorder and returns the suspect record."""
    det = _detector
    if det is None:
        return None
    suspect = det.observe(kernel, backend, worker, seconds, flops)
    if suspect is not None:
        trigger_dump("anomaly", detail=suspect)
    return suspect


def suspects() -> list[dict]:
    """Current anomaly suspects ([] when no detector is installed)."""
    det = _detector
    return det.suspects() if det is not None else []
