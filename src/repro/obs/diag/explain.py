"""Plan EXPLAIN: a faithful rendering of what the drain-time planner
actually decided — per node, per request.

The nonblocking model makes the interesting decisions invisible: by the
time a client sees its answer, the planner has elided dead ops, fused
producer→consumer chains, merged CSE duplicates (possibly *across*
requests in a batched drain), picked a kernel backend, and maybe sharded
nodes over a process pool.  EXPLAIN records those decisions as they are
made — a thread-local :class:`ExplainCollector` installed around a drain
receives one record per built plan — and renders them as JSON or
human-readable text.

Exposure paths (wired in the service layer):

* per request — ``explain: true`` on a wire request attaches the record
  to the response (Descriptor-style opt-in);
* ``explain`` wire command — renders the most recent drain's plans;
* ``python -m repro.obs.diag explain program.json`` — runs a recorded
  fuzz program under the full planner and prints its EXPLAIN.
"""

from __future__ import annotations

import threading

__all__ = [
    "ExplainCollector",
    "collect",
    "current_explain",
    "render_text",
    "explain_program",
]

_tls = threading.local()


class ExplainCollector:
    """Accumulates one record per plan built while installed."""

    def __init__(self):
        self._mu = threading.Lock()
        self.plans: list[dict] = []
        self._last_nodes: dict[int, dict] = {}

    def record_plan(self, record: dict) -> None:
        with self._mu:
            record["plan"] = len(self.plans) + 1
            self.plans.append(record)
            self._last_nodes = {
                node["index"]: node for node in record.get("nodes", [])
            }

    def note_shard(self, node_index: int, **info) -> None:
        """Attach run-time shard layout to a node of the latest plan."""
        with self._mu:
            node = self._last_nodes.get(node_index)
            if node is not None:
                node.setdefault("shard", {}).update(info)

    def record(self) -> dict:
        with self._mu:
            return {"plans": list(self.plans)}

    def for_request(self, request_id: str) -> dict:
        """The record filtered to nodes attributed to *request_id*."""
        with self._mu:
            plans = []
            for p in self.plans:
                nodes = [
                    n for n in p.get("nodes", [])
                    if request_id in n.get("request_ids", ())
                ]
                if nodes:
                    q = {k: v for k, v in p.items() if k != "nodes"}
                    q["nodes"] = nodes
                    plans.append(q)
        return {"request_id": request_id, "plans": plans}


class collect:
    """Install a collector for the ``with`` body (thread-local stack)."""

    __slots__ = ("_col",)

    def __init__(self, collector: ExplainCollector | None = None):
        self._col = collector if collector is not None else ExplainCollector()

    def __enter__(self) -> ExplainCollector:
        stack = getattr(_tls, "explain_stack", None)
        if stack is None:
            stack = _tls.explain_stack = []
        stack.append(self._col)
        return self._col

    def __exit__(self, *exc) -> None:
        stack = getattr(_tls, "explain_stack", None)
        if stack:
            stack.pop()


def current_explain() -> ExplainCollector | None:
    """The collector the planner should report to, or None (hot default)."""
    stack = getattr(_tls, "explain_stack", None)
    return stack[-1] if stack else None


# --------------------------------------------------------------------------
# rendering
# --------------------------------------------------------------------------

def _node_line(node: dict) -> list[str]:
    kind = node.get("kind", "plain")
    head = f"[{node['index']}] L{node.get('level', '?')} {node['label']}"
    details: list[str] = []
    if kind == "fused":
        chain = node.get("ops", [])
        details.append(
            f"fused chain of {len(chain)}: " + " -> ".join(chain)
        )
        be = node.get("backend")
        if be:
            flag = node.get("compile_eligible")
            comp = "" if flag is None else (
                " (compile-eligible)" if flag else " (interpreted)"
            )
            details.append(f"kernel backend: {be}{comp}")
    elif kind == "cse":
        details.append(
            f"cse: reuses T of node {node.get('cse_source')}"
        )
    elif node.get("backend"):
        details.append(f"kernel backend: {node['backend']}")
    rids = node.get("request_ids", ())
    if rids:
        word = "shared by" if len(rids) > 1 else "request"
        details.append(f"{word}: " + ", ".join(rids))
    preds = node.get("preds", ())
    if preds:
        details.append(
            "hazards after: " + ", ".join(str(p) for p in preds)
        )
    shard = node.get("shard")
    if shard:
        details.append(
            "sharded: {tasks} block task(s) on workers {workers}, "
            "merge={merge}".format(
                tasks=shard.get("tasks", "?"),
                workers=shard.get("workers", "?"),
                merge=shard.get("merge", "?"),
            )
        )
    return [head] + ["    " + d for d in details]


def render_text(record: dict) -> str:
    """Human-readable EXPLAIN of a collector record (or per-request slice)."""
    lines: list[str] = []
    rid = record.get("request_id")
    if rid:
        lines.append(f"EXPLAIN for request {rid}")
    plans = record.get("plans", [])
    if not plans:
        lines.append("no plans recorded (nothing drained)")
        return "\n".join(lines)
    for p in plans:
        opt = "on" if p.get("optimize", True) else "off"
        lines.append(
            f"plan {p.get('plan', '?')}: {len(p.get('nodes', []))} node(s), "
            f"{p.get('levels', '?')} level(s), planner {opt}, "
            f"kernel backend {p.get('kernel_backend', '?')}"
        )
        summary = []
        if p.get("elided"):
            summary.append(f"{p['elided']} dead op(s) elided")
        if p.get("fused_chains"):
            summary.append(f"{p['fused_chains']} fused chain(s)")
        if p.get("cse_merged"):
            summary.append(f"{p['cse_merged']} cse merge(s)")
        if summary:
            lines.append("  " + "; ".join(summary))
        for node in p.get("nodes", []):
            lines.extend("  " + ln for ln in _node_line(node))
    memo = record.get("memo")
    if memo:
        lines.append(f"memo cache: {memo}")
    snapshot = record.get("snapshot")
    if snapshot is not None:
        lines.append(f"snapshot version: {snapshot}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# programs (the CLI path)
# --------------------------------------------------------------------------

def explain_program(program, mode=None) -> dict:
    """Run a recorded fuzz Program under the full planner, collecting its
    EXPLAIN; returns the collector record."""
    from ...fuzz import executor as fuzz_executor

    if mode is None:
        mode = fuzz_executor._nb("nb-explain")
    with collect() as col:
        fuzz_executor.run_optimized(program, mode)
    return col.record()
