"""The flight recorder: a bounded, lock-light ring of recent spans with
automatic dump-to-disk when something goes wrong.

Full captures (:func:`repro.obs.capture`) are opt-in windows — by the time
an SLO breach or a worker Panic surfaces in production, the spans that
explain it are long gone.  The recorder closes that gap: a
:class:`RingSink` stays armed as the process's fallback span sink
(:func:`repro.obs.spans.arm_ring`), so every span the hot paths already
emit lands in a fixed-size ``deque`` whether or not anyone is watching.
``deque.append`` with a ``maxlen`` is a single GIL-atomic operation, so
the armed-ring fast path adds no lock to span close.

Shard workers keep their own rings (they are separate processes) and ship
recent task spans back piggybacked on Result messages; the parent's
recorder stitches them — mapped through each worker's handshake clock
offset — into one causally-ordered Chrome-trace dump.  Because spans are
shipped as they complete, a SIGKILLed worker's history up to its last
completed task survives in the parent.

Dumps are triggered by worker Panic, SLO error-budget exhaustion, request
deadline misses, sustained latency anomalies, or an explicit ``dump`` wire
command; automatic triggers are rate-limited so a failure storm produces
a few dumps, not a disk full of them.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque

from .. import metrics
from .. import spans as _spans
from ..export import chrome_trace
from ..spans import Span, SpanSink

__all__ = ["RingSink", "FlightRecorder", "DEFAULT_CAPACITY", "DEFAULT_HORIZON_S"]

DEFAULT_CAPACITY = 4096
DEFAULT_HORIZON_S = 30.0


class RingSink(SpanSink):
    """A span sink that retains only the newest *capacity* spans.

    ``close`` replaces the base class's locked list append with a bounded
    ``deque.append`` — atomic under the GIL, so the always-on recorder
    costs one method call and one deque append per span, never a lock.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        super().__init__()
        self.ring: deque[Span] = deque(maxlen=capacity)

    def close(self, sp: Span) -> None:
        sp.t1 = time.perf_counter()
        stack = _spans._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:
            stack.remove(sp)
        self.ring.append(sp)

    def record(self, sp: Span) -> None:
        self.ring.append(sp)

    def fast_append(
        self, label: str, kind: str, t0: float, t1: float,
        attrs: dict | None = None, deferred: bool = True,
    ) -> None:
        """Retention without Span construction — the ring-only hot path.

        When no capture is armed, per-op/per-kernel emitters skip the
        full ``open``/``close`` machinery (thread lookup, stack
        parenting, dataclass init) and append one raw tuple; spans are
        materialized lazily in :meth:`snapshot`, i.e. only when a dump
        actually happens.  This is what keeps always-on retention inside
        the disabled-overhead budget.
        """
        self.ring.append((label, kind, t0, t1, attrs, deferred))

    def snapshot(self) -> list[Span]:
        """A point-in-time copy of the ring, oldest first (raw tuples from
        the fast path materialized as spans)."""
        out: list[Span] = []
        for item in list(self.ring):
            if type(item) is tuple:
                label, kind, t0, t1, attrs, deferred = item
                item = Span(
                    sid=next(self._ids),
                    parent=None,
                    label=label,
                    kind=kind,
                    t0=t0,
                    t1=t1,
                    thread="ring",
                    tid=0,
                    deferred=deferred,
                    attrs=dict(attrs) if attrs else {},
                )
            out.append(item)
        return out


class FlightRecorder:
    """Owns the ring, the stitched shard-worker spans, and the dump path.

    One recorder is normally installed process-wide through
    :func:`repro.obs.diag.install`; the service does this on startup.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        horizon_s: float = DEFAULT_HORIZON_S,
        dump_dir: str | None = None,
        min_dump_interval_s: float = 5.0,
    ):
        self.ring = RingSink(capacity)
        self.horizon_s = float(horizon_s)
        self.dump_dir = (
            dump_dir
            or os.environ.get("REPRO_DIAG_DIR")
            or os.path.join(tempfile.gettempdir(), "repro-diag")
        )
        self.min_dump_interval_s = float(min_dump_interval_s)
        self._mu = threading.Lock()
        self._seq = 0
        self._last_dump = -float("inf")
        #: stitched shard-worker spans, already mapped into parent time
        self._worker_spans: deque[Span] = deque(maxlen=capacity)
        #: paths of every dump written by this recorder
        self.dumps: list[str] = []

    # -------------------------------------------------------------- arming
    def install(self) -> None:
        _spans.arm_ring(self.ring)

    def uninstall(self) -> None:
        _spans.disarm_ring(self.ring)

    # ------------------------------------------------------- worker stitch
    def note_worker_spans(
        self, worker_id: int, pid: int, clock_offset: float, entries
    ) -> None:
        """Absorb span tuples shipped from a shard worker.

        *entries* are ``(label, kind, t0, t1, attrs)`` tuples in the
        worker's own ``perf_counter`` clock; *clock_offset* (parent time
        minus worker time, measured at the Hello handshake) maps them onto
        the parent's axis so the stitched dump is causally ordered.
        """
        for label, kind, t0, t1, attrs in entries:
            a = dict(attrs) if attrs else {}
            a.setdefault("worker_pid", pid)
            a["stitched"] = True
            self._worker_spans.append(
                Span(
                    sid=0,
                    parent=None,
                    label=str(label),
                    kind=str(kind),
                    t0=float(t0) + clock_offset,
                    t1=float(t1) + clock_offset,
                    thread=f"shard-worker-{worker_id}",
                    tid=1_000_000 + int(worker_id),
                    deferred=True,
                    attrs=a,
                )
            )

    # --------------------------------------------------------------- dumps
    def snapshot(self) -> list[Span]:
        """Everything retained and inside the horizon, causally ordered."""
        horizon = time.perf_counter() - self.horizon_s
        keep = [sp for sp in self.ring.snapshot() if sp.t1 >= horizon]
        keep += [sp for sp in list(self._worker_spans) if sp.t1 >= horizon]
        keep.sort(key=lambda sp: (sp.t0, sp.t1))
        return keep

    def dump(self, reason: str, detail=None, *, force: bool = False) -> str | None:
        """Write the current ring as a Chrome-trace JSON file.

        Returns the path, or None when a recent automatic dump already
        covered this window (*force* — the explicit wire command —
        bypasses the rate limit).
        """
        now = time.monotonic()
        reg = metrics.registry
        with self._mu:
            if not force and now - self._last_dump < self.min_dump_interval_s:
                reg.inc("obs.diag.dump.suppressed")
                return None
            self._last_dump = now
            self._seq += 1
            seq = self._seq
        retained = self.snapshot()
        doc = chrome_trace(retained)
        doc["otherData"].update(
            {
                "reason": reason,
                "detail": detail,
                "horizon_s": self.horizon_s,
                "wall_time": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            }
        )
        safe = "".join(c if (c.isalnum() or c in "-_") else "-" for c in reason)
        os.makedirs(self.dump_dir, exist_ok=True)
        path = os.path.join(self.dump_dir, f"flight-{safe}-{seq:04d}.json")
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        os.replace(tmp, path)  # a reader never sees a half-written dump
        reg.inc("obs.diag.dump")
        reg.inc(f"obs.diag.dump.{safe}")
        self.dumps.append(path)
        return path
