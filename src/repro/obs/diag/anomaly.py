"""Online kernel-latency anomaly detection: EWMA baselines with MAD-style
deviation scoring, per (kernel signature, backend, shard worker).

Static bench baselines (``BENCH_*.json``) catch regressions between PRs;
they cannot catch a *drift in production* — a kernel whose cost is
input-dependent going quadratic on a new workload shape, one shard worker
on a sick host, a codegen kernel silently falling back to the
interpreter.  The detector keeps a per-key exponentially-weighted moving
average of latency plus an EWMA of absolute deviation (a streaming stand-
in for the median absolute deviation), scores each new observation as

    score = |x - ewma| / (ewma_abs_deviation + eps)

and treats an observation as a *deviation* only when the score clears a
threshold **and** the latency is a multiple of the baseline **and** above
an absolute floor — three independent guards so timer jitter on
microsecond kernels can never page anyone.  A key is *flagged* (named a
suspect) only after ``sustain`` deviations inside one rolling window;
flagging feeds ``obs.diag.anomaly.*`` counters, degrades the service
``health`` verdict, and triggers a flight-recorder dump.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from .. import metrics

__all__ = ["AnomalyDetector"]

#: worker id used for work executed in the serving process itself
LOCAL_WORKER = -1


class AnomalyDetector:
    """Streaming latency baselines and suspect tracking (thread-safe)."""

    def __init__(
        self,
        alpha: float = 0.25,
        threshold: float = 8.0,
        min_ratio: float = 4.0,
        min_us: float = 250.0,
        min_samples: int = 10,
        sustain: int = 3,
        window_s: float = 10.0,
        suspect_ttl_s: float = 60.0,
        clock=time.monotonic,
    ):
        self.alpha = float(alpha)
        self.threshold = float(threshold)
        self.min_ratio = float(min_ratio)
        self.min_us = float(min_us)
        self.min_samples = int(min_samples)
        self.sustain = int(sustain)
        self.window_s = float(window_s)
        self.suspect_ttl_s = float(suspect_ttl_s)
        self._clock = clock
        self._mu = threading.Lock()
        #: key -> [latency_ewma_us, abs_dev_ewma_us, n, flop_rate_ewma]
        self._base: dict[tuple, list] = {}
        #: key -> deque of deviation timestamps inside the rolling window
        self._strikes: dict[tuple, deque] = {}
        #: key -> most recent suspect record
        self._suspects: dict[tuple, dict] = {}

    # ------------------------------------------------------------- feeding
    def observe(
        self,
        kernel: str,
        backend: str,
        worker: int,
        seconds: float,
        flops: float = 0.0,
    ) -> dict | None:
        """Feed one completed-kernel measurement.

        Returns the suspect record when this observation crosses the
        sustained-deviation bar (the caller then dumps the flight
        recorder), else None.
        """
        us = seconds * 1e6
        key = (kernel, backend, worker)
        rate = (flops / seconds) if (flops and seconds > 0) else 0.0
        reg = metrics.registry
        reg.inc("obs.diag.anomaly.observed")
        a = self.alpha
        with self._mu:
            b = self._base.get(key)
            if b is None:
                self._base[key] = [us, 0.0, 1, rate]
                return None
            ewma, dev_ewma, n, rate_ewma = b
            deviation = abs(us - ewma)
            score = deviation / (dev_ewma + 1e-9)
            is_dev = (
                n >= self.min_samples
                and score > self.threshold
                and us > ewma * self.min_ratio
                and us > self.min_us
            )
            if not is_dev:
                # deviations are quarantined from the baseline so a slow
                # burst cannot teach the detector that slow is normal
                b[0] = ewma + a * (us - ewma)
                b[1] = dev_ewma + a * (deviation - dev_ewma)
                if rate:
                    b[3] = rate_ewma + a * (rate - rate_ewma) if rate_ewma else rate
            b[2] = n + 1
            if not is_dev:
                return None
            reg.inc("obs.diag.anomaly.deviation")
            now = self._clock()
            strikes = self._strikes.setdefault(key, deque())
            strikes.append(now)
            horizon = now - self.window_s
            while strikes and strikes[0] < horizon:
                strikes.popleft()
            if len(strikes) < self.sustain:
                return None
            strikes.clear()
            suspect = {
                "kernel": kernel,
                "backend": backend,
                "worker": worker,
                "score": round(score, 2),
                "latency_us": round(us, 1),
                "baseline_us": round(ewma, 1),
                "baseline_flop_rate": round(rate_ewma, 1),
                "samples": n,
                "t": now,
            }
            self._suspects[key] = suspect
        reg.inc("obs.diag.anomaly.flagged")
        return suspect

    # ------------------------------------------------------------- queries
    def suspects(self) -> list[dict]:
        """Current suspects (flagged within ``suspect_ttl_s``), worst first."""
        now = self._clock()
        horizon = now - self.suspect_ttl_s
        with self._mu:
            for key in [k for k, s in self._suspects.items() if s["t"] < horizon]:
                del self._suspects[key]
            out = sorted(self._suspects.values(), key=lambda s: -s["score"])
        return [dict(s) for s in out]

    def baseline(self, kernel: str, backend: str, worker: int = LOCAL_WORKER):
        """(latency_ewma_us, abs_dev_ewma_us, samples, flop_rate_ewma) or None."""
        with self._mu:
            b = self._base.get((kernel, backend, worker))
            return tuple(b) if b is not None else None

    def stats(self) -> dict:
        with self._mu:
            return {
                "keys": len(self._base),
                "suspects": len(self._suspects),
            }
