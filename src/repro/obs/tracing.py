"""Request-scoped tracing: the provenance channel from a service request
down to the kernels that eventually run on its behalf.

The nonblocking execution model makes work invisible by design — a call
returns before anything executes, and the service's batched drains fuse
deferred work from many requests into one planner pass.  This module
restores attribution without constraining the planner:

* a :class:`TraceContext` (trace id + request id) is minted at the client
  or admission edge and rides on the :class:`~repro.service.request.Request`;
* while a request *issues*, :func:`use` makes its trace the thread's
  current one, so :func:`repro.context.submit` stamps it onto every
  :class:`~repro.execution.sequence.DeferredOp` the request enqueues;
* at drain time the planner unions the stamps of each scheduled node's
  member ops into span provenance (``request_ids`` / ``trace_ids``) — a
  fused pair spanning two requests carries *both* ids, and a CSE source
  whose cached result feeds another request's duplicate carries the
  duplicate's id too (provenance merge, not loss);
* a :class:`DrainAccounting` installed around a batch drain receives each
  node's wall time and realized flops keyed by request id, so the
  executor can apportion the shared drain back to the requests that
  caused it (``drain_share``).

Everything here is thread-local reads when idle: with no trace installed
and no accounting armed, the stamp is ``None`` and the tally is a no-op.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "TraceContext",
    "mint_trace_id",
    "use",
    "current_trace",
    "DrainAccounting",
    "accounting",
    "current_accounting",
    "tally_flops",
]

_tls = threading.local()


def mint_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Identity of one request as it flows through queues and drains.

    ``trace_id`` groups everything one client interaction caused (it is
    minted once at the outermost edge and propagated); ``request_id``
    names the single request.  Both are plain strings so they survive the
    JSON-lines wire unchanged.
    """

    trace_id: str
    request_id: str

    @classmethod
    def mint(cls, request_id: str | None = None) -> "TraceContext":
        tid = mint_trace_id()
        return cls(trace_id=tid, request_id=request_id or f"r-{tid[:8]}")

    @classmethod
    def from_wire(cls, doc) -> "TraceContext | None":
        """Rebuild from a wire ``trace`` object; None on malformed input
        (tracing is best-effort — a bad trace never fails the request)."""
        if not isinstance(doc, dict):
            return None
        tid, rid = doc.get("trace_id"), doc.get("request_id")
        if not isinstance(tid, str) or not isinstance(rid, str):
            return None
        return cls(trace_id=tid, request_id=rid)

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "request_id": self.request_id}


class use:
    """Make *trace* the current request trace on this thread.

    The executor wraps each request's issue phase in one of these; every
    deferred op enqueued inside picks up the stamp.  Nests (a per-thread
    stack), and ``use(None)`` is a valid no-stamp window.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: TraceContext | None):
        self._trace = trace

    def __enter__(self) -> TraceContext | None:
        stack = getattr(_tls, "trace_stack", None)
        if stack is None:
            stack = _tls.trace_stack = []
        stack.append(self._trace)
        return self._trace

    def __exit__(self, *exc) -> None:
        stack = getattr(_tls, "trace_stack", None)
        if stack:
            stack.pop()


def current_trace() -> TraceContext | None:
    """The trace deferred ops enqueued on this thread are stamped with."""
    stack = getattr(_tls, "trace_stack", None)
    return stack[-1] if stack else None


# --------------------------------------------------------------------------
# Drain accounting: apportioning a shared drain back to its requests
# --------------------------------------------------------------------------

class DrainAccounting:
    """Per-request work tally of one drain (thread-safe).

    The planner driver wraps every scheduled node's runner so its wall
    time and realized flops land here keyed by request id; nodes serving
    several requests (fused across requests, CSE shared) split their
    weight evenly among them.  :meth:`shares` then apportions a measured
    drain wall-clock by realized flops — falling back to node wall time
    when the drained work reported no flops (pure writes, tiny kernels).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.seconds: dict[str, float] = {}
        self.flops: dict[str, float] = {}
        self.nodes = 0

    def note(self, request_ids: Iterable[str], seconds: float, flops: int) -> None:
        rids = list(request_ids)
        with self._lock:
            self.nodes += 1
            if not rids:
                return
            w = 1.0 / len(rids)
            for rid in rids:
                self.seconds[rid] = self.seconds.get(rid, 0.0) + seconds * w
                self.flops[rid] = self.flops.get(rid, 0.0) + flops * w

    def wrap(self, runner, request_ids: Iterable[str]):
        """Time *runner* and tally its realized flops under *request_ids*."""
        rids = tuple(request_ids)

        def accounted():
            token = _tally_begin()
            t0 = time.perf_counter()
            try:
                runner()
            finally:
                self.note(rids, time.perf_counter() - t0, _tally_end(token))

        return accounted

    def shares(self, wall_seconds: float) -> dict[str, float]:
        """Apportion *wall_seconds* of drain time across the tallied
        request ids; the shares sum to *wall_seconds* exactly (or to the
        empty dict when the drain ran nothing attributable)."""
        with self._lock:
            weights = dict(self.flops) if sum(self.flops.values()) > 0 else dict(self.seconds)
        total = sum(weights.values())
        if total <= 0:
            # attributable requests with zero measurable weight: split evenly
            if not weights:
                return {}
            even = wall_seconds / len(weights)
            return {rid: even for rid in weights}
        return {rid: wall_seconds * w / total for rid, w in weights.items()}


class accounting:
    """Install *acc* as this thread's drain accounting for the ``with``
    body; the planner driver binds it into every node runner it attaches
    while installed (closures, so pool threads report back correctly)."""

    __slots__ = ("_acc",)

    def __init__(self, acc: DrainAccounting):
        self._acc = acc

    def __enter__(self) -> DrainAccounting:
        stack = getattr(_tls, "acct_stack", None)
        if stack is None:
            stack = _tls.acct_stack = []
        stack.append(self._acc)
        return self._acc

    def __exit__(self, *exc) -> None:
        stack = getattr(_tls, "acct_stack", None)
        if stack:
            stack.pop()


def current_accounting() -> DrainAccounting | None:
    stack = getattr(_tls, "acct_stack", None)
    return stack[-1] if stack else None


# --------------------------------------------------------------------------
# Realized-flop tally: kernels report, node wrappers collect
# --------------------------------------------------------------------------

def _tally_begin() -> list:
    # cell = [count, previous-cell]; the previous cell is restored on end
    cell = [0, getattr(_tls, "tally", None)]
    _tls.tally = cell
    return cell


def _tally_end(cell: list) -> int:
    _tls.tally = cell[1]
    if cell[1] is not None:
        # nested tallies (accounting wrap inside an anomaly-timing wrap,
        # or vice versa) must not swallow the inner count from the outer
        cell[1][0] += cell[0]
    return cell[0]


def tally_flops(n: int) -> None:
    """Credit *n* realized flops to the innermost open tally (no-op when
    no drain accounting is collecting on this thread)."""
    cell = getattr(_tls, "tally", None)
    if cell is not None:
        cell[0] += n
