"""repro.obs — the observability subsystem.

Section IV of the paper keeps blocking mode in the spec because "an
external tool needs to evaluate the state of memory during a sequence";
this package is that tool, generalized: structured spans from every
execution path (eager blocking ops, drained-queue ops, planner-fused
nodes, kernel invocations, thread-pool blocks), a process-wide
:mod:`metrics <repro.obs.metrics>` registry, and :mod:`exporters
<repro.obs.export>` — Chrome ``chrome://tracing`` JSON, flat per-label
reports, and the machine-readable bench recorder behind ``BENCH_*.json``.

Typical use::

    import repro as grb
    from repro import obs

    with obs.capture() as cap:
        grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], A, B)
        grb.wait()
    print(cap.report())              # per-label: time, flops, provenance
    cap.export_chrome("trace.json")  # load in chrome://tracing / Perfetto

Cost: with no capture armed and metrics disabled, the instrumented paths
do a single global read and nothing else (``execution.trace.wrap_thunk``
returns the raw thunk unchanged, kernels skip all measurement).
"""

from __future__ import annotations

from . import export, metrics, spans, tracing
from .export import (
    BenchRecorder,
    chrome_trace,
    per_label_report,
    prometheus_text,
    timeline_html,
)
from .metrics import MetricsRegistry, SLOTracker, registry
from .spans import Span, SpanSink, annotate, annotate_add
from .tracing import TraceContext

__all__ = [
    "Capture",
    "capture",
    "active",
    "Span",
    "SpanSink",
    "MetricsRegistry",
    "SLOTracker",
    "registry",
    "BenchRecorder",
    "chrome_trace",
    "per_label_report",
    "prometheus_text",
    "timeline_html",
    "TraceContext",
    "annotate",
    "annotate_add",
    "spans",
    "metrics",
    "export",
    "tracing",
]


def active() -> bool:
    """Is any measurement consumer live (span capture or metrics)?"""
    return spans.current() is not None or metrics.registry.enabled


class Capture:
    """The result object of one :func:`capture` window."""

    def __init__(self):
        self._sink = SpanSink()
        self._queue_before: dict = {}
        self._queue_after: dict = {}
        self._metrics_before: dict = {"counters": {}, "histograms": {}}
        self._metrics_after: dict = {"counters": {}, "histograms": {}}
        self._pool_before: dict = {}
        self._pool_after: dict = {}

    # ------------------------------------------------------------- spans
    @property
    def spans(self) -> list[Span]:
        return self._sink.spans

    def spans_of(self, kind: str) -> list[Span]:
        return [sp for sp in self._sink.spans if sp.kind == kind]

    # ----------------------------------------------------------- metrics
    @property
    def counters(self) -> dict:
        """Counter deltas over the capture window."""
        return MetricsRegistry.delta(
            self._metrics_before, self._metrics_after
        )["counters"]

    @property
    def histograms(self) -> dict:
        return MetricsRegistry.delta(
            self._metrics_before, self._metrics_after
        )["histograms"]

    def queue_delta(self) -> dict:
        """Deferred-queue counter deltas (drains, elided, fused, CSE, ...)."""
        out = {}
        for k, v in self._queue_after.items():
            if k == "max_width":  # high-water mark, not a running count
                out[k] = v
            else:
                out[k] = v - self._queue_before.get(k, 0)
        return out

    def pool_delta(self) -> dict:
        """Thread-pool utilization deltas over the window."""
        out = {}
        for k, v in self._pool_after.items():
            if k == "workers":
                out[k] = v
            else:
                out[k] = v - self._pool_before.get(k, 0)
        return out

    # ----------------------------------------------------------- exports
    def chrome_trace(self) -> dict:
        return chrome_trace(self.spans)

    def export_chrome(self, path) -> dict:
        """Write the Chrome trace-event JSON to *path* and return it."""
        import json

        doc = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        return doc

    def timeline_html(self, **kw) -> str:
        return timeline_html(self.spans, **kw)

    def export_timeline(self, path, **kw) -> None:
        """Write the per-request timeline / flamegraph HTML to *path*."""
        with open(path, "w") as fh:
            fh.write(self.timeline_html(**kw))

    def report(self) -> str:
        return per_label_report(
            self.spans,
            queue_delta=self.queue_delta(),
            counters=self.counters,
            pool_delta=self.pool_delta(),
        )


class capture:
    """Context manager arming span collection + metrics for one window.

    One capture at a time (``InvalidValue`` otherwise — same discipline the
    legacy ``trace()`` imposed).  Arming is exception-safe: if reading the
    baseline counters fails, the global sink is disarmed before the error
    propagates, so a later capture still works.
    """

    def __init__(self):
        self._capture = Capture()
        self._prev_metrics = False

    def __enter__(self) -> Capture:
        cap = self._capture
        spans.arm(cap._sink)
        try:
            from .. import context
            from ..parallel import pool_stats

            cap._queue_before = context.queue_stats()
            cap._pool_before = pool_stats()
            self._prev_metrics = metrics.registry.enabled
            metrics.registry.enable()
            cap._metrics_before = metrics.registry.snapshot()
        except BaseException:
            # never leak the armed sink — the original tracer did, leaving
            # every later trace() failing with "already active"
            spans.disarm(cap._sink)
            metrics.registry._enabled = self._prev_metrics
            raise
        return cap

    def __exit__(self, *exc) -> None:
        cap = self._capture
        try:
            from .. import context
            from ..parallel import pool_stats

            cap._metrics_after = metrics.registry.snapshot()
            cap._queue_after = context.queue_stats()
            cap._pool_after = pool_stats()
        finally:
            if not self._prev_metrics:
                metrics.registry.disable()
            spans.disarm(cap._sink)
