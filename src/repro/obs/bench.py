"""Machine-readable perf baseline: ``python -m repro.obs.bench``.

Runs the repo's canonical workloads — the paper's betweenness-centrality
example (Fig. 3) in blocking and nonblocking (planner) mode, SpGEMM on
an Erdős–Rényi pair, and SpMV — through
:class:`repro.obs.BenchRecorder` and writes ``BENCH_prN.json``
(``repro-bench/1`` schema).  Optionally exports the Chrome trace of the
BC run (``--trace``), the artifact the CI bench-smoke job uploads.

The module exits non-zero if the output would be empty or failed to
serialize, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys


def _bc_workload(scale: int, sources: int):
    import numpy as np

    import repro as grb
    from repro.algorithms import bc_update
    from repro.io import rmat

    A = rmat(scale, 8, seed=7, domain=grb.INT32)
    batch = np.arange(sources)

    def run():
        delta = bc_update(A, batch)
        nvals = delta.nvals()
        delta.free()
        return nvals

    return A, run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="record the machine-readable perf baseline",
    )
    parser.add_argument("--out", default="BENCH_pr3.json",
                        help="bench JSON output path")
    parser.add_argument("--trace", default=None,
                        help="also export a Chrome trace of the BC run here")
    parser.add_argument("--scale", type=int, default=8,
                        help="RMAT scale for the BC workload (default 8)")
    parser.add_argument("--sources", type=int, default=16,
                        help="BC batch width (default 16)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="measured runs per workload (default 3)")
    parser.add_argument("--backend", choices=("serial", "threads", "processes"),
                        default="threads",
                        help="drain execution backend for the planner runs")
    parser.add_argument("--shard-workers", type=int, default=None,
                        help="shard pool size for the processes backend")
    args = parser.parse_args(argv)

    import numpy as np

    import repro as grb
    from repro import context, obs, parallel
    from repro.io import erdos_renyi

    parallel.set_backend(args.backend)
    if args.shard_workers is not None:
        parallel.set_shard_workers(args.shard_workers)

    rec = obs.BenchRecorder(meta={"suite": "repro.obs.bench",
                                  "scale": args.scale,
                                  "sources": args.sources,
                                  "backend": args.backend})

    # --- Fig. 3 BC, blocking -------------------------------------------
    A, run_bc = _bc_workload(args.scale, args.sources)
    rec.measure(
        f"bc_update.rmat{args.scale}.batch{args.sources}.blocking",
        run_bc, repeat=args.repeat,
        nnz=A.nvals(), nrows=A.nrows,
    )

    # --- Fig. 3 BC, nonblocking under the planner ----------------------
    context._reset()
    context.init(context.Mode.NONBLOCKING)
    try:
        A_nb, run_bc_nb = _bc_workload(args.scale, args.sources)
        rec.measure(
            f"bc_update.rmat{args.scale}.batch{args.sources}.nonblocking",
            lambda: (run_bc_nb(), grb.wait())[0], repeat=args.repeat,
            nnz=A_nb.nvals(),
        )
    finally:
        context._reset()

    # --- SpGEMM + SpMV kernels, with realized-flops accounting ---------
    E1 = erdos_renyi(1000, 15000, seed=1, domain=grb.INT64)
    E2 = erdos_renyi(1000, 15000, seed=2, domain=grb.INT64)
    C = grb.Matrix(grb.INT64, 1000, 1000)

    def run_mxm():
        grb.mxm(C, None, None, grb.PLUS_TIMES[grb.INT64], E1, E2)
        return C.nvals()

    with obs.capture() as cap:
        run_mxm()
    counters = cap.counters
    rec.measure(
        "mxm.er1000x15k", run_mxm, repeat=args.repeat,
        flops_estimated=counters.get("kernel.flops_estimated", 0),
        flops_realized=counters.get("kernel.flops_realized", 0),
        nnz_out=C.nvals(),
    )

    v = grb.Vector.from_coo(
        grb.INT64, 1000, np.arange(0, 1000, 3), np.ones(334, dtype=np.int64)
    )
    w = grb.Vector(grb.INT64, 1000)
    rec.measure(
        "mxv.er1000x15k", lambda: grb.mxv(
            w, None, None, grb.PLUS_TIMES[grb.INT64], E1, v
        ), repeat=args.repeat, nnz_in=E1.nvals(),
    )

    # --- BC under capture: the Chrome-trace artifact -------------------
    with obs.capture() as cap:
        run_bc()
    print(cap.report())
    if args.trace:
        doc = cap.export_chrome(args.trace)
        print(f"chrome trace: {args.trace} ({len(doc['traceEvents'])} events)")

    doc = rec.write(args.out)
    # self-check: the committed baseline must load and be non-empty
    with open(args.out) as fh:
        loaded = json.load(fh)
    if not loaded.get("benchmarks"):
        print(f"error: {args.out} has no benchmark entries", file=sys.stderr)
        return 1
    print(
        f"wrote {args.out}: {len(doc['benchmarks'])} entries "
        f"({', '.join(e['name'] for e in doc['benchmarks'])})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
