"""Exporters: Chrome trace-event JSON, flat per-label reports, and the
machine-readable bench recorder behind the repo's ``BENCH_*.json``
perf-trajectory files.

* :func:`chrome_trace` renders a span list into the Trace Event Format
  that ``chrome://tracing`` / Perfetto load: one complete ("X") event per
  span with its attrs in ``args``, plus thread-name metadata events.
* :func:`per_label_report` is the human-readable successor of the old
  ``Tracer.summary()``: per-label counts and totals, estimated vs realized
  flops, nnz written, and the planner's fusion/CSE provenance.
* :class:`BenchRecorder` measures named workloads and writes a stable JSON
  schema (``repro-bench/1``) so successive PRs' baselines are diffable by
  machine.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from typing import Callable, Iterable

from .spans import Span

__all__ = ["chrome_trace", "per_label_report", "BenchRecorder"]


def _jsonable(v):
    """Coerce numpy scalars / odd attr values into JSON-safe types."""
    item = getattr(v, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:  # zero-d arrays of odd dtypes etc.
            return repr(v)
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _jsonable(x) for k, x in v.items()}
    return repr(v)


def chrome_trace(spans: Iterable[Span], *, pid: int = 1) -> dict:
    """Render *spans* as a ``chrome://tracing`` trace-event JSON object.

    Timestamps are microseconds relative to the earliest span, so the
    trace opens at t=0 regardless of the process's ``perf_counter`` epoch.
    """
    spans = list(spans)
    events: list[dict] = []
    tid_map: dict[int, int] = {}
    base = min((sp.t0 for sp in spans), default=0.0)
    for sp in sorted(spans, key=lambda s: s.t0):
        if sp.tid not in tid_map:
            tid = tid_map[sp.tid] = len(tid_map) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": sp.thread},
                }
            )
        args = {k: _jsonable(v) for k, v in sp.attrs.items()}
        args["span_id"] = sp.sid
        if sp.parent is not None:
            args["parent_span"] = sp.parent
        if sp.deferred:
            args["deferred"] = True
        events.append(
            {
                "name": sp.label,
                "cat": sp.kind,
                "ph": "X",
                "ts": round((sp.t0 - base) * 1e6, 3),
                "dur": round(max(sp.seconds, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": tid_map[sp.tid],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "spans": len(spans)},
    }


def _provenance(attrs: dict) -> str:
    if "fused_of" in attrs:
        return "fusion: " + "→".join(attrs["fused_of"])
    if "cse_of" in attrs:
        return f"cse: reuses T of node {attrs['cse_of']}"
    return ""


def per_label_report(
    spans: Iterable[Span],
    queue_delta: dict | None = None,
    counters: dict | None = None,
    pool_delta: dict | None = None,
) -> str:
    """Flat per-label report over op and kernel spans (slowest first)."""
    spans = list(spans)
    agg: dict[tuple[str, str], dict] = {}
    for sp in spans:
        a = agg.setdefault(
            (sp.kind, sp.label),
            {"n": 0, "secs": 0.0, "est": 0, "real": 0, "nnz": 0, "prov": ""},
        )
        a["n"] += 1
        a["secs"] += sp.seconds
        a["est"] += sp.attrs.get("flops_estimated", 0)
        a["real"] += sp.attrs.get("flops_realized", 0)
        a["nnz"] += sp.attrs.get("nnz_out", 0)
        a["prov"] = a["prov"] or _provenance(sp.attrs)

    total = sum(sp.seconds for sp in spans)
    lines = [
        f"obs report: {len(spans)} spans, {total * 1e3:.2f} ms total",
    ]
    if queue_delta:
        lines.append(
            "queue: {drains} drains, {elided} elided | planner: {fused} fused, "
            "{cse} CSE hits, schedule width {max_width}".format(**queue_delta)
        )
    if pool_delta and pool_delta.get("submitted"):
        lines.append(
            f"pool: {pool_delta['submitted']} tasks on "
            f"{pool_delta.get('workers', '?')} workers, "
            f"busy {pool_delta.get('busy_seconds', 0.0) * 1e3:.2f} ms"
        )
    header = (
        f"  {'label':<28}{'kind':<8}{'n':>5}{'total ms':>11}"
        f"{'flops est/real':>18}{'nnz out':>9}  provenance"
    )
    lines.append(header)
    for (kind, label), a in sorted(agg.items(), key=lambda kv: -kv[1]["secs"]):
        flops = (
            f"{a['est']}/{a['real']}" if (a["est"] or a["real"]) else "-"
        )
        lines.append(
            f"  {label:<28}{kind:<8}{a['n']:>5}{a['secs'] * 1e3:>11.3f}"
            f"{flops:>18}{a['nnz'] or '-':>9}  {a['prov']}"
        )
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<44}{counters[name]}")
    return "\n".join(lines)


class BenchRecorder:
    """Measure named workloads and emit the ``repro-bench/1`` JSON schema.

    Entries carry min/median/mean/max over the measured runs plus free-form
    metadata (nnz, flops, planner counters), so downstream tooling can
    diff successive ``BENCH_prN.json`` files without parsing prose.
    """

    SCHEMA = "repro-bench/1"

    def __init__(self, meta: dict | None = None):
        self.meta = dict(meta or {})
        self.entries: list[dict] = []

    def record(self, name: str, seconds: list[float], **extra) -> dict:
        if not seconds:
            raise ValueError(f"bench entry {name!r} has no measurements")
        entry = {
            "name": name,
            "runs": len(seconds),
            "min_s": min(seconds),
            "median_s": statistics.median(seconds),
            "mean_s": statistics.fmean(seconds),
            "max_s": max(seconds),
        }
        if extra:
            entry.update({k: _jsonable(v) for k, v in extra.items()})
        self.entries.append(entry)
        return entry

    def measure(
        self,
        name: str,
        fn: Callable[[], object],
        repeat: int = 5,
        warmup: int = 1,
        **extra,
    ):
        """Time ``fn()`` *repeat* times (after *warmup* unrecorded runs)."""
        result = None
        for _ in range(warmup):
            result = fn()
        times = []
        for _ in range(repeat):
            t0 = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - t0)
        self.record(name, times, **extra)
        return result

    def to_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "env": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "numpy": _numpy_version(),
                "argv": list(sys.argv),
                **self.meta,
            },
            "benchmarks": sorted(self.entries, key=lambda e: e["name"]),
        }

    def write(self, path) -> dict:
        """Serialize to *path*; refuses to write an empty baseline."""
        if not self.entries:
            raise ValueError("refusing to write an empty bench baseline")
        doc = self.to_dict()
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return doc


def _numpy_version() -> str:
    try:
        import numpy

        return numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        return "unknown"
