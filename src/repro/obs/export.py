"""Exporters: Chrome trace-event JSON, flat per-label reports, Prometheus
text exposition, the per-request timeline HTML, and the machine-readable
bench recorder behind the repo's ``BENCH_*.json`` perf-trajectory files.

* :func:`chrome_trace` renders a span list into the Trace Event Format
  that ``chrome://tracing`` / Perfetto load: one complete ("X") event per
  span with its attrs in ``args``, plus process/thread-name metadata
  events so service workers and pool threads show up labelled, not as
  bare TIDs.
* :func:`per_label_report` is the human-readable successor of the old
  ``Tracer.summary()``: per-label counts and totals, estimated vs realized
  flops, nnz written, and the planner's fusion/CSE provenance.
* :func:`prometheus_text` renders a metrics snapshot as the Prometheus
  text exposition format (counters → ``_total``, histograms → cumulative
  ``_bucket``/``_sum``/``_count``) — the body of the server's plaintext
  ``metrics`` command.
* :func:`timeline_html` renders a span capture as a self-contained HTML
  report: one lane per request (queue/issue bars plus every drain-time
  op attributed to it, fused and CSE'd included) and a per-thread
  flamegraph of the raw spans.  No external assets — CI uploads it as an
  artifact that opens anywhere.
* :class:`BenchRecorder` measures named workloads and writes a stable JSON
  schema (``repro-bench/1``) so successive PRs' baselines are diffable by
  machine.
"""

from __future__ import annotations

import html as _html
import json
import platform
import statistics
import sys
import time
from typing import Callable, Iterable

from .metrics import BUCKET_BOUNDS
from .spans import Span

__all__ = [
    "chrome_trace",
    "per_label_report",
    "prometheus_text",
    "timeline_html",
    "BenchRecorder",
]


def _jsonable(v):
    """Coerce numpy scalars / odd attr values into JSON-safe types."""
    item = getattr(v, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:  # zero-d arrays of odd dtypes etc.
            return repr(v)
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _jsonable(x) for k, x in v.items()}
    return repr(v)


def chrome_trace(spans: Iterable[Span], *, pid: int = 1) -> dict:
    """Render *spans* as a ``chrome://tracing`` trace-event JSON object.

    Timestamps are microseconds relative to the earliest span, so the
    trace opens at t=0 regardless of the process's ``perf_counter`` epoch.
    """
    spans = list(spans)
    events: list[dict] = [
        # process metadata first, so chrome://tracing groups the lanes
        # under a meaningful producer name instead of "pid 1"
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro.obs"},
        },
        {
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": 0},
        },
    ]
    tid_map: dict[int, int] = {}
    base = min((sp.t0 for sp in spans), default=0.0)
    for sp in sorted(spans, key=lambda s: s.t0):
        if sp.tid not in tid_map:
            tid = tid_map[sp.tid] = len(tid_map) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": sp.thread},
                }
            )
            events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        args = {k: _jsonable(v) for k, v in sp.attrs.items()}
        args["span_id"] = sp.sid
        if sp.parent is not None:
            args["parent_span"] = sp.parent
        if sp.deferred:
            args["deferred"] = True
        events.append(
            {
                "name": sp.label,
                "cat": sp.kind,
                "ph": "X",
                "ts": round((sp.t0 - base) * 1e6, 3),
                "dur": round(max(sp.seconds, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": tid_map[sp.tid],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "spans": len(spans)},
    }


def _provenance(attrs: dict) -> str:
    if "fused_of" in attrs:
        return "fusion: " + "→".join(attrs["fused_of"])
    if "cse_of" in attrs:
        return f"cse: reuses T of node {attrs['cse_of']}"
    return ""


def per_label_report(
    spans: Iterable[Span],
    queue_delta: dict | None = None,
    counters: dict | None = None,
    pool_delta: dict | None = None,
) -> str:
    """Flat per-label report over op and kernel spans (slowest first)."""
    spans = list(spans)
    agg: dict[tuple[str, str], dict] = {}
    for sp in spans:
        a = agg.setdefault(
            (sp.kind, sp.label),
            {"n": 0, "secs": 0.0, "est": 0, "real": 0, "nnz": 0, "prov": ""},
        )
        a["n"] += 1
        a["secs"] += sp.seconds
        a["est"] += sp.attrs.get("flops_estimated", 0)
        a["real"] += sp.attrs.get("flops_realized", 0)
        a["nnz"] += sp.attrs.get("nnz_out", 0)
        a["prov"] = a["prov"] or _provenance(sp.attrs)

    total = sum(sp.seconds for sp in spans)
    lines = [
        f"obs report: {len(spans)} spans, {total * 1e3:.2f} ms total",
    ]
    if queue_delta:
        lines.append(
            "queue: {drains} drains, {elided} elided | planner: {fused} fused, "
            "{cse} CSE hits, schedule width {max_width}".format(**queue_delta)
        )
    if pool_delta and pool_delta.get("submitted"):
        lines.append(
            f"pool: {pool_delta['submitted']} tasks on "
            f"{pool_delta.get('workers', '?')} workers, "
            f"busy {pool_delta.get('busy_seconds', 0.0) * 1e3:.2f} ms"
        )
    header = (
        f"  {'label':<28}{'kind':<8}{'n':>5}{'total ms':>11}"
        f"{'flops est/real':>18}{'nnz out':>9}  provenance"
    )
    lines.append(header)
    for (kind, label), a in sorted(agg.items(), key=lambda kv: -kv[1]["secs"]):
        flops = (
            f"{a['est']}/{a['real']}" if (a["est"] or a["real"]) else "-"
        )
        lines.append(
            f"  {label:<28}{kind:<8}{a['n']:>5}{a['secs'] * 1e3:>11.3f}"
            f"{flops:>18}{a['nnz'] or '-':>9}  {a['prov']}"
        )
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<44}{counters[name]}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------

def _prom_name(name: str, prefix: str) -> str:
    safe = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"{prefix}_{safe}" if prefix else safe


def _prom_value(v) -> str:
    if v is None:
        return "NaN"
    f = float(v)
    if f == float("inf"):
        return "+Inf"
    if f == float("-inf"):
        return "-Inf"
    return repr(f) if isinstance(v, float) else str(int(v))


def prometheus_text(
    snapshot: dict, *, gauges: dict | None = None, prefix: str = "repro"
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text format.

    Counters become ``<prefix>_<name>_total`` counter series; histograms
    become the conventional cumulative ``_bucket{le="..."}`` series plus
    ``_sum`` and ``_count``; *gauges* (service-level point-in-time values
    such as queue depth) are emitted as gauge series.  Metric names are
    sanitized to ``[a-zA-Z0-9_]`` — dots in registry names map to
    underscores, so ``service.latency_us`` scrapes as
    ``repro_service_latency_us``.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        pname = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} histogram")
        cum = 0
        buckets = h.get("buckets", [])
        for bound, n in zip(BUCKET_BOUNDS, buckets):
            cum += n
            lines.append(f'{pname}_bucket{{le="{bound}"}} {cum}')
        cum += buckets[-1] if len(buckets) > len(BUCKET_BOUNDS) else 0
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{pname}_sum {_prom_value(h.get('total', 0.0))}")
        lines.append(f"{pname}_count {_prom_value(h.get('count', 0))}")
    for name in sorted(gauges or {}):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_prom_value(gauges[name])}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# Per-request timeline / flamegraph HTML
# --------------------------------------------------------------------------

_TIMELINE_CSS = """
body{font:13px/1.45 -apple-system,Segoe UI,sans-serif;margin:20px;
     background:#fafafa;color:#1a1a1a}
h1{font-size:18px} h2{font-size:15px;margin-top:28px}
.lane{position:relative;height:22px;margin:2px 0;background:#f0f0f2;
      border-radius:3px}
.lane .name{position:absolute;left:4px;top:2px;font-size:11px;color:#555;
      z-index:2;pointer-events:none;white-space:nowrap}
.seg{position:absolute;top:2px;height:18px;border-radius:2px;opacity:.92;
     min-width:1px}
.seg.request{background:#4c78a8}.seg.op{background:#f58518}
.seg.kernel{background:#54a24b}.seg.drain{background:#b279a2}
.seg.batch{background:#9d9d9d}.seg.fused{background:#e45756}
.seg.cse{background:#72b7b2}.seg.region{background:#c5b0d5}
.flame .seg{height:14px}
.legend span{display:inline-block;padding:1px 8px;margin-right:6px;
     border-radius:3px;color:#fff;font-size:11px}
.meta{color:#666;font-size:12px}
"""


def _request_ids_of(sp: Span) -> tuple:
    """Every request id stamped on *sp*, deduplicated, insertion-ordered.

    Provenance attrs arrive in several shapes — a list/tuple from the
    planner, a set from ad-hoc annotation, a bare string from hand-rolled
    spans — and a fused node carries *all* its contributing requests'
    ids.  Dropping the non-list shapes used to collapse cross-request
    fused nodes onto whichever lane happened to survive.
    """
    rids = sp.attrs.get("request_ids")
    if rids is None:
        return ()
    if isinstance(rids, str):
        return (rids,)
    if isinstance(rids, (list, tuple, set, frozenset)):
        out: list[str] = []
        for r in sorted(rids, key=str) if isinstance(rids, (set, frozenset)) else rids:
            s = str(r)
            if s not in out:
                out.append(s)
        return tuple(out)
    return ()


def _seg_class(sp: Span) -> str:
    if "fused_of" in sp.attrs:
        return "fused"
    if "cse_of" in sp.attrs:
        return "cse"
    return sp.kind if sp.kind in (
        "request", "op", "kernel", "drain", "batch"
    ) else "region"


def _seg_html(sp: Span, t0: float, scale: float, *, cls: str | None = None) -> str:
    left = (sp.t0 - t0) * scale
    width = max(sp.seconds * scale, 0.08)
    tip = f"{sp.label} [{sp.kind}] {sp.seconds * 1e3:.3f} ms"
    rids = _request_ids_of(sp)
    if rids:
        tip += " requests=" + ",".join(rids)
    for key in ("fused_of", "cse_of", "flops_realized", "nnz_out"):
        if key in sp.attrs:
            tip += f" {key}={sp.attrs[key]}"
    return (
        f'<div class="seg {cls or _seg_class(sp)}" '
        f'style="left:{left:.3f}%;width:{width:.3f}%" '
        f'title="{_html.escape(tip, quote=True)}"></div>'
    )


def timeline_html(
    spans: Iterable[Span],
    *,
    title: str = "repro request timeline",
    request_timings: dict | None = None,
) -> str:
    """Self-contained HTML: per-request lanes plus per-thread flamegraph.

    The request section draws one lane per originating request id seen in
    the capture: its ``request:*`` issue span plus every drain-scheduled
    op span whose provenance names the request — fused and CSE'd nodes
    appear in *every* contributing request's lane, which is exactly the
    point: shared work is visible as shared.  *request_timings* (optional,
    ``{request_id: {"queue_wait_us": ..., "issue_us": ...,
    "drain_share_us": ...}}``) adds the measured latency decomposition to
    each lane's label.
    """
    spans = sorted(spans, key=lambda s: (s.t0, s.sid))
    if not spans:
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{_html.escape(title)}</title></head>"
            "<body><p>no spans captured</p></body></html>"
        )
    t0 = min(sp.t0 for sp in spans)
    t1 = max(sp.t1 for sp in spans)
    scale = 100.0 / max(t1 - t0, 1e-9)

    by_request: dict[str, list[Span]] = {}
    for sp in spans:
        for rid in _request_ids_of(sp):
            by_request.setdefault(rid, []).append(sp)

    out = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_TIMELINE_CSS}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        f"<p class='meta'>{len(spans)} spans, "
        f"{(t1 - t0) * 1e3:.2f} ms window, "
        f"{len(by_request)} attributed requests</p>",
        "<p class='legend'>"
        "<span class='seg request' style='position:static'>request</span>"
        "<span class='seg op' style='position:static'>op</span>"
        "<span class='seg fused' style='position:static'>fused</span>"
        "<span class='seg cse' style='position:static'>cse</span>"
        "<span class='seg kernel' style='position:static'>kernel</span>"
        "<span class='seg drain' style='position:static'>drain</span>"
        "</p>",
        "<h2>Per-request timeline</h2>",
    ]
    for rid in sorted(by_request):
        label = f"request {rid}"
        timing = (request_timings or {}).get(rid)
        if timing:
            label += (
                f" — queue {timing.get('queue_wait_us', 0):.0f}us"
                f" + issue {timing.get('issue_us', 0):.0f}us"
                f" + drain-share {timing.get('drain_share_us', 0):.0f}us"
            )
        segs = "".join(
            _seg_html(sp, t0, scale)
            for sp in by_request[rid]
            if sp.kind in ("request", "op")
        )
        out.append(
            f'<div class="lane"><span class="name">'
            f"{_html.escape(label)}</span>{segs}</div>"
        )
    if not by_request:
        out.append("<p class='meta'>no request-attributed spans</p>")

    out.append("<h2>Per-thread flamegraph</h2>")
    threads: dict[int, list[Span]] = {}
    for sp in spans:
        threads.setdefault(sp.tid, []).append(sp)
    depth_of: dict[int, int] = {}
    for tid, tspans in threads.items():
        name = tspans[0].thread
        out.append(f"<p class='meta'>{_html.escape(name)}</p>")
        sids = {sp.sid for sp in tspans}
        for sp in tspans:
            parent_depth = (
                depth_of.get(sp.parent, -1) if sp.parent in sids else -1
            )
            depth_of[sp.sid] = parent_depth + 1
        max_depth = max((depth_of[sp.sid] for sp in tspans), default=0)
        rows: list[list[str]] = [[] for _ in range(max_depth + 1)]
        for sp in tspans:
            rows[depth_of[sp.sid]].append(_seg_html(sp, t0, scale))
        out.append("<div class='flame'>")
        for row in rows:
            out.append(f'<div class="lane">{"".join(row)}</div>')
        out.append("</div>")
    out.append("</body></html>")
    return "\n".join(out)


class BenchRecorder:
    """Measure named workloads and emit the ``repro-bench/1`` JSON schema.

    Entries carry min/median/mean/max over the measured runs plus free-form
    metadata (nnz, flops, planner counters), so downstream tooling can
    diff successive ``BENCH_prN.json`` files without parsing prose.
    """

    SCHEMA = "repro-bench/1"

    def __init__(self, meta: dict | None = None):
        self.meta = dict(meta or {})
        self.entries: list[dict] = []

    def record(self, name: str, seconds: list[float], **extra) -> dict:
        if not seconds:
            raise ValueError(f"bench entry {name!r} has no measurements")
        entry = {
            "name": name,
            "runs": len(seconds),
            "min_s": min(seconds),
            "median_s": statistics.median(seconds),
            "mean_s": statistics.fmean(seconds),
            "max_s": max(seconds),
        }
        if extra:
            entry.update({k: _jsonable(v) for k, v in extra.items()})
        self.entries.append(entry)
        return entry

    def measure(
        self,
        name: str,
        fn: Callable[[], object],
        repeat: int = 5,
        warmup: int = 1,
        **extra,
    ):
        """Time ``fn()`` *repeat* times (after *warmup* unrecorded runs)."""
        result = None
        for _ in range(warmup):
            result = fn()
        times = []
        for _ in range(repeat):
            t0 = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - t0)
        self.record(name, times, **extra)
        return result

    def to_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "env": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "numpy": _numpy_version(),
                "argv": list(sys.argv),
                **self.meta,
            },
            "benchmarks": sorted(self.entries, key=lambda e: e["name"]),
        }

    def write(self, path) -> dict:
        """Serialize to *path*; refuses to write an empty baseline."""
        if not self.entries:
            raise ValueError("refusing to write an empty bench baseline")
        doc = self.to_dict()
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return doc


def _numpy_version() -> str:
    try:
        import numpy

        return numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        return "unknown"
