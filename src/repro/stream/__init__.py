"""Streaming graph subsystem: batched ingest + incremental algorithms.

The GraphBLAS nonblocking mode exists so implementations can defer and
batch mutations; this package exploits it end to end:

* :mod:`repro.stream.delta` — :class:`EdgeDelta`, the exact record of one
  flushed edge batch (adds / removes / value changes against the
  pre-flush content);
* :mod:`repro.stream.ingest` — :class:`EdgeBuffer`, a COO append buffer
  with last-writer-wins dedup whose :meth:`~EdgeBuffer.flush` submits the
  CSR rebuild as a *first-class deferred op* into the planner DAG, so
  rebuilds schedule like any other node and respect RAW/WAW hazards
  against queued reads;
* :mod:`repro.stream.incremental` — handles that maintain PageRank, BFS
  levels, and connected components from an :class:`EdgeDelta` instead of
  recomputing, each with an exact-fallback guard.
"""

from .delta import EdgeDelta
from .incremental import (
    IncrementalBFS,
    IncrementalCC,
    IncrementalPagerank,
    make_handle,
)
from .ingest import EdgeBuffer, FlushResult

__all__ = [
    "EdgeDelta",
    "EdgeBuffer",
    "FlushResult",
    "IncrementalPagerank",
    "IncrementalBFS",
    "IncrementalCC",
    "make_handle",
]
