"""EdgeDelta: the exact record of one flushed edge batch.

A delta is computed *inside* the deferred rebuild kernel — after every
hazard-ordered predecessor has run — so it describes the transition from
the true pre-flush content to the post-flush content, never a stale
intermediate.  Incremental algorithm handles consume it to update their
maintained results; the memo layer consumes the touched-name set to
re-validate instead of dropping the cache wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EdgeDelta"]


@dataclass(frozen=True)
class EdgeDelta:
    """Edge-level diff of one flush against the pre-flush matrix.

    All arrays are parallel over the set of *materially changed* edges
    (no-op writes — setting an edge to its existing value, removing an
    absent edge — are filtered out).  ``old_mask[k]`` / ``new_mask[k]``
    say whether edge ``(rows[k], cols[k])`` existed before / after;
    ``old_values`` / ``new_values`` are meaningful only where the
    corresponding mask is True.
    """

    nrows: int
    ncols: int
    rows: np.ndarray  # int64
    cols: np.ndarray  # int64
    old_mask: np.ndarray  # bool
    old_values: np.ndarray
    new_mask: np.ndarray  # bool
    new_values: np.ndarray
    #: nnz of the matrix before the flush (denominator of :meth:`fraction`)
    base_nnz: int

    # ------------------------------------------------------------- shape
    @property
    def size(self) -> int:
        """Number of changed edges."""
        return len(self.rows)

    def fraction(self) -> float:
        """Changed edges relative to the pre-flush graph size.

        The guard incremental handles use: above a threshold, full
        recompute is cheaper (and always exact), so they fall back.
        """
        return self.size / max(self.base_nnz, 1)

    # ----------------------------------------------------------- subsets
    @property
    def added(self) -> np.ndarray:
        """Positions of edges that did not exist before and do now."""
        return np.nonzero(~self.old_mask & self.new_mask)[0]

    @property
    def removed(self) -> np.ndarray:
        """Positions of edges that existed before and no longer do."""
        return np.nonzero(self.old_mask & ~self.new_mask)[0]

    @property
    def changed(self) -> np.ndarray:
        """Positions of edges present on both sides with a new value."""
        return np.nonzero(self.old_mask & self.new_mask)[0]

    def touched_rows(self) -> np.ndarray:
        """Sorted unique row ids with at least one changed out-edge."""
        return np.unique(self.rows)

    def pattern_changes(self) -> np.ndarray:
        """Positions where the structure (not just a value) changed."""
        return np.nonzero(self.old_mask != self.new_mask)[0]

    def is_empty(self) -> bool:
        return self.size == 0

    @classmethod
    def empty(cls, nrows: int, ncols: int, base_nnz: int) -> "EdgeDelta":
        z = np.empty(0, dtype=np.int64)
        b = np.empty(0, dtype=bool)
        return cls(
            nrows=nrows, ncols=ncols, rows=z, cols=z,
            old_mask=b, old_values=np.empty(0), new_mask=b.copy(),
            new_values=np.empty(0), base_nnz=int(base_nnz),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EdgeDelta {self.size} edges "
            f"(+{len(self.added)} -{len(self.removed)} "
            f"~{len(self.changed)}) over base nnz={self.base_nnz}>"
        )
