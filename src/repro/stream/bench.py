"""Incremental-vs-full streaming bench: what delta maintenance buys.

One workload per incremental algorithm (PageRank, BFS levels, connected
components): a base graph takes a schedule of small edge batches, and
each round is served either by advancing an incremental handle across
the flushed :class:`~repro.stream.delta.EdgeDelta` or by recomputing the
algorithm from scratch.  Both variants pay the same ingest (the
EdgeBuffer merge-rebuild) and the same initial full compute, so the
difference is purely the serving strategy.  Results are asserted
equivalent every repetition — exactly for the integer algorithms, within
the documented O(tol·n/(1−α)) envelope for PageRank — and the handles'
measured ``work_ratio`` (edges touched incrementally per edge a full
recompute touches) lands in the baseline next to the timings::

    PYTHONPATH=src python -m repro.stream.bench --out BENCH_pr9.json

Timings use the ``repro-bench/1`` schema so ``tools/bench_trajectory.py``
diffs them against the committed baselines.
"""

from __future__ import annotations

import argparse

import numpy as np

import repro as grb
from .. import algorithms, context
from ..obs.export import BenchRecorder
from .incremental import make_handle
from .ingest import EdgeBuffer

_PR_ATOL = 1e-5


def _base_arrays(n: int, nnz: int, seed: int, symmetric: bool):
    r = np.random.default_rng(seed)
    keys = r.choice(n * n, size=min(nnz, n * n), replace=False)
    rows, cols = np.divmod(keys, n)
    vals = r.uniform(0.1, 2.0, len(keys))
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
        keys = rows * n + cols
        _, first = np.unique(keys, return_index=True)
        rows, cols, vals = rows[first], cols[first], vals[first]
    return rows, cols, vals


def _schedule(n: int, rounds: int, batch: int, seed: int, symmetric: bool):
    """Per-round (rows, cols, vals) set-batches, mirrored when symmetric."""
    r = np.random.default_rng(seed * 31 + 7)
    out = []
    for _ in range(rounds):
        rows = r.integers(0, n, batch)
        cols = r.integers(0, n, batch)
        vals = r.uniform(0.1, 2.0, batch)
        if symmetric:
            rows, cols = (
                np.concatenate([rows, cols]), np.concatenate([cols, rows])
            )
            vals = np.concatenate([vals, vals])
        out.append((rows, cols, vals))
    return out


def _build(n: int, base) -> grb.Matrix:
    return grb.Matrix.from_coo(grb.FP64, n, n, *base)


_ALGOS = {
    # name -> (args, symmetric, result-of-handle, result-of-scratch)
    "pagerank": ({}, False),
    "bfs_levels": ({"source": 0}, False),
    "connected_components": ({}, True),
}


def _scratch(algo: str, A: grb.Matrix, args: dict):
    out = getattr(algorithms, algo)(A, **args)
    if isinstance(out, grb.Vector):
        return out.extract_tuples()
    return out


def run_incremental(algo: str, args: dict, n: int, base, schedule):
    """Handle-maintained serving; returns (final result, mean work ratio)."""
    context._reset()
    A = _build(n, base)
    h = make_handle(algo, A, args)
    assert h is not None
    buf = EdgeBuffer(A)
    ratios = []
    for rows, cols, vals in schedule:
        delta = buf.set_edges(rows, cols, vals).flush().delta
        h.update(A, delta)
        ratios.append(h.last_work_ratio)
        h.result()
    return h.result(), float(np.mean(ratios))


def run_full(algo: str, args: dict, n: int, base, schedule):
    """From-scratch serving: same ingest, full recompute every round."""
    context._reset()
    A = _build(n, base)
    out = _scratch(algo, A, args)
    buf = EdgeBuffer(A)
    for rows, cols, vals in schedule:
        buf.set_edges(rows, cols, vals).flush().delta
        out = _scratch(algo, A, args)
    return out


def _equivalent(algo: str, inc, full) -> bool:
    if algo == "pagerank":
        return np.allclose(inc, full, rtol=0, atol=_PR_ATOL, equal_nan=True)
    if algo == "bfs_levels":
        gi, gv = inc.extract_tuples()
        return (
            np.array_equal(gi, full[0]) and np.array_equal(gv, full[1])
        )
    return np.array_equal(inc, full)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None, help="write BENCH json here")
    ap.add_argument("--repeat", type=int, default=5)
    ap.add_argument("--n", type=int, default=300)
    ap.add_argument("--nnz", type=int, default=3000)
    ap.add_argument("--rounds", type=int, default=8)
    ap.add_argument("--batch", type=int, default=4,
                    help="edge writes per delta batch (small-delta regime)")
    args = ap.parse_args(argv)

    rec = BenchRecorder(meta={
        "workload": "stream.incremental",
        "n": args.n,
        "nnz": args.nnz,
        "rounds": args.rounds,
        "batch": args.batch,
    })
    for algo, (algo_args, symmetric) in _ALGOS.items():
        base = _base_arrays(args.n, args.nnz, 5, symmetric)
        schedule = _schedule(args.n, args.rounds, args.batch, 5, symmetric)

        inc_result = rec.measure(
            f"stream.{algo}.incremental",
            lambda: run_incremental(algo, algo_args, args.n, base, schedule),
            repeat=args.repeat, warmup=1, rounds=args.rounds,
        )
        full_result = rec.measure(
            f"stream.{algo}.full_recompute",
            lambda: run_full(algo, algo_args, args.n, base, schedule),
            repeat=args.repeat, warmup=1, rounds=args.rounds,
        )
        assert _equivalent(algo, inc_result[0], full_result), (
            f"{algo}: incremental diverged from full recompute"
        )
        inc_e = next(e for e in rec.entries
                     if e["name"] == f"stream.{algo}.incremental")
        full_e = next(e for e in rec.entries
                      if e["name"] == f"stream.{algo}.full_recompute")
        speedup = full_e["min_s"] / inc_e["min_s"]
        inc_e["speedup_vs_full"] = round(speedup, 4)
        inc_e["mean_work_ratio"] = round(inc_result[1], 6)
        print(
            f"{algo:<22} incremental {inc_e['min_s']*1e3:8.2f} ms"
            f"   full {full_e['min_s']*1e3:8.2f} ms"
            f"   speedup {speedup:5.2f}x"
            f"   work_ratio {inc_result[1]:.4f}"
        )
    if args.out:
        rec.write(args.out)
        print(f"wrote {args.out}")
    context._reset()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
