"""Incremental recomputation of PageRank / BFS levels / components.

Each handle maintains the result of one algorithm over an evolving graph
and advances it from an :class:`~repro.stream.delta.EdgeDelta` instead of
recomputing — delta-push PageRank with a residual queue, frontier-repair
BFS, union-merge connected components.  Every handle carries an
**exact-fallback guard**: when the delta is too large, or a structural
precondition of the fast path fails (falsy BFS edge values, asymmetric CC
pattern, degenerate PageRank weights), the handle transparently reruns
the full algorithm, so its result is *always* what recompute-from-scratch
would produce — bit-identical for BFS/CC, within a documented float
tolerance for PageRank (see ``docs/streaming.md``).

PageRank correctness sketch: the iteration is the affine map
``F(r) = α·Mᵀr + α·(Σ_dangling r)/n·1 + (1-α)/n·1``, an L1-contraction
with factor α.  The handle keeps the invariant ``res = F(r) - r``; a
delta updates ``res`` locally (changed out-rows and dangling-set moves),
then the push loop absorbs residual mass: absorbing ``res[u]`` into
``r[u]`` forwards ``α·res[u]`` along u's out-row, shrinking ``‖res‖₁``
geometrically.  Terminating at per-entry ``|res| < tol`` leaves both the
incremental and the from-scratch result within ``O(tol·n/(1-α))`` of the
unique fixed point in L1.
"""

from __future__ import annotations

import heapq

import numpy as np

from .. import context
from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..info import DimensionMismatch, InvalidValue
from ..obs import metrics
from ..types import INT32
from .delta import EdgeDelta

__all__ = [
    "IncrementalPagerank",
    "IncrementalBFS",
    "IncrementalCC",
    "make_handle",
]

#: delta/base-nnz ratio above which full recompute is assumed cheaper
MAX_DELTA_FRACTION = 0.25

#: push-loop work budget as a multiple of nnz before giving up on the
#: incremental path (beyond this the "fast" path has lost anyway)
_PUSH_WORK_FACTOR = 10

#: exact residual refresh cadence (kills float drift in the invariant)
_REFRESH_EVERY = 32


def _record(algo: str, mode: str, work: int, nnz: int, reason: str = "") -> None:
    reg = metrics.registry
    reg.inc(f"stream.algo.{mode}")
    reg.inc(f"stream.algo.{algo}.{mode}")
    if reason:
        reg.inc(f"stream.algo.fallback.{reason}")
    # delta-vs-full work ratio: edges the incremental path touched per
    # edge a full recompute would touch at least once
    reg.observe("stream.algo.work_ratio", work / max(nnz, 1))


class _HandleBase:
    """Shared guard/accounting plumbing of the three handles."""

    algo = ""

    def __init__(self, A: Matrix):
        if not isinstance(A, Matrix):
            raise InvalidValue("incremental handles require a Matrix")
        if A.nrows != A.ncols:
            raise DimensionMismatch("incremental handles require a square matrix")
        self._n = A.nrows
        self.updates = 0
        self.full_recomputes = 0
        self.last_mode = "init"
        self.last_work_ratio = 1.0

    def _pre_update(self, A: Matrix, delta: EdgeDelta) -> None:
        if A.nrows != self._n or A.ncols != self._n:
            raise DimensionMismatch("graph was resized; recreate the handle")
        context.complete(A)
        self.updates += 1

    def _finish(self, mode: str, work: int, nnz: int, reason: str = "") -> dict:
        if mode == "full":
            self.full_recomputes += 1
            work = max(work, nnz)
        self.last_mode = mode
        self.last_work_ratio = work / max(nnz, 1)
        _record(self.algo, mode, work, nnz, reason)
        return {"mode": mode, "work_ratio": self.last_work_ratio}


# ---------------------------------------------------------------------------
# PageRank
# ---------------------------------------------------------------------------

class IncrementalPagerank(_HandleBase):
    """Delta-push PageRank with a residual queue.

    Matches :func:`repro.algorithms.pagerank` within a documented float
    tolerance (both land within ``O(tol·n/(1-α))`` of the same fixed
    point; per-entry disagreement stays under ``1e-5`` at the default
    ``tol=1e-8``).
    """

    algo = "pagerank"

    def __init__(
        self,
        A: Matrix,
        damping: float = 0.85,
        tol: float = 1e-8,
        max_iters: int = 100,
    ):
        super().__init__(A)
        self._damping = float(damping)
        self._tol = float(tol)
        self._max_iters = int(max_iters)
        self._r = np.zeros(self._n)
        self._res = np.zeros(self._n)
        self._deg = np.zeros(self._n)
        self._counts = np.zeros(self._n, dtype=np.int64)
        self._healthy = False
        self._full_refresh(A)

    # ------------------------------------------------------------ internals
    def _scan_graph(self, A: Matrix) -> None:
        """Recompute exact weighted degrees / row counts / health."""
        view = A.csr()
        vals = view.values.astype(np.float64, copy=False)
        self._counts = view.row_counts().astype(np.int64)
        deg = np.zeros(self._n)
        np.add.at(deg, view.row_ids(), vals)
        # structurally empty rows are exactly 0 — float drift here would
        # silently move a vertex in/out of the dangling set
        deg[self._counts == 0] = 0.0
        self._deg = deg
        self._healthy = bool(
            (len(vals) == 0 or vals.min() >= 0.0)
            and not np.any((self._counts > 0) & (deg <= 0.0))
        )

    def _apply_F(self, A: Matrix, r: np.ndarray) -> np.ndarray:
        """One exact application of the PageRank affine map to *r*."""
        n = self._n
        a = self._damping
        view = A.csr()
        safe = np.where(self._deg > 0.0, self._deg, 1.0)
        scaled = np.where(self._deg > 0.0, r / safe, 0.0)
        out = np.zeros(n)
        if view.nnz:
            np.add.at(
                out,
                view.indices,
                scaled[view.row_ids()] * view.values.astype(np.float64),
            )
        dangling_mass = float(r[self._deg == 0.0].sum())
        return (1.0 - a) / n + a * dangling_mass / n + a * out

    def _full_refresh(self, A: Matrix) -> None:
        """Exact-fallback: from-scratch PageRank plus a fresh residual."""
        from ..algorithms import pagerank

        self._r = pagerank(
            A, damping=self._damping, tol=self._tol, max_iters=self._max_iters
        )
        self._scan_graph(A)
        if self._healthy:
            self._res = self._apply_F(A, self._r) - self._r
        else:
            self._res = np.zeros(self._n)

    def _push_loop(self, A: Matrix, work_cap: int) -> int:
        """Absorb residual mass until per-entry ``|res| <= tol``.

        Synchronous batched sweeps: every over-threshold vertex absorbs
        its residual at once, and the pushed mass is distributed through
        one flat gather over the CSR segments of the whole active set.
        Push *order* never affects correctness — each absorb+distribute
        preserves the invariant ``res = F(r) - r`` — so batching is pure
        speed: per-sweep cost is vectorized over active edges instead of
        paying Python-loop overhead per vertex.  Total |res| decays by at
        least the damping factor per sweep, so sweeps stay bounded.

        Returns edges-touched work, or -1 when the budget is exhausted
        (caller falls back to the exact full recompute).
        """
        n = self._n
        a = self._damping
        theta = self._tol
        r, res, deg = self._r, self._res, self._deg
        view = A.csr()
        indptr = view.indptr
        work = 0
        while True:
            active = np.nonzero(np.abs(res) > theta)[0]
            if len(active) == 0:
                return work
            ru = res[active].copy()
            r[active] += ru
            res[active] = 0.0
            push = a * ru
            work += len(active)

            live = deg[active] > 0.0
            src = active[live]
            if len(src):
                starts = indptr[src]
                lens = indptr[src + 1] - starts
                total = int(lens.sum())
                if total:
                    # flat positions of every out-edge of the active set
                    offs = np.cumsum(lens) - lens
                    flat = (
                        np.arange(total, dtype=np.int64)
                        - np.repeat(offs, lens)
                        + np.repeat(starts, lens)
                    )
                    mass = np.repeat(push[live] / deg[src], lens)
                    np.add.at(
                        res,
                        view.indices[flat],
                        mass * view.values[flat].astype(np.float64),
                    )
                    work += total
            dangling = push[~live]
            if len(dangling):
                res += float(dangling.sum()) / n
                work += n
            if work > work_cap:
                return -1

    # --------------------------------------------------------------- update
    def update(self, A: Matrix, delta: EdgeDelta) -> dict:
        """Advance the maintained result across one flushed delta.

        *A* is the post-flush matrix (the handle never aliases it — each
        snapshot publication may carry a fresh copy-on-write duplicate).
        """
        self._pre_update(A, delta)
        nnz = A.nvals()
        if delta.is_empty():
            return self._finish("incremental", 0, nnz)
        if not self._healthy:
            # previous state carries no valid residual invariant
            self._full_refresh(A)
            return self._finish("full", nnz, nnz, reason="degenerate")
        if delta.fraction() > MAX_DELTA_FRACTION:
            self._full_refresh(A)
            return self._finish("full", nnz, nnz, reason="large-delta")

        n = self._n
        a = self._damping
        r, res = self._r, self._res
        old_deg = self._deg
        old_counts = self._counts
        work = 0

        # exact per-row refresh of degrees/counts for touched rows
        touched = delta.touched_rows()
        new_deg = old_deg.copy()
        new_counts = old_counts.copy()
        view = A.dcsr()
        new_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        healthy = True
        for i in touched.tolist():
            cols, vals = view.row(i)
            fvals = vals.astype(np.float64)
            new_rows[i] = (cols, fvals)
            new_counts[i] = len(cols)
            new_deg[i] = float(fvals.sum()) if len(cols) else 0.0
            if len(cols) and (fvals.min() < 0.0 or new_deg[i] <= 0.0):
                healthy = False
        if not healthy:
            self._deg, self._counts = new_deg, new_counts
            self._healthy = False
            self._full_refresh(A)
            return self._finish("full", nnz, nnz, reason="degenerate")

        # rebuild each touched row's *old* content from the delta, then
        # swap its contribution inside the residual: res stays F_new(r) - r
        by_row: dict[int, list[int]] = {}
        for k in range(delta.size):
            by_row.setdefault(int(delta.rows[k]), []).append(k)
        uniform = 0.0
        for i in touched.tolist():
            cols, fvals = new_rows[i]
            row_map = dict(zip(cols.tolist(), fvals.tolist()))
            for k in by_row.get(i, ()):
                j = int(delta.cols[k])
                if delta.old_mask[k]:
                    row_map[j] = float(delta.old_values[k])
                else:
                    row_map.pop(j, None)
            ri = r[i]
            if old_deg[i] > 0.0 and row_map:
                oc = np.fromiter(row_map.keys(), dtype=np.int64)
                ov = np.fromiter(row_map.values(), dtype=np.float64)
                np.add.at(res, oc, -a * ri * (ov / old_deg[i]))
                work += len(oc)
            if new_deg[i] > 0.0 and len(cols):
                np.add.at(res, cols, a * ri * (fvals / new_deg[i]))
                work += len(cols)
            was_dangling = old_deg[i] == 0.0
            is_dangling = new_deg[i] == 0.0
            if was_dangling != is_dangling:
                uniform += a * ri * ((1.0 if is_dangling else -1.0) / n)
        if uniform != 0.0:
            res += uniform
            work += n
        self._deg, self._counts = new_deg, new_counts

        pushed = self._push_loop(A, work_cap=max(_PUSH_WORK_FACTOR * nnz, 10_000))
        if pushed < 0:
            self._full_refresh(A)
            return self._finish("full", nnz, nnz, reason="push-budget")
        work += pushed

        if self.updates % _REFRESH_EVERY == 0:
            # periodic exact residual refresh bounds float drift
            self._res = self._apply_F(A, self._r) - self._r
            work += nnz
        return self._finish("incremental", work, nnz)

    def result(self) -> np.ndarray:
        """Dense FP64 scores summing to 1 (the scratch contract)."""
        if not self._healthy:
            # full-fallback state is scratch's own (already normalized)
            # output; renormalizing degenerate-weight scores — huge values
            # cancelling to sum ≈ 1 — would perturb them measurably
            return self._r.copy()
        total = self._r.sum()
        return self._r / total if total else self._r.copy()


# ---------------------------------------------------------------------------
# BFS levels
# ---------------------------------------------------------------------------

class IncrementalBFS(_HandleBase):
    """Frontier-repair BFS levels from a fixed source.

    Exact for edge insertions (decrease-only multi-source relaxation) and
    for deletions that keep every reached vertex supported by another
    in-neighbor one level up; any unsupported deletion, or any falsy
    stored edge value (which :func:`repro.algorithms.bfs_levels`
    propagates nonstandardly), falls back to the full algorithm.
    """

    algo = "bfs_levels"

    def __init__(self, A: Matrix, source: int):
        super().__init__(A)
        src = int(source)
        if not 0 <= src < self._n:
            raise InvalidValue(f"BFS source {source} out of range")
        self._source = src
        self._levels = np.full(self._n, -1, dtype=np.int64)
        self._clean = False
        self._full_refresh(A)

    def _full_refresh(self, A: Matrix) -> None:
        from ..algorithms import bfs_levels

        out = bfs_levels(A, self._source)
        idx, vals = out.extract_tuples()
        out.free()
        levels = np.full(self._n, -1, dtype=np.int64)
        levels[idx] = vals.astype(np.int64)
        self._levels = levels
        self._clean = self._graph_clean(A)

    @staticmethod
    def _graph_clean(A: Matrix) -> bool:
        """No stored falsy values anywhere (BFS fast-path precondition)."""
        _keys, values = A._content()
        return bool(len(values) == 0 or values.all())

    def update(self, A: Matrix, delta: EdgeDelta) -> dict:
        self._pre_update(A, delta)
        nnz = A.nvals()
        if delta.is_empty():
            return self._finish("incremental", 0, nnz)
        was_clean = self._clean
        now_clean = was_clean and bool(
            not delta.new_mask.any()
            or delta.new_values[delta.new_mask].all()
        )
        if not was_clean:
            # a removal may have scrubbed the falsy values out again
            now_clean = self._graph_clean(A)
        if not (was_clean and now_clean):
            self._full_refresh(A)
            reason = "falsy-values" if not now_clean else "was-unclean"
            return self._finish("full", nnz, nnz, reason=reason)
        if delta.fraction() > MAX_DELTA_FRACTION:
            self._full_refresh(A)
            return self._finish("full", nnz, nnz, reason="large-delta")

        levels = self._levels
        work = 0

        # deletions: every removed forward edge's target must keep an
        # alternative parent one level up, else levels may grow — full
        removed = delta.removed
        if len(removed):
            csc = A.csc()
            for k in removed.tolist():
                u = int(delta.rows[k])
                v = int(delta.cols[k])
                lu, lv = levels[u], levels[v]
                if lu < 0 or lv <= lu:
                    continue
                sl = csc.row_slice(v)
                parents = csc.indices[sl]
                work += len(parents) + 1
                if not np.any(levels[parents] == lv - 1):
                    self._full_refresh(A)
                    return self._finish("full", nnz, nnz, reason="unsupported")

        # insertions: decrease-only multi-source relaxation from improved
        # endpoints (exact — added edges only ever shorten paths)
        heap: list[tuple[int, int]] = []
        for k in delta.added.tolist():
            u = int(delta.rows[k])
            v = int(delta.cols[k])
            lu = levels[u]
            if lu < 0:
                continue
            if levels[v] == -1 or levels[v] > lu + 1:
                levels[v] = lu + 1
                heapq.heappush(heap, (lu + 1, v))
        view = A.dcsr()
        while heap:
            lv, v = heapq.heappop(heap)
            if levels[v] != lv:
                continue  # superseded by a better path
            cols, _vals = view.row(v)
            work += len(cols) + 1
            for w in cols.tolist():
                if levels[w] == -1 or levels[w] > lv + 1:
                    levels[w] = lv + 1
                    heapq.heappush(heap, (lv + 1, w))
        self._clean = now_clean
        return self._finish("incremental", work, nnz)

    def result(self) -> Vector:
        """Sparse INT32 level vector (the scratch contract: reached only)."""
        idx = np.nonzero(self._levels >= 0)[0]
        return Vector.from_coo(
            INT32, self._n, idx, self._levels[idx].astype(np.int32)
        )

    def levels_dense(self) -> np.ndarray:
        """Dense int64 levels, -1 for unreached (test/bench convenience)."""
        return self._levels.copy()


# ---------------------------------------------------------------------------
# Connected components
# ---------------------------------------------------------------------------

class IncrementalCC(_HandleBase):
    """Union-merge connected components (min-label contract).

    Edge insertions merge two labels exactly.  A deletion is a no-op on
    the partition when its endpoints stay connected through a common
    neighbor (cheap triangle check); otherwise the component may split
    and the handle falls back to the full algorithm.  The fast path
    requires a symmetric pattern — what
    :func:`repro.algorithms.connected_components` itself assumes — and
    verifies that delta-by-delta, falling back whenever it breaks.
    """

    algo = "connected_components"

    def __init__(self, A: Matrix):
        super().__init__(A)
        self._labels = np.arange(self._n, dtype=np.int64)
        self._symmetric = False
        self._full_refresh(A)

    def _full_refresh(self, A: Matrix) -> None:
        from ..algorithms import connected_components

        self._labels = connected_components(A).astype(np.int64)
        self._symmetric = self._pattern_symmetric(A)

    @staticmethod
    def _pattern_symmetric(A: Matrix) -> bool:
        keys, _vals = A._content()
        if not len(keys):
            return True
        n = A.ncols
        rows = keys // np.int64(n)
        cols = keys % np.int64(n)
        t_keys = cols * np.int64(n) + rows
        t_keys.sort()
        return bool(np.array_equal(t_keys, keys))

    @staticmethod
    def _delta_symmetric(delta: EdgeDelta) -> bool:
        """Every structural change must be mirrored in the same delta."""
        pat = delta.pattern_changes()
        if not len(pat):
            return True
        adds = set()
        dels = set()
        for k in pat.tolist():
            u = int(delta.rows[k])
            v = int(delta.cols[k])
            (adds if delta.new_mask[k] else dels).add((u, v))
        return all((v, u) in adds for (u, v) in adds if u != v) and all(
            (v, u) in dels for (u, v) in dels if u != v
        )

    def update(self, A: Matrix, delta: EdgeDelta) -> dict:
        self._pre_update(A, delta)
        nnz = A.nvals()
        if delta.is_empty():
            return self._finish("incremental", 0, nnz)
        was_symmetric = self._symmetric
        if was_symmetric and self._delta_symmetric(delta):
            now_symmetric = True
        else:
            now_symmetric = self._pattern_symmetric(A)
        if not (was_symmetric and now_symmetric):
            self._full_refresh(A)
            return self._finish("full", nnz, nnz, reason="asymmetric")
        if delta.fraction() > MAX_DELTA_FRACTION:
            self._full_refresh(A)
            return self._finish("full", nnz, nnz, reason="large-delta")

        labels = self._labels
        view = A.dcsr()
        work = 0

        # deletions first: a removal whose endpoints share a surviving
        # neighbor cannot change the partition (reroute through the
        # triangle); anything else may split a component — full
        for k in delta.removed.tolist():
            u = int(delta.rows[k])
            v = int(delta.cols[k])
            if u == v:
                continue
            cu, _ = view.row(u)
            cv, _ = view.row(v)
            work += len(cu) + len(cv)
            if not len(np.intersect1d(cu, cv, assume_unique=True)):
                self._full_refresh(A)
                return self._finish("full", nnz, nnz, reason="possible-split")

        # insertions: union-merge — relabel the larger-id component
        for k in delta.added.tolist():
            u = int(delta.rows[k])
            v = int(delta.cols[k])
            lu = int(labels[u])
            lv = int(labels[v])
            if lu == lv:
                continue
            lo, hi = (lu, lv) if lu < lv else (lv, lu)
            labels[labels == hi] = lo
            work += self._n
        self._symmetric = now_symmetric
        return self._finish("incremental", work, nnz)

    def result(self) -> np.ndarray:
        """Dense int64 min-member labels (the scratch contract)."""
        return self._labels.copy()


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

def make_handle(algo: str, A: Matrix, args: dict | None = None):
    """Build an incremental handle for *algo*, or None when unsupported.

    Argument combinations the handles cannot honor exactly (a truncated
    ``max_iters`` for components, say) return None — the caller keeps
    using full recomputation.
    """
    args = dict(args or {})
    try:
        if algo == "pagerank":
            return IncrementalPagerank(A, **args)
        if algo == "bfs_levels":
            if "source" not in args:
                return None
            return IncrementalBFS(A, source=args["source"])
        if algo == "connected_components":
            if args.get("max_iters") is not None:
                return None
            return IncrementalCC(A)
    except (TypeError, DimensionMismatch, InvalidValue):
        return None
    return None
