"""Batched edge ingest: a COO append buffer with a deferred CSR rebuild.

``Matrix.set_element`` pays an O(nnz) ``np.insert`` per edge — fine for
point updates, hopeless for streams.  :class:`EdgeBuffer` instead appends
edge writes (sets and removes) into flat COO chunks and, on
:meth:`~EdgeBuffer.flush`, submits **one** merge-rebuild for the whole
batch: an O((nnz + b)·log) last-writer-wins sorted merge.

The rebuild is not a side door around the execution model — it is
submitted through :func:`repro.operations.common.submit_standard_op` like
every other GraphBLAS operation, so it lands in the planner DAG as a
first-class deferred node:

* it *reads and writes* the target matrix (the kernel merges into the
  prior content), so RAW/WAW hazard edges order it against any queued op
  touching the matrix — reads submitted before the flush see the
  pre-flush content, reads after see the post-flush content;
* it carries no ``op_token``, so CSE never conflates two rebuilds, and it
  does not overwrite its output, so fusion never lifts it into a chain;
* the shard scheduler's gate (`repro.shard.opspec.plan_node`) does not
  recognize the kind, so it always executes locally.

The kernel also computes the :class:`~repro.stream.delta.EdgeDelta` of
the batch — *at execution time*, after every hazard predecessor ran, so
the delta is exact against the true pre-flush content.  The caller gets
it through the returned :class:`FlushResult`; reading it is a sequence
point (it forces completion of the target matrix).
"""

from __future__ import annotations

import numpy as np

from .. import context
from ..containers.formats import check_indices
from ..containers.matrix import Matrix
from ..info import InvalidValue
from ..obs import metrics, spans
from ..operations.common import submit_standard_op
from .delta import EdgeDelta

__all__ = ["EdgeBuffer", "FlushResult"]


class FlushResult:
    """Handle on one submitted flush; resolves to its :class:`EdgeDelta`.

    ``ready`` is True once the deferred rebuild has executed.  ``delta``
    forces completion (a sequence point, like ``nvals``) and returns the
    exact diff the rebuild applied.
    """

    __slots__ = ("_matrix", "_delta")

    def __init__(self, matrix: Matrix, delta: EdgeDelta | None = None):
        self._matrix = matrix
        self._delta = delta

    @property
    def ready(self) -> bool:
        return self._delta is not None

    @property
    def delta(self) -> EdgeDelta:
        if self._delta is None:
            context.complete(self._matrix)
        assert self._delta is not None, "rebuild did not run"
        return self._delta


class EdgeBuffer:
    """COO append buffer over one matrix, flushed as a deferred rebuild.

    Within a buffer *and* against the existing content, the last write to
    an edge wins: ``set`` then ``remove`` deletes, ``remove`` then ``set``
    stores, two sets keep the newer value.  Removing an absent edge is a
    no-op (matching ``GrB_Matrix_removeElement`` service semantics).
    """

    def __init__(self, matrix: Matrix):
        if not isinstance(matrix, Matrix):
            raise InvalidValue("EdgeBuffer requires a Matrix")
        matrix._check_valid()
        if matrix.type.is_udt:
            raise InvalidValue("streaming ingest supports built-in types only")
        self._matrix = matrix
        self._keys: list[np.ndarray] = []
        self._vals: list[np.ndarray] = []
        self._dels: list[np.ndarray] = []
        self._pending = 0

    # ------------------------------------------------------------- appends
    @property
    def matrix(self) -> Matrix:
        return self._matrix

    @property
    def pending(self) -> int:
        """Edge writes buffered since the last flush."""
        return self._pending

    def set_edges(self, rows, cols, values) -> "EdgeBuffer":
        """Buffer ``A(i, j) = v`` for each (i, j, v); scalar v broadcasts."""
        m = self._matrix
        ri = check_indices(rows, m.nrows, "row")
        ci = check_indices(cols, m.ncols, "column")
        vals = np.asarray(values)
        if vals.ndim == 0:
            vals = np.broadcast_to(vals, (len(ri),))
        if len(ri) != len(ci) or len(vals) != len(ri):
            raise InvalidValue("set_edges arrays differ in length")
        if len(ri) == 0:
            return self
        self._keys.append(ri * np.int64(m.ncols) + ci)
        self._vals.append(vals.astype(m.type.np_dtype, copy=True))
        self._dels.append(np.zeros(len(ri), dtype=bool))
        self._pending += len(ri)
        return self

    def remove_edges(self, rows, cols) -> "EdgeBuffer":
        """Buffer deletion of each (i, j); absent edges are no-ops."""
        m = self._matrix
        ri = check_indices(rows, m.nrows, "row")
        ci = check_indices(cols, m.ncols, "column")
        if len(ri) != len(ci):
            raise InvalidValue("remove_edges arrays differ in length")
        if len(ri) == 0:
            return self
        self._keys.append(ri * np.int64(m.ncols) + ci)
        self._vals.append(np.zeros(len(ri), dtype=m.type.np_dtype))
        self._dels.append(np.ones(len(ri), dtype=bool))
        self._pending += len(ri)
        return self

    # --------------------------------------------------------------- flush
    def flush(self) -> FlushResult:
        """Submit the buffered batch as one deferred merge-rebuild.

        Returns immediately in nonblocking mode; the rebuild runs when
        the planner drains it (or when something reads the matrix).  The
        buffer is empty afterwards and may keep accumulating the next
        batch while this one is still deferred.
        """
        m = self._matrix
        m._check_valid()
        if self._pending == 0:
            return FlushResult(m, EdgeDelta.empty(m.nrows, m.ncols, 0))
        batch_keys = np.concatenate(self._keys)
        batch_vals = np.concatenate(self._vals)
        batch_dels = np.concatenate(self._dels)
        self._keys, self._vals, self._dels = [], [], []
        batch = self._pending
        self._pending = 0
        result = FlushResult(m)
        nrows, ncols = m.nrows, m.ncols

        def kernel(_mask_view):
            with spans.span("stream.rebuild", "kernel"):
                old_keys, old_values = m._content()
                keys, vals, delta = _merge_batch(
                    old_keys, old_values,
                    batch_keys, batch_vals, batch_dels,
                    nrows, ncols,
                )
                result._delta = delta
                reg = metrics.registry
                reg.inc("stream.rebuild.count")
                reg.observe("stream.ingest.batch_size", batch)
                # amortization: merged nnz processed per buffered edge —
                # the win over per-edge set_element, which pays this per write
                reg.observe(
                    "stream.rebuild.amortization", len(keys) / max(batch, 1)
                )
                spans.annotate(
                    batch=batch, nnz_out=len(keys), changed=delta.size
                )
            return keys, vals

        submit_standard_op(
            m, None, None, None,
            label="stream.rebuild",
            t_type=m.type,
            kernel=kernel,
            inputs=(m,),
        )
        return result


def _merge_batch(
    old_keys: np.ndarray,
    old_values: np.ndarray,
    batch_keys: np.ndarray,
    batch_vals: np.ndarray,
    batch_dels: np.ndarray,
    nrows: int,
    ncols: int,
) -> tuple[np.ndarray, np.ndarray, EdgeDelta]:
    """Last-writer-wins merge of a COO batch into sorted flat-key content.

    Returns the merged (keys, values) plus the exact :class:`EdgeDelta`
    of materially changed edges.
    """
    # dedup the batch: stable sort keeps append order within a key, the
    # last occurrence is the surviving write
    order = np.argsort(batch_keys, kind="stable")
    bk = batch_keys[order]
    bv = batch_vals[order]
    bd = batch_dels[order]
    if len(bk):
        last = np.empty(len(bk), dtype=bool)
        np.not_equal(bk[1:], bk[:-1], out=last[:-1])
        last[-1] = True
        bk, bv, bd = bk[last], bv[last], bd[last]

    # merge with the existing content; batch entries follow old entries,
    # so the stable sort's last occurrence per key is the batch's write
    all_keys = np.concatenate([old_keys, bk])
    all_vals = np.concatenate([old_values, bv])
    all_dels = np.concatenate([np.zeros(len(old_keys), dtype=bool), bd])
    order = np.argsort(all_keys, kind="stable")
    k = all_keys[order]
    v = all_vals[order]
    dl = all_dels[order]
    if len(k):
        last = np.empty(len(k), dtype=bool)
        np.not_equal(k[1:], k[:-1], out=last[:-1])
        last[-1] = True
        k, v, dl = k[last], v[last], dl[last]
    keep = ~dl
    new_keys, new_vals = k[keep], v[keep]

    # the delta: each surviving batch write against the old content
    old_pos = np.searchsorted(old_keys, bk)
    in_bounds = old_pos < len(old_keys)
    old_has = np.zeros(len(bk), dtype=bool)
    if len(old_keys):
        hit = in_bounds.copy()
        hit[in_bounds] = old_keys[old_pos[in_bounds]] == bk[in_bounds]
        old_has = hit
    old_v = np.zeros(len(bk), dtype=old_values.dtype)
    if old_has.any():
        old_v[old_has] = old_values[old_pos[old_has]]
    new_has = ~bd
    # no-ops: deleting an absent edge, or rewriting an unchanged value
    noop = (~old_has & ~new_has) | (old_has & new_has & (old_v == bv))
    sel = ~noop
    delta = EdgeDelta(
        nrows=nrows,
        ncols=ncols,
        rows=bk[sel] // np.int64(ncols),
        cols=bk[sel] % np.int64(ncols),
        old_mask=old_has[sel],
        old_values=old_v[sel],
        new_mask=new_has[sel],
        new_values=bv[sel],
        base_nnz=len(old_keys),
    )
    return new_keys, new_vals, delta
