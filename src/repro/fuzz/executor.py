"""Differential executor: one program, three-plus ways.

Each fuzz program runs against

1. the spec-literal **reference oracle** (:mod:`repro.reference` — dict
   content, pointwise pipeline),
2. the optimized backend in **blocking** mode, and
3. the optimized backend in **nonblocking** mode under the drain-time
   planner, across pass-ablation configurations (planner off, each pass
   individually disabled, each pass alone, or — exhaustively — all 16
   on/off combinations of dead-op/fusion/CSE/parallel).

All runs rebuild the program's collections from the declarative form, so
no state leaks between backends; results are compared with dtype-aware
tolerance (exact for bool/integer/UDT values, relative tolerance for
floats whose reductions may legally reassociate).  After every optimized
run the structural invariants of each collection are verified with
:func:`repro.validation.check_all`, so a kernel that produces the right
values in a corrupt representation still fails.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from itertools import product
from typing import Any

__all__ = [
    "ExecMode",
    "PROCESSES",
    "CODEGEN",
    "default_modes",
    "ablation_modes",
    "exhaustive_modes",
    "codegen_modes",
    "Snapshot",
    "DivergenceReport",
    "run_reference",
    "run_optimized",
    "run_differential",
    "run_service_cached",
    "check_memo_conformance",
    "check_error_conformance",
    "build_decl",
    "dispatch_call",
]


@dataclass(frozen=True)
class ExecMode:
    """One way to run a program on the optimized backend."""

    name: str
    nonblocking: bool = False
    #: planner knob overrides applied before the run (nonblocking only);
    #: stored as a sorted tuple of (knob, value) so the mode is hashable
    planner: tuple = ()
    #: execution backend for the run ("serial" | "threads" | "processes");
    #: "processes" drops the parallel threshold to 0 and forces a small
    #: 2-worker / (2, 2)-grid pool so every shippable op actually shards
    backend: str = "threads"
    #: kernel backend for the run ("interpreter" | "codegen")
    kernel_backend: str = "interpreter"

    def knobs(self) -> dict:
        return dict(self.planner)


def _nb(name: str, **knobs: bool) -> ExecMode:
    return ExecMode(name, nonblocking=True, planner=tuple(sorted(knobs.items())))


BLOCKING = ExecMode("blocking")

#: nonblocking under the full planner with the sharded process backend —
#: the differential pair that proves blocking vs multi-process bit-identity
PROCESSES = ExecMode("nb-processes", nonblocking=True, backend="processes")

#: nonblocking under the full planner with the codegen kernel backend —
#: every eligible fused chain runs through a generated kernel
CODEGEN = ExecMode(
    "nb-codegen", nonblocking=True, kernel_backend="codegen"
)


def ablation_modes() -> list[ExecMode]:
    """The curated planner-pass ablation lattice (fast enough for CI)."""
    return [
        _nb("nb-planner"),                       # all passes on (defaults)
        _nb("nb-planner-off", enabled=False),    # drain in program order
        _nb("nb-no-deadop", dead_op=False),
        _nb("nb-no-fusion", fusion=False),
        _nb("nb-no-cse", cse=False),
        _nb("nb-no-parallel", parallel=False),
        _nb("nb-passes-off", dead_op=False, fusion=False, cse=False,
            parallel=False),                     # DAG scheduler alone
    ]


def default_modes() -> list[ExecMode]:
    return [BLOCKING] + ablation_modes()


def codegen_modes() -> list[ExecMode]:
    """Every ablation mode re-run with generated kernels, plus blocking.

    Pass ablations matter here: fusion-off modes prove the codegen backend
    is inert when no chains form, and planner-off modes prove it never
    leaks into the program-order path.
    """
    import dataclasses

    return [BLOCKING] + [
        dataclasses.replace(
            m, name=m.name.replace("nb-", "nb-cg-"), kernel_backend="codegen"
        )
        for m in ablation_modes()
    ]


def exhaustive_modes() -> list[ExecMode]:
    """Blocking, planner-off, and all 16 pass on/off combinations."""
    modes = [BLOCKING, _nb("nb-planner-off", enabled=False)]
    for dead, fus, cse, par in product((False, True), repeat=4):
        tag = "".join(
            c for c, on in zip("dfcp", (dead, fus, cse, par)) if on
        ) or "none"
        modes.append(
            _nb(f"nb-{tag}", dead_op=dead, fusion=fus, cse=cse, parallel=par)
        )
    return modes


# --------------------------------------------------------------------------
# Operator environment (fresh per run: UDT domains compare by identity)
# --------------------------------------------------------------------------

class Env:
    """Resolves dtype and operator tokens into live objects for one run."""

    def __init__(self):
        from ..algebra.predefined import powerset_semiring, powerset_type
        from ..ops.base import UnaryOp

        self.pset = powerset_type()
        self.pset_sr = powerset_semiring(domain=self.pset)
        self.pset_union = self.pset_sr.add_op
        self.pset_intersect = self.pset_sr.mul
        self.pset_monoid = self.pset_sr.add
        self.pset_tag = UnaryOp(
            "PSET_TAG", self.pset, self.pset,
            scalar_fn=lambda s: s | frozenset((9,)),
        )

    def dtype(self, token: str):
        from ..types import lookup_type

        return self.pset if token == "PSET" else lookup_type(token)

    def semiring(self, token: str):
        from ..algebra.predefined import MONOID_REGISTRY, SEMIRING_REGISTRY
        from ..ops.binary import BINARY_REGISTRY

        if token == "PSET_SR":
            return self.pset_sr
        if token in SEMIRING_REGISTRY:
            return SEMIRING_REGISTRY[token]
        # error-model programs hand a non-semiring operator here on purpose;
        # resolve it so the *library* gets to reject the object
        return MONOID_REGISTRY.get(token) or BINARY_REGISTRY[token]

    def binop(self, token: str):
        from ..ops.binary import BINARY_REGISTRY

        if token == "PSET_UNION":
            return self.pset_union
        if token == "PSET_INTERSECT":
            return self.pset_intersect
        return BINARY_REGISTRY[token]

    def monoid(self, token: str):
        from ..algebra.predefined import MONOID_REGISTRY

        return self.pset_monoid if token == "PSET_MONOID" else MONOID_REGISTRY[token]

    def unary(self, token: str):
        from ..ops.unary import UNARY_REGISTRY

        return self.pset_tag if token == "PSET_TAG" else UNARY_REGISTRY[token]

    def iuop(self, token: str):
        from ..ops.index_unary import INDEXUNARY_REGISTRY

        return INDEXUNARY_REGISTRY[token]

    def accum(self, token: str | None):
        return None if token is None else self.binop(token)

    def value(self, dtype_token: str, raw):
        """Decode a JSON-carried entry value into the domain's scalar."""
        if dtype_token == "PSET":
            return frozenset(raw)
        return self.dtype(dtype_token).np_dtype.type(raw)


# --------------------------------------------------------------------------
# Snapshots and dtype-aware comparison
# --------------------------------------------------------------------------

@dataclass
class Snapshot:
    """Post-run content of every declared object, plus scalar results.

    When the run was made under :func:`repro.obs.capture`
    (``run_optimized(..., obs_capture=True)``) *counters* holds the
    capture window's metric deltas (kernel invocations, realized flops,
    write counts, …) so metrics-mode conformance can assert that the
    instrumented run still computes the same thing — and, for modes that
    execute the same physical schedule, that it does the same *work*.
    """

    objects: dict[str, dict] = field(default_factory=dict)
    scalars: list[Any] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)


_FLOAT_TOL = {"FP32": (1e-4, 1e-6), "FP64": (1e-9, 1e-12)}


def _norm(v):
    if isinstance(v, frozenset):
        return v
    item = getattr(v, "item", None)
    return item() if callable(item) else v


def values_equal(a, b, dtype_token: str) -> bool:
    a, b = _norm(a), _norm(b)
    if isinstance(a, frozenset) or isinstance(b, frozenset):
        return a == b
    if dtype_token in _FLOAT_TOL:
        rtol, atol = _FLOAT_TOL[dtype_token]
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        if math.isinf(a) or math.isinf(b):
            return a == b
        return abs(a - b) <= atol + rtol * max(abs(a), abs(b))
    return bool(a == b)


def _diff_contents(name, dtype_token, ref: dict, got: dict) -> str | None:
    rk, gk = set(ref), set(got)
    if rk != gk:
        return (
            f"{name}: pattern differs — only-reference={sorted(rk - gk)!r} "
            f"only-optimized={sorted(gk - rk)!r}"
        )
    for k in ref:
        if not values_equal(ref[k], got[k], dtype_token):
            return (
                f"{name}: value at {k!r} differs — "
                f"reference={_norm(ref[k])!r} optimized={_norm(got[k])!r}"
            )
    return None


def compare_snapshots(program, ref: Snapshot, got: Snapshot) -> list[str]:
    """Dtype-aware comparison; returns human-readable mismatch strings."""
    out: list[str] = []
    for d in program.decls:
        r = ref.objects.get(d.name, {})
        g = got.objects.get(d.name, {})
        msg = _diff_contents(d.name, d.dtype, r, g)
        if msg:
            out.append(msg)
    if len(ref.scalars) != len(got.scalars):
        out.append(
            f"scalar result count differs: {len(ref.scalars)} vs {len(got.scalars)}"
        )
    else:
        for i, (a, b) in enumerate(zip(ref.scalars, got.scalars)):
            dtype = "FP64" if isinstance(_norm(a), float) else "exact"
            if not values_equal(a, b, dtype):
                out.append(
                    f"scalar #{i}: reference={_norm(a)!r} optimized={_norm(b)!r}"
                )
    return out


# --------------------------------------------------------------------------
# Reference-oracle execution
# --------------------------------------------------------------------------

def _ref_flags(call) -> dict:
    return dict(
        replace=call.flag("replace"),
        mask_comp=call.flag("mask_comp"),
        mask_struct=call.flag("mask_struct"),
    )


def run_reference(program) -> Snapshot:
    """Run a program on the dict-based spec-literal oracle."""
    from ..reference import ref_impl as R

    env = Env()
    objs: dict[str, Any] = {}
    for d in program.decls:
        domain = env.dtype(d.dtype)
        if d.kind == "matrix":
            content = {
                (int(i), int(j)): env.value(d.dtype, v) for i, j, v in d.entries
            }
            objs[d.name] = R.RefMatrix(domain, d.shape[0], d.shape[1], content)
        else:
            content = {int(i): env.value(d.dtype, v) for i, v in d.entries}
            objs[d.name] = R.RefVector(domain, d.shape[0], content)

    scalars: list[Any] = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # wrap-around overflow parity noise
        for call in program.calls:
            a = call.args
            mask = objs.get(a.get("mask")) if a.get("mask") else None
            accum = env.accum(a.get("accum"))
            fl = _ref_flags(call)
            k = call.kind
            if k == "wait":
                continue
            C = objs.get(call.out) if call.out else None
            if k == "mxm":
                R.ref_mxm(C, mask, accum, env.semiring(a["semiring"]),
                          objs[a["a"]], objs[a["b"]], **fl,
                          tran0=call.flag("tran0"), tran1=call.flag("tran1"))
            elif k == "mxv":
                R.ref_mxv(C, mask, accum, env.semiring(a["semiring"]),
                          objs[a["a"]], objs[a["u"]], **fl,
                          tran0=call.flag("tran0"))
            elif k == "vxm":
                R.ref_vxm(C, mask, accum, env.semiring(a["semiring"]),
                          objs[a["u"]], objs[a["a"]], **fl,
                          tran1=call.flag("tran1"))
            elif k in ("ewise_add", "ewise_mult"):
                fn = R.ref_ewise_add if k == "ewise_add" else R.ref_ewise_mult
                fn(C, mask, accum, env.binop(a["binop"]),
                   objs[a["a"]], objs[a["b"]], **fl,
                   tran0=call.flag("tran0"), tran1=call.flag("tran1"))
            elif k == "apply":
                R.ref_apply(C, mask, accum, env.unary(a["unary"]),
                            objs[a["a"]], **fl, tran0=call.flag("tran0"))
            elif k == "reduce":
                R.ref_reduce_rows(C, mask, accum, env.monoid(a["monoid"]),
                                  objs[a["a"]], **fl, tran0=call.flag("tran0"))
            elif k == "reduce_scalar":
                scalars.append(
                    R.ref_reduce_scalar(env.monoid(a["monoid"]), objs[a["a"]])
                )
            elif k == "transpose":
                R.ref_transpose(C, mask, accum, objs[a["a"]], **fl,
                                tran0=call.flag("tran0"))
            elif k == "extract_matrix":
                R.ref_extract_matrix(C, mask, accum, objs[a["a"]],
                                     a["rows"], a["cols"], **fl,
                                     tran0=call.flag("tran0"))
            elif k == "extract_vector":
                R.ref_extract_vector(C, mask, accum, objs[a["u"]],
                                     a["indices"], **fl)
            elif k == "assign_matrix":
                R.ref_assign_matrix(C, mask, accum, objs[a["a"]],
                                    a["rows"], a["cols"], **fl,
                                    tran0=call.flag("tran0"))
            elif k == "assign_vector":
                R.ref_assign_vector(C, mask, accum, objs[a["u"]],
                                    a["indices"], **fl)
            elif k == "assign_scalar_matrix":
                value = env.value(program.decl(call.out).dtype, a["value"])
                R.ref_assign_scalar_matrix(C, mask, accum, value,
                                           a["rows"], a["cols"], **fl)
            elif k == "assign_scalar_vector":
                value = env.value(program.decl(call.out).dtype, a["value"])
                R.ref_assign_scalar_vector(C, mask, accum, value,
                                           a["indices"], **fl)
            elif k == "select":
                R.ref_select(C, mask, accum, env.iuop(a["iuop"]),
                             objs[a["a"]], a["thunk"], **fl,
                             tran0=call.flag("tran0"))
            elif k == "kronecker":
                R.ref_kronecker(C, mask, accum, env.binop(a["binop"]),
                                objs[a["a"]], objs[a["b"]], **fl,
                                tran0=call.flag("tran0"), tran1=call.flag("tran1"))
            else:  # pragma: no cover - generator/executor skew
                raise ValueError(f"reference executor: unknown op {k!r}")

    snap = Snapshot(scalars=scalars)
    for d in program.decls:
        snap.objects[d.name] = dict(objs[d.name].content)
    return snap


# --------------------------------------------------------------------------
# Optimized-backend execution
# --------------------------------------------------------------------------

def _build_grb(decl, env):
    import repro as grb

    domain = env.dtype(decl.dtype)
    if decl.kind == "matrix":
        M = grb.Matrix(domain, decl.shape[0], decl.shape[1])
        if decl.entries:
            rows = [int(e[0]) for e in decl.entries]
            cols = [int(e[1]) for e in decl.entries]
            vals = [env.value(decl.dtype, e[2]) for e in decl.entries]
            M.build(rows, cols, vals)
        return M
    v = grb.Vector(domain, decl.shape[0])
    if decl.entries:
        idx = [int(e[0]) for e in decl.entries]
        vals = [env.value(decl.dtype, e[1]) for e in decl.entries]
        v.build(idx, vals)
    return v


def _descriptor(call):
    from .. import descriptor as D

    d = None

    def setd(field, value):
        nonlocal d
        if d is None:
            d = D.Descriptor()
        d.set(field, value)

    if call.flag("replace"):
        setd(D.OUTP, D.REPLACE)
    if call.flag("mask_comp"):
        setd(D.MASK, D.SCMP)
    if call.flag("mask_struct"):
        setd(D.MASK, D.STRUCTURE)
    if call.flag("tran0"):
        setd(D.INP0, D.TRAN)
    if call.flag("tran1"):
        setd(D.INP1, D.TRAN)
    return d


def _dispatch_optimized(call, objs, env, scalars, dtypes) -> None:
    from .. import context, operations as ops

    a = call.args
    k = call.kind
    if k == "wait":
        context.wait()
        return
    mask = objs.get(a.get("mask")) if a.get("mask") else None
    accum = env.accum(a.get("accum"))
    desc = _descriptor(call)
    C = objs.get(call.out) if call.out else None
    if k == "mxm":
        ops.mxm(C, mask, accum, env.semiring(a["semiring"]),
                objs[a["a"]], objs[a["b"]], desc)
    elif k == "mxv":
        ops.mxv(C, mask, accum, env.semiring(a["semiring"]),
                objs[a["a"]], objs[a["u"]], desc)
    elif k == "vxm":
        ops.vxm(C, mask, accum, env.semiring(a["semiring"]),
                objs[a["u"]], objs[a["a"]], desc)
    elif k == "ewise_add":
        ops.ewise_add(C, mask, accum, env.binop(a["binop"]),
                      objs[a["a"]], objs[a["b"]], desc)
    elif k == "ewise_mult":
        ops.ewise_mult(C, mask, accum, env.binop(a["binop"]),
                       objs[a["a"]], objs[a["b"]], desc)
    elif k == "apply":
        ops.apply(C, mask, accum, env.unary(a["unary"]), objs[a["a"]], desc)
    elif k == "reduce":
        ops.reduce_to_vector(C, mask, accum, env.monoid(a["monoid"]),
                             objs[a["a"]], desc)
    elif k == "reduce_scalar":
        scalars.append(
            ops.reduce_to_scalar(env.monoid(a["monoid"]), objs[a["a"]])
        )
    elif k == "transpose":
        ops.transpose(C, mask, accum, objs[a["a"]], desc)
    elif k == "extract_matrix":
        ops.matrix_extract(C, mask, accum, objs[a["a"]],
                           a["rows"], a["cols"], desc)
    elif k == "extract_vector":
        ops.vector_extract(C, mask, accum, objs[a["u"]], a["indices"], desc)
    elif k == "assign_matrix":
        ops.matrix_assign(C, mask, accum, objs[a["a"]],
                          a["rows"], a["cols"], desc)
    elif k == "assign_vector":
        ops.vector_assign(C, mask, accum, objs[a["u"]], a["indices"], desc)
    elif k == "assign_scalar_matrix":
        value = env.value(dtypes[call.out], a["value"])
        ops.matrix_assign_scalar(C, mask, accum, value,
                                 a["rows"], a["cols"], desc)
    elif k == "assign_scalar_vector":
        value = env.value(dtypes[call.out], a["value"])
        ops.vector_assign_scalar(C, mask, accum, value, a["indices"], desc)
    elif k == "select":
        ops.select(C, mask, accum, env.iuop(a["iuop"]),
                   objs[a["a"]], a["thunk"], desc)
    elif k == "kronecker":
        ops.kronecker(C, mask, accum, env.binop(a["binop"]),
                      objs[a["a"]], objs[a["b"]], desc)
    else:  # pragma: no cover - generator/executor skew
        raise ValueError(f"optimized executor: unknown op {k!r}")


# Public aliases: the multi-tenant service executes client-submitted
# programs through the exact same declarative path the fuzzer uses, so the
# two surfaces cannot drift apart.
build_decl = _build_grb
dispatch_call = _dispatch_optimized


def _snapshot_obj(decl, obj) -> dict:
    if decl.kind == "matrix":
        rows, cols, vals = obj.extract_tuples()
        return {(int(i), int(j)): v for i, j, v in zip(rows, cols, vals)}
    idx, vals = obj.extract_tuples()
    return {int(i): v for i, v in zip(idx, vals)}


def run_optimized(program, mode: ExecMode, *, obs_capture: bool = False) -> Snapshot:
    """Run a program on the optimized backend under *mode*.

    Resets the library context around the run (the fuzzer owns the
    process), applies the mode's planner knobs, completes the sequence,
    validates every collection's structural invariants, and snapshots.

    With ``obs_capture=True`` the program's calls (and the final
    ``wait``) execute under :func:`repro.obs.capture`; the capture
    window's counter deltas land in ``Snapshot.counters``.  Object
    snapshotting and validation happen *outside* the window so they
    never perturb the counters.
    """
    from .. import context, obs, parallel, validation
    from ..execution import planner

    context._reset()
    prior = (
        parallel.get_backend(),
        parallel.parallel_threshold(),
        parallel.shard_workers(),
        parallel.shard_grid(),
        parallel.get_kernel_backend(),
    )
    try:
        if mode.nonblocking:
            context.init(context.Mode.NONBLOCKING)
        knobs = mode.knobs()
        if knobs:
            planner.configure(**knobs)
        if mode.backend != "threads":
            parallel.set_backend(mode.backend)
        if mode.kernel_backend != "interpreter":
            parallel.set_kernel_backend(mode.kernel_backend)
        if mode.backend == "processes":
            # make sharding bite on fuzz-sized programs: no threshold, a
            # 2-worker pool, and a forced 2×2 grid so the tile-merge path
            # (exact domains) is exercised, not just stripes
            parallel.set_parallel_threshold(0)
            parallel.set_shard_workers(2)
            parallel.set_shard_grid((2, 2))
        env = Env()
        dtypes = {d.name: d.dtype for d in program.decls}
        scalars: list[Any] = []
        counters: dict[str, int] = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            if obs_capture:
                # builds go inside the window too: blocking runs them
                # eagerly, nonblocking drains them at wait() — counting
                # both keeps the counters mode-comparable
                with obs.capture() as cap:
                    objs = {d.name: _build_grb(d, env) for d in program.decls}
                    for call in program.calls:
                        _dispatch_optimized(call, objs, env, scalars, dtypes)
                    context.wait()
                counters = dict(cap.counters)
            else:
                objs = {d.name: _build_grb(d, env) for d in program.decls}
                for call in program.calls:
                    _dispatch_optimized(call, objs, env, scalars, dtypes)
                context.wait()
            validation.check_all(objs.values())
            snap = Snapshot(scalars=scalars, counters=counters)
            for d in program.decls:
                snap.objects[d.name] = _snapshot_obj(d, objs[d.name])
        return snap
    finally:
        parallel.set_backend(prior[0])
        parallel.set_parallel_threshold(prior[1])
        parallel.set_shard_workers(prior[2])
        parallel.set_shard_grid(prior[3])
        parallel.set_kernel_backend(prior[4])
        context._reset()


# --------------------------------------------------------------------------
# Differential driver
# --------------------------------------------------------------------------

@dataclass
class DivergenceReport:
    """Everything needed to reproduce and triage one oracle divergence."""

    program: Any
    failures: list[tuple[str, str]]  # (mode name, detail)

    def modes(self) -> list[str]:
        return [m for m, _ in self.failures]

    def signature(self) -> frozenset[str]:
        """Mode-independent failure categories (for shrink-move honesty).

        A shrink move can turn a value divergence into an API error (e.g.
        clearing a ``tran`` bit breaks the program's shapes, which the
        spec-literal oracle does not validate); comparing signatures lets
        the shrinker reject candidates that fail for a *new* reason.
        """
        cats = set()
        for _, detail in self.failures:
            if detail.startswith("raised "):
                cats.add("raised:" + detail.split()[1].rstrip(":"))
            elif "pattern differs" in detail:
                cats.add("pattern")
            elif detail.startswith("scalar"):
                cats.add("scalar")
            else:
                cats.add("value")
        return frozenset(cats)

    def __str__(self) -> str:
        lines = [f"divergence in {self.program!r}:"]
        for mode, detail in self.failures:
            lines.append(f"  [{mode}] {detail}")
        return "\n".join(lines)


def run_differential(program, modes=None) -> DivergenceReport | None:
    """Run *program* on the oracle and every mode; None means conformant."""
    modes = default_modes() if modes is None else modes
    ref = run_reference(program)
    failures: list[tuple[str, str]] = []
    for mode in modes:
        try:
            got = run_optimized(program, mode)
        except Exception as exc:  # any escape from a valid program diverges
            failures.append((mode.name, f"raised {type(exc).__name__}: {exc}"))
            continue
        for msg in compare_snapshots(program, ref, got):
            failures.append((mode.name, msg))
    return DivergenceReport(program, failures) if failures else None


# --------------------------------------------------------------------------
# Cached-service conformance (the memo differential pair)
# --------------------------------------------------------------------------

def run_service_cached(program, service) -> tuple[Snapshot, str | None]:
    """Run *program* through the multi-tenant service as one ``program``
    request against a fresh session, fetching every declared object.

    Returns ``(snapshot, cache_status)`` where *cache_status* is the
    request's ``timing["cache"]`` field (``"hit"`` / ``"miss"`` /
    ``"bypass"``, or None when the service runs without a cache).
    """
    payload = {
        "declare": [d.to_dict() for d in program.decls],
        "calls": [c.to_dict() for c in program.calls],
        "fetch": [d.name for d in program.decls],
    }
    name = service.open_session()
    resp = service.request(name, "program", payload, timing=True)
    env = Env()
    snap = Snapshot(scalars=list(resp.get("scalars", [])))
    for d in program.decls:
        c = resp["fetched"][d.name]
        if d.kind == "matrix":
            snap.objects[d.name] = {
                (int(i), int(j)): env.value(d.dtype, v)
                for i, j, v in zip(c["rows"], c["cols"], c["values"])
            }
        else:
            snap.objects[d.name] = {
                int(i): env.value(d.dtype, v)
                for i, v in zip(c["indices"], c["values"])
            }
    return snap, resp.get("timing", {}).get("cache")


def check_memo_conformance(program, service) -> str | None:
    """The cache-consistency differential: reference oracle vs the cached
    service, cold (miss/bypass) *and* warm (hit, from a different session).

    A cacheable program must produce identical results on both service
    runs, the warm run must actually hit, and a bypass decision must be
    deterministic.  None means conformant.
    """
    ref = run_reference(program)

    def _normalize(snap: Snapshot) -> Snapshot:
        # the wire response JSON-ifies PSET frozensets into sorted lists;
        # fold them back using the reference scalars as the type guide
        if len(snap.scalars) == len(ref.scalars):
            snap.scalars = [
                frozenset(s)
                if isinstance(r, frozenset) and isinstance(s, list) else s
                for r, s in zip(ref.scalars, snap.scalars)
            ]
        return snap

    try:
        cold, st_cold = run_service_cached(program, service)
    except Exception as exc:
        return f"cold service run raised {type(exc).__name__}: {exc}"
    try:
        warm, st_warm = run_service_cached(program, service)
    except Exception as exc:
        return f"warm service run raised {type(exc).__name__}: {exc}"
    msgs = compare_snapshots(program, ref, _normalize(cold))
    if msgs:
        return f"cold ({st_cold}) vs reference: " + "; ".join(msgs)
    msgs = compare_snapshots(program, ref, _normalize(warm))
    if msgs:
        return f"warm ({st_warm}) vs reference: " + "; ".join(msgs)
    if st_cold == "miss" and st_warm != "hit":
        return (
            "cacheable program missed on identical resubmission "
            f"(cold={st_cold!r}, warm={st_warm!r})"
        )
    if st_cold == "bypass" and st_warm != "bypass":
        return f"bypass decision not deterministic ({st_cold!r} then {st_warm!r})"
    return None


# --------------------------------------------------------------------------
# Error-model conformance (paper section V)
# --------------------------------------------------------------------------

def _error_outcome(program, nonblocking: bool) -> tuple[str, Any, str | None]:
    """Run the program, expecting its final call to raise an ApiError.

    Returns ``(error class name, GrB_Info, complaint-or-None)``.
    """
    from .. import context
    from ..info import GraphBLASError, info_of

    context._reset()
    try:
        if nonblocking:
            context.init(context.Mode.NONBLOCKING)
        env = Env()
        objs = {d.name: _build_grb(d, env) for d in program.decls}
        dtypes = {d.name: d.dtype for d in program.decls}
        scalars: list[Any] = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for call in program.calls[:-1]:
                try:
                    _dispatch_optimized(call, objs, env, scalars, dtypes)
                except GraphBLASError as exc:
                    return type(exc).__name__, info_of(exc), (
                        f"valid prefix call {call.kind} raised {exc!r}"
                    )
            try:
                _dispatch_optimized(program.calls[-1], objs, env, scalars, dtypes)
            except GraphBLASError as exc:
                return type(exc).__name__, info_of(exc), None
        return "<none>", None, "invalid final call did not raise"
    finally:
        context._reset()


def check_error_conformance(program) -> str | None:
    """API errors must be identical — class and ``GrB_Info`` code, raised at
    call time — in blocking and nonblocking mode.  None means conformant."""
    b_cls, b_info, b_complaint = _error_outcome(program, nonblocking=False)
    n_cls, n_info, n_complaint = _error_outcome(program, nonblocking=True)
    if b_complaint:
        return f"blocking: {b_complaint}"
    if n_complaint:
        return f"nonblocking: {n_complaint}"
    if (b_cls, b_info) != (n_cls, n_info):
        return (
            f"error mismatch: blocking raised {b_cls}/{b_info!r}, "
            f"nonblocking raised {n_cls}/{n_info!r}"
        )
    return None
