"""Failing-program minimization (delta debugging over fuzz programs).

Given a program on which some *oracle predicate* holds (it diverges from
the reference, or raises the wrong error), the shrinker searches for a
smaller program on which it still holds:

1. **op deletion** — ddmin-style removal of whole calls, from large chunks
   down to single calls;
2. **call simplification** — drop the mask, the accumulator, and each
   descriptor bit of the surviving calls;
3. **operand simplification** — shrink declared content (fewer stored
   entries, then simpler values) and prune declarations nothing references.

Each accepted candidate restarts the pass loop, so the result is
1-minimal with respect to all three move kinds.  The predicate is re-run
on every candidate, which keeps the shrinker honest about *which* failure
it is preserving: callers who care that the same divergence survives can
bake that check into the predicate itself.
"""

from __future__ import annotations

from typing import Callable

from .program import Program

__all__ = ["shrink", "shrink_report", "differential_predicate"]

#: value-simplification ladder: try each in order, keep the first that
#: still fails (0/1 are the high-value targets: identities & annihilators)
_SIMPLE_VALUES = (0, 1)


def _valid(program: Program) -> bool:
    """Cheap structural sanity so candidates don't waste oracle runs."""
    if not program.calls:
        return False
    names = {d.name for d in program.decls}
    return program.referenced_names() <= names


def _try(program: Program, predicate: Callable[[Program], bool]) -> bool:
    if not _valid(program):
        return False
    try:
        return bool(predicate(program))
    except Exception:
        # a candidate that crashes the harness is not a smaller witness
        return False


def _delete_ops(program: Program, predicate) -> Program | None:
    """One ddmin sweep over the call list; None if nothing was removable."""
    n = len(program.calls)
    chunk = max(n // 2, 1)
    while chunk >= 1:
        start = 0
        while start < len(program.calls):
            cand = program.copy()
            del cand.calls[start : start + chunk]
            if _try(cand, predicate):
                return cand
            start += chunk
        chunk //= 2
    return None


#: call-level simplifications: (description, mutate(args) -> changed?)
def _drop_key(key):
    def mutate(args: dict) -> bool:
        if key in args:
            del args[key]
            return True
        return False

    return mutate


def _clear_flag(flag):
    def mutate(args: dict) -> bool:
        if args.get(flag):
            args[flag] = False
            return True
        return False

    return mutate


def _zero_thunk(args: dict) -> bool:
    if args.get("thunk") not in (None, 0):
        args["thunk"] = 0
        return True
    return False


_CALL_MOVES = (
    _drop_key("mask"),
    _drop_key("accum"),
    _clear_flag("replace"),
    _clear_flag("mask_comp"),
    _clear_flag("mask_struct"),
    _clear_flag("tran0"),
    _clear_flag("tran1"),
    _zero_thunk,
)


def _simplify_calls(program: Program, predicate) -> Program | None:
    for i in range(len(program.calls)):
        for move in _CALL_MOVES:
            cand = program.copy()
            args = cand.calls[i].args
            if not move(args):
                continue
            if not args.get("mask"):
                # flags are only meaningful alongside their mask
                for f in ("mask_comp", "mask_struct", "replace"):
                    args[f] = False
            if _try(cand, predicate):
                return cand
    return None


def _simplify_decls(program: Program, predicate) -> Program | None:
    # drop declarations nothing references (masks/operands freed above)
    used = program.referenced_names()
    if any(d.name not in used for d in program.decls):
        cand = program.copy()
        cand.decls = [d for d in cand.decls if d.name in used]
        if _try(cand, predicate):
            return cand
    for di, d in enumerate(program.decls):
        # fewer stored entries
        for ei in range(len(d.entries)):
            cand = program.copy()
            del cand.decls[di].entries[ei]
            if _try(cand, predicate):
                return cand
        # simpler values
        for ei, entry in enumerate(d.entries):
            current = entry[-1]
            for simple in _SIMPLE_VALUES:
                replacement = sorted(range(simple)) if d.dtype == "PSET" else simple
                if current == replacement:
                    continue
                cand = program.copy()
                cand.decls[di].entries[ei][-1] = replacement
                if _try(cand, predicate):
                    return cand
                break  # try only the first rung per pass; restart ladder later
    return None


_PASSES = (_delete_ops, _simplify_calls, _simplify_decls)


def shrink(
    program: Program,
    predicate: Callable[[Program], bool],
    *,
    max_rounds: int = 200,
) -> Program:
    """Minimize *program* while ``predicate(program)`` stays true.

    The input program must already satisfy the predicate; the result is
    the smallest fixpoint found within *max_rounds* accepted moves.
    """
    if not _try(program, predicate):
        raise ValueError("shrink() needs a program that fails the predicate")
    current = program.copy()
    for _ in range(max_rounds):
        for a_pass in _PASSES:
            cand = a_pass(current, predicate)
            if cand is not None:
                current = cand
                break  # restart the pass pipeline on the smaller witness
        else:
            break  # no pass made progress: 1-minimal
    return current


def differential_predicate(baseline_report, modes=None):
    """Predicate preserving the baseline report's failure *signature*.

    A candidate counts as a smaller witness only when it still diverges
    AND every failure category it shows was already present in the
    baseline — so a shrink move that merely breaks the program's shapes
    (an API error the oracle cannot observe) is rejected instead of
    hijacking the shrink.
    """
    from .executor import run_differential

    baseline = baseline_report.signature()

    def predicate(p) -> bool:
        rep = run_differential(p, modes)
        return rep is not None and rep.signature() <= baseline

    return predicate


def shrink_report(report, *, modes=None, max_rounds: int = 200):
    """Shrink a :class:`~repro.fuzz.executor.DivergenceReport`.

    Re-runs the full differential check on every candidate, requiring the
    original failure signature to survive.  Returns the minimized report.
    """
    from .executor import run_differential

    small = shrink(
        report.program,
        differential_predicate(report, modes),
        max_rounds=max_rounds,
    )
    final = run_differential(small, modes)
    assert final is not None  # predicate guaranteed this
    return final
