"""Differential conformance fuzzer (paper Tables II–VI as an executable
contract).

Random GraphBLAS programs are generated over the full method surface —
every operation, mask kind, accumulator, descriptor bit, built-in domain
and the power-set UDT — and each program is run against the spec-literal
reference oracle (:mod:`repro.reference`) and the optimized backend in
blocking mode and in nonblocking mode under every planner-pass ablation.
Any disagreement is shrunk to a minimal witness and frozen as a pytest
regression.  See ``docs/fuzzing.md`` for the quickstart and
``python -m repro.fuzz --help`` for the CLI.
"""

from .coverage import SpecCoverage, measure_corpus
from .executor import (
    DivergenceReport,
    ExecMode,
    check_error_conformance,
    default_modes,
    exhaustive_modes,
    run_differential,
    run_optimized,
    run_reference,
)
from .generator import (
    ERROR_KINDS,
    GenConfig,
    generate_corpus,
    generate_error_program,
    generate_program,
)
from .program import CANONICAL_OPS, Call, Decl, Program
from .shrink import shrink, shrink_report
from .corpus import emit_regression, load_corpus, save_corpus

__all__ = [
    "CANONICAL_OPS",
    "Call",
    "Decl",
    "Program",
    "GenConfig",
    "generate_program",
    "generate_corpus",
    "generate_error_program",
    "ERROR_KINDS",
    "ExecMode",
    "default_modes",
    "exhaustive_modes",
    "run_reference",
    "run_optimized",
    "run_differential",
    "check_error_conformance",
    "DivergenceReport",
    "shrink",
    "shrink_report",
    "SpecCoverage",
    "measure_corpus",
    "save_corpus",
    "load_corpus",
    "emit_regression",
]
