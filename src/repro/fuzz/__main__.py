"""CLI driver: ``python -m repro.fuzz --seed 0 --n 500``.

Generates a corpus, runs every program differentially (reference oracle
vs optimized blocking vs nonblocking under planner-pass ablations),
fuzzes the error model for conformance, prints the spec-coverage table,
and exits nonzero if any divergence survives.  Divergences are shrunk
and frozen into ``tests/regressions/`` before the run fails, so a red
CI job always leaves a replayable witness behind.

Environment:

``REPRO_FUZZ_BUDGET``
    Overrides ``--n`` (and scales ``--errors``) — the CI smoke job runs
    with a small fixed budget, the nightly profile raises it.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import time
from pathlib import Path

from .corpus import emit_regression, load_corpus, save_corpus
from .coverage import SpecCoverage
from .executor import (
    PROCESSES,
    check_error_conformance,
    check_memo_conformance,
    codegen_modes,
    default_modes,
    exhaustive_modes,
    run_differential,
)
from .generator import generate_corpus, generate_error_program
from .program import Program
from .shrink import shrink_report


def _parse_args(argv):
    p = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential conformance fuzzer (optimized vs oracle)",
    )
    p.add_argument("--seed", type=int, default=0, help="corpus base seed")
    p.add_argument("--n", type=int, default=500,
                   help="number of programs (REPRO_FUZZ_BUDGET overrides)")
    p.add_argument("--errors", type=int, default=None,
                   help="error-model programs to fuzz (default: n // 5)")
    p.add_argument("--exhaustive", action="store_true",
                   help="all 16 planner-pass combinations (slower)")
    p.add_argument("--processes", action="store_true",
                   help="add the sharded multi-process backend to the "
                        "differential pair (2-worker pool, 2x2 grid)")
    p.add_argument("--codegen", action="store_true",
                   help="run every planner ablation again under the codegen "
                        "kernel backend (generated fused kernels must stay "
                        "bit-identical to the interpreter)")
    p.add_argument("--memo", action="store_true",
                   help="add the cached multi-tenant service to the "
                        "differential pair: every program runs cold and "
                        "warm through one cache-enabled Service and must "
                        "match the oracle bit-for-bit")
    p.add_argument("--streaming", action="store_true",
                   help="fuzz the streaming subsystem: random edge-delta "
                        "schedules through EdgeBuffer, incremental "
                        "pagerank/bfs/components handles diffed against "
                        "recompute-from-scratch in both execution modes")
    p.add_argument("--replay", metavar="PATH",
                   help="replay programs from a corpus .jsonl or an emitted "
                        "regression .py instead of generating")
    p.add_argument("--save-corpus", metavar="PATH",
                   help="write the generated corpus as JSON lines")
    p.add_argument("--emit-dir", default="tests/regressions",
                   help="directory for shrunk regression tests")
    p.add_argument("--no-shrink", action="store_true",
                   help="report divergences without minimizing them")
    return p.parse_args(argv)


def _load_replay(path: str) -> list[Program]:
    text = Path(path).read_text(encoding="utf-8")
    if path.endswith(".py"):
        m = re.search(r'PROGRAM_JSON = r"""\s*(\{.*\})\s*"""', text, re.S)
        if not m:
            sys.exit(f"no PROGRAM_JSON block found in {path}")
        return [Program.from_json(m.group(1))]
    return load_corpus(path)


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    budget = os.environ.get("REPRO_FUZZ_BUDGET")
    if budget:
        args.n = int(budget)
    if args.errors is None:
        args.errors = max(args.n // 5, 1)

    modes = exhaustive_modes() if args.exhaustive else default_modes()
    if args.codegen:
        seen = {m.name for m in modes}
        modes = modes + [m for m in codegen_modes() if m.name not in seen]
    if args.processes:
        modes = modes + [PROCESSES]
    print(f"modes: {', '.join(m.name for m in modes)}")

    if args.replay:
        programs = _load_replay(args.replay)
        print(f"replaying {len(programs)} program(s) from {args.replay}")
    else:
        t0 = time.perf_counter()
        programs = list(generate_corpus(args.seed, args.n))
        print(
            f"generated {len(programs)} programs from seed {args.seed} "
            f"({time.perf_counter() - t0:.2f}s)"
        )
    if args.save_corpus:
        save_corpus(programs, args.save_corpus)
        print(f"corpus saved to {args.save_corpus}")

    coverage = SpecCoverage()
    failures = []
    t0 = time.perf_counter()
    for i, program in enumerate(programs):
        coverage.record(program)
        report = run_differential(program, modes)
        if report is not None:
            print(f"[{i}] DIVERGENCE: {program!r}")
            if not args.no_shrink:
                report = shrink_report(report)
                print(f"    shrunk to {len(report.program.calls)} call(s)")
                path = emit_regression(
                    report, f"seed{args.seed}_case{i}", args.emit_dir
                )
                print(f"    regression written: {path}")
            print("    " + str(report).replace("\n", "\n    "))
            failures.append(report)
        if (i + 1) % 100 == 0:
            rate = (i + 1) / (time.perf_counter() - t0)
            print(f"... {i + 1}/{len(programs)} programs ({rate:.1f}/s)")
    elapsed = time.perf_counter() - t0
    print(
        f"differential: {len(programs)} programs x {len(modes)} modes in "
        f"{elapsed:.1f}s — {len(failures)} divergence(s)"
    )

    memo_failures = []
    if args.memo:
        from ..service import Service, ServiceConfig

        svc = Service(ServiceConfig(workers=2))
        try:
            t0 = time.perf_counter()
            for i, program in enumerate(programs):
                complaint = check_memo_conformance(program, svc)
                if complaint is not None:
                    print(f"[memo {i}] DIVERGENCE: {program!r}")
                    print(f"    {complaint}")
                    memo_failures.append((i, complaint))
            cache = svc.stats()["cache"]
            print(
                f"memo: {len(programs)} programs x (cold+warm) through the "
                f"cached service in {time.perf_counter() - t0:.1f}s — "
                f"{len(memo_failures)} divergence(s), "
                f"hit_rate={cache['hit_rate']:.2f} "
                f"({cache['hits']}h/{cache['misses']}m/{cache['bypasses']}b)"
            )
        finally:
            svc.shutdown()

    streaming_failures = []
    if args.streaming:
        from .streaming import check_streaming_conformance

        t0 = time.perf_counter()
        for i in range(args.n):
            complaint = check_streaming_conformance(args.seed + i)
            if complaint is not None:
                print(f"[streaming {i}] DIVERGENCE: seed={args.seed + i}")
                print(f"    {complaint}")
                streaming_failures.append((i, complaint))
        print(
            f"streaming: {args.n} delta schedules x 2 modes in "
            f"{time.perf_counter() - t0:.1f}s — "
            f"{len(streaming_failures)} divergence(s)"
        )

    error_failures = []
    if not args.replay and args.errors:
        for i in range(args.errors):
            program, kind = generate_error_program(args.seed, i)
            complaint = check_error_conformance(program)
            if complaint is not None:
                print(f"[error-fuzz {i}/{kind}] {complaint}")
                error_failures.append((kind, complaint))
        print(
            f"error-model: {args.errors} programs — "
            f"{len(error_failures)} conformance failure(s)"
        )

    print()
    print(coverage.table())
    # coverage gaps gate generated corpora only: a replayed witness is a
    # single program and cannot span the whole spec surface
    gaps = [] if args.replay else coverage.gaps()

    if failures or memo_failures or streaming_failures or error_failures or gaps:
        return 1
    print("\nOK: optimized backend conforms to the reference oracle")
    return 0


if __name__ == "__main__":
    sys.exit(main())
