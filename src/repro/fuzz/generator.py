"""Random GraphBLAS program generator.

Emits :class:`~repro.fuzz.program.Program` instances covering the full
Table II surface — ``mxm``/``mxv``/``vxm``/``eWiseAdd``/``eWiseMult``/
``apply``/``reduce``/``transpose``/``extract``/``assign``/``select``/
``kronecker`` — with randomized semirings/monoids from the predefined
registries, mixed built-in dtypes plus the power-set UDT, value/structural/
complemented masks, accumulators, ``REPLACE``/``TRAN`` descriptor bits, and
aliased operands (``C ⊙= A·C``-style, output-as-mask, repeated inputs).

Generation is deterministic per ``(seed, index)`` pair, is pure data flow
(no GraphBLAS objects are built here), and is shape-directed: each call
first picks its operation, then finds or creates operands of compatible
shapes, reusing earlier collections aggressively so programs chain outputs
into later inputs — the access pattern the drain-time planner optimizes and
therefore the one most likely to expose planner bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .program import Call, Decl, Program

__all__ = [
    "GenConfig",
    "generate_program",
    "generate_corpus",
    "generate_error_program",
    "ERROR_KINDS",
]


# --------------------------------------------------------------------------
# Operator token tables (registry names per dtype token)
# --------------------------------------------------------------------------

#: dtype tokens per class; PSET is handled separately.
BUILTIN_DTYPES = (
    "BOOL",
    "INT8", "INT16", "INT32", "INT64",
    "UINT8", "UINT16", "UINT32", "UINT64",
    "FP32", "FP64",
)

_NUMERIC = tuple(t for t in BUILTIN_DTYPES if t != "BOOL")

#: semiring family names safe for differential testing (no DIV/MINUS whose
#: float results leave the dyadic grid; PAIR/FIRST/SECOND stress selection).
_SEMIRING_FAMILIES = (
    "PLUS_TIMES", "MIN_PLUS", "MAX_PLUS", "MIN_TIMES", "MIN_MAX",
    "MAX_MIN", "PLUS_MIN", "PLUS_MAX", "MIN_FIRST", "MAX_SECOND",
    "PLUS_PAIR",
)
_BOOL_SEMIRINGS = (
    "GrB_LOR_LAND_SEMIRING_BOOL",
    "GrB_LAND_LOR_SEMIRING_BOOL",
    "GrB_LXOR_LAND_SEMIRING_BOOL",
    "GrB_PLUS_TIMES_SEMIRING_BOOL",
)

_ACCUM_FAMILIES = ("PLUS", "TIMES", "MIN", "MAX", "SECOND", "FIRST")
_BOOL_ACCUMS = ("GrB_LOR", "GrB_LAND", "GrB_LXOR", "GrB_SECOND_BOOL")

_EWISE_FAMILIES = ("PLUS", "TIMES", "MIN", "MAX", "FIRST", "SECOND")
_MONOID_FAMILIES = ("PLUS", "TIMES", "MIN", "MAX")
_UNARY_FAMILIES = ("IDENTITY", "AINV", "ABS")

_POSITIONAL_IUOPS = (
    "GrB_TRIL", "GrB_TRIU", "GrB_DIAG", "GrB_OFFDIAG",
    "GrB_ROWLE", "GrB_ROWGT", "GrB_COLLE", "GrB_COLGT",
)
_VALUE_IUOP_FAMILIES = ("VALUEEQ", "VALUENE", "VALUELT", "VALUEGT")

#: all concrete call kinds the generator can emit, cycled so every corpus
#: of ≥ len(OP_KINDS) programs reaches every operation row.
OP_KINDS = (
    "mxm", "mxv", "vxm",
    "ewise_add", "ewise_mult",
    "apply", "reduce", "transpose",
    "extract_matrix", "extract_vector",
    "assign_matrix", "assign_vector",
    "assign_scalar_matrix", "assign_scalar_vector",
    "select", "kronecker",
)


def _sr_token(family: str, dtype: str) -> str:
    return f"GrB_{family}_SEMIRING_{dtype}"


def _bop_token(family: str, dtype: str) -> str:
    return f"GrB_{family}_{dtype}"


def _monoid_token(family: str, dtype: str) -> str:
    return f"GrB_{family}_MONOID_{dtype}"


def _unary_token(family: str, dtype: str) -> str:
    return f"GrB_{family}_{dtype}"


@dataclass
class GenConfig:
    """Probabilities and size bounds for program generation."""

    min_ops: int = 3
    max_ops: int = 15
    max_dim: int = 5
    #: kron factors stay tiny so products remain ≤ max_dim * 3
    max_kron_dim: int = 3
    density: float = 0.5
    p_mask: float = 0.45
    p_mask_comp: float = 0.35
    p_mask_struct: float = 0.35
    p_accum: float = 0.40
    p_replace: float = 0.30
    p_tran: float = 0.30
    p_reuse: float = 0.65
    p_alias: float = 0.20
    p_mask_alias: float = 0.15
    p_udt_program: float = 0.12
    p_mixed_dtype: float = 0.20
    p_wait: float = 0.10
    p_reduce_scalar: float = 0.10


#: call kinds valid for power-set (UDT) programs — value-select is excluded
#: (no UDT value predicates), everything else runs through the generic path.
_UDT_KINDS = tuple(k for k in OP_KINDS)


class _Builder:
    """Declaration pool: finds or creates shape/dtype-compatible operands."""

    def __init__(self, rng: np.random.Generator, cfg: GenConfig, udt: bool):
        self.rng = rng
        self.cfg = cfg
        self.udt = udt
        self.decls: list[Decl] = []
        self._n = 0
        # a small dim pool makes shapes collide → operand reuse and aliasing
        pool_size = int(rng.integers(2, 4))
        self.dims = sorted(
            int(d) for d in rng.integers(1, cfg.max_dim + 1, size=pool_size)
        )

    # ---- randomness helpers ---------------------------------------------
    def chance(self, p: float) -> bool:
        return bool(self.rng.random() < p)

    def pick(self, seq):
        return seq[int(self.rng.integers(0, len(seq)))]

    def dim(self) -> int:
        return self.pick(self.dims)

    # ---- dtypes and values ----------------------------------------------
    def dtype(self) -> str:
        if self.udt:
            return "PSET"
        return self.pick(BUILTIN_DTYPES)

    def value(self, dtype: str):
        r = self.rng
        if dtype == "PSET":
            k = int(r.integers(0, 4))
            return sorted(int(x) for x in r.choice(6, size=k, replace=False))
        if dtype == "BOOL":
            return bool(r.integers(0, 2))
        if dtype.startswith("UINT"):
            return int(r.integers(0, 5))
        if dtype.startswith("INT"):
            return int(r.integers(-3, 4))
        # floats on the dyadic grid: sums/products stay exactly representable
        return float(r.integers(-8, 9)) * 0.25

    def _entries_matrix(self, nrows: int, ncols: int, dtype: str) -> list:
        space = nrows * ncols
        nnz = int(self.rng.binomial(space, self.cfg.density))
        keys = self.rng.choice(space, size=nnz, replace=False)
        return [
            [int(k) // ncols, int(k) % ncols, self.value(dtype)] for k in keys
        ]

    def _entries_vector(self, size: int, dtype: str) -> list:
        nnz = int(self.rng.binomial(size, self.cfg.density))
        idx = self.rng.choice(size, size=nnz, replace=False)
        return [[int(i), self.value(dtype)] for i in idx]

    # ---- declaration pool ------------------------------------------------
    def _new(self, kind: str, dtype: str, shape: tuple[int, ...]) -> str:
        name = f"{'M' if kind == 'matrix' else 'V'}{self._n}"
        self._n += 1
        if kind == "matrix":
            entries = self._entries_matrix(shape[0], shape[1], dtype)
        else:
            entries = self._entries_vector(shape[0], dtype)
        self.decls.append(Decl(name, kind, dtype, shape, entries))
        return name

    def _candidates(self, kind: str, shape, dtype: str | None) -> list[str]:
        out = []
        for d in self.decls:
            if d.kind != kind or d.shape != tuple(shape):
                continue
            if dtype is not None and d.dtype != dtype:
                continue
            if dtype is None and (d.dtype == "PSET") != self.udt:
                continue
            out.append(d.name)
        return out

    def matrix(self, nrows: int, ncols: int, dtype: str | None = None) -> str:
        """Find-or-create a matrix operand.  ``dtype=None`` means any
        compatible domain (possibly ≠ the op's, exercising implicit casts)."""
        cands = self._candidates("matrix", (nrows, ncols), dtype)
        if cands and self.chance(self.cfg.p_reuse):
            return self.pick(cands)
        return self._new("matrix", dtype or self.dtype(), (nrows, ncols))

    def vector(self, size: int, dtype: str | None = None) -> str:
        cands = self._candidates("vector", (size,), dtype)
        if cands and self.chance(self.cfg.p_reuse):
            return self.pick(cands)
        return self._new("vector", dtype or self.dtype(), (size,))

    def decl(self, name: str) -> Decl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(name)

    # ---- shared call trimmings ------------------------------------------
    def out_dtype(self) -> str:
        """Output domains skew toward wide types so casts rarely truncate the
        interesting structure away, but narrow ones still appear."""
        if self.udt:
            return "PSET"
        if self.chance(0.6):
            return self.pick(("INT64", "FP64", "INT32", "UINT64"))
        return self.pick(BUILTIN_DTYPES)

    def mask_for(self, out_name: str) -> dict:
        """Mask name + interpretation bits for the given output, or {}."""
        if not self.chance(self.cfg.p_mask):
            return {}
        out = self.decl(out_name)
        if self.chance(self.cfg.p_mask_alias):
            # any same-shape built-in collection can serve as a value mask —
            # including an operand or the output itself (aliasing stress)
            cands = [
                d.name
                for d in self.decls
                if d.kind == out.kind and d.shape == out.shape
                and d.dtype != "PSET"
            ]
            if cands:
                name = self.pick(cands)
                return {
                    "mask": name,
                    "mask_comp": self.chance(self.cfg.p_mask_comp),
                    "mask_struct": self.chance(self.cfg.p_mask_struct),
                }
        # dedicated masks: BOOL (with explicit False entries, so value vs
        # structural interpretation differs) or a small-int value mask
        dtype = "BOOL" if self.chance(0.7) else "INT64"
        if out.kind == "matrix":
            name = self._new("matrix", dtype, out.shape)
        else:
            name = self._new("vector", dtype, out.shape)
        if dtype == "INT64":
            # sprinkle explicit zeros: stored-but-falsy entries
            d = self.decl(name)
            for e in d.entries:
                if self.chance(0.4):
                    e[-1] = 0
        return {
            "mask": name,
            "mask_comp": self.chance(self.cfg.p_mask_comp),
            "mask_struct": self.chance(self.cfg.p_mask_struct),
        }

    def accum_for(self, out_name: str) -> dict:
        if not self.chance(self.cfg.p_accum):
            return {}
        dtype = self.decl(out_name).dtype
        if dtype == "PSET":
            return {"accum": "PSET_UNION"}
        if dtype == "BOOL":
            return {"accum": self.pick(_BOOL_ACCUMS)}
        return {"accum": _bop_token(self.pick(_ACCUM_FAMILIES), dtype)}

    def semiring_for(self, dtype: str) -> str:
        if dtype == "PSET":
            return "PSET_SR"
        if dtype == "BOOL":
            return self.pick(_BOOL_SEMIRINGS)
        return _sr_token(self.pick(_SEMIRING_FAMILIES), dtype)

    def op_dtype(self) -> str:
        """The domain the operator family is instantiated over."""
        if self.udt:
            return "PSET"
        return self.pick(_NUMERIC) if self.chance(0.85) else "BOOL"

    def operand_dtype(self, op_dtype: str) -> str | None:
        """Operand domain: usually the op's, sometimes any (implicit cast)."""
        if op_dtype == "PSET":
            return "PSET"
        if self.chance(self.cfg.p_mixed_dtype):
            return None
        return op_dtype

    def indices(self, bound: int, n: int | None = None) -> list[int]:
        """Duplicate-free index list into [0, bound) (assign-safe)."""
        if n is None:
            n = int(self.rng.integers(1, bound + 1))
        return [int(i) for i in self.rng.choice(bound, size=n, replace=False)]


# --------------------------------------------------------------------------
# Per-op synthesis
# --------------------------------------------------------------------------

def _flags(b: _Builder, *, tran0=False, tran1=False) -> dict:
    out = {}
    if tran0 and b.chance(b.cfg.p_tran):
        out["tran0"] = True
    if tran1 and b.chance(b.cfg.p_tran):
        out["tran1"] = True
    return out


def _maybe_alias_out(b: _Builder, out: str, operands: dict, keys: tuple) -> dict:
    """With p_alias, rebind one operand name to the output (C ⊙= A·C-style),
    provided shapes and dtype-compatibility allow it."""
    if not b.chance(b.cfg.p_alias):
        return operands
    out_d = b.decl(out)
    for key in keys:
        name = operands.get(key)
        if name is None:
            continue
        d = b.decl(name)
        if d.kind == out_d.kind and d.shape == out_d.shape and (
            (d.dtype == "PSET") == (out_d.dtype == "PSET")
        ):
            operands = dict(operands)
            operands[key] = out
            break
    return operands


def _gen_mxm(b: _Builder) -> Call:
    m, k, n = b.dim(), b.dim(), b.dim()
    dt = b.op_dtype()
    fl = _flags(b, tran0=True, tran1=True)
    a = b.matrix(*((k, m) if fl.get("tran0") else (m, k)), b.operand_dtype(dt))
    bb = b.matrix(*((n, k) if fl.get("tran1") else (k, n)), b.operand_dtype(dt))
    out = b.matrix(m, n, b.out_dtype())
    ops = _maybe_alias_out(b, out, {"a": a, "b": bb}, ("a", "b"))
    args = {**ops, "semiring": b.semiring_for(dt), **fl,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("mxm", out, args)


def _gen_mxv(b: _Builder) -> Call:
    m, k = b.dim(), b.dim()
    dt = b.op_dtype()
    fl = _flags(b, tran0=True)
    a = b.matrix(*((k, m) if fl.get("tran0") else (m, k)), b.operand_dtype(dt))
    u = b.vector(k, b.operand_dtype(dt))
    out = b.vector(m, b.out_dtype())
    ops = _maybe_alias_out(b, out, {"u": u}, ("u",))
    args = {"a": a, **ops, "semiring": b.semiring_for(dt), **fl,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("mxv", out, args)


def _gen_vxm(b: _Builder) -> Call:
    k, n = b.dim(), b.dim()
    dt = b.op_dtype()
    fl = _flags(b, tran1=True)
    a = b.matrix(*((n, k) if fl.get("tran1") else (k, n)), b.operand_dtype(dt))
    u = b.vector(k, b.operand_dtype(dt))
    out = b.vector(n, b.out_dtype())
    ops = _maybe_alias_out(b, out, {"u": u}, ("u",))
    args = {"a": a, **ops, "semiring": b.semiring_for(dt), **fl,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("vxm", out, args)


def _ewise_op_token(b: _Builder, dt: str) -> str:
    if dt == "PSET":
        return b.pick(("PSET_UNION", "PSET_INTERSECT"))
    if dt == "BOOL":
        return b.pick(_BOOL_ACCUMS)
    return _bop_token(b.pick(_EWISE_FAMILIES), dt)


def _gen_ewise(b: _Builder, kind: str) -> Call:
    dt = b.op_dtype()
    if b.chance(0.5):  # matrix form
        m, n = b.dim(), b.dim()
        fl = _flags(b, tran0=True, tran1=True)
        a = b.matrix(*((n, m) if fl.get("tran0") else (m, n)), b.operand_dtype(dt))
        bb = b.matrix(*((n, m) if fl.get("tran1") else (m, n)), b.operand_dtype(dt))
        out = b.matrix(m, n, b.out_dtype())
    else:
        s = b.dim()
        fl = {}
        a = b.vector(s, b.operand_dtype(dt))
        bb = b.vector(s, b.operand_dtype(dt))
        out = b.vector(s, b.out_dtype())
    ops = _maybe_alias_out(b, out, {"a": a, "b": bb}, ("a", "b"))
    args = {**ops, "binop": _ewise_op_token(b, dt), **fl,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call(kind, out, args)


def _gen_apply(b: _Builder) -> Call:
    dt = "PSET" if b.udt else b.pick(_NUMERIC)
    token = "PSET_TAG" if b.udt else _unary_token(b.pick(_UNARY_FAMILIES), dt)
    if b.chance(0.5):
        m, n = b.dim(), b.dim()
        fl = _flags(b, tran0=True)
        a = b.matrix(*((n, m) if fl.get("tran0") else (m, n)), b.operand_dtype(dt))
        out = b.matrix(m, n, b.out_dtype())
    else:
        s = b.dim()
        fl = {}
        a = b.vector(s, b.operand_dtype(dt))
        out = b.vector(s, b.out_dtype())
    ops = _maybe_alias_out(b, out, {"a": a}, ("a",))
    args = {**ops, "unary": token, **fl, **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("apply", out, args)


def _gen_reduce(b: _Builder) -> Call:
    m, n = b.dim(), b.dim()
    dt = b.op_dtype()
    fl = _flags(b, tran0=True)
    a = b.matrix(m, n, b.operand_dtype(dt))
    out = b.vector(n if fl.get("tran0") else m, b.out_dtype())
    if dt == "PSET":
        token = "PSET_MONOID"
    elif dt == "BOOL":
        token = "GrB_LOR_MONOID_BOOL"
    else:
        token = _monoid_token(b.pick(_MONOID_FAMILIES), dt)
    args = {"a": a, "monoid": token, **fl, **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("reduce", out, args)


def _gen_reduce_scalar(b: _Builder) -> Call:
    # reduce over any existing collection (forces completion mid-sequence)
    src = b.pick(b.decls)
    if src.dtype == "PSET":
        token = "PSET_MONOID"
    elif src.dtype == "BOOL":
        token = "GrB_LOR_MONOID_BOOL"
    else:
        token = _monoid_token(b.pick(_MONOID_FAMILIES), src.dtype)
    return Call("reduce_scalar", None, {"a": src.name, "monoid": token})


def _gen_transpose(b: _Builder) -> Call:
    m, n = b.dim(), b.dim()
    dt = b.operand_dtype(b.op_dtype()) or b.dtype()
    fl = _flags(b, tran0=True)
    a = b.matrix(m, n, dt)
    # T = A' normally; INP0=TRAN double-transposes, so T has A's own shape
    out = b.matrix(*((m, n) if fl.get("tran0") else (n, m)), b.out_dtype())
    ops = _maybe_alias_out(b, out, {"a": a}, ("a",))
    args = {**ops, **fl, **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("transpose", out, args)


def _gen_extract_matrix(b: _Builder) -> Call:
    m, n = b.dim(), b.dim()
    dt = b.dtype()
    fl = _flags(b, tran0=True)
    a = b.matrix(*((n, m) if fl.get("tran0") else (m, n)), dt)
    rows = b.indices(m)
    cols = b.indices(n)
    out = b.matrix(len(rows), len(cols), b.out_dtype())
    args = {"a": a, "rows": rows, "cols": cols, **fl,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("extract_matrix", out, args)


def _gen_extract_vector(b: _Builder) -> Call:
    s = b.dim()
    u = b.vector(s, b.dtype())
    idx = b.indices(s)
    out = b.vector(len(idx), b.out_dtype())
    ops = _maybe_alias_out(b, out, {"u": u}, ("u",))
    args = {**ops, "indices": idx, **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("extract_vector", out, args)


def _gen_assign_matrix(b: _Builder) -> Call:
    m, n = b.dim(), b.dim()
    out = b.matrix(m, n, b.out_dtype())
    rows = b.indices(m)
    cols = b.indices(n)
    fl = _flags(b, tran0=True)
    src_shape = (len(cols), len(rows)) if fl.get("tran0") else (len(rows), len(cols))
    a = b.matrix(*src_shape, b.operand_dtype(b.decl(out).dtype))
    args = {"a": a, "rows": rows, "cols": cols, **fl,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("assign_matrix", out, args)


def _gen_assign_vector(b: _Builder) -> Call:
    s = b.dim()
    out = b.vector(s, b.out_dtype())
    idx = b.indices(s)
    u = b.vector(len(idx), b.operand_dtype(b.decl(out).dtype))
    args = {"u": u, "indices": idx, **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("assign_vector", out, args)


def _gen_assign_scalar(b: _Builder, kind: str) -> Call:
    if kind == "assign_scalar_matrix":
        m, n = b.dim(), b.dim()
        out = b.matrix(m, n, b.out_dtype())
        region = {"rows": b.indices(m), "cols": b.indices(n)}
    else:
        s = b.dim()
        out = b.vector(s, b.out_dtype())
        region = {"indices": b.indices(s)}
    args = {"value": b.value(b.decl(out).dtype), **region,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call(kind, out, args)


def _gen_select(b: _Builder) -> Call:
    dt = "PSET" if b.udt else b.pick(_NUMERIC)
    if b.udt or b.chance(0.6):
        token = b.pick(_POSITIONAL_IUOPS)
        thunk = int(b.rng.integers(-2, 3))
    else:
        token = _bop_token(b.pick(_VALUE_IUOP_FAMILIES), dt)
        thunk = b.value(dt)
    if b.chance(0.6):
        m, n = b.dim(), b.dim()
        fl = _flags(b, tran0=True)
        a = b.matrix(*((n, m) if fl.get("tran0") else (m, n)), dt)
        out = b.matrix(m, n, b.out_dtype() if not b.udt else "PSET")
    else:
        s = b.dim()
        fl = {}
        a = b.vector(s, dt)
        out = b.vector(s, b.out_dtype() if not b.udt else "PSET")
    ops = _maybe_alias_out(b, out, {"a": a}, ("a",))
    args = {**ops, "iuop": token, "thunk": thunk, **fl,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("select", out, args)


def _gen_kronecker(b: _Builder) -> Call:
    lim = b.cfg.max_kron_dim
    m, n = int(b.rng.integers(1, lim + 1)), int(b.rng.integers(1, lim + 1))
    p, q = int(b.rng.integers(1, lim + 1)), int(b.rng.integers(1, lim + 1))
    dt = b.op_dtype()
    fl = _flags(b, tran0=True, tran1=True)
    a = b.matrix(*((n, m) if fl.get("tran0") else (m, n)), b.operand_dtype(dt))
    bb = b.matrix(*((q, p) if fl.get("tran1") else (p, q)), b.operand_dtype(dt))
    out = b.matrix(m * p, n * q, b.out_dtype())
    args = {"a": a, "b": bb, "binop": _ewise_op_token(b, dt), **fl,
            **b.mask_for(out), **b.accum_for(out)}
    if args.get("mask"):
        args["replace"] = b.chance(b.cfg.p_replace)
    return Call("kronecker", out, args)


_GENERATORS = {
    "mxm": _gen_mxm,
    "mxv": _gen_mxv,
    "vxm": _gen_vxm,
    "ewise_add": lambda b: _gen_ewise(b, "ewise_add"),
    "ewise_mult": lambda b: _gen_ewise(b, "ewise_mult"),
    "apply": _gen_apply,
    "reduce": _gen_reduce,
    "transpose": _gen_transpose,
    "extract_matrix": _gen_extract_matrix,
    "extract_vector": _gen_extract_vector,
    "assign_matrix": _gen_assign_matrix,
    "assign_vector": _gen_assign_vector,
    "assign_scalar_matrix": lambda b: _gen_assign_scalar(b, "assign_scalar_matrix"),
    "assign_scalar_vector": lambda b: _gen_assign_scalar(b, "assign_scalar_vector"),
    "select": _gen_select,
    "kronecker": _gen_kronecker,
}


# --------------------------------------------------------------------------
# Program-level drivers
# --------------------------------------------------------------------------

def generate_program(
    seed: int, index: int, cfg: GenConfig | None = None
) -> Program:
    """Deterministically generate program *index* of the corpus for *seed*.

    The first call's kind cycles through :data:`OP_KINDS` by index, so any
    corpus of at least ``len(OP_KINDS)`` programs exercises every operation
    row; masked and accumulated variants follow from the probabilities.
    """
    cfg = cfg or GenConfig()
    rng = np.random.default_rng([seed, index])
    udt = bool(rng.random() < cfg.p_udt_program)
    b = _Builder(rng, cfg, udt)
    n_ops = int(rng.integers(cfg.min_ops, cfg.max_ops + 1))
    calls: list[Call] = []
    kinds = _UDT_KINDS if udt else OP_KINDS
    forced = kinds[index % len(kinds)]
    while len([c for c in calls if c.kind not in ("wait",)]) < n_ops:
        if calls and b.chance(cfg.p_wait):
            calls.append(Call("wait", None, {}))
        if not calls:
            kind = forced
        elif b.decls and b.chance(cfg.p_reduce_scalar):
            calls.append(_gen_reduce_scalar(b))
            continue
        else:
            kind = b.pick(kinds)
        calls.append(_GENERATORS[kind](b))
    return Program(b.decls, calls, seed=[seed, index])


def generate_corpus(
    seed: int, n: int, cfg: GenConfig | None = None
) -> Iterator[Program]:
    for i in range(n):
        yield generate_program(seed, i, cfg)


# --------------------------------------------------------------------------
# Invalid-program generator (error-model conformance, paper section V)
# --------------------------------------------------------------------------

ERROR_KINDS = (
    "dim_mismatch_mxm",
    "dim_mismatch_ewise",
    "mask_shape",
    "bad_index_extract",
    "bad_index_assign",
    "dup_index_assign",
    "udt_domain_mismatch",
    "not_a_semiring",
)


def generate_error_program(seed: int, index: int) -> tuple[Program, str]:
    """A valid prefix followed by one *invalid* call.

    Returns ``(program, error_kind)``; the executor asserts both backends
    reject the final call with the same error class and ``GrB_Info`` code,
    at call time, in both execution modes (the paper's "methods return
    after input arguments have been verified").
    """
    cfg = GenConfig(min_ops=1, max_ops=4, p_wait=0.0, p_reduce_scalar=0.0,
                    p_udt_program=0.0)
    rng = np.random.default_rng([seed, index, 0xE0])
    b = _Builder(rng, cfg, udt=False)
    calls = [_GENERATORS[b.pick(OP_KINDS)](b) for _ in range(int(rng.integers(1, 4)))]
    kind = ERROR_KINDS[index % len(ERROR_KINDS)]

    if kind == "dim_mismatch_mxm":
        a = b.matrix(2, 3, "INT64")
        bb = b.matrix(2, 3, "INT64")  # inner dims 3 vs 2 disagree
        out = b.matrix(2, 3, "INT64")
        calls.append(Call("mxm", out, {
            "a": a, "b": bb, "semiring": "GrB_PLUS_TIMES_SEMIRING_INT64"}))
    elif kind == "dim_mismatch_ewise":
        a = b.matrix(2, 2, "INT64")
        bb = b.matrix(3, 3, "INT64")
        out = b.matrix(2, 2, "INT64")
        calls.append(Call("ewise_add", out, {
            "a": a, "b": bb, "binop": "GrB_PLUS_INT64"}))
    elif kind == "mask_shape":
        a = b.matrix(2, 2, "INT64")
        out = b.matrix(2, 2, "INT64")
        mask = b.matrix(3, 3, "BOOL")
        calls.append(Call("apply", out, {
            "a": a, "unary": "GrB_IDENTITY_INT64", "mask": mask}))
    elif kind == "bad_index_extract":
        u = b.vector(3, "INT64")
        out = b.vector(2, "INT64")
        calls.append(Call("extract_vector", out, {"u": u, "indices": [0, 7]}))
    elif kind == "bad_index_assign":
        out = b.vector(3, "INT64")
        u = b.vector(2, "INT64")
        calls.append(Call("assign_vector", out, {"u": u, "indices": [0, 9]}))
    elif kind == "dup_index_assign":
        out = b.vector(4, "INT64")
        u = b.vector(2, "INT64")
        calls.append(Call("assign_vector", out, {"u": u, "indices": [1, 1]}))
    elif kind == "udt_domain_mismatch":
        # PSET values cannot feed an INT64 semiring: DOMAIN_MISMATCH
        d = Decl(f"MU{len(b.decls)}", "matrix", "PSET", (2, 2), [[0, 0, [1]]])
        b.decls.append(d)
        out = b.matrix(2, 2, "INT64")
        calls.append(Call("mxm", out, {
            "a": d.name, "b": d.name,
            "semiring": "GrB_PLUS_TIMES_SEMIRING_INT64"}))
    elif kind == "not_a_semiring":
        a = b.matrix(2, 2, "INT64")
        out = b.matrix(2, 2, "INT64")
        calls.append(Call("mxm", out, {
            "a": a, "b": a, "semiring": "GrB_PLUS_INT64"}))  # a BinaryOp token
    return Program(b.decls, calls, seed=[seed, index, "err"]), kind
