"""Corpus persistence and regression-test emission.

A corpus is a JSON-lines file of serialized programs — enough to replay
any run bit-for-bit without the generator.  When the differential driver
finds a divergence, :func:`emit_regression` freezes the *shrunk* witness
as a standalone pytest file in ``tests/regressions/``: the program JSON
is embedded in the test source, so the regression suite needs neither
the corpus nor the generator's RNG stream to re-check the fix forever.
"""

from __future__ import annotations

import re
from pathlib import Path

from .program import Program

__all__ = ["save_corpus", "load_corpus", "emit_regression"]


def save_corpus(programs, path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for p in programs:
            fh.write(p.to_json() + "\n")


def load_corpus(path) -> list[Program]:
    with Path(path).open("r", encoding="utf-8") as fh:
        return [Program.from_json(line) for line in fh if line.strip()]


_TEMPLATE = '''\
"""Auto-generated fuzz regression ({slug}).

Shrunk witness of an oracle divergence found by the conformance fuzzer
(seed fingerprint: {seed}).  Original failure:

{failure_comment}

Replay by hand with::

    PYTHONPATH=src python -m repro.fuzz --replay {filename}
"""

from repro.fuzz.executor import run_differential
from repro.fuzz.program import Program

PROGRAM_JSON = r"""
{program_json}
"""


def test_{slug}():
    report = run_differential(Program.from_json(PROGRAM_JSON))
    assert report is None, f"divergence resurfaced:\\n{{report}}"
'''


def _slugify(name: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")
    if not slug or slug[0].isdigit():
        slug = "fuzz_" + slug
    return slug


def emit_regression(report, name: str, directory="tests/regressions") -> Path:
    """Write a standalone pytest repro for a (shrunk) divergence report.

    Returns the path written.  *name* becomes both the file name and the
    test function name, so keep it short and descriptive
    (``"uint32_reduce_overflow"``).
    """
    slug = _slugify(name)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"test_{slug}.py"
    failure_comment = "\n".join(
        f"    [{mode}] {detail}" for mode, detail in report.failures
    ) or "    (failure detail unavailable)"
    path.write_text(
        _TEMPLATE.format(
            slug=slug,
            seed=report.program.seed,
            failure_comment=failure_comment,
            filename=path.name,
            program_json=report.program.to_json(indent=2),
        ),
        encoding="utf-8",
    )
    return path
