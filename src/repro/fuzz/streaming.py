"""Differential fuzzing of the streaming subsystem.

One scenario = one random graph plus a random edge-delta schedule pushed
through :class:`repro.stream.EdgeBuffer`.  After every flush the three
incremental handles (:mod:`repro.stream.incremental`) are advanced by the
flush's exact :class:`~repro.stream.delta.EdgeDelta` and diffed against
recompute-from-scratch on the mutated graph; the merged matrix content is
additionally diffed against a dict last-writer-wins model of the whole
edit history.  Every scenario runs under both execution modes (blocking
and nonblocking with the full drain-time planner) — the deferred rebuild
must be mode-invariant like any other operation.

Oracles:

* **ingest**: ``A.extract_tuples()`` equals the dict model exactly;
* **bfs_levels / connected_components**: bit-identical to the scratch
  algorithms;
* **pagerank**: within ``1e-5`` per entry of scratch (both are within
  ``O(tol·n/(1-α))`` of the same fixed point; NaN/Inf from degenerate
  weights must appear in both or neither).

Schedules deliberately inject the handles' fallback triggers — zero and
negative weights, asymmetric writes to symmetric graphs, oversized
batches — so the guard paths are fuzzed as hard as the fast paths.
"""

from __future__ import annotations

import numpy as np

from .. import context
from ..algorithms.bfs import bfs_levels
from ..algorithms.components import connected_components
from ..algorithms.pagerank import pagerank
from ..containers.matrix import Matrix
from ..stream import EdgeBuffer, IncrementalBFS, IncrementalCC, IncrementalPagerank
from ..types import FP64

__all__ = ["check_streaming_conformance"]

_MODES = ("blocking", "nonblocking_planner")


def _random_graph(rng, n: int, symmetric: bool) -> Matrix:
    density = float(rng.uniform(0.05, 0.4))
    nnz = min(int(round(density * n * n)), n * n)
    keys = rng.choice(n * n, size=nnz, replace=False)
    rows, cols = np.divmod(keys, n)
    vals = _random_values(rng, nnz)
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
        # last-writer-wins dedup of the mirrored coordinates
        key = rows * n + cols
        order = np.argsort(key, kind="stable")
        key, rows, cols, vals = key[order], rows[order], cols[order], vals[order]
        keep = np.ones(len(key), dtype=bool)
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    return Matrix.from_coo(FP64, n, n, rows, cols, vals)


def _random_values(rng, k: int) -> np.ndarray:
    vals = rng.uniform(0.1, 2.0, k)
    # rare hostile weights: falsy edges break the BFS fast path, negative
    # weights make PageRank degenerate — the guards must catch both
    hostile = rng.random(k)
    vals[hostile < 0.05] = 0.0
    vals[(hostile >= 0.05) & (hostile < 0.10)] = -1.0
    return vals


def _scenario(seed: int) -> str | None:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 20))
    symmetric = bool(rng.random() < 0.4)
    A = _random_graph(rng, n, symmetric)
    source = int(rng.integers(0, n))

    model: dict[tuple[int, int], float] = {}
    r0, c0, v0 = A.extract_tuples()
    for i, j, v in zip(r0, c0, v0):
        model[(int(i), int(j))] = float(v)

    handles = {
        "pagerank": IncrementalPagerank(A),
        "bfs_levels": IncrementalBFS(A, source),
        "connected_components": IncrementalCC(A),
    }

    for round_no in range(int(rng.integers(2, 6))):
        buf = EdgeBuffer(A)
        # a flush may carry several append calls, including writes that
        # overwrite each other within the batch (last writer must win)
        for _ in range(int(rng.integers(1, 4))):
            k = int(rng.integers(1, max(2, n)))
            ri = rng.integers(0, n, k)
            ci = rng.integers(0, n, k)
            if rng.random() < 0.7:
                vals = _random_values(rng, k)
                if symmetric and rng.random() < 0.8:
                    buf.set_edges(
                        np.concatenate([ri, ci]), np.concatenate([ci, ri]),
                        np.concatenate([vals, vals]),
                    )
                else:
                    buf.set_edges(ri, ci, vals)
            else:
                if symmetric and rng.random() < 0.8:
                    buf.remove_edges(
                        np.concatenate([ri, ci]), np.concatenate([ci, ri])
                    )
                else:
                    buf.remove_edges(ri, ci)
        fr = buf.flush()
        delta = fr.delta  # sequence point: forces the deferred rebuild

        # oracle 1: the merged content is the dict model of the history
        for i, j, om, ov, nm, nv in zip(
            delta.rows, delta.cols, delta.old_mask, delta.old_values,
            delta.new_mask, delta.new_values,
        ):
            if nm:
                model[(int(i), int(j))] = float(nv)
            else:
                model.pop((int(i), int(j)), None)
        rr, cc, vv = A.extract_tuples()
        got = {
            (int(i), int(j)): float(v) for i, j, v in zip(rr, cc, vv)
        }
        if got != model:
            extra = set(got) - set(model)
            missing = set(model) - set(got)
            diff = {
                k for k in set(got) & set(model) if got[k] != model[k]
            }
            return (
                f"round {round_no}: merged content diverges from the "
                f"last-writer-wins model (extra={sorted(extra)[:4]}, "
                f"missing={sorted(missing)[:4]}, value-diff={sorted(diff)[:4]})"
            )

        # oracle 2: every incremental handle equals recompute-from-scratch
        for name, h in handles.items():
            h.update(A, delta)
        ref_pr = pagerank(A)
        got_pr = handles["pagerank"].result()
        ok = np.allclose(got_pr, ref_pr, rtol=0.0, atol=1e-5, equal_nan=True)
        if not ok and not (
            # degenerate weights: NaN/Inf patterns must agree instead
            np.array_equal(np.isfinite(got_pr), np.isfinite(ref_pr))
            and np.allclose(
                got_pr[np.isfinite(ref_pr)], ref_pr[np.isfinite(ref_pr)],
                rtol=0.0, atol=1e-5,
            )
        ):
            worst = float(np.nanmax(np.abs(got_pr - ref_pr)))
            return (
                f"round {round_no}: incremental pagerank diverges "
                f"(mode={handles['pagerank'].last_mode}, max|Δ|={worst:.2e})"
            )

        ref_bfs = bfs_levels(A, source)
        bi, bv = ref_bfs.extract_tuples()
        ref_bfs.free()
        gi, gv = handles["bfs_levels"].result().extract_tuples()
        if not (np.array_equal(bi, gi) and np.array_equal(bv, gv)):
            return (
                f"round {round_no}: incremental bfs diverges "
                f"(mode={handles['bfs_levels'].last_mode}, "
                f"ref={list(zip(bi, bv))[:6]}, got={list(zip(gi, gv))[:6]})"
            )

        ref_cc = connected_components(A)
        got_cc = handles["connected_components"].result()
        if not np.array_equal(ref_cc, got_cc):
            bad = np.nonzero(ref_cc != got_cc)[0][:6]
            return (
                f"round {round_no}: incremental components diverge "
                f"(mode={handles['connected_components'].last_mode}, "
                f"at={bad.tolist()})"
            )
    return None


def check_streaming_conformance(seed: int) -> str | None:
    """Run one seeded streaming scenario under both execution modes.

    Returns a human-readable complaint on the first divergence, else None.
    """
    for mode in _MODES:
        context._reset()
        if mode == "nonblocking_planner":
            context.init(context.Mode.NONBLOCKING)
        try:
            complaint = _scenario(seed)
        finally:
            context._reset()
        if complaint is not None:
            return f"[{mode}] {complaint}"
    return None
