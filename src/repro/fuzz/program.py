"""Program representation for the differential conformance fuzzer.

A :class:`Program` is a fully declarative, JSON-serializable description of
a short GraphBLAS computation: a set of collection declarations (domain,
shape, initial content) followed by a sequence of operation calls drawn
from the paper's Table II surface.  Keeping programs as plain data — names,
registry tokens, index lists — rather than live objects is what makes the
three-way differential execution possible: the same program can be rebuilt
from scratch against the dict-based reference oracle and against the
optimized backend in any execution mode, and a failing program can be
shrunk, serialized, and replayed bit-for-bit.

Operator references are *tokens*: registry names for built-in operators
(``"GrB_PLUS_TIMES_SEMIRING_INT64"``) or the symbolic ``PSET_*`` names for
the power-set UDT algebra, which each execution environment materializes
fresh (UDT domains compare by identity, so they cannot be shared across
runs — see :class:`repro.fuzz.executor.Env`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Decl", "Call", "Program", "CANONICAL_OPS", "canonical_op"]


#: The twelve operation rows of the paper's operation tables that the
#: fuzzer must exercise (ISSUE acceptance: every row, masked + accumulated).
CANONICAL_OPS = (
    "mxm",
    "mxv",
    "vxm",
    "ewise_add",
    "ewise_mult",
    "apply",
    "reduce",
    "transpose",
    "extract",
    "assign",
    "select",
    "kronecker",
)

#: Concrete call kinds → canonical operation row.
_CANONICAL = {
    "mxm": "mxm",
    "mxv": "mxv",
    "vxm": "vxm",
    "ewise_add": "ewise_add",
    "ewise_mult": "ewise_mult",
    "apply": "apply",
    "reduce": "reduce",
    "reduce_scalar": "reduce",
    "transpose": "transpose",
    "extract_matrix": "extract",
    "extract_vector": "extract",
    "assign_matrix": "assign",
    "assign_vector": "assign",
    "assign_scalar_matrix": "assign",
    "assign_scalar_vector": "assign",
    "select": "select",
    "kronecker": "kronecker",
    "wait": None,
}


def canonical_op(kind: str) -> str | None:
    """Map a concrete call kind to its paper-table row (None for ``wait``)."""
    return _CANONICAL[kind]


@dataclass
class Decl:
    """One collection declaration: name, kind, domain, shape, content.

    ``dtype`` is a type token: ``"BOOL"``/``"INT8"``/…/``"FP64"`` for the
    built-in domains, ``"PSET"`` for the power-set UDT.  ``entries`` holds
    ``[i, j, value]`` triples (matrices) or ``[i, value]`` pairs (vectors);
    PSET values are sorted lists of ints standing for frozensets.
    """

    name: str
    kind: str  # "matrix" | "vector"
    dtype: str
    shape: tuple[int, ...]
    entries: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "entries": [list(e) for e in self.entries],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Decl":
        return cls(
            name=d["name"],
            kind=d["kind"],
            dtype=d["dtype"],
            shape=tuple(d["shape"]),
            entries=[list(e) for e in d["entries"]],
        )

    def copy(self) -> "Decl":
        return Decl(
            self.name, self.kind, self.dtype, self.shape,
            [list(e) for e in self.entries],
        )


@dataclass
class Call:
    """One GraphBLAS method invocation, by name.

    ``args`` carries the op-specific payload: operand declaration names
    (``a``/``b``/``u``), operator tokens (``semiring``/``binop``/``monoid``/
    ``unary``/``iuop``/``accum``), index lists (``rows``/``cols``/
    ``indices``), scalars (``value``/``thunk``), the mask name plus its
    interpretation bits (``mask``/``mask_comp``/``mask_struct``) and the
    descriptor bits (``replace``/``tran0``/``tran1``).
    """

    kind: str
    out: str | None
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "out": self.out, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, d: dict) -> "Call":
        return cls(kind=d["kind"], out=d.get("out"), args=dict(d["args"]))

    def copy(self) -> "Call":
        return Call(self.kind, self.out, dict(self.args))

    # ---- small conveniences the executors/coverage share -----------------
    @property
    def mask(self) -> str | None:
        return self.args.get("mask")

    @property
    def accum(self) -> str | None:
        return self.args.get("accum")

    def flag(self, name: str) -> bool:
        return bool(self.args.get(name, False))

    def mask_kind(self) -> str:
        """none | value | value_comp | struct | struct_comp."""
        if self.mask is None:
            return "none"
        base = "struct" if self.flag("mask_struct") else "value"
        return base + ("_comp" if self.flag("mask_comp") else "")


@dataclass
class Program:
    """A complete fuzz case: declarations + calls + a seed fingerprint."""

    decls: list[Decl]
    calls: list[Call]
    seed: Any = None

    def decl(self, name: str) -> Decl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(name)

    def copy(self) -> "Program":
        return Program(
            [d.copy() for d in self.decls],
            [c.copy() for c in self.calls],
            self.seed,
        )

    # ---- (de)serialization ----------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "decls": [d.to_dict() for d in self.decls],
            "calls": [c.to_dict() for c in self.calls],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Program":
        return cls(
            decls=[Decl.from_dict(x) for x in d["decls"]],
            calls=[Call.from_dict(x) for x in d["calls"]],
            seed=d.get("seed"),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=_jsonable)

    @classmethod
    def from_json(cls, text: str) -> "Program":
        return cls.from_dict(json.loads(text))

    def referenced_names(self) -> set[str]:
        """Every declaration name any call touches (operands, masks, outputs)."""
        names: set[str] = set()
        for c in self.calls:
            if c.out is not None:
                names.add(c.out)
            for key in ("a", "b", "u", "mask"):
                v = c.args.get(key)
                if isinstance(v, str):
                    names.add(v)
        return names

    def __repr__(self) -> str:
        ops = ",".join(c.kind for c in self.calls)
        return f"Program(seed={self.seed}, decls={len(self.decls)}, calls=[{ops}])"


def _jsonable(obj):
    """JSON fallback for numpy scalars living in entry values."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON-serializable: {obj!r}")
