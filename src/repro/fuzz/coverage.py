"""Spec-coverage accounting for the fuzz corpus.

The paper's operation tables define the surface the fuzzer must reach;
coverage is counted over **cells** — one per

    (operation × mask-kind × accumulated? × descriptor-bit × dtype-class)

combination actually exercised by a corpus, where *operation* is one of
the twelve canonical table rows (:data:`repro.fuzz.program.CANONICAL_OPS`),
*mask-kind* is ``none``/``value``/``value_comp``/``struct``/``struct_comp``,
the descriptor axis records the ``replace``/``tran`` bits, and
*dtype-class* buckets the output domain into ``bool``/``int``/``float``/
``udt``.  Cells are derived purely from program structure (no execution),
so a saved corpus can be audited offline and
``tests/test_paper_inventory.py`` can assert that the default corpus
reaches every required row.

The **required** surface (what :meth:`SpecCoverage.gaps` reports against)
follows the ISSUE's acceptance bar: every canonical operation exercised
at all, with at least one masked variant and at least one accumulated
variant.  The full cell set is reported too, so humans can eyeball the
long tail (e.g. "has `kronecker` ever run with SCMP + REPLACE?").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .program import CANONICAL_OPS, Program, canonical_op

__all__ = ["Cell", "SpecCoverage", "measure_corpus"]

_DTYPE_CLASS = {
    "BOOL": "bool",
    "INT8": "int", "INT16": "int", "INT32": "int", "INT64": "int",
    "UINT8": "int", "UINT16": "int", "UINT32": "int", "UINT64": "int",
    "FP32": "float", "FP64": "float",
    "PSET": "udt",
}


@dataclass(frozen=True)
class Cell:
    """One exercised combination from the coverage cross product."""

    op: str          # canonical operation row
    mask: str        # none | value | value_comp | struct | struct_comp
    accum: bool
    descriptor: str  # "default" or sorted "+"-joined bits, e.g. "replace+tran0"
    dtype_class: str  # bool | int | float | udt


def _descriptor_axis(call) -> str:
    bits = [b for b in ("replace", "tran0", "tran1") if call.flag(b)]
    return "+".join(bits) if bits else "default"


def _call_cell(program: Program, call) -> Cell | None:
    op = canonical_op(call.kind)
    if op is None:
        return None
    if call.out is not None:
        dtype = program.decl(call.out).dtype
    else:  # reduce_scalar: class of the reduced collection
        dtype = program.decl(call.args["a"]).dtype
    return Cell(
        op=op,
        mask=call.mask_kind(),
        accum=call.accum is not None,
        descriptor=_descriptor_axis(call),
        dtype_class=_DTYPE_CLASS[dtype],
    )


@dataclass
class SpecCoverage:
    """Accumulates exercised cells across programs."""

    cells: Counter = field(default_factory=Counter)
    programs: int = 0

    def record(self, program: Program) -> None:
        self.programs += 1
        for call in program.calls:
            cell = _call_cell(program, call)
            if cell is not None:
                self.cells[cell] += 1

    # ---- queries ---------------------------------------------------------
    def ops_seen(self) -> set[str]:
        return {c.op for c in self.cells}

    def masked_ops(self) -> set[str]:
        return {c.op for c in self.cells if c.mask != "none"}

    def accumulated_ops(self) -> set[str]:
        return {c.op for c in self.cells if c.accum}

    def gaps(self) -> list[str]:
        """Unmet requirements: every op, ≥1 masked, ≥1 accumulated."""
        out = []
        seen, masked, accumulated = (
            self.ops_seen(), self.masked_ops(), self.accumulated_ops()
        )
        for op in CANONICAL_OPS:
            if op not in seen:
                out.append(f"operation {op!r} never exercised")
            else:
                if op not in masked:
                    out.append(f"operation {op!r} has no masked variant")
                if op not in accumulated:
                    out.append(f"operation {op!r} has no accumulated variant")
        return out

    # ---- reporting -------------------------------------------------------
    def table(self) -> str:
        """Per-op summary: mask kinds, accum, descriptor bits, dtype classes."""
        lines = [
            f"spec coverage over {self.programs} programs, "
            f"{len(self.cells)} distinct cells, "
            f"{sum(self.cells.values())} call sites",
            "",
            f"{'operation':<12} {'calls':>6}  {'mask kinds':<38} "
            f"{'accum':<9} {'descriptor bits':<22} dtype classes",
        ]
        for op in CANONICAL_OPS:
            mine = {c: n for c, n in self.cells.items() if c.op == op}
            if not mine:
                lines.append(f"{op:<12} {0:>6}  -- NEVER EXERCISED --")
                continue
            calls = sum(mine.values())
            masks = sorted({c.mask for c in mine})
            accum = sorted({"yes" if c.accum else "no" for c in mine})
            descs = sorted({c.descriptor for c in mine})
            dts = sorted({c.dtype_class for c in mine})
            lines.append(
                f"{op:<12} {calls:>6}  {','.join(masks):<38} "
                f"{'/'.join(accum):<9} {','.join(descs):<22} {','.join(dts)}"
            )
        gaps = self.gaps()
        lines.append("")
        if gaps:
            lines.append("GAPS:")
            lines.extend(f"  - {g}" for g in gaps)
        else:
            lines.append(
                "no gaps: every operation exercised with masked and "
                "accumulated variants"
            )
        return "\n".join(lines)


def measure_corpus(programs) -> SpecCoverage:
    cov = SpecCoverage()
    for p in programs:
        cov.record(p)
    return cov
