"""Error model of the GraphBLAS C API (paper section V).

The C API reports outcomes through ``GrB_Info`` return codes, split into two
classes:

* **API errors** — a method was called with arguments that violate its rules
  (wrong dimensions, mismatched domains, uninitialized handles, ...).  These
  are always detected *when the method is called*, in both blocking and
  nonblocking mode, and the method returns without modifying its arguments.
* **Execution errors** — something went wrong while carrying out a legal
  invocation (out of memory, overflow in a user operator, ...).  In
  nonblocking mode these may only surface when the sequence is completed by
  :func:`repro.context.wait` or by a method that forces completion.

In Python the natural carrier for both is an exception.  Every error class
below corresponds to one ``GrB_Info`` value and exposes it via ``.info``.
The module also keeps the C-style "last error" string that the paper's
``GrB_error()`` returns; see :func:`error`.
"""

from __future__ import annotations

import enum
import threading

__all__ = [
    "Info",
    "GraphBLASError",
    "ApiError",
    "ExecutionError",
    "UninitializedObject",
    "NullPointer",
    "InvalidValue",
    "InvalidIndex",
    "DomainMismatch",
    "DimensionMismatch",
    "OutputNotEmpty",
    "NotImplementedInSpec",
    "IndexOutOfBounds",
    "OutOfMemory",
    "InsufficientSpace",
    "InvalidObject",
    "Panic",
    "EmptyObject",
    "NoValue",
    "error",
    "set_last_error",
    "clear_last_error",
    "info_of",
]


class Info(enum.IntEnum):
    """``GrB_Info`` return values (Fig. 2c of the paper plus the usual set)."""

    SUCCESS = 0
    #: ``GrB_NO_VALUE`` — not an error: an extract found no stored element.
    NO_VALUE = 1

    # ------------------------------------------------------------------ API
    UNINITIALIZED_OBJECT = 2
    NULL_POINTER = 3
    INVALID_VALUE = 4
    INVALID_INDEX = 5
    DOMAIN_MISMATCH = 6
    DIMENSION_MISMATCH = 7
    OUTPUT_NOT_EMPTY = 8
    NOT_IMPLEMENTED = 9

    # ------------------------------------------------------------ execution
    PANIC = 101
    OUT_OF_MEMORY = 102
    INSUFFICIENT_SPACE = 103
    INVALID_OBJECT = 104
    INDEX_OUT_OF_BOUNDS = 105
    EMPTY_OBJECT = 106

    @property
    def is_api_error(self) -> bool:
        return 2 <= int(self) <= 9

    @property
    def is_execution_error(self) -> bool:
        return int(self) >= 101


class GraphBLASError(Exception):
    """Base class for all GraphBLAS errors.

    ``info`` carries the corresponding :class:`Info` code, mirroring the C
    API's return value.  Raising one of these also records the message in the
    thread-local "last error" slot queried by :func:`error`.
    """

    info: Info = Info.PANIC

    def __init__(self, message: str = ""):
        super().__init__(message or self.__class__.__name__)
        set_last_error(f"[{self.info.name}] {message or self.__class__.__name__}")


class ApiError(GraphBLASError):
    """An argument violated the rules of the method (paper section V).

    API errors are raised eagerly in both execution modes and leave the
    method's arguments untouched.
    """


class ExecutionError(GraphBLASError):
    """A legal method invocation failed while executing.

    In nonblocking mode these surface at :func:`repro.context.wait` or at the
    method call that forces completion of the affected object.
    """


class UninitializedObject(ApiError):
    info = Info.UNINITIALIZED_OBJECT


class NullPointer(ApiError):
    info = Info.NULL_POINTER


class InvalidValue(ApiError):
    info = Info.INVALID_VALUE


class InvalidIndex(ApiError):
    info = Info.INVALID_INDEX


class DomainMismatch(ApiError):
    info = Info.DOMAIN_MISMATCH


class DimensionMismatch(ApiError):
    info = Info.DIMENSION_MISMATCH


class OutputNotEmpty(ApiError):
    info = Info.OUTPUT_NOT_EMPTY


class NotImplementedInSpec(ApiError):
    info = Info.NOT_IMPLEMENTED


class OutOfMemory(ExecutionError):
    info = Info.OUT_OF_MEMORY


class InsufficientSpace(ExecutionError):
    info = Info.INSUFFICIENT_SPACE


class InvalidObject(ExecutionError):
    info = Info.INVALID_OBJECT


class IndexOutOfBounds(ExecutionError):
    info = Info.INDEX_OUT_OF_BOUNDS


class EmptyObject(ExecutionError):
    info = Info.EMPTY_OBJECT


class Panic(ExecutionError):
    info = Info.PANIC


class NoValue(Exception):
    """Raised by element extraction when no element is stored (``GrB_NO_VALUE``).

    Deliberately *not* a :class:`GraphBLASError`: the C API treats it as an
    informational return value, not an error condition.
    """

    info = Info.NO_VALUE


_tls = threading.local()


def set_last_error(message: str) -> None:
    """Record *message* as the thread's last GraphBLAS error string."""
    _tls.last_error = message


def clear_last_error() -> None:
    _tls.last_error = ""


def error() -> str:
    """Return the last error string, as ``GrB_error()`` does in the C API.

    Empty string if no error has been recorded on this thread.
    """
    return getattr(_tls, "last_error", "")


def info_of(exc: BaseException) -> Info:
    """Map an exception to its ``GrB_Info`` code (``PANIC`` for foreign ones)."""
    return getattr(exc, "info", Info.PANIC)
