"""The codegen backend: fused chains compiled to generated kernels.

Two flavors, chosen per chain:

* **numba** — a single ``@njit`` scalar loop, generated only for pure
  same-dtype ``apply`` pipelines whose operators have curated scalar
  expressions (:data:`repro.kernels.chain.NUMBA_SCALAR_EXPRS`).  Requires
  ``numba`` to be importable; it is an optional extra, never a dependency.
* **stitch** — always available: a generated module that rebinds the *same*
  live primitives the interpreter uses (registry operators, ``cast_array``,
  ``group_starts``/``segment_reduce``) by name and stitches them into one
  straight-line function, eliminating per-link dispatch.  Bit-identity is
  by construction — each generated statement is the interpreter's own
  statement with the link's bindings inlined.

Generated source is cached on disk (:mod:`repro.kernels.cache`) and
compiled once per process.  Every failure mode — ineligible signature,
corrupt cache entry, compile error, runtime exception inside a generated
kernel — lands on the interpreter, which is always correct; the codegen
backend can be slower than the interpreter, never wrong.
"""

from __future__ import annotations

from . import cache
from .chain import (
    NUMBA_SCALAR_EXPRS,
    _split_op,
    chain_key,
    chain_signature,
    numba_eligible,
)
from .interface import KernelBackend
from .interpreter import interpret_chain

__all__ = [
    "CodegenBackend",
    "build_stitch_source",
    "build_numba_source",
    "load_or_build",
    "clear_kernels",
]

#: compiled fused_chain callables (or False = known-bad) per cache key
_compiled: dict = {}

#: hot-path index: (flavor, frozen signature) → (fn | None, key).  Repeat
#: dispatches of the same chain shape skip the canonical digest entirely —
#: the digest stays the *identity* (disk names, cross-process sharing),
#: this is only a per-process shortcut to it.
_by_sig: dict = {}

_numba_probe: bool | None = None


def _numba_available() -> bool:
    global _numba_probe
    if _numba_probe is None:
        try:
            import numba  # noqa: F401

            _numba_probe = True
        except Exception:
            _numba_probe = False
    return _numba_probe


def clear_kernels() -> None:
    """Drop every per-process compiled kernel (test isolation helper)."""
    _compiled.clear()
    _by_sig.clear()


def _freeze(sig: dict) -> tuple:
    """A hashable flat mirror of a signature — field order is fixed by
    construction in :func:`chain_signature`, so a straight tuple is enough
    (and much cheaper than canonicalizing)."""
    p = sig["producer"]
    return (
        p["kind"], p["op"], p["out"], p["mask"], p["replace"],
        tuple(
            (l["role"], l["op"], l["in"], l["t"], l["out"],
             l["mask"], l["replace"], l["accum"], l.get("thunk"))
            for l in sig["links"]
        ),
    )


# --------------------------------------------------------------------------
# Source generation
# --------------------------------------------------------------------------

_REGISTRY_OF = {
    "apply": "UNARY_REGISTRY",
    "select": "INDEXUNARY_REGISTRY",
    "reduce": "MONOID_REGISTRY",
}

_STITCH_PRELUDE = '''\
"""Generated repro kernel (stitch flavor) — do not edit, regenerate."""
import numpy as np
from repro._sparseutil import group_starts, segment_reduce, unflatten_keys
from repro.types import cast_array, lookup_type
from repro.algebra.predefined import MONOID_REGISTRY
from repro.ops.index_unary import INDEXUNARY_REGISTRY
from repro.ops.unary import UNARY_REGISTRY
'''


def build_stitch_source(sig: dict) -> str:
    """Straight-line numpy source for one chain signature.

    The body is the interpreter's per-link code with each link's operator,
    domains and thunk bound at module top level — the structure (mask
    filter placement, cast points, empty guards) must stay statement-for-
    statement identical to :mod:`repro.kernels.interpreter` and the fused
    kernels in :mod:`repro.operations._kernels`, because bit-identity is
    argued by construction, not by testing alone.
    """
    links = sig["links"]
    last = len(links) - 1
    lines = [_STITCH_PRELUDE]
    for i, link in enumerate(links):
        lines.append(f"_op{i} = {_REGISTRY_OF[link['role']]}[{link['op']!r}]")
        lines.append(f"_in{i} = lookup_type({link['in']!r})")
        lines.append(f"_t{i} = lookup_type({link['t']!r})")
        lines.append(f"_o{i} = lookup_type({link['out']!r})")
        if link["role"] == "select":
            lines.append(f"_thunk{i} = {link['thunk']!r}")
    lines += ["", "", "def fused_chain(keys, vals, masks, dims):"]
    for i, link in enumerate(links):
        role = link["role"]
        lines.append(f"    # link {i}: {role} {link['op']}")
        if role != "reduce":
            # apply/select filter the incoming stream by their mask first
            lines += [
                f"    m = masks[{i}]",
                "    if m is not None and len(keys):",
                "        keep = m.allows(keys)",
                "        keys, vals = keys[keep], vals[keep]",
            ]
        if role == "apply":
            lines += [
                f"    vals = _op{i}.apply_array("
                f"cast_array(vals, _in{i}, _op{i}.d_in))",
                f"    if vals.dtype != _op{i}.d_out.np_dtype:",
                f"        vals = vals.astype(_op{i}.d_out.np_dtype)",
            ]
        elif role == "select":
            lines += [
                "    if len(keys) == 0:",
                "        vals = vals.copy()",
                "    else:",
                f"        if dims[{i}] >= 0:",
                f"            rows, cols = unflatten_keys(keys, dims[{i}])",
                "        else:",
                "            rows = keys",
                "            cols = np.zeros(len(keys), dtype=np.int64)",
                f"        vin = (cast_array(vals, _in{i}, _op{i}.d_in)",
                f"               if _op{i}.d_in is not None else vals)",
                "        verdict = np.asarray(",
                f"            _op{i}.apply_arrays(vin, rows, cols, _thunk{i})",
                "        ).astype(bool)",
                "        keys, vals = keys[verdict], vals[verdict]",
            ]
        else:  # reduce
            lines += [
                f"    vals = cast_array(vals, _in{i}, _t{i})",
                "    if len(keys) == 0:",
                "        keys = np.empty(0, dtype=np.int64)",
                f"        vals = np.empty(0, dtype=_op{i}.domain.np_dtype)",
                "    else:",
                f"        rows = keys // np.int64(dims[{i}])",
                "        keys, starts = group_starts(rows)",
                f"        vals = segment_reduce(vals, starts, _op{i})",
                f"        if vals.dtype != _op{i}.domain.np_dtype:",
                f"            vals = vals.astype(_op{i}.domain.np_dtype)",
            ]
            if i != last:
                # a middle reduce filters its *reduced* vector, exactly
                # where the interpreter's _link_t does
                lines += [
                    f"    m = masks[{i}]",
                    "    if m is not None and len(keys):",
                    "        keep = m.allows(keys)",
                    "        keys, vals = keys[keep], vals[keep]",
                ]
            # a tail reduce leaves the mask to the write pipeline push-down
        if i != last:
            lines.append(f"    vals = cast_array(vals, _t{i}, _o{i})")
        lines.append("")
    lines.append("    return keys, vals")
    lines.append("")
    return "\n".join(lines)


_NP_OF = {
    "BOOL": "bool_",
    "INT8": "int8", "INT16": "int16", "INT32": "int32", "INT64": "int64",
    "UINT8": "uint8", "UINT16": "uint16", "UINT32": "uint32",
    "UINT64": "uint64", "FP32": "float32", "FP64": "float64",
}


def build_numba_source(sig: dict) -> str:
    """A single njit scalar loop for a pure same-dtype apply chain.

    Eligibility (:func:`numba_eligible`) guarantees every cast in the
    interpreter path is the identity and every operator has a curated
    scalar expression, so the whole chain collapses to one pass over the
    values.  ``apply`` never changes keys, so the links' mask filters
    commute with the value maps and combine into one up-front AND.

    The plain ``import numba`` is deliberate: in a process without numba
    the module fails to exec, the cache layer reports a failed compile,
    and the chain is rebuilt under the stitch flavor's own key.
    """
    dtype = _split_op(sig["links"][0]["in"])[1]
    np_name = _NP_OF[dtype]
    exprs = [
        NUMBA_SCALAR_EXPRS[_split_op(link["op"])[0]][1]
        for link in sig["links"]
    ]
    lines = [
        '"""Generated repro kernel (numba flavor) — do not edit, '
        'regenerate."""',
        "import numpy as np",
        "import numba",
        "",
        f"_ONE = np.{np_name}(1)",
        "",
        "",
        "@numba.njit(cache=False)",
        "def _loop(vals, out):",
        "    one = _ONE",
        "    for i in range(vals.shape[0]):",
        "        x = vals[i]",
    ]
    lines += [f"        x = {expr}" for expr in exprs]
    lines += [
        "        out[i] = x",
        "",
        "",
        "def fused_chain(keys, vals, masks, dims):",
        "    if len(keys):",
        "        keep = None",
        "        for m in masks:",
        "            if m is not None:",
        "                k = m.allows(keys)",
        "                keep = k if keep is None else keep & k",
        "        if keep is not None:",
        "            keys, vals = keys[keep], vals[keep]",
        f"    out = np.empty(len(vals), dtype=np.{np_name})",
        "    _loop(np.ascontiguousarray(vals), out)",
        "    return keys, out",
        "",
    ]
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Compile + cache
# --------------------------------------------------------------------------

def _compile(source: str, key: str):
    ns: dict = {}
    try:
        exec(compile(source, f"<repro-kernel:{key[:12]}>", "exec"), ns)
    except Exception:
        return None
    fn = ns.get("fused_chain")
    return fn if callable(fn) else None


def load_or_build(sig: dict):
    """``(fused_chain, key)`` for a signature — memory, then disk, then
    fresh generation (which also rewrites the disk entry).  ``(None, key)``
    means this chain cannot compile here; run the interpreter."""
    flavor = (
        "numba" if _numba_available() and numba_eligible(sig) else "stitch"
    )
    fkey = (flavor, _freeze(sig))
    hit = _by_sig.get(fkey)
    if hit is not None:
        return hit
    key = chain_key(sig, flavor)
    fn = _compiled.get(key)
    if fn is not None:
        out = (None, key) if fn is False else (fn, key)
        _by_sig[fkey] = out
        return out
    source = cache.load_source(key)
    if source is not None:
        fn = _compile(source, key)
        if fn is not None:
            _compiled[key] = fn
            _by_sig[fkey] = (fn, key)
            return fn, key
        # a well-formed entry with broken source: regenerate and rewrite
    build = build_numba_source if flavor == "numba" else build_stitch_source
    source = build(sig)
    fn = _compile(source, key)
    if fn is None:
        _compiled[key] = False
        _by_sig[fkey] = (None, key)
        return None, key
    _compiled[key] = fn
    _by_sig[fkey] = (fn, key)
    cache.store_source(key, flavor, source)
    return fn, key


def _discard(key: str) -> None:
    """A generated kernel misbehaved at run time: never run it again in
    this process, and drop the disk entry so other processes regenerate."""
    _compiled[key] = False
    for fkey, (_, k) in list(_by_sig.items()):
        if k == key:
            _by_sig[fkey] = (None, key)
    cache.invalidate(key)


_RT = None


def _runtime():
    """Hot-path collaborators, resolved once (circular-import-safe): chain
    dispatch runs per contracted node, so per-call imports are real cost."""
    global _RT
    if _RT is None:
        from ..containers.mask import build_mask_view
        from ..obs import metrics as _metrics
        from ..obs import spans as _obs_spans
        from ..operations._kernels import _observed_kernel
        from ..operations.common import _producer_result, run_write_pipeline

        _RT = (
            build_mask_view, _metrics, _obs_spans,
            _observed_kernel, _producer_result, run_write_pipeline,
        )
    return _RT


class CodegenBackend(KernelBackend):
    """Compiles eligible chains; interprets everything else."""

    name = "codegen"

    def run_chain(self, specs) -> None:
        _obs_spans = _runtime()[2]
        sig = chain_signature(specs)
        fn = key = None
        if sig is not None:
            fn, key = load_or_build(sig)
        if fn is None:
            if _obs_spans.current() is not None:
                _obs_spans.annotate(compiled=False)
            interpret_chain(specs)
            return
        self._run_compiled(specs, fn, key)

    def _run_compiled(self, specs, fn, key) -> None:
        (build_mask_view, _metrics, _obs_spans, _observed_kernel,
         _producer_result, run_write_pipeline) = _runtime()

        masks = [
            build_mask_view(s.mask, s.desc.mask_complement,
                            s.desc.mask_structure)
            for s in specs[1:]
        ]
        dims = []
        for s in specs[1:]:
            if s.reducer is not None:
                dims.append(s.inputs[0].ncols)
            else:
                n = getattr(s.out, "ncols", None)
                dims.append(-1 if n is None else n)
        keys, vals = _producer_result(specs[0])
        try:
            if (_obs_spans.current() is None
                    and not _metrics.registry.enabled):
                t_keys, t_vals = fn(keys, vals, masks, dims)
            else:

                def run(acc):
                    out = fn(keys, vals, masks, dims)
                    acc.append(len(keys) * (len(specs) - 1))
                    return out

                t_keys, t_vals = _observed_kernel(
                    "chain[compiled]", run,
                    flops_estimated=len(keys) * (len(specs) - 1),
                    nnz_in=len(keys),
                    backend="codegen", compiled=True,
                )
        except Exception:
            # producer kernels are pure, so rerunning the whole chain on
            # the interpreter is safe; the bad kernel is retired
            _discard(key)
            if _obs_spans.current() is not None:
                _obs_spans.annotate(compiled=False)
            interpret_chain(specs)
            return
        if _obs_spans.current() is not None:
            _obs_spans.annotate(compiled=True)
        tail = specs[-1]
        run_write_pipeline(
            tail.out, tail.mask, tail.accum, tail.desc,
            t_keys, t_vals, tail.t_type, mask_view=masks[-1],
        )
