"""Fused-chain microbench: kernel backends head to head.

Three chain-dominated workloads — a deep pure-apply pipeline (the numba
flavor's home turf), an mxm-headed mixed chain (stitch flavor), and a
swarm of small chains (dispatch + cache-hit overhead) — each run under the
interpreter and the codegen backend with bit-identical results asserted on
every repetition.  Timings land in the ``repro-bench/1`` schema so
``tools/bench_trajectory.py`` can diff them against earlier baselines::

    PYTHONPATH=src python -m repro.kernels.bench --out BENCH_pr8.json

The codegen entries carry ``speedup_vs_interpreter``; with numba absent
(the stitch fallback) the expectation is parity, with numba present the
deep apply chain is where the compiled loop pays.
"""

from __future__ import annotations

import argparse

import numpy as np

import repro as grb
from .. import context, parallel
from ..obs.export import BenchRecorder
from . import cache as kernel_cache
from . import codegen


def _graph(n: int, nnz: int, seed: int) -> grb.Matrix:
    r = np.random.default_rng(seed)
    keys = r.choice(n * n, size=min(nnz, n * n), replace=False)
    rows, cols = np.divmod(keys, n)
    return grb.Matrix.from_coo(
        grb.FP64, n, n, rows, cols, r.uniform(-2.0, 2.0, len(keys))
    )


def _begin(backend: str) -> None:
    context._reset()
    parallel.set_kernel_backend(backend)
    grb.init(grb.Mode.NONBLOCKING)


def _finish(*objs):
    grb.wait()
    fused = context._current().queue.stats.fused
    sums = tuple(float(o.extract_tuples()[-1].sum()) for o in objs)
    return fused, sums


def wl_apply_chain(backend: str, n: int, nnz: int, depth: int):
    """Cheap producer, then *depth* rounds of in-place FP64 applies — a
    pure same-dtype apply chain, the numba-eligible shape."""
    _begin(backend)
    A = _graph(n, nnz, 3)
    C = grb.Matrix(grb.FP64, n, n)
    grb.ewise_add(C, None, None, grb.PLUS[grb.FP64], A, A)
    for _ in range(depth):
        grb.apply(C, None, None, grb.AINV[grb.FP64], C)
        grb.apply(C, None, None, grb.ABS[grb.FP64], C)
        grb.apply(C, None, None, grb.MINV[grb.FP64], C)
    return _finish(C)


def wl_mxm_chain(backend: str, n: int, nnz: int):
    """mxm head streamed through apply links and a select — the stitch
    flavor (mixed roles are never numba-eligible)."""
    _begin(backend)
    A = _graph(n, nnz, 5)
    C = grb.Matrix(grb.FP64, n, n)
    grb.mxm(C, None, None, grb.PLUS_TIMES[grb.FP64], A, A)
    grb.apply(C, None, None, grb.AINV[grb.FP64], C)
    grb.apply(C, None, None, grb.ABS[grb.FP64], C)
    grb.select(C, None, None, grb.index_unary_op("GrB_VALUEGT_FP64"), C, 0.5)
    return _finish(C)


def wl_small_many(backend: str, chains: int):
    """Many small chains: per-chain dispatch, key lookup, and memory-cache
    hits dominate the value path."""
    _begin(backend)
    outs = []
    for i in range(chains):
        A = _graph(40, 320, 100 + i)
        C = grb.Matrix(grb.FP64, 40, 40)
        grb.ewise_add(C, None, None, grb.PLUS[grb.FP64], A, A)
        grb.apply(C, None, None, grb.AINV[grb.FP64], C)
        grb.apply(C, None, None, grb.ABS[grb.FP64], C)
        outs.append(C)
    return _finish(*outs)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None, help="write BENCH json here")
    ap.add_argument("--repeat", type=int, default=7)
    ap.add_argument("--n", type=int, default=400)
    ap.add_argument("--nnz", type=int, default=24000)
    ap.add_argument("--depth", type=int, default=4)
    ap.add_argument("--chains", type=int, default=60)
    args = ap.parse_args(argv)

    flavor = "numba" if codegen._numba_available() else "stitch"
    rec = BenchRecorder(
        meta={
            "workload": "kernels.chain",
            "flavor": flavor,
            "n": args.n,
            "nnz": args.nnz,
            "depth": args.depth,
        }
    )
    workloads = [
        ("apply_chain", lambda b: wl_apply_chain(b, args.n, args.nnz, args.depth)),
        ("mxm_chain", lambda b: wl_mxm_chain(b, args.n, args.nnz)),
        ("small_many", lambda b: wl_small_many(b, args.chains)),
    ]
    for name, fn in workloads:
        baseline = fn("interpreter")  # also the correctness oracle
        entries = {}
        for backend in ("interpreter", "codegen"):
            result = rec.measure(
                f"kernels.chain.{name}.{backend}",
                lambda backend=backend: fn(backend),
                repeat=args.repeat,
                warmup=2,
                backend=backend,
                fused=baseline[0],
            )
            assert result == baseline, (
                f"{name}: {backend} diverged from the interpreter"
            )
            entries[backend] = rec.entries[-1]
        # min-over-runs is the standard microbench statistic: both medians
        # are recorded too, but min is robust to scheduler noise
        speedup = entries["interpreter"]["min_s"] / entries["codegen"]["min_s"]
        entries["codegen"]["speedup_vs_interpreter"] = round(speedup, 4)
        entries["codegen"]["flavor"] = flavor
        print(
            f"{name:<12} interpreter {entries['interpreter']['min_s']*1e3:8.2f} ms"
            f"   codegen[{flavor}] {entries['codegen']['min_s']*1e3:8.2f} ms"
            f"   speedup {speedup:5.2f}x   fused={baseline[0]}"
        )
    print(f"kernel cache: {kernel_cache.stats()}")
    if args.out:
        rec.write(args.out)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
