"""Chain shapes: what the planner may stream, and what codegen may compile.

A *fused chain* is an ordered list of OpSpecs ``[P, L1, ..., Ln]`` the
planner contracted into one node: P is any standard producer (its kernel
computes T), every later link is a single-input stream transform — an
``apply`` value map, a ``select`` predicate, or a matrix→vector ``reduce``
— and every link but the last is *overwrite-shaped* (no accumulator,
unmasked or replace-mode), so the intermediate it would have stored equals
its mask-filtered T cast to its own domain.  The tail keeps its full write
pipeline (mask/accum/replace against the real output).

Two layers of eligibility live here:

* :func:`is_stream_link` / :func:`overwrite_shaped` — the *semantic* tests
  the fusion pass uses to grow chains.  Any chain the planner builds is
  runnable by the interpreter backend; legality never depends on codegen.
* :func:`chain_signature` — the *structural* description codegen compiles
  from: registry names only, no live objects.  ``None`` means the chain
  uses something a generated kernel cannot rebind by name (user-defined
  operators or domains, bind-style applies, binop reducers) and the
  interpreter must run it.

The signature doubles as the cache identity: :func:`chain_key` feeds it —
with the cache schema version and the kernel flavor — through
:func:`repro.execution.planner.canonical.digest`, so alpha-renaming
temporaries or reordering independent ops (which leave the chain's own
structure untouched) share a key, while any change to an operator,
accumulator, mask kind, REPLACE bit, or dtype splits it.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CACHE_VERSION",
    "is_stream_link",
    "overwrite_shaped",
    "chain_signature",
    "chain_key",
    "numba_eligible",
]

#: bumped whenever generated source would change shape — stale on-disk
#: entries from older versions are ignored and rewritten
CACHE_VERSION = 1


def is_stream_link(spec) -> bool:
    """Can *spec* consume a producer's un-materialized stream?  True for
    the three single-input transforms fusion understands."""
    return (
        spec.post is not None
        or spec.reducer is not None
        or spec.selector is not None
    )


def overwrite_shaped(spec) -> bool:
    """Would *spec*'s output hold exactly its mask-filtered T?  (No
    accumulator, and unmasked or replace-mode — the pair-fusion case (a)
    shape, and the condition for a chain link to keep streaming.)"""
    return spec.accum is None and (
        spec.mask is None or spec.desc.replace
    )


# --------------------------------------------------------------------------
# Structural signatures (codegen + cache identity)
# --------------------------------------------------------------------------

_REGS: tuple | None = None


def _registries() -> tuple:
    """(semiring, monoid, binary, unary, index-unary) registries, resolved
    once — signature extraction runs per chain dispatch, so the circular-
    import-safe lazy imports must not be paid every time."""
    global _REGS
    if _REGS is None:
        from ..algebra.predefined import MONOID_REGISTRY, SEMIRING_REGISTRY
        from ..ops.binary import BINARY_REGISTRY
        from ..ops.index_unary import INDEXUNARY_REGISTRY
        from ..ops.unary import UNARY_REGISTRY

        _REGS = (
            SEMIRING_REGISTRY,
            MONOID_REGISTRY,
            BINARY_REGISTRY,
            UNARY_REGISTRY,
            INDEXUNARY_REGISTRY,
        )
    return _REGS


def _type_name(t) -> str | None:
    """Registry name of a builtin GrBType; None for UDTs (not rebindable)."""
    if t is None or getattr(t, "is_udt", False):
        return None
    return t.name


def _registered(registry: dict, tok) -> str | None:
    """*tok*'s registry name, but only when the registry entry IS *tok* —
    a same-named user operator must never alias a builtin kernel."""
    name = getattr(tok, "name", None)
    if name is not None and registry.get(name) is tok:
        return name
    return None


def _mask_kind(spec) -> str | None:
    if spec.mask is None:
        return None
    d = spec.desc
    kind = "struct" if d.mask_structure else "value"
    return kind + "_comp" if d.mask_complement else kind


def _accum_name(spec) -> str | None:
    """Accumulator identity for the key.  The accumulator runs in the
    (uncompiled) write pipeline, so an unregistered one cannot corrupt a
    generated kernel — it only needs a stable spelling in the key."""
    if spec.accum is None:
        return None
    return _registered(_registries()[2], spec.accum) or "<udf-accum>"


def _plain_thunk(thunk) -> Any:
    """A JSON-able, exactly-renderable thunk scalar, or the sentinel
    ``False, None`` pair when the value cannot be baked into source."""
    item = getattr(thunk, "item", None)
    if callable(item):
        thunk = item()
    if isinstance(thunk, (bool, int, float)):
        return True, thunk
    return False, None


def _link_entry(spec) -> dict | None:
    _, MONOID_REGISTRY, _, UNARY_REGISTRY, INDEXUNARY_REGISTRY = _registries()

    in_name = _type_name(spec.inputs[0].type) if spec.inputs else None
    t_name = _type_name(spec.t_type)
    out_name = _type_name(spec.out.type)
    if in_name is None or t_name is None or out_name is None:
        return None
    entry = {
        "in": in_name,
        "t": t_name,
        "out": out_name,
        "mask": _mask_kind(spec),
        "replace": bool(spec.desc.replace),
        "accum": _accum_name(spec),
    }
    if spec.post is not None:
        op = _registered(UNARY_REGISTRY, spec.op_token)
        if op is None:
            return None
        entry.update(role="apply", op=op)
        return entry
    if spec.selector is not None:
        iuop, thunk = spec.selector
        op = _registered(INDEXUNARY_REGISTRY, iuop)
        ok, plain = _plain_thunk(thunk)
        if op is None or not ok:
            return None
        entry.update(role="select", op=op, thunk=plain)
        return entry
    if spec.reducer is not None:
        op = _registered(MONOID_REGISTRY, spec.op_token)
        if op is None:
            return None  # binop-shim reducers stay on the interpreter
        entry.update(role="reduce", op=op)
        return entry
    return None


def chain_signature(specs) -> dict | None:
    """Structural description of a fused chain, or None when any part is
    not rebindable by registry name (the codegen-ineligibility rule).

    The producer's kernel is never compiled — only its result stream feeds
    the generated value path — but its kind, operator and output domain
    are part of the chain's identity all the same.
    """
    head = specs[0]
    head_out = _type_name(head.out.type)
    if head_out is None:
        return None
    head_op = None
    if head.op_token is not None:
        for reg in _registries()[:4]:
            head_op = _registered(reg, head.op_token)
            if head_op is not None:
                break
        # the rule is uniform: every operator in the chain must resolve by
        # registry name, producers included
        if head_op is None:
            return None
    links = []
    for spec in specs[1:]:
        entry = _link_entry(spec)
        if entry is None:
            return None
        links.append(entry)
    if not links:
        return None
    return {
        "producer": {
            "kind": head.kind,
            "op": head_op,
            "out": head_out,
            "mask": _mask_kind(head),
            "replace": bool(head.desc.replace),
        },
        "links": links,
    }


def chain_key(sig: dict, flavor: str) -> str:
    """Cache identity of one compiled chain (canonical digest — see
    :mod:`repro.execution.planner.canonical`)."""
    from ..execution.planner.canonical import digest

    return digest("repro-kernel", CACHE_VERSION, flavor, sig)


# --------------------------------------------------------------------------
# Numba flavor eligibility
# --------------------------------------------------------------------------

_INT_DTYPES = {
    "INT8", "INT16", "INT32", "INT64",
    "UINT8", "UINT16", "UINT32", "UINT64",
}

#: unary families a generated scalar loop reproduces bit-for-bit.  Each
#: entry maps base name → (allowed dtype tokens, scalar expression); the
#: expression sees ``x`` (current value) and ``one`` (dtype-typed 1).
NUMBA_SCALAR_EXPRS = {
    "GrB_IDENTITY": (_INT_DTYPES | {"BOOL", "FP32", "FP64"}, "x"),
    "GrB_AINV": (
        {"INT8", "INT16", "INT32", "INT64", "FP32", "FP64"},
        "-x",
    ),
    "GrB_ABS": ({"FP32", "FP64"}, "abs(x)"),
    # guarded: numba float division raises ZeroDivisionError where the
    # numpy kernel (errstate-ignored) yields a signed infinity
    "GrB_MINV": (
        {"FP32", "FP64"},
        "(one / x) if x != 0 else np.copysign(np.inf, x)",
    ),
    "GrB_LNOT": ({"BOOL"}, "not x"),
    "GrB_BNOT": (_INT_DTYPES, "~x"),
    # sqrt is exactly rounded in every IEEE mode, so FP32 is safe; exp/log
    # stay FP64-only — a float32 libm can disagree with numpy's
    # float32-native loops at the last ulp, and bit-identity is the bar
    "GxB_SQRT": ({"FP32", "FP64"}, "np.sqrt(x)"),
    "GxB_EXP": ({"FP64"}, "np.exp(x)"),
    "GxB_LOG": ({"FP64"}, "np.log(x)"),
}

#: every builtin dtype suffix — operator names end in one of these, but
#: suffix-less singletons (``GrB_LNOT``) must not lose their last segment
_DTYPE_SUFFIXES = frozenset(_INT_DTYPES | {"BOOL", "FP32", "FP64"})


def _split_op(name: str) -> tuple[str, str]:
    base, _, dtype = name.rpartition("_")
    if dtype in _DTYPE_SUFFIXES:
        return base, dtype
    return name, ""


def numba_eligible(sig: dict) -> bool:
    """True when the whole chain is a pure same-dtype apply pipeline whose
    operators all have curated scalar expressions — the only shape the
    njit loop flavor generates.  Everything else uses numpy stitching."""
    dtype = _split_op(sig["producer"]["out"])[1]
    for link in sig["links"]:
        if link["role"] != "apply":
            return False
        if _split_op(link["in"])[1] != dtype:
            return False
        base, op_dtype = _split_op(link["op"])
        allowed = NUMBA_SCALAR_EXPRS.get(base)
        # suffix-less singletons (GrB_LNOT) carry no dtype in the name;
        # their fixed domain is enforced by the allowed set + in/t/out
        if allowed is None or op_dtype not in ("", dtype) \
                or dtype not in allowed[0]:
            return False
        if (_split_op(link["t"])[1] != dtype
                or _split_op(link["out"])[1] != dtype):
            return False
    return True
