"""The kernel-backend interface: one contract, interchangeable suites.

A :class:`KernelBackend` is *how* a planned operation computes its internal
result T — orthogonal to the execution backend (serial / threads /
processes), which decides *where* work runs.  Two suites ship in-tree:

* ``interpreter`` — the hand-written numpy kernels (the default);
* ``codegen`` — compiles eligible fused chains into generated kernels
  (numba ``@njit`` when importable, numpy-expression stitching otherwise)
  and delegates everything else to the interpreter.

A SuiteSparse-shaped suite would slot in the same way: register an
instance with :func:`register_backend` and select it through
``repro.parallel.set_kernel_backend``.  The contract is semantic
bit-identity — a backend is an execution strategy, never a semantic
(paper section III-B) — and the differential fuzzer holds every registered
suite to it.
"""

from __future__ import annotations

__all__ = [
    "KernelBackend",
    "register_backend",
    "active_backend",
    "available_backends",
]


class KernelBackend:
    """Base/protocol of a kernel suite.

    Subclasses override :meth:`run_chain` (and, for a full replacement
    suite, :meth:`run_standard`).  Both take planner OpSpecs and must leave
    every output bit-identical to the interpreter.
    """

    #: the name ``repro.parallel.set_kernel_backend`` selects this suite by
    name = "abstract"

    def run_chain(self, specs) -> None:
        """Execute a fused chain ``[producer, link, ...]`` end to end —
        stream the producer's T through every link and run the tail's
        write pipeline."""
        raise NotImplementedError

    def run_standard(self, spec) -> None:
        """Execute one standard (unfused) op.  The base implementation is
        the interpreter path; replacement suites may override per-kind."""
        from ..operations.common import execute_standard

        execute_standard(spec)


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> None:
    """Register *backend* under its name and make the name selectable via
    :func:`repro.parallel.set_kernel_backend`."""
    from ..parallel import register_kernel_backend

    _REGISTRY[backend.name] = backend
    register_kernel_backend(backend.name)


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def active_backend() -> KernelBackend:
    """The suite selected by ``repro.parallel.get_kernel_backend()``."""
    from ..parallel import get_kernel_backend

    return _REGISTRY[get_kernel_backend()]
