"""Pluggable kernel suites (``repro.kernels``).

The planner decides *what* runs (the DAG, fusion chains, levels); the
execution backend decides *where* (serial / threads / processes); this
package decides *how* the result T of each planned node is computed.  Two
suites register at import:

* ``interpreter`` — the hand-written numpy kernels (default);
* ``codegen`` — compiles eligible fused chains to generated kernels with
  an on-disk source cache, falling back to the interpreter per chain.

Select with ``repro.parallel.set_kernel_backend("codegen")`` (or the
service's ``kernel_backend`` config field).  Out-of-tree suites — e.g. a
SuiteSparse binding — subclass :class:`KernelBackend` and call
:func:`register_backend`.
"""

from __future__ import annotations

from .chain import chain_key, chain_signature, is_stream_link, overwrite_shaped
from .codegen import CodegenBackend
from .interface import (
    KernelBackend,
    active_backend,
    available_backends,
    register_backend,
)
from .interpreter import InterpreterBackend

__all__ = [
    "KernelBackend",
    "InterpreterBackend",
    "CodegenBackend",
    "register_backend",
    "active_backend",
    "available_backends",
    "chain_signature",
    "chain_key",
    "is_stream_link",
    "overwrite_shaped",
]

register_backend(InterpreterBackend())
register_backend(CodegenBackend())
