"""The interpreter backend: hand-written kernels, link-by-link streaming.

:func:`interpret_chain` generalizes PR 1's pair fusion to arbitrary-length
chains.  The head's result streams through every middle link — each one a
mask filter plus its transform, then a cast into the intermediate's domain
(exactly what an overwrite-shaped write would have stored) — and the tail
runs the full write pipeline against the real output.  For a two-element
chain this executes the identical kernel sequence the original
``execute_fused`` did.

Both backends lean on this module: codegen falls back here per chain when
a signature is ineligible or a generated kernel misbehaves.
"""

from __future__ import annotations

from .interface import KernelBackend

__all__ = ["InterpreterBackend", "interpret_chain"]


def _link_t(spec, keys, vals, mask_view):
    """One link's mask-filtered T from the incoming stream (in t_type)."""
    from ..operations import _kernels as K
    from ..types import cast_array

    if spec.reducer is not None:
        # the unfused reduce kernel ignores the mask (it reduces the input,
        # the pipeline filters the reduced vector) — stream order matches
        v = cast_array(vals, spec.inputs[0].type, spec.t_type)
        keys, vals = K.reduce_rows_flat(
            keys, v, spec.inputs[0].ncols, spec.reducer
        )
        if mask_view is not None and len(keys):
            keep = mask_view.allows(keys)
            keys, vals = keys[keep], vals[keep]
        return keys, vals
    if spec.post is not None:
        return K.fused_apply(keys, vals, mask_view, spec.post)
    return K.fused_select(keys, vals, mask_view, spec)


def interpret_chain(specs) -> None:
    """Run a fused chain with the hand-written kernel suite."""
    from ..containers.mask import build_mask_view
    from ..operations.common import _producer_result, run_write_pipeline
    from ..types import cast_array

    keys, vals = _producer_result(specs[0])
    for spec in specs[1:-1]:
        d = spec.desc
        mask_view = build_mask_view(
            spec.mask, d.mask_complement, d.mask_structure
        )
        keys, vals = _link_t(spec, keys, vals, mask_view)
        # middle links are overwrite-shaped: the intermediate would hold
        # exactly this, cast into its own domain
        vals = cast_array(vals, spec.t_type, spec.out.type)
    tail = specs[-1]
    d = tail.desc
    mask_view = build_mask_view(tail.mask, d.mask_complement, d.mask_structure)
    # a reduce tail leaves the mask filter to the pipeline's push-down
    # (matching the unfused kernel exactly); apply/select filter up front
    t_keys, t_vals = _link_t(
        tail, keys, vals, None if tail.reducer is not None else mask_view
    )
    run_write_pipeline(
        tail.out, tail.mask, tail.accum, d, t_keys, t_vals, tail.t_type,
        mask_view=mask_view,
    )


class InterpreterBackend(KernelBackend):
    """The default suite: every kernel is the hand-written numpy one."""

    name = "interpreter"

    def run_chain(self, specs) -> None:
        from ..obs import spans as _obs_spans

        if _obs_spans.current() is not None:
            _obs_spans.annotate(compiled=False)
        interpret_chain(specs)
