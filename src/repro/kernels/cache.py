"""The on-disk kernel cache: versioned, corruption-tolerant, process-safe.

Generated kernels are plain Python source — self-contained modules whose
free names rebind through the operator/type registries — so caching them is
caching text.  Each entry is one JSON file named by the chain's canonical
key (see :func:`repro.kernels.chain.chain_key`), carrying a schema tag, the
cache version, the flavor and the source.

Robustness contract (the satellite the tests pin):

* a corrupt, truncated, or stale-version entry is *ignored* — the chain is
  recompiled from its signature and the entry silently rewritten; a broken
  cache can cost a compile, never a wrong result or a crash;
* writes go through a same-directory temp file + :func:`os.replace`, so a
  reader never observes a torn entry and concurrent writers (two processes
  compiling the same chain produce byte-identical source) last-write-win
  atomically;
* the directory comes from ``REPRO_KERNEL_CACHE`` (tests point it at a
  tmpdir) or defaults under the user cache home.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from .chain import CACHE_VERSION

__all__ = [
    "ENTRY_SCHEMA",
    "cache_dir",
    "load_source",
    "store_source",
    "invalidate",
    "clear_memory",
    "stats",
]

ENTRY_SCHEMA = "repro-kernel/1"

#: per-process counters the tests and obs read (reset via clear_memory)
_stats = {
    "disk_hits": 0,
    "disk_misses": 0,
    "rejects": 0,   # corrupt / truncated / stale entries ignored
    "writes": 0,
}


def cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro" / "kernels"


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.json"


def load_source(key: str) -> str | None:
    """Source text for *key*, or None (miss, corrupt, or stale).

    Every failure mode — unreadable file, bad JSON, wrong schema, wrong
    version, key mismatch, non-string source — lands in the same place:
    pretend the entry does not exist and let the caller recompile.
    """
    path = _entry_path(key)
    try:
        raw = path.read_bytes()
    except OSError:
        _stats["disk_misses"] += 1
        return None
    try:
        doc = json.loads(raw.decode("utf-8"))
        if (
            doc.get("schema") != ENTRY_SCHEMA
            or doc.get("version") != CACHE_VERSION
            or doc.get("key") != key
            or not isinstance(doc.get("source"), str)
        ):
            raise ValueError("stale or foreign cache entry")
    except (ValueError, TypeError, AttributeError):
        _stats["rejects"] += 1
        return None
    _stats["disk_hits"] += 1
    return doc["source"]


def store_source(key: str, flavor: str, source: str) -> None:
    """Atomically (re)write one entry; failures are non-fatal by design —
    a read-only or full cache directory degrades to compile-every-process,
    never to an error on the op path."""
    path = _entry_path(key)
    doc = {
        "schema": ENTRY_SCHEMA,
        "version": CACHE_VERSION,
        "key": key,
        "flavor": flavor,
        "source": source,
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(doc, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return
    _stats["writes"] += 1


def invalidate(key: str) -> None:
    """Drop one entry (a compiled kernel that failed at run time)."""
    try:
        _entry_path(key).unlink()
    except OSError:
        pass


def clear_memory() -> None:
    """Reset the per-process counters (test isolation helper)."""
    for k in _stats:
        _stats[k] = 0


def stats() -> dict:
    return dict(_stats)
