"""Execution context: ``GrB_init`` / ``GrB_finalize`` / ``GrB_wait`` (paper
section IV) and the blocking/nonblocking execution modes.

The mode is fixed when the context is created and "can be set only once in
the execution of a program": calling :func:`init` twice, or again after
:func:`finalize`, is an error.  For convenience (and because Python test
suites would be unusable otherwise) a *default* blocking context exists
before any explicit :func:`init`; an explicit ``init`` is only allowed while
the default context is still untouched by ``finalize``.

Beyond the single default context the module supports **multiple
independent contexts** — the substrate the multi-tenant service
(:mod:`repro.service`) builds sessions on.  A :class:`Context` created
directly owns its own mode, per-thread deferred-op queues, and pending
errors.  Each thread holds a *thread-local activation stack*: pushing a
context with :func:`activate` makes every module-level function
(:func:`submit`, :func:`wait`, :func:`complete`, ...) route to it on this
thread only, so concurrent sessions cannot corrupt each other's mode or
sequence state.  Cross-thread handoff is explicit and two-part: the
context object is the routing token (create it on one thread, ``with
activate(ctx):`` on another), and a *pending sequence* moves between
threads only through :func:`handoff` / :func:`adopt` — the sending thread
detaches its deferred ops and pending error as a :class:`Handoff` token,
the receiving thread splices them ahead of its own.  Without that explicit
step the paper's per-thread-sequence discipline applies verbatim: each
thread gets its own queue inside the context, and sequences must not share
non-read-only objects.

:func:`_reset` restores the pristine pre-init state — it is not part of the
GraphBLAS API and exists for test isolation only.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable

from .execution.sequence import DeferredOp, SequenceQueue
from .execution.trace import wrap_thunk as _trace_wrap
from .obs.tracing import current_trace as _current_trace
from .info import (
    ExecutionError,
    GraphBLASError,
    InvalidValue,
    Panic,
    clear_last_error,
    error,
)

__all__ = [
    "Mode",
    "Context",
    "init",
    "finalize",
    "wait",
    "current_mode",
    "current_context",
    "activate",
    "handoff",
    "adopt",
    "Handoff",
    "error",
    "submit",
    "complete",
    "queue_stats",
    "is_initialized",
]


class Mode(enum.Enum):
    BLOCKING = "GrB_BLOCKING"
    NONBLOCKING = "GrB_NONBLOCKING"


class Context:
    """One library context: a mode plus per-thread sequences.

    Sequences are *per thread* (section IV: "a multithreaded program may
    have a distinct sequence per thread, but those sequences must not
    share objects unless the shared objects are read-only").  Each thread
    gets its own deferred-op queue and pending-error slot; the mode and
    lifecycle flags are per-context.

    The process-wide default context is managed by :func:`init` /
    :func:`finalize`; additional contexts are constructed directly
    (``Context(Mode.NONBLOCKING)``) and routed to via :func:`activate`.
    """

    def __init__(self, mode: Mode, *, name: str = ""):
        self.mode = mode
        self.name = name
        self._tls = threading.local()
        self.explicitly_initialized = False
        self.finalized = False

    @property
    def queue(self) -> SequenceQueue:
        q = getattr(self._tls, "queue", None)
        if q is None:
            q = SequenceQueue()
            self._tls.queue = q
        return q

    @property
    def pending_error(self) -> GraphBLASError | None:
        return getattr(self._tls, "pending_error", None)

    @pending_error.setter
    def pending_error(self, exc: GraphBLASError | None) -> None:
        self._tls.pending_error = exc

    def handoff(self) -> "Handoff":
        """Detach the calling thread's pending sequence as a handoff token.

        The thread's queue and pending error are removed (it continues
        with a fresh, empty sequence); the returned :class:`Handoff` is
        meant to be passed to :meth:`adopt` on exactly one other thread.
        """
        token = Handoff(self.queue, self.pending_error)
        self._tls.queue = SequenceQueue()
        self._tls.pending_error = None
        return token

    def adopt(self, token: "Handoff") -> None:
        """Splice a detached sequence ahead of this thread's own.

        The handed-off ops happened-before anything this thread has queued
        in program order, so they drain first; a handed-off pending error
        likewise takes precedence over a local one.
        """
        if not isinstance(token, Handoff):
            raise InvalidValue(
                f"adopt() needs a Handoff token, got {type(token).__name__}"
            )
        self.queue.splice_front(token.queue)
        if token.error is not None and self.pending_error is None:
            self.pending_error = token.error
        token.error = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.name or hex(id(self))
        return f"<Context {tag} {self.mode.value}>"


class Handoff:
    """A detached sequence in flight between threads.

    Produced by :meth:`Context.handoff` (or the module-level
    :func:`handoff`), consumed once by :meth:`Context.adopt`
    (:func:`adopt`).  Carries the pending deferred ops and any
    not-yet-raised execution error of the sending thread's sequence.
    """

    __slots__ = ("queue", "error")

    def __init__(self, queue: SequenceQueue, error: GraphBLASError | None):
        self.queue = queue
        self.error = error


#: Backward-compatible alias — tests and old callers know ``_Context``.
_Context = Context

_lifecycle_lock = threading.Lock()
_ctx = Context(Mode.BLOCKING)  # the process-wide default context
_active = threading.local()  # per-thread stack of explicitly activated contexts


def _stack() -> list:
    s = getattr(_active, "stack", None)
    if s is None:
        s = []
        _active.stack = s
    return s


def _current() -> Context:
    s = getattr(_active, "stack", None)
    if s:
        return s[-1]
    return _ctx


def current_context() -> Context:
    """The context module-level calls route to on this thread."""
    return _current()


class activate:
    """Make *ctx* the current context on this thread for the ``with`` body.

    This is the cross-thread handoff API: a :class:`Context` built on one
    thread can be activated on any other — the object itself is the
    handoff token.  Activations nest (a per-thread stack), so a service
    worker can run a session's sequence without disturbing whatever the
    thread's surrounding code had active.
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: Context):
        if not isinstance(ctx, Context):
            raise InvalidValue(f"activate() needs a Context, got {type(ctx).__name__}")
        self._ctx = ctx

    def __enter__(self) -> Context:
        if self._ctx.finalized:
            raise InvalidValue("cannot activate a finalized context")
        _stack().append(self._ctx)
        return self._ctx

    def __exit__(self, *exc) -> None:
        s = _stack()
        # strict LIFO in correct code; tolerate a foreign frame so an
        # exception thrown between activations cannot corrupt the stack
        if s and s[-1] is self._ctx:
            s.pop()
        elif self._ctx in s:
            s.remove(self._ctx)


def handoff() -> Handoff:
    """Detach this thread's pending sequence from the current context.

    The explicit half of cross-thread handoff: sequences are per-thread
    (section IV), so deferred work queued here is otherwise invisible to
    every other thread — even one activating the same context.  The
    returned token should be adopted by exactly one receiving thread.
    """
    ctx = _current()
    _check_usable(ctx)
    return ctx.handoff()


def adopt(token: Handoff) -> None:
    """Adopt a sequence detached by :func:`handoff` on another thread."""
    ctx = _current()
    _check_usable(ctx)
    ctx.adopt(token)


def is_initialized() -> bool:
    return _current().explicitly_initialized


def current_mode() -> Mode:
    return _current().mode


def init(mode: Mode = Mode.BLOCKING) -> None:
    """``GrB_init``: create the library context with the given mode.

    May be called at most once, and not after :func:`finalize`.  ``init``
    always targets the process-wide *default* context; it is rejected on a
    thread that has a session context activated (sessions fix their mode
    at construction).
    """
    global _ctx
    if getattr(_active, "stack", None):
        raise InvalidValue(
            "GrB_init inside an activated session context is not allowed"
        )
    with _lifecycle_lock:
        if _ctx.finalized:
            raise InvalidValue(
                "GrB_init after GrB_finalize is not allowed (section IV)"
            )
        if _ctx.explicitly_initialized:
            raise InvalidValue("GrB_init may be called only once")
        if len(_ctx.queue):
            raise InvalidValue("GrB_init called inside an active sequence")
        _ctx = Context(mode)
        _ctx.explicitly_initialized = True
    clear_last_error()


def finalize() -> None:
    """``GrB_finalize``: terminate the current context.

    Any still-deferred work is completed first (an implementation choice the
    spec permits; dropping it silently would violate program order).
    """
    ctx = _current()
    if ctx.finalized:
        raise InvalidValue("GrB_finalize called twice")
    try:
        wait()
    finally:
        ctx.finalized = True


def _check_usable(ctx: Context) -> None:
    if ctx.finalized:
        raise InvalidValue("GraphBLAS context has been finalized")


def submit(
    thunk: Callable[[], None],
    *,
    reads: tuple[Any, ...],
    writes: Any,
    label: str,
    overwrites_output: bool = False,
    deferrable: bool = True,
    spec: Any = None,
) -> None:
    """Route a validated method body through the execution model.

    In blocking mode (or for non-deferrable methods) the computation runs
    now — after first draining the queue so program order is preserved.
    In nonblocking mode deferrable work joins the sequence; *spec* (an
    :class:`~repro.execution.sequence.OpSpec`, when the caller is a
    standard Table II operation) gives the drain-time planner the
    structure it needs to fuse, dedupe, and schedule the op.
    """
    ctx = _current()
    _check_usable(ctx)
    if ctx.mode is Mode.NONBLOCKING and deferrable:
        # the raw thunk joins the queue; span instrumentation is attached
        # at drain time by the planner, so each *scheduled node* (plain,
        # fused, or CSE'd) records exactly one op span under the capture
        # live when it actually runs
        ctx.queue.push(
            DeferredOp(
                thunk=thunk,
                reads=reads,
                writes=writes,
                label=label,
                overwrites_output=overwrites_output,
                spec=spec,
                trace=_current_trace(),
            )
        )
        return
    if len(ctx.queue):
        _drain(ctx)
    _trace_wrap(thunk, label, deferred=False)()


def _poison(ops) -> None:
    for op in ops:
        target = op.writes
        if hasattr(target, "_poison"):
            target._poison()


def _drain(ctx: Context) -> None:
    try:
        ctx.queue.drain()
    except GraphBLASError as exc:
        _poison(ctx.queue.failed_tail)
        if ctx.pending_error is None:
            ctx.pending_error = exc
    except Exception as exc:  # foreign failure inside a user operator
        _poison(ctx.queue.failed_tail)
        if ctx.pending_error is None:
            ctx.pending_error = Panic(f"unhandled error in deferred op: {exc!r}")


def wait() -> None:
    """``GrB_wait``: complete the sequence.

    Raises the first execution error encountered while running the deferred
    ops (section V); further detail is available via :func:`error`.
    """
    ctx = _current()
    _check_usable(ctx)
    _drain(ctx)
    if ctx.pending_error is not None:
        exc = ctx.pending_error
        ctx.pending_error = None
        raise exc


def complete(obj: Any = None) -> None:
    """Force completion of *obj* (or everything when ``None``).

    Called by every method that copies values out of an opaque object; per
    section V such methods surface any execution error involved in defining
    the object's value.
    """
    ctx = _current()
    _check_usable(ctx)
    if len(ctx.queue) == 0 and ctx.pending_error is None:
        return
    if obj is None or ctx.queue.pending_for(obj) or ctx.pending_error is not None:
        wait()


def complete_before_free(obj: Any) -> None:
    """Drain the sequence if any queued op still references *obj*.

    ``GrB_free`` may be called while a sequence is pending; the freed
    object's storage must survive until every deferred op that reads it has
    run.  Execution errors are recorded (surfacing at the next ``wait`` or
    forced completion) rather than raised from ``free``.
    """
    ctx = _current()
    if not ctx.finalized and ctx.queue.involves(obj):
        _drain(ctx)


def queue_stats() -> dict[str, int]:
    """Deferred-queue counters (enqueued/executed/elided/drains plus the
    planner's fused/cse/max_width)."""
    return _current().queue.stats.snapshot()


def _reset() -> None:
    """Testing hook: restore the pristine default context."""
    global _ctx
    with _lifecycle_lock:
        _ctx = Context(Mode.BLOCKING)
    _active.stack = []
    from .execution.planner import reset_options
    from .obs import metrics as _obs_metrics
    from .obs import spans as _obs_spans

    reset_options()
    _obs_spans.force_disarm()  # a leaked capture must not poison later runs
    _obs_metrics.registry.disable()
    clear_last_error()
