"""Execution context: ``GrB_init`` / ``GrB_finalize`` / ``GrB_wait`` (paper
section IV) and the blocking/nonblocking execution modes.

The mode is fixed when the context is created and "can be set only once in
the execution of a program": calling :func:`init` twice, or again after
:func:`finalize`, is an error.  For convenience (and because Python test
suites would be unusable otherwise) a *default* blocking context exists
before any explicit :func:`init`; an explicit ``init`` is only allowed while
the default context is still untouched by ``finalize``.

:func:`_reset` restores the pristine pre-init state — it is not part of the
GraphBLAS API and exists for test isolation only.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable

from .execution.sequence import DeferredOp, SequenceQueue
from .execution.trace import wrap_thunk as _trace_wrap
from .info import (
    ExecutionError,
    GraphBLASError,
    InvalidValue,
    Panic,
    clear_last_error,
    error,
)

__all__ = [
    "Mode",
    "init",
    "finalize",
    "wait",
    "current_mode",
    "error",
    "submit",
    "complete",
    "queue_stats",
    "is_initialized",
]


class Mode(enum.Enum):
    BLOCKING = "GrB_BLOCKING"
    NONBLOCKING = "GrB_NONBLOCKING"


class _Context:
    """Library context.

    Sequences are *per thread* (section IV: "a multithreaded program may
    have a distinct sequence per thread, but those sequences must not
    share objects unless the shared objects are read-only").  Each thread
    gets its own deferred-op queue and pending-error slot; the mode and
    lifecycle flags are global.
    """

    def __init__(self, mode: Mode):
        self.mode = mode
        self._tls = threading.local()
        self.explicitly_initialized = False
        self.finalized = False

    @property
    def queue(self) -> SequenceQueue:
        q = getattr(self._tls, "queue", None)
        if q is None:
            q = SequenceQueue()
            self._tls.queue = q
        return q

    @property
    def pending_error(self) -> GraphBLASError | None:
        return getattr(self._tls, "pending_error", None)

    @pending_error.setter
    def pending_error(self, exc: GraphBLASError | None) -> None:
        self._tls.pending_error = exc


_ctx = _Context(Mode.BLOCKING)


def is_initialized() -> bool:
    return _ctx.explicitly_initialized


def current_mode() -> Mode:
    return _ctx.mode


def init(mode: Mode = Mode.BLOCKING) -> None:
    """``GrB_init``: create the library context with the given mode.

    May be called at most once, and not after :func:`finalize`.
    """
    global _ctx
    if _ctx.finalized:
        raise InvalidValue(
            "GrB_init after GrB_finalize is not allowed (section IV)"
        )
    if _ctx.explicitly_initialized:
        raise InvalidValue("GrB_init may be called only once")
    if len(_ctx.queue):
        raise InvalidValue("GrB_init called inside an active sequence")
    _ctx = _Context(mode)
    _ctx.explicitly_initialized = True
    clear_last_error()


def finalize() -> None:
    """``GrB_finalize``: terminate the context.

    Any still-deferred work is completed first (an implementation choice the
    spec permits; dropping it silently would violate program order).
    """
    if _ctx.finalized:
        raise InvalidValue("GrB_finalize called twice")
    try:
        wait()
    finally:
        _ctx.finalized = True


def _check_usable() -> None:
    if _ctx.finalized:
        raise InvalidValue("GraphBLAS context has been finalized")


def submit(
    thunk: Callable[[], None],
    *,
    reads: tuple[Any, ...],
    writes: Any,
    label: str,
    overwrites_output: bool = False,
    deferrable: bool = True,
    spec: Any = None,
) -> None:
    """Route a validated method body through the execution model.

    In blocking mode (or for non-deferrable methods) the computation runs
    now — after first draining the queue so program order is preserved.
    In nonblocking mode deferrable work joins the sequence; *spec* (an
    :class:`~repro.execution.sequence.OpSpec`, when the caller is a
    standard Table II operation) gives the drain-time planner the
    structure it needs to fuse, dedupe, and schedule the op.
    """
    _check_usable()
    if _ctx.mode is Mode.NONBLOCKING and deferrable:
        # the raw thunk joins the queue; span instrumentation is attached
        # at drain time by the planner, so each *scheduled node* (plain,
        # fused, or CSE'd) records exactly one op span under the capture
        # live when it actually runs
        _ctx.queue.push(
            DeferredOp(
                thunk=thunk,
                reads=reads,
                writes=writes,
                label=label,
                overwrites_output=overwrites_output,
                spec=spec,
            )
        )
        return
    if len(_ctx.queue):
        _drain()
    _trace_wrap(thunk, label, deferred=False)()


def _poison(ops) -> None:
    for op in ops:
        target = op.writes
        if hasattr(target, "_poison"):
            target._poison()


def _drain() -> None:
    try:
        _ctx.queue.drain()
    except GraphBLASError as exc:
        _poison(_ctx.queue.failed_tail)
        if _ctx.pending_error is None:
            _ctx.pending_error = exc
    except Exception as exc:  # foreign failure inside a user operator
        _poison(_ctx.queue.failed_tail)
        if _ctx.pending_error is None:
            _ctx.pending_error = Panic(f"unhandled error in deferred op: {exc!r}")


def wait() -> None:
    """``GrB_wait``: complete the sequence.

    Raises the first execution error encountered while running the deferred
    ops (section V); further detail is available via :func:`error`.
    """
    _check_usable()
    _drain()
    if _ctx.pending_error is not None:
        exc = _ctx.pending_error
        _ctx.pending_error = None
        raise exc


def complete(obj: Any = None) -> None:
    """Force completion of *obj* (or everything when ``None``).

    Called by every method that copies values out of an opaque object; per
    section V such methods surface any execution error involved in defining
    the object's value.
    """
    _check_usable()
    if len(_ctx.queue) == 0 and _ctx.pending_error is None:
        return
    if obj is None or _ctx.queue.pending_for(obj) or _ctx.pending_error is not None:
        wait()


def complete_before_free(obj: Any) -> None:
    """Drain the sequence if any queued op still references *obj*.

    ``GrB_free`` may be called while a sequence is pending; the freed
    object's storage must survive until every deferred op that reads it has
    run.  Execution errors are recorded (surfacing at the next ``wait`` or
    forced completion) rather than raised from ``free``.
    """
    if not _ctx.finalized and _ctx.queue.involves(obj):
        _drain()


def queue_stats() -> dict[str, int]:
    """Deferred-queue counters (enqueued/executed/elided/drains plus the
    planner's fused/cse/max_width)."""
    return _ctx.queue.stats.snapshot()


def _reset() -> None:
    """Testing hook: restore the pristine default context."""
    global _ctx
    _ctx = _Context(Mode.BLOCKING)
    from .execution.planner import reset_options
    from .obs import metrics as _obs_metrics
    from .obs import spans as _obs_spans

    reset_options()
    _obs_spans.force_disarm()  # a leaked capture must not poison later runs
    _obs_metrics.registry.disable()
    clear_last_error()
