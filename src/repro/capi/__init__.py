"""C-style binding shim: the API exactly as the paper spells it.

The Pythonic layer (:mod:`repro`) raises exceptions; the C API returns
``GrB_Info`` and writes results through pointer out-parameters.  This
module provides the literal surface so C listings — including the paper's
Fig. 3 — transliterate line for line:

* every function is named ``GrB_*`` (``GrB_mxm``, ``GrB_Matrix_nrows``, ...)
  and **returns** an :class:`repro.Info` code instead of raising;
* out-parameters are :class:`Ref` boxes standing in for C pointers::

      A = Ref()
      info = GrB_Matrix_new(A, GrB_INT32, n, n)   # GrB_Matrix_new(&A, ...)
      assert info == GrB_SUCCESS
      nrows = Ref()
      GrB_Matrix_nrows(nrows, A.value)

* the constants of Table V are re-exported under their C names
  (``GrB_ALL``, ``GrB_NULL``, ``GrB_SCMP``, ``GrB_TRAN``, ``GrB_REPLACE``,
  ``GrB_SUCCESS``, ``GrB_INT32``, ...), and ``GrB_free`` /
  ``GrB_free_all`` (the convenience macro Fig. 3 mentions) are provided.

See ``examples/bc_c_style.py`` for Fig. 3 rendered through this shim.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from .. import (
    algebra,
    containers,
    context,
    descriptor as _descriptor,
    info as _info,
    operations,
    types as _types,
)
from ..info import GraphBLASError, Info, NoValue

__all__ = [
    "Ref",
    "GrB_SUCCESS",
    "GrB_NO_VALUE",
    "GrB_ALL",
    "GrB_NULL",
    "GrB_OUTP",
    "GrB_MASK",
    "GrB_INP0",
    "GrB_INP1",
    "GrB_REPLACE",
    "GrB_SCMP",
    "GrB_TRAN",
    "GxB_STRUCTURE",
    "GrB_BOOL",
    "GrB_INT8",
    "GrB_INT16",
    "GrB_INT32",
    "GrB_INT64",
    "GrB_UINT8",
    "GrB_UINT16",
    "GrB_UINT32",
    "GrB_UINT64",
    "GrB_FP32",
    "GrB_FP64",
    "GrB_BLOCKING",
    "GrB_NONBLOCKING",
    "GrB_init",
    "GrB_finalize",
    "GrB_wait",
    "GrB_error",
    "GrB_free",
    "GrB_free_all",
    "GrB_Matrix_new",
    "GrB_Matrix_dup",
    "GrB_Matrix_clear",
    "GrB_Matrix_nrows",
    "GrB_Matrix_ncols",
    "GrB_Matrix_nvals",
    "GrB_Matrix_build",
    "GrB_Matrix_setElement",
    "GrB_Matrix_extractElement",
    "GrB_Matrix_removeElement",
    "GrB_Matrix_extractTuples",
    "GrB_Matrix_resize",
    "GrB_Matrix_diag",
    "GrB_Vector_new",
    "GrB_Vector_dup",
    "GrB_Vector_clear",
    "GrB_Vector_size",
    "GrB_Vector_nvals",
    "GrB_Vector_build",
    "GrB_Vector_setElement",
    "GrB_Vector_extractElement",
    "GrB_Vector_removeElement",
    "GrB_Vector_extractTuples",
    "GrB_Vector_resize",
    "GrB_Scalar_new",
    "GrB_Scalar_setElement",
    "GrB_Scalar_extractElement",
    "GrB_Scalar_clear",
    "GrB_Scalar_nvals",
    "GrB_Descriptor_new",
    "GrB_Descriptor_set",
    "GrB_Monoid_new",
    "GrB_Semiring_new",
    "GrB_Type_new",
    "GrB_UnaryOp_new",
    "GrB_BinaryOp_new",
    "GrB_mxm",
    "GrB_mxv",
    "GrB_vxm",
    "GrB_eWiseAdd",
    "GrB_eWiseMult",
    "GrB_apply",
    "GrB_select",
    "GrB_reduce",
    "GrB_Matrix_reduce",
    "GrB_transpose",
    "GrB_extract",
    "GrB_assign",
    "GrB_kronecker",
]


class Ref:
    """A one-slot box standing in for a C output pointer (``GrB_Matrix *``)."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None):
        self.value = value

    def __repr__(self) -> str:
        return f"Ref({self.value!r})"


def _info_of(exc: BaseException) -> Info:
    return getattr(exc, "info", Info.PANIC)


def _c_call(fn: Callable[[], Any]) -> Info:
    """Run a body; translate the Python error model back to GrB_Info."""
    try:
        fn()
        return Info.SUCCESS
    except NoValue:
        return Info.NO_VALUE
    except GraphBLASError as exc:
        return _info_of(exc)
    except Exception as exc:  # foreign failure
        _info.set_last_error(f"[PANIC] {exc!r}")
        return Info.PANIC


def _creator(out: Ref, make: Callable[[], Any]) -> Info:
    if not isinstance(out, Ref):
        return Info.NULL_POINTER

    def body():
        out.value = make()

    return _c_call(body)


# ----------------------------------------------------------------- constants
GrB_SUCCESS = Info.SUCCESS
GrB_NO_VALUE = Info.NO_VALUE
GrB_ALL = _descriptor.ALL
GrB_NULL = None
GrB_OUTP = _descriptor.OUTP
GrB_MASK = _descriptor.MASK
GrB_INP0 = _descriptor.INP0
GrB_INP1 = _descriptor.INP1
GrB_REPLACE = _descriptor.REPLACE
GrB_SCMP = _descriptor.SCMP
GrB_TRAN = _descriptor.TRAN
GxB_STRUCTURE = _descriptor.STRUCTURE

GrB_BOOL = _types.BOOL
GrB_INT8 = _types.INT8
GrB_INT16 = _types.INT16
GrB_INT32 = _types.INT32
GrB_INT64 = _types.INT64
GrB_UINT8 = _types.UINT8
GrB_UINT16 = _types.UINT16
GrB_UINT32 = _types.UINT32
GrB_UINT64 = _types.UINT64
GrB_FP32 = _types.FP32
GrB_FP64 = _types.FP64

GrB_BLOCKING = context.Mode.BLOCKING
GrB_NONBLOCKING = context.Mode.NONBLOCKING


# ------------------------------------------------------------------- context
def GrB_init(mode=GrB_BLOCKING) -> Info:
    return _c_call(lambda: context.init(mode))


def GrB_finalize() -> Info:
    return _c_call(context.finalize)


def GrB_wait() -> Info:
    return _c_call(context.wait)


def GrB_error() -> str:
    return _info.error()


def GrB_free(obj) -> Info:
    fn = getattr(obj, "free", None)
    if fn is None:
        # algebraic objects (monoids, semirings, operators) are immutable
        # value descriptors here; freeing their handle is a no-op
        return Info.SUCCESS
    return _c_call(fn)


def GrB_free_all(*objs) -> Info:
    """The convenience macro of Fig. 3 line 81: free every argument."""
    worst = Info.SUCCESS
    for obj in objs:
        got = GrB_free(obj)
        if got != Info.SUCCESS:
            worst = got
    return worst


# -------------------------------------------------------------------- matrix
def GrB_Matrix_new(out: Ref, domain, nrows, ncols) -> Info:
    return _creator(out, lambda: containers.Matrix(domain, nrows, ncols))


def GrB_Matrix_dup(out: Ref, A) -> Info:
    return _creator(out, lambda: A.dup())


def GrB_Matrix_clear(A) -> Info:
    return _c_call(lambda: A.clear())


def GrB_Matrix_nrows(out: Ref, A) -> Info:
    return _creator(out, lambda: A.nrows)


def GrB_Matrix_ncols(out: Ref, A) -> Info:
    return _creator(out, lambda: A.ncols)


def GrB_Matrix_nvals(out: Ref, A) -> Info:
    return _creator(out, lambda: A.nvals())


def GrB_Matrix_build(C, rows, cols, values, n=None, dup=None) -> Info:
    del n  # the C API passes an explicit count; Python arrays know theirs
    return _c_call(lambda: C.build(rows, cols, values, dup))


def GrB_Matrix_setElement(C, value, row, col) -> Info:
    return _c_call(lambda: C.set_element(row, col, value))


def GrB_Matrix_extractElement(out: Ref, A, row, col) -> Info:
    return _creator(out, lambda: A.extract_element(row, col))


def GrB_Matrix_removeElement(C, row, col) -> Info:
    return _c_call(lambda: C.remove_element(row, col))


def GrB_Matrix_extractTuples(rows: Ref, cols: Ref, vals: Ref, A) -> Info:
    def body():
        i, j, x = A.extract_tuples()
        rows.value, cols.value, vals.value = i, j, x

    return _c_call(body)


def GrB_Matrix_resize(C, nrows, ncols) -> Info:
    return _c_call(lambda: C.resize(nrows, ncols))


def GrB_Matrix_diag(out: Ref, v, k=0) -> Info:
    return _creator(out, lambda: containers.Matrix.diag(v, k))


# -------------------------------------------------------------------- vector
def GrB_Vector_new(out: Ref, domain, size) -> Info:
    return _creator(out, lambda: containers.Vector(domain, size))


def GrB_Vector_dup(out: Ref, v) -> Info:
    return _creator(out, lambda: v.dup())


def GrB_Vector_clear(v) -> Info:
    return _c_call(lambda: v.clear())


def GrB_Vector_size(out: Ref, v) -> Info:
    return _creator(out, lambda: v.size)


def GrB_Vector_nvals(out: Ref, v) -> Info:
    return _creator(out, lambda: v.nvals())


def GrB_Vector_build(w, indices, values, n=None, dup=None) -> Info:
    del n
    return _c_call(lambda: w.build(indices, values, dup))


def GrB_Vector_setElement(w, value, index) -> Info:
    return _c_call(lambda: w.set_element(index, value))


def GrB_Vector_extractElement(out: Ref, v, index) -> Info:
    return _creator(out, lambda: v.extract_element(index))


def GrB_Vector_removeElement(w, index) -> Info:
    return _c_call(lambda: w.remove_element(index))


def GrB_Vector_extractTuples(indices: Ref, vals: Ref, v) -> Info:
    def body():
        i, x = v.extract_tuples()
        indices.value, vals.value = i, x

    return _c_call(body)


def GrB_Vector_resize(w, size) -> Info:
    return _c_call(lambda: w.resize(size))


# -------------------------------------------------------------------- scalar
def GrB_Scalar_new(out: Ref, domain) -> Info:
    return _creator(out, lambda: containers.Scalar(domain))


def GrB_Scalar_setElement(s, value) -> Info:
    return _c_call(lambda: s.set_value(value))


def GrB_Scalar_extractElement(out: Ref, s) -> Info:
    return _creator(out, lambda: s.extract_value())


def GrB_Scalar_clear(s) -> Info:
    return _c_call(lambda: s.clear())


def GrB_Scalar_nvals(out: Ref, s) -> Info:
    return _creator(out, lambda: s.nvals())


# ------------------------------------------------------- algebra/descriptors
def GrB_Descriptor_new(out: Ref) -> Info:
    return _creator(out, _descriptor.Descriptor)


def GrB_Descriptor_set(desc, field, value) -> Info:
    return _c_call(lambda: _descriptor.descriptor_set(desc, field, value))


def GrB_Monoid_new(out: Ref, domain, op, identity) -> Info:
    # the C signature carries the domain explicitly; it must match the op
    def make():
        m = algebra.monoid_new(op, identity)
        if domain is not None and m.domain != domain and m.domain is not domain:
            raise _info.DomainMismatch(
                f"monoid domain {m.domain.name} does not match {domain.name}"
            )
        return m

    return _creator(out, make)


def GrB_Semiring_new(out: Ref, add_monoid, mul_op) -> Info:
    return _creator(out, lambda: algebra.semiring_new(add_monoid, mul_op))


def GrB_Type_new(out: Ref, name, udt_class) -> Info:
    return _creator(out, lambda: _types.type_new(name, udt_class))


def GrB_UnaryOp_new(out: Ref, fn, d_out, d_in) -> Info:
    from ..ops import unary_op_new

    return _creator(out, lambda: unary_op_new(fn, d_in, d_out))


def GrB_BinaryOp_new(out: Ref, fn, d_out, d_in1, d_in2) -> Info:
    from ..ops import binary_op_new

    return _creator(out, lambda: binary_op_new(fn, d_in1, d_in2, d_out))


# ---------------------------------------------------------------- operations
def _op_wrapper(pyfn):
    @functools.wraps(pyfn)
    def wrapper(*args, **kwargs) -> Info:
        return _c_call(lambda: pyfn(*args, **kwargs))

    wrapper.__name__ = f"GrB_{pyfn.__name__}"
    return wrapper


GrB_mxm = _op_wrapper(operations.mxm)
GrB_mxv = _op_wrapper(operations.mxv)
GrB_vxm = _op_wrapper(operations.vxm)
GrB_eWiseAdd = _op_wrapper(operations.ewise_add)
GrB_eWiseMult = _op_wrapper(operations.ewise_mult)
GrB_apply = _op_wrapper(operations.apply)
GrB_select = _op_wrapper(operations.select)
GrB_reduce = _op_wrapper(operations.reduce)
GrB_transpose = _op_wrapper(operations.transpose)
GrB_extract = _op_wrapper(operations.extract)
GrB_assign = _op_wrapper(operations.assign)
GrB_kronecker = _op_wrapper(operations.kronecker)


def GrB_Matrix_reduce(out: Ref, accum, monoid, A, desc=None) -> Info:
    """Matrix → scalar reduce with a typed out-parameter."""
    del desc

    def make():
        init = out.value
        return operations.reduce_to_scalar(monoid, A, accum=accum, init=init)

    return _creator(out, make)
