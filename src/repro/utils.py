"""LAGraph-style conveniences built *on top of* the public API.

These helpers use only GraphBLAS operations internally (the dogfooding the
paper's composability argument promises): equality via eWise intersection
+ LAND reduction, pattern queries via select, norms via apply + reduce.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .algebra import LAND_MONOID, MAX_MONOID, PLUS_MONOID
from .containers.matrix import Matrix
from .containers.vector import Vector
from .info import InvalidValue
from .operations import apply, ewise_mult, reduce_to_scalar, select
from .ops import ABS, EQ, index_unary
from .types import BOOL, FP64

__all__ = [
    "matrices_equal",
    "vectors_equal",
    "pattern_equal",
    "norm_max",
    "norm_sum",
    "is_symmetric",
]


def _common_builtin(a, b):
    # compare through the wider domain; UDTs must match exactly
    if a.type.is_udt or b.type.is_udt:
        if a.type != b.type:
            return None
        return None  # handled by the python-level comparison
    return a.type if a.type.nbits >= b.type.nbits else b.type


def matrices_equal(A: Matrix, B: Matrix, *, check_type: bool = True) -> bool:
    """Same dimensions, same pattern, same (domain-cast) values.

    Implemented as the LAGraph idiom: ``C = A .EQ. B`` over the pattern
    intersection must have A's nvals, and LAND-reduce to true.
    """
    if not isinstance(A, Matrix) or not isinstance(B, Matrix):
        raise InvalidValue("matrices_equal compares two matrices")
    if A.shape != B.shape:
        return False
    if check_type and A.type != B.type and not (A.type.is_builtin and B.type.is_builtin):
        return False
    if A.nvals() != B.nvals():
        return False
    if A.type.is_udt or B.type.is_udt:
        if A.type != B.type:
            return False
        da = {(i, j): v for i, j, v in A}
        db = {(i, j): v for i, j, v in B}
        return da == db
    if check_type and A.type != B.type:
        return False
    cmp_domain = _common_builtin(A, B) or A.type
    C = Matrix(BOOL, A.nrows, A.ncols)
    ewise_mult(C, None, None, EQ[cmp_domain], A, B, None)
    if C.nvals() != A.nvals():
        return False  # patterns differ
    result = bool(reduce_to_scalar(LAND_MONOID[BOOL], C))
    C.free()
    return result


def vectors_equal(u: Vector, v: Vector, *, check_type: bool = True) -> bool:
    """Vector counterpart of :func:`matrices_equal`."""
    if not isinstance(u, Vector) or not isinstance(v, Vector):
        raise InvalidValue("vectors_equal compares two vectors")
    if u.size != v.size:
        return False
    if u.nvals() != v.nvals():
        return False
    if u.type.is_udt or v.type.is_udt:
        if u.type != v.type:
            return False
        return dict(iter(u)) == dict(iter(v))
    if check_type and u.type != v.type:
        return False
    cmp_domain = _common_builtin(u, v) or u.type
    w = Vector(BOOL, u.size)
    ewise_mult(w, None, None, EQ[cmp_domain], u, v, None)
    if w.nvals() != u.nvals():
        return False
    result = bool(reduce_to_scalar(LAND_MONOID[BOOL], w))
    w.free()
    return result


def pattern_equal(A, B) -> bool:
    """Structure-only comparison (values ignored)."""
    if isinstance(A, Matrix) and isinstance(B, Matrix):
        if A.shape != B.shape or A.nvals() != B.nvals():
            return False
        ra, ca, _ = A.extract_tuples()
        rb, cb, _ = B.extract_tuples()
        return bool(np.array_equal(ra, rb) and np.array_equal(ca, cb))
    if isinstance(A, Vector) and isinstance(B, Vector):
        if A.size != B.size or A.nvals() != B.nvals():
            return False
        ia, _ = A.extract_tuples()
        ib, _ = B.extract_tuples()
        return bool(np.array_equal(ia, ib))
    raise InvalidValue("pattern_equal compares two collections of one kind")


def norm_max(X) -> float:
    """max |x| over stored elements (0 for an empty collection)."""
    absd = (
        Matrix(FP64, X.nrows, X.ncols)
        if isinstance(X, Matrix)
        else Vector(FP64, X.size)
    )
    apply(absd, None, None, ABS[FP64], X, None)
    if absd.nvals() == 0:
        return 0.0
    out = float(reduce_to_scalar(MAX_MONOID[FP64], absd))
    absd.free()
    return out


def norm_sum(X) -> float:
    """Σ |x| over stored elements."""
    absd = (
        Matrix(FP64, X.nrows, X.ncols)
        if isinstance(X, Matrix)
        else Vector(FP64, X.size)
    )
    apply(absd, None, None, ABS[FP64], X, None)
    out = float(reduce_to_scalar(PLUS_MONOID[FP64], absd))
    absd.free()
    return out


def is_symmetric(A: Matrix, *, values: bool = True) -> bool:
    """Pattern (and optionally value) symmetry check via one transpose."""
    if A.nrows != A.ncols:
        return False
    from .operations import transpose

    T = Matrix(A.type, A.nrows, A.ncols)
    transpose(T, None, None, A, None)
    out = matrices_equal(A, T) if values else pattern_equal(A, T)
    T.free()
    return out
