"""Matrix Market (``.mtx``) coordinate-format I/O.

The interchange format every sparse-graph toolchain (including the
GraphBLAS community's own test suites) speaks.  Supports the coordinate
variants a graph workload needs: ``real``/``integer``/``pattern`` fields
with ``general``/``symmetric``/``skew-symmetric`` symmetry.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from ..containers.matrix import Matrix
from ..info import InvalidValue
from ..ops import binary
from ..types import BOOL, FP64, INT64, GrBType

__all__ = ["mmread", "mmwrite"]

_FIELD_TYPES = {
    "real": FP64,
    "integer": INT64,
    "pattern": BOOL,
}


def mmread(source, domain: GrBType | None = None) -> Matrix:
    """Read a Matrix Market coordinate file into a :class:`Matrix`.

    *source* may be a path or an open text file.  *domain* overrides the
    header-implied domain (values are cast on build).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as fh:
            return mmread(fh, domain)

    header = source.readline().strip().lower().split()
    if (
        len(header) != 5
        or header[0] != "%%matrixmarket"
        or header[1] != "matrix"
    ):
        raise InvalidValue("not a Matrix Market file")
    fmt, field, symmetry = header[2], header[3], header[4]
    if fmt != "coordinate":
        raise InvalidValue("only coordinate (sparse) Matrix Market is supported")
    if field not in _FIELD_TYPES:
        raise InvalidValue(f"unsupported Matrix Market field {field!r}")
    if symmetry not in ("general", "symmetric", "skew-symmetric"):
        raise InvalidValue(f"unsupported Matrix Market symmetry {symmetry!r}")

    line = source.readline()
    while line.startswith("%") or not line.strip():
        line = source.readline()
    nrows, ncols, nnz = (int(x) for x in line.split())

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    k = 0
    for line in source:
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        parts = line.split()
        rows[k] = int(parts[0]) - 1  # 1-based on disk
        cols[k] = int(parts[1]) - 1
        vals[k] = 1.0 if field == "pattern" else float(parts[2])
        k += 1
    if k != nnz:
        raise InvalidValue(f"expected {nnz} entries, found {k}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        extra_r, extra_c = cols[off], rows[off]
        extra_v = -vals[off] if symmetry == "skew-symmetric" else vals[off]
        rows = np.concatenate([rows, extra_r])
        cols = np.concatenate([cols, extra_c])
        vals = np.concatenate([vals, extra_v])

    dom = domain or _FIELD_TYPES[field]
    dup = binary.FIRST[dom] if dom in binary.FIRST else None
    return Matrix.from_coo(dom, nrows, ncols, rows, cols, vals, dup)


def mmwrite(target, A: Matrix, comment: str = "") -> None:
    """Write a :class:`Matrix` as a general coordinate Matrix Market file."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as fh:
            mmwrite(fh, A, comment)
            return

    if A.type is BOOL or A.type.is_bool:
        field = "pattern"
    elif A.type.is_integral:
        field = "integer"
    else:
        field = "real"
    target.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    if comment:
        for ln in comment.splitlines():
            target.write(f"% {ln}\n")
    rows, cols, vals = A.extract_tuples()
    target.write(f"{A.nrows} {A.ncols} {len(rows)}\n")
    if field == "pattern":
        for i, j in zip(rows, cols):
            target.write(f"{i + 1} {j + 1}\n")
    elif field == "integer":
        for i, j, v in zip(rows, cols, vals):
            target.write(f"{i + 1} {j + 1} {int(v)}\n")
    else:
        for i, j, v in zip(rows, cols, vals):
            target.write(f"{i + 1} {j + 1} {float(v):.17g}\n")


def mmread_string(text: str, domain: GrBType | None = None) -> Matrix:
    """Parse Matrix Market content from a string (test convenience)."""
    return mmread(_io.StringIO(text), domain)
