"""Opaque-object serialization (the GxB_*_serialize extension).

Collections round-trip through a self-describing byte blob: a JSON header
(kind, domain, dimensions, nnz, dtype) followed by the raw key and value
arrays.  Built-in domains serialize their numpy buffers directly;
user-defined domains fall back to pickle for the value column (documented —
the C API has the same caveat via user serializers).
"""

from __future__ import annotations

import json
import pickle
import struct

import numpy as np

from ..containers.matrix import Matrix
from ..containers.scalar import Scalar
from ..containers.vector import Vector
from ..info import InvalidValue
from ..types import GrBType, lookup_type, type_new

__all__ = ["serialize", "deserialize"]

_MAGIC = b"GRBP"
_VERSION = 1


def _pack(header: dict, *arrays: bytes) -> bytes:
    hdr = json.dumps(header).encode()
    out = [_MAGIC, struct.pack("<HI", _VERSION, len(hdr)), hdr]
    for blob in arrays:
        out.append(struct.pack("<Q", len(blob)))
        out.append(blob)
    return b"".join(out)


def _unpack(data: bytes) -> tuple[dict, list[bytes]]:
    if data[:4] != _MAGIC:
        raise InvalidValue("not a repro-serialized GraphBLAS object")
    version, hlen = struct.unpack_from("<HI", data, 4)
    if version != _VERSION:
        raise InvalidValue(f"unsupported serialization version {version}")
    pos = 10
    header = json.loads(data[pos : pos + hlen].decode())
    pos += hlen
    blobs = []
    while pos < len(data):
        (n,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        blobs.append(data[pos : pos + n])
        pos += n
    return header, blobs


def _values_blob(values: np.ndarray, domain: GrBType) -> tuple[bytes, str]:
    if domain.is_udt:
        return pickle.dumps(list(values)), "pickle"
    return values.tobytes(), values.dtype.str


def _values_from_blob(blob: bytes, encoding: str, domain: GrBType) -> np.ndarray:
    if encoding == "pickle":
        out = np.empty(0, dtype=object)
        items = pickle.loads(blob)
        out = np.empty(len(items), dtype=object)
        for k, v in enumerate(items):
            out[k] = v
        return out
    return np.frombuffer(blob, dtype=np.dtype(encoding)).copy()


def serialize(obj) -> bytes:
    """Serialize a Matrix, Vector, or Scalar to a portable byte blob."""
    if isinstance(obj, Matrix):
        obj._check_valid()
        rows, cols, vals = obj.extract_tuples()
        vblob, enc = _values_blob(vals, obj.type)
        header = {
            "kind": "matrix",
            "domain": obj.type.name if obj.type.is_builtin else "udt",
            "udt_name": None if obj.type.is_builtin else obj.type.name,
            "nrows": obj.nrows,
            "ncols": obj.ncols,
            "nvals": len(rows),
            "values": enc,
        }
        return _pack(header, rows.tobytes(), cols.tobytes(), vblob)
    if isinstance(obj, Vector):
        obj._check_valid()
        idx, vals = obj.extract_tuples()
        vblob, enc = _values_blob(vals, obj.type)
        header = {
            "kind": "vector",
            "domain": obj.type.name if obj.type.is_builtin else "udt",
            "udt_name": None if obj.type.is_builtin else obj.type.name,
            "size": obj.size,
            "nvals": len(idx),
            "values": enc,
        }
        return _pack(header, idx.tobytes(), vblob)
    if isinstance(obj, Scalar):
        obj._check_valid()
        empty = obj.nvals() == 0
        vblob = b"" if empty else pickle.dumps(obj.extract_value())
        header = {
            "kind": "scalar",
            "domain": obj.type.name if obj.type.is_builtin else "udt",
            "udt_name": None if obj.type.is_builtin else obj.type.name,
            "nvals": 0 if empty else 1,
            "values": "pickle",
        }
        return _pack(header, vblob)
    raise InvalidValue(f"cannot serialize {type(obj).__name__}")


def _domain_of(header: dict, udt_class: type | None) -> GrBType:
    if header["domain"] != "udt":
        return lookup_type(header["domain"])
    if udt_class is None:
        raise InvalidValue(
            "deserializing a user-defined-type object requires udt_class"
        )
    return type_new(header["udt_name"] or "udt", udt_class)


def deserialize(data: bytes, udt_class: type | None = None):
    """Reconstruct a serialized Matrix, Vector, or Scalar."""
    header, blobs = _unpack(data)
    domain = _domain_of(header, udt_class)
    kind = header["kind"]
    if kind == "matrix":
        rows = np.frombuffer(blobs[0], dtype=np.int64)
        cols = np.frombuffer(blobs[1], dtype=np.int64)
        vals = _values_from_blob(blobs[2], header["values"], domain)
        out = Matrix(domain, header["nrows"], header["ncols"])
        if len(rows):
            out.build(rows, cols, vals)
        return out
    if kind == "vector":
        idx = np.frombuffer(blobs[0], dtype=np.int64)
        vals = _values_from_blob(blobs[1], header["values"], domain)
        out = Vector(domain, header["size"])
        if len(idx):
            out.build(idx, vals)
        return out
    if kind == "scalar":
        out = Scalar(domain)
        if header["nvals"]:
            out.set_value(pickle.loads(blobs[0]))
        return out
    raise InvalidValue(f"unknown serialized kind {kind!r}")
