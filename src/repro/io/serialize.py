"""Opaque-object serialization (the GxB_*_serialize extension).

Collections round-trip through a self-describing byte blob: a JSON header
(kind, domain, dimensions, nnz, dtype) followed by the raw key and value
arrays.  Built-in domains serialize their numpy buffers directly;
user-defined domains fall back to pickle for the value column (documented —
the C API has the same caveat via user serializers).
"""

from __future__ import annotations

import json
import pickle
import struct

import numpy as np

from ..containers.matrix import Matrix
from ..containers.scalar import Scalar
from ..containers.vector import Vector
from ..info import InvalidValue
from ..types import GrBType, lookup_type, type_new

__all__ = ["serialize", "deserialize"]

_MAGIC = b"GRBP"
_VERSION = 1


def _pack(header: dict, *arrays: bytes) -> bytes:
    hdr = json.dumps(header).encode()
    out = [_MAGIC, struct.pack("<HI", _VERSION, len(hdr)), hdr]
    for blob in arrays:
        out.append(struct.pack("<Q", len(blob)))
        out.append(blob)
    return b"".join(out)


def _unpack(data: bytes) -> tuple[dict, list[bytes]]:
    """Split a blob into header + array sections, bounds-checking every
    offset: any truncation or corruption is ``InvalidValue``, never a
    leaked ``struct.error`` / ``JSONDecodeError`` / silent short read."""
    try:
        data = bytes(data)
    except (TypeError, ValueError):
        raise InvalidValue("serialized object must be a bytes-like blob") from None
    if data[:4] != _MAGIC:
        raise InvalidValue("not a repro-serialized GraphBLAS object")
    if len(data) < 10:
        raise InvalidValue("truncated serialized object: incomplete preamble")
    version, hlen = struct.unpack_from("<HI", data, 4)
    if version != _VERSION:
        raise InvalidValue(f"unsupported serialization version {version}")
    pos = 10
    if pos + hlen > len(data):
        raise InvalidValue("truncated serialized object: incomplete header")
    try:
        header = json.loads(data[pos : pos + hlen].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InvalidValue(f"corrupt serialization header: {exc}") from None
    if not isinstance(header, dict):
        raise InvalidValue("corrupt serialization header: not an object")
    pos += hlen
    blobs = []
    while pos < len(data):
        if pos + 8 > len(data):
            raise InvalidValue(
                "truncated serialized object: incomplete section length"
            )
        (n,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        if pos + n > len(data):
            raise InvalidValue(
                "truncated serialized object: section shorter than declared"
            )
        blobs.append(data[pos : pos + n])
        pos += n
    return header, blobs


def _values_blob(values: np.ndarray, domain: GrBType) -> tuple[bytes, str]:
    if domain.is_udt:
        return pickle.dumps(list(values)), "pickle"
    return values.tobytes(), values.dtype.str


def _values_from_blob(blob: bytes, encoding: str, domain: GrBType) -> np.ndarray:
    if encoding == "pickle":
        try:
            items = pickle.loads(blob)
        except Exception as exc:  # UnpicklingError, EOFError, ValueError, ...
            raise InvalidValue(f"corrupt pickled value column: {exc}") from None
        if not isinstance(items, (list, tuple)):
            raise InvalidValue("corrupt pickled value column: not a sequence")
        out = np.empty(len(items), dtype=object)
        for k, v in enumerate(items):
            out[k] = v
        return out
    try:
        dtype = np.dtype(encoding)
    except TypeError as exc:
        raise InvalidValue(f"unknown value encoding {encoding!r}: {exc}") from None
    if dtype.hasobject:
        raise InvalidValue(f"refusing object-dtype value encoding {encoding!r}")
    if dtype.itemsize and len(blob) % dtype.itemsize:
        raise InvalidValue(
            "truncated value column: length is not a multiple of the itemsize"
        )
    return np.frombuffer(blob, dtype=dtype).copy()


def serialize(obj) -> bytes:
    """Serialize a Matrix, Vector, or Scalar to a portable byte blob."""
    if isinstance(obj, Matrix):
        obj._check_valid()
        rows, cols, vals = obj.extract_tuples()
        vblob, enc = _values_blob(vals, obj.type)
        header = {
            "kind": "matrix",
            "domain": obj.type.name if obj.type.is_builtin else "udt",
            "udt_name": None if obj.type.is_builtin else obj.type.name,
            "nrows": obj.nrows,
            "ncols": obj.ncols,
            "nvals": len(rows),
            "values": enc,
        }
        return _pack(header, rows.tobytes(), cols.tobytes(), vblob)
    if isinstance(obj, Vector):
        obj._check_valid()
        idx, vals = obj.extract_tuples()
        vblob, enc = _values_blob(vals, obj.type)
        header = {
            "kind": "vector",
            "domain": obj.type.name if obj.type.is_builtin else "udt",
            "udt_name": None if obj.type.is_builtin else obj.type.name,
            "size": obj.size,
            "nvals": len(idx),
            "values": enc,
        }
        return _pack(header, idx.tobytes(), vblob)
    if isinstance(obj, Scalar):
        obj._check_valid()
        empty = obj.nvals() == 0
        vblob = b"" if empty else pickle.dumps(obj.extract_value())
        header = {
            "kind": "scalar",
            "domain": obj.type.name if obj.type.is_builtin else "udt",
            "udt_name": None if obj.type.is_builtin else obj.type.name,
            "nvals": 0 if empty else 1,
            "values": "pickle",
        }
        return _pack(header, vblob)
    raise InvalidValue(f"cannot serialize {type(obj).__name__}")


def _domain_of(header: dict, udt_class: type | None) -> GrBType:
    domain = header.get("domain")
    if not isinstance(domain, str):
        raise InvalidValue("corrupt serialization header: missing domain")
    if domain != "udt":
        return lookup_type(domain)
    if udt_class is None:
        raise InvalidValue(
            "deserializing a user-defined-type object requires udt_class"
        )
    return type_new(header.get("udt_name") or "udt", udt_class)


def _header_int(header: dict, key: str) -> int:
    v = header.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        raise InvalidValue(
            f"corrupt serialization header: bad {key!r} field {v!r}"
        )
    return v


def _index_column(blobs: list, i: int, nvals: int, what: str) -> np.ndarray:
    blob = blobs[i]
    if len(blob) != nvals * 8:
        raise InvalidValue(
            f"corrupt serialized object: {what} column holds "
            f"{len(blob)} bytes, expected {nvals * 8}"
        )
    return np.frombuffer(blob, dtype=np.int64)


def deserialize(data: bytes, udt_class: type | None = None):
    """Reconstruct a serialized Matrix, Vector, or Scalar.

    Malformed input of any shape — truncation at any offset, corrupt
    header, missing or short sections, count mismatches — raises
    :class:`~repro.info.InvalidValue`.
    """
    header, blobs = _unpack(data)
    domain = _domain_of(header, udt_class)
    kind = header.get("kind")
    try:
        if kind == "matrix":
            if len(blobs) != 3:
                raise InvalidValue(
                    f"matrix blob needs 3 sections, found {len(blobs)}"
                )
            nvals = _header_int(header, "nvals")
            rows = _index_column(blobs, 0, nvals, "row")
            cols = _index_column(blobs, 1, nvals, "column")
            vals = _values_from_blob(blobs[2], header.get("values"), domain)
            if len(vals) != nvals:
                raise InvalidValue(
                    f"value column holds {len(vals)} entries, "
                    f"header declares {nvals}"
                )
            out = Matrix(
                domain, _header_int(header, "nrows"), _header_int(header, "ncols")
            )
            if len(rows):
                out.build(rows, cols, vals)
            return out
        if kind == "vector":
            if len(blobs) != 2:
                raise InvalidValue(
                    f"vector blob needs 2 sections, found {len(blobs)}"
                )
            nvals = _header_int(header, "nvals")
            idx = _index_column(blobs, 0, nvals, "index")
            vals = _values_from_blob(blobs[1], header.get("values"), domain)
            if len(vals) != nvals:
                raise InvalidValue(
                    f"value column holds {len(vals)} entries, "
                    f"header declares {nvals}"
                )
            out = Vector(domain, _header_int(header, "size"))
            if len(idx):
                out.build(idx, vals)
            return out
        if kind == "scalar":
            if len(blobs) != 1:
                raise InvalidValue(
                    f"scalar blob needs 1 section, found {len(blobs)}"
                )
            out = Scalar(domain)
            if _header_int(header, "nvals"):
                try:
                    value = pickle.loads(blobs[0])
                except Exception as exc:
                    raise InvalidValue(
                        f"corrupt pickled scalar value: {exc}"
                    ) from None
                out.set_value(value)
            return out
    except InvalidValue:
        raise
    except Exception as exc:
        # a corrupt blob may fail deep inside build/domain checks; every
        # such failure is still just "malformed input" to the caller
        raise InvalidValue(f"corrupt serialized {kind} object: {exc}") from None
    raise InvalidValue(f"unknown serialized kind {kind!r}")
