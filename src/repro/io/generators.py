"""Synthetic graph generators for the benchmark workloads.

The paper's community validated against scale-free and mesh-like graphs
(Graph500/RMAT in the batched-BC literature it cites [2,10,11]); with no
access to the authors' inputs we generate the standard laptop-scale
equivalents deterministically from a seed:

* Erdős–Rényi G(n, m) random digraphs — uniform degree;
* RMAT/Kronecker power-law digraphs — the Graph500 generator's recursive
  quadrant sampling with (a, b, c, d) = (0.57, 0.19, 0.19, 0.05);
* 2-D grids, paths, cycles, stars, complete graphs — structured extremes.

All generators return an adjacency :class:`~repro.containers.Matrix` whose
stored element ``A(i, j)`` marks the edge i→j, matching Fig. 3's "presence
of an edge is indicated by a stored 1".
"""

from __future__ import annotations

import numpy as np

from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..info import InvalidValue
from ..ops import binary
from ..types import BOOL, FP64, INT32, GrBType

__all__ = [
    "erdos_renyi",
    "rmat",
    "grid_2d",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "random_vector",
]


def _finalize(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    domain: GrBType,
    rng: np.random.Generator,
    weighted: bool,
    self_loops: bool,
) -> Matrix:
    if not self_loops and len(rows):
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
    if weighted:
        vals = rng.uniform(1.0, 10.0, size=len(rows))
    else:
        vals = np.ones(len(rows), dtype=np.int64)
    # duplicates collapse via FIRST: the edge exists once
    dup = binary.FIRST[domain] if domain in binary.FIRST else None
    return Matrix.from_coo(domain, n, n, rows, cols, vals, dup)


def erdos_renyi(
    n: int,
    nedges: int,
    *,
    seed: int = 42,
    domain: GrBType = BOOL,
    weighted: bool = False,
    self_loops: bool = False,
) -> Matrix:
    """G(n, m): *nedges* directed edges sampled uniformly."""
    if n <= 0:
        raise InvalidValue("graph must have at least one vertex")
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=nedges, dtype=np.int64)
    cols = rng.integers(0, n, size=nedges, dtype=np.int64)
    return _finalize(n, rows, cols, domain, rng, weighted, self_loops)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 42,
    domain: GrBType = BOOL,
    weighted: bool = False,
    self_loops: bool = False,
) -> Matrix:
    """Graph500-style RMAT digraph: ``2**scale`` vertices, recursive
    quadrant sampling — the explicit form of the Kronecker-power generator.
    """
    if scale < 1 or scale > 24:
        raise InvalidValue("rmat scale must be in [1, 24] at laptop scale")
    n = 1 << scale
    m = n * edge_factor
    d = 1.0 - a - b - c
    if d < 0:
        raise InvalidValue("rmat probabilities must sum to at most 1")
    rng = np.random.default_rng(seed)
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # quadrant: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1)
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)
        go_down = r >= a + b
        rows |= go_down.astype(np.int64) << bit
        cols |= go_right.astype(np.int64) << bit
    return _finalize(n, rows, cols, domain, rng, weighted, self_loops)


def grid_2d(
    nr: int,
    nc: int,
    *,
    domain: GrBType = BOOL,
    weighted: bool = False,
    seed: int = 42,
) -> Matrix:
    """4-neighbour mesh on nr×nc vertices, edges in both directions."""
    idx = np.arange(nr * nc, dtype=np.int64).reshape(nr, nc)
    pairs = []
    pairs.append((idx[:, :-1].ravel(), idx[:, 1:].ravel()))  # east
    pairs.append((idx[:, 1:].ravel(), idx[:, :-1].ravel()))  # west
    pairs.append((idx[:-1, :].ravel(), idx[1:, :].ravel()))  # south
    pairs.append((idx[1:, :].ravel(), idx[:-1, :].ravel()))  # north
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    rng = np.random.default_rng(seed)
    return _finalize(nr * nc, rows, cols, domain, rng, weighted, False)


def path_graph(n: int, *, domain: GrBType = BOOL, directed: bool = True) -> Matrix:
    """0 → 1 → ... → n-1 (plus reverse edges when undirected)."""
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return Matrix.from_coo(domain, n, n, src, dst, np.ones(len(src), np.int64))


def cycle_graph(n: int, *, domain: GrBType = BOOL) -> Matrix:
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return Matrix.from_coo(domain, n, n, src, dst, np.ones(n, np.int64))


def complete_graph(n: int, *, domain: GrBType = BOOL) -> Matrix:
    rows = np.repeat(np.arange(n, dtype=np.int64), n)
    cols = np.tile(np.arange(n, dtype=np.int64), n)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return Matrix.from_coo(domain, n, n, rows, cols, np.ones(len(rows), np.int64))


def star_graph(n: int, *, domain: GrBType = BOOL) -> Matrix:
    """Hub 0 connected to and from all other vertices."""
    spokes = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    rows = np.concatenate([hub, spokes])
    cols = np.concatenate([spokes, hub])
    return Matrix.from_coo(domain, n, n, rows, cols, np.ones(len(rows), np.int64))


def random_vector(
    n: int,
    density: float,
    *,
    seed: int = 42,
    domain: GrBType = FP64,
) -> Vector:
    """A sparse vector with ~``density * n`` uniformly placed elements."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(round(density * n)))
    idx = rng.choice(n, size=min(nnz, n), replace=False)
    if domain is BOOL:
        vals = np.ones(len(idx), dtype=bool)
    elif domain.is_integral:
        vals = rng.integers(1, 100, size=len(idx))
    else:
        vals = rng.uniform(0.0, 1.0, size=len(idx))
    return Vector.from_coo(domain, n, idx, vals)
