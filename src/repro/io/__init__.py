"""Graph I/O: synthetic workload generators, Matrix Market files, and
converters to/from scipy.sparse and networkx."""

from .conversion import from_networkx, from_scipy, to_networkx, to_scipy_csr
from .edgelist import read_edgelist, write_edgelist
from .generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
    random_vector,
    rmat,
    star_graph,
)
from .matrix_market import mmread, mmread_string, mmwrite
from .serialize import deserialize, serialize

__all__ = [
    "erdos_renyi",
    "rmat",
    "grid_2d",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "random_vector",
    "mmread",
    "mmwrite",
    "mmread_string",
    "serialize",
    "read_edgelist",
    "write_edgelist",
    "deserialize",
    "to_scipy_csr",
    "from_scipy",
    "to_networkx",
    "from_networkx",
]
