"""Plain-text edge-list I/O (``src dst [weight]`` per line).

The lowest-common-denominator interchange format (SNAP datasets, Graph500
generators, spreadsheet exports).  Lines starting with ``#`` or ``%`` are
comments; vertices may be arbitrary non-negative integers (the matrix is
sized by the largest id seen unless ``nrows`` is given).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..containers.matrix import Matrix
from ..info import InvalidValue
from ..ops import binary
from ..types import BOOL, FP64, GrBType

__all__ = ["read_edgelist", "write_edgelist"]


def read_edgelist(
    source,
    *,
    domain: GrBType | None = None,
    n: int | None = None,
    comments: str = "#%",
    dedup: bool = True,
) -> Matrix:
    """Parse an edge list into an adjacency matrix.

    Weighted rows (three columns) produce an FP64 matrix by default;
    unweighted rows a BOOL pattern.  Mixed files are an error.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_edgelist(
                fh, domain=domain, n=n, comments=comments, dedup=dedup
            )

    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    weighted: bool | None = None
    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line or line[0] in comments:
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise InvalidValue(
                f"edge list line {lineno}: expected 2 or 3 columns"
            )
        this_weighted = len(parts) == 3
        if weighted is None:
            weighted = this_weighted
        elif weighted != this_weighted:
            raise InvalidValue(
                f"edge list line {lineno}: mixed weighted/unweighted rows"
            )
        u, v = int(parts[0]), int(parts[1])
        if u < 0 or v < 0:
            raise InvalidValue(f"edge list line {lineno}: negative vertex id")
        srcs.append(u)
        dsts.append(v)
        if this_weighted:
            weights.append(float(parts[2]))

    if not srcs:
        if n is None:
            raise InvalidValue("empty edge list and no explicit vertex count")
        dom = domain or BOOL
        return Matrix(dom, n, n)

    size = n if n is not None else max(max(srcs), max(dsts)) + 1
    dom = domain or (FP64 if weighted else BOOL)
    vals = weights if weighted else np.ones(len(srcs), dtype=np.int64)
    dup = None
    if dedup and dom in binary.FIRST:
        dup = binary.PLUS[dom] if weighted and dom in binary.PLUS else binary.FIRST[dom]
    return Matrix.from_coo(dom, size, size, srcs, dsts, vals, dup)


def write_edgelist(target, A: Matrix, *, write_weights: bool | None = None) -> None:
    """Write the stored edges, one ``src dst [weight]`` row per element."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_edgelist(fh, A, write_weights=write_weights)
            return
    rows, cols, vals = A.extract_tuples()
    if write_weights is None:
        write_weights = not (A.type.is_bool or A.type.is_udt)
    if write_weights:
        for i, j, v in zip(rows, cols, vals):
            target.write(f"{i} {j} {v}\n")
    else:
        for i, j in zip(rows, cols):
            target.write(f"{i} {j}\n")
