"""Converters between GraphBLAS collections and the scientific-Python
ecosystem (scipy.sparse, networkx, dense numpy).

These cross the opaque-object boundary, so they force completion — they are
exactly the "copy the contents of opaque objects into non-opaque objects"
methods of section III.  Note the semantic caveat the paper stresses: scipy
and dense arrays have *implied zeros*, GraphBLAS collections do not; going
to scipy drops nothing, but explicit stored zeros survive the round trip
only because we export the stored pattern rather than comparing to zero.
"""

from __future__ import annotations

import numpy as np

from ..containers.matrix import Matrix
from ..containers.vector import Vector
from ..info import InvalidValue
from ..ops import binary
from ..types import BOOL, FP64, GrBType
from .._sparseutil import unflatten_keys

__all__ = [
    "to_scipy_csr",
    "from_scipy",
    "to_networkx",
    "from_networkx",
]


def to_scipy_csr(A: Matrix):
    """Export the stored pattern/values as ``scipy.sparse.csr_array``."""
    import scipy.sparse as sp

    rows, cols, vals = A.extract_tuples()
    dtype = np.float64 if A.type.is_udt else A.type.np_dtype
    return sp.csr_array(
        (vals.astype(dtype), (rows, cols)), shape=A.shape
    )


def from_scipy(S, domain: GrBType | None = None) -> Matrix:
    """Build a :class:`Matrix` from any scipy sparse container.

    Stored entries become GraphBLAS tuples; scipy's implied zeros become
    undefined elements, as the paper's no-implied-zero model dictates.
    """
    coo = S.tocoo()
    if domain is None:
        kind = np.dtype(coo.dtype).kind
        domain = BOOL if kind == "b" else FP64
    dup = binary.FIRST[domain] if domain in binary.FIRST else None
    return Matrix.from_coo(
        domain, coo.shape[0], coo.shape[1], coo.row, coo.col, coo.data, dup
    )


def to_networkx(A: Matrix, weighted: bool = True):
    """Export as a ``networkx.DiGraph`` over vertices ``0..n-1``.

    All n vertices are added even if isolated, so algorithm comparisons
    (BC, PageRank) align index-for-index.
    """
    import networkx as nx

    if A.nrows != A.ncols:
        raise InvalidValue("adjacency export requires a square matrix")
    G = nx.DiGraph()
    G.add_nodes_from(range(A.nrows))
    rows, cols, vals = A.extract_tuples()
    if weighted:
        G.add_weighted_edges_from(
            (int(i), int(j), float(v)) for i, j, v in zip(rows, cols, vals)
        )
    else:
        G.add_edges_from((int(i), int(j)) for i, j in zip(rows, cols))
    return G


def from_networkx(G, domain: GrBType = BOOL, weight: str | None = None) -> Matrix:
    """Build an adjacency :class:`Matrix` from a networkx (di)graph.

    Vertices are relabelled to 0..n-1 in sorted order when they are not
    already integers.
    """
    nodes = sorted(G.nodes())
    index = {u: k for k, u in enumerate(nodes)}
    n = len(nodes)
    rows, cols, vals = [], [], []
    for u, v, data in G.edges(data=True):
        rows.append(index[u])
        cols.append(index[v])
        vals.append(data.get(weight, 1) if weight else 1)
        if not G.is_directed():
            rows.append(index[v])
            cols.append(index[u])
            vals.append(vals[-1])
    dup = binary.FIRST[domain] if domain in binary.FIRST else None
    return Matrix.from_coo(domain, n, n, rows, cols, vals, dup)
