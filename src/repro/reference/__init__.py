"""Spec-literal reference implementation.

A direct transliteration of the paper's set-notation mathematics onto
Python dictionaries: matrices are ``{(i, j): value}``, vectors are
``{i: value}``, and every Table II operation is written exactly as its
mathematical description reads — no vectorization, no cleverness.

It exists for two reasons:

* **oracle** — the optimized kernel suite is property-tested against it
  (same inputs, same ops, same masks/descriptors must give equal content);
* **baseline** — the benchmark harness reports optimized-vs-reference
  timings, standing in for the paper's "traditional implementation"
  comparisons.
"""

from .ref_impl import (
    RefMatrix,
    RefVector,
    ref_apply,
    ref_assign_matrix,
    ref_assign_scalar_matrix,
    ref_assign_scalar_vector,
    ref_assign_vector,
    ref_ewise_add,
    ref_ewise_mult,
    ref_extract_matrix,
    ref_extract_vector,
    ref_kronecker,
    ref_mxm,
    ref_mxv,
    ref_reduce_rows,
    ref_reduce_scalar,
    ref_select,
    ref_transpose,
    ref_vxm,
)

__all__ = [
    "RefMatrix",
    "RefVector",
    "ref_mxm",
    "ref_mxv",
    "ref_vxm",
    "ref_ewise_add",
    "ref_ewise_mult",
    "ref_apply",
    "ref_select",
    "ref_reduce_rows",
    "ref_reduce_scalar",
    "ref_transpose",
    "ref_extract_matrix",
    "ref_extract_vector",
    "ref_assign_matrix",
    "ref_assign_vector",
    "ref_assign_scalar_matrix",
    "ref_assign_scalar_vector",
    "ref_kronecker",
]
