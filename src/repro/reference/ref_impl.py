"""Dictionary-based transliteration of the GraphBLAS math (sections II, VI).

Conventions
-----------
* A :class:`RefMatrix` holds ``{(i, j): value}``; a :class:`RefVector`
  holds ``{i: value}``.  Values are whatever the operators produce (numpy
  scalars when mirroring the main implementation, so integer wrap-around
  matches bit-for-bit).
* Operators come straight from :mod:`repro.ops` objects — their
  ``scalar_fn`` is used, with the same casting helpers as the kernels, so
  oracle comparisons are exact rather than approximate.
* Every operation takes the same ``(mask, accum, descriptor-flags)``
  surface as the real API and runs the identical three-step pipeline,
  written pointwise.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..algebra.monoid import Monoid
from ..algebra.semiring import Semiring
from ..ops.base import BinaryOp, IndexUnaryOp, UnaryOp
from ..types import GrBType, cast_scalar

__all__ = [
    "RefMatrix",
    "RefVector",
    "ref_mxm",
    "ref_mxv",
    "ref_vxm",
    "ref_ewise_add",
    "ref_ewise_mult",
    "ref_apply",
    "ref_select",
    "ref_reduce_rows",
    "ref_reduce_scalar",
    "ref_transpose",
    "ref_extract_matrix",
    "ref_extract_vector",
    "ref_assign_matrix",
    "ref_assign_vector",
    "ref_assign_scalar_matrix",
    "ref_assign_scalar_vector",
    "ref_kronecker",
]


class RefMatrix:
    """``A = <D, M, N, L(A)>`` with ``L(A)`` an explicit dict."""

    def __init__(self, domain: GrBType, nrows: int, ncols: int, content=None):
        self.domain = domain
        self.nrows = nrows
        self.ncols = ncols
        self.content: dict[tuple[int, int], Any] = dict(content or {})

    @classmethod
    def from_grb(cls, M) -> "RefMatrix":
        rows, cols, vals = M.extract_tuples()
        return cls(
            M.type,
            M.nrows,
            M.ncols,
            {(int(i), int(j)): v for i, j, v in zip(rows, cols, vals)},
        )

    def copy(self) -> "RefMatrix":
        return RefMatrix(self.domain, self.nrows, self.ncols, self.content)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RefMatrix)
            and (self.nrows, self.ncols) == (other.nrows, other.ncols)
            and self.content.keys() == other.content.keys()
            and all(self.content[k] == other.content[k] for k in self.content)
        )


class RefVector:
    """``v = <D, N, L(v)>`` with ``L(v)`` an explicit dict."""

    def __init__(self, domain: GrBType, size: int, content=None):
        self.domain = domain
        self.size = size
        self.content: dict[int, Any] = dict(content or {})

    @classmethod
    def from_grb(cls, v) -> "RefVector":
        idx, vals = v.extract_tuples()
        return cls(v.type, v.size, {int(i): x for i, x in zip(idx, vals)})

    def copy(self) -> "RefVector":
        return RefVector(self.domain, self.size, self.content)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RefVector)
            and self.size == other.size
            and self.content.keys() == other.content.keys()
            and all(self.content[k] == other.content[k] for k in self.content)
        )


# --------------------------------------------------------------------------
# The write pipeline, pointwise
# --------------------------------------------------------------------------

def _mask_structure(mask, complement: bool, structural: bool, keys: Iterable):
    """The set of positions where writing is allowed (section III-C)."""
    if mask is None:
        return None
    if structural:
        base = set(mask.content.keys())
    else:
        base = {k for k, v in mask.content.items() if bool(v)}
    if not complement:
        return base
    return {k for k in keys if k not in base}


def _all_positions(obj) -> Iterable:
    if isinstance(obj, RefMatrix):
        return ((i, j) for i in range(obj.nrows) for j in range(obj.ncols))
    return range(obj.size)


def _cast(value, src: GrBType, dst: GrBType):
    return cast_scalar(value, src, dst)


def write_pipeline(
    C,
    mask,
    accum: BinaryOp | None,
    t: dict,
    t_type: GrBType,
    *,
    replace: bool = False,
    mask_comp: bool = False,
    mask_struct: bool = False,
) -> None:
    """Steps 3a/3b of section VI on dict content, literally."""
    # Z = C odot T
    if accum is None:
        z = {k: _cast(v, t_type, C.domain) for k, v in t.items()}
    else:
        z = dict(C.content)
        for k, v in t.items():
            if k in z:
                a = _cast(z[k], C.domain, accum.d_in1)
                b = _cast(v, t_type, accum.d_in2)
                z[k] = _cast(accum.scalar_fn(a, b), accum.d_out, C.domain)
            else:
                z[k] = _cast(v, t_type, C.domain)

    if mask is None:
        C.content = z
        return
    allowed = _mask_structure(mask, mask_comp, mask_struct, _all_positions(C))
    zm = {k: v for k, v in z.items() if k in allowed}
    if replace:
        C.content = zm
    else:
        merged = {k: v for k, v in C.content.items() if k not in allowed}
        merged.update(zm)
        C.content = merged


def _eff_matrix(A: RefMatrix, tran: bool) -> RefMatrix:
    if not tran:
        return A
    return RefMatrix(
        A.domain,
        A.ncols,
        A.nrows,
        {(j, i): v for (i, j), v in A.content.items()},
    )


# --------------------------------------------------------------------------
# Operations (Table II)
# --------------------------------------------------------------------------

def ref_mxm(
    C: RefMatrix,
    mask,
    accum,
    op: Semiring,
    A: RefMatrix,
    B: RefMatrix,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
    tran1=False,
) -> RefMatrix:
    """``C(i,j) = ⊕ over k in ind(A(i,:)) ∩ ind(B(:,j)) of A(i,k) ⊗ B(k,j)``."""
    Ae, Be = _eff_matrix(A, tran0), _eff_matrix(B, tran1)
    t: dict[tuple[int, int], Any] = {}
    b_by_row: dict[int, list] = {}
    for (k, j), bv in Be.content.items():
        b_by_row.setdefault(k, []).append((j, bv))
    for (i, k), av in sorted(Ae.content.items()):
        for j, bv in b_by_row.get(k, ()):
            prod = op.mul.scalar_fn(
                _cast(av, Ae.domain, op.d_in1), _cast(bv, Be.domain, op.d_in2)
            )
            if (i, j) in t:
                t[(i, j)] = op.add_op.scalar_fn(t[(i, j)], prod)
            else:
                t[(i, j)] = prod
    write_pipeline(
        C, mask, accum, t, op.d_out,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return C


def ref_mxv(
    w: RefVector,
    mask,
    accum,
    op: Semiring,
    A: RefMatrix,
    u: RefVector,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
) -> RefVector:
    Ae = _eff_matrix(A, tran0)
    t: dict[int, Any] = {}
    for (i, k), av in sorted(Ae.content.items()):
        if k in u.content:
            prod = op.mul.scalar_fn(
                _cast(av, Ae.domain, op.d_in1),
                _cast(u.content[k], u.domain, op.d_in2),
            )
            t[i] = op.add_op.scalar_fn(t[i], prod) if i in t else prod
    write_pipeline(
        w, mask, accum, t, op.d_out,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return w


def ref_vxm(
    w: RefVector,
    mask,
    accum,
    op: Semiring,
    u: RefVector,
    A: RefMatrix,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran1=False,
) -> RefVector:
    Ae = _eff_matrix(A, tran1)
    t: dict[int, Any] = {}
    for (i, j), av in sorted(Ae.content.items()):
        if i in u.content:
            prod = op.mul.scalar_fn(
                _cast(u.content[i], u.domain, op.d_in1),
                _cast(av, Ae.domain, op.d_in2),
            )
            t[j] = op.add_op.scalar_fn(t[j], prod) if j in t else prod
    write_pipeline(
        w, mask, accum, t, op.d_out,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return w


def _resolve_binary(op, which: str) -> BinaryOp:
    if isinstance(op, Semiring):
        return op.add_op if which == "add" else op.mul
    if isinstance(op, Monoid):
        return op.op
    return op


def ref_ewise_add(
    C,
    mask,
    accum,
    op,
    A,
    B,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
    tran1=False,
):
    """Pattern union; single-present entries pass through (cast to d_out)."""
    bop = _resolve_binary(op, "add")
    if isinstance(C, RefMatrix):
        Ae, Be = _eff_matrix(A, tran0), _eff_matrix(B, tran1)
    else:
        Ae, Be = A, B
    t = {}
    for k in set(Ae.content) | set(Be.content):
        in_a, in_b = k in Ae.content, k in Be.content
        if in_a and in_b:
            t[k] = bop.scalar_fn(
                _cast(Ae.content[k], Ae.domain, bop.d_in1),
                _cast(Be.content[k], Be.domain, bop.d_in2),
            )
        elif in_a:
            t[k] = _cast(Ae.content[k], Ae.domain, bop.d_out)
        else:
            t[k] = _cast(Be.content[k], Be.domain, bop.d_out)
    write_pipeline(
        C, mask, accum, t, bop.d_out,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return C


def ref_ewise_mult(
    C,
    mask,
    accum,
    op,
    A,
    B,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
    tran1=False,
):
    """Pattern intersection: ⊗ applied where both inputs have elements."""
    bop = _resolve_binary(op, "mult")
    if isinstance(C, RefMatrix):
        Ae, Be = _eff_matrix(A, tran0), _eff_matrix(B, tran1)
    else:
        Ae, Be = A, B
    t = {
        k: bop.scalar_fn(
            _cast(Ae.content[k], Ae.domain, bop.d_in1),
            _cast(Be.content[k], Be.domain, bop.d_in2),
        )
        for k in set(Ae.content) & set(Be.content)
    }
    write_pipeline(
        C, mask, accum, t, bop.d_out,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return C


def ref_apply(
    C,
    mask,
    accum,
    op: UnaryOp,
    A,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
):
    Ae = _eff_matrix(A, tran0) if isinstance(A, RefMatrix) else A
    t = {
        k: op.scalar_fn(_cast(v, Ae.domain, op.d_in))
        for k, v in Ae.content.items()
    }
    write_pipeline(
        C, mask, accum, t, op.d_out,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return C


def ref_select(
    C,
    mask,
    accum,
    op: IndexUnaryOp,
    A,
    thunk,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
):
    Ae = _eff_matrix(A, tran0) if isinstance(A, RefMatrix) else A
    t = {}
    for k, v in Ae.content.items():
        i, j = k if isinstance(k, tuple) else (k, 0)
        vin = _cast(v, Ae.domain, op.d_in) if op.d_in is not None else v
        if bool(op.scalar_fn(vin, i, j, thunk)):
            t[k] = v
    write_pipeline(
        C, mask, accum, t, Ae.domain,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return C


def ref_reduce_rows(
    w: RefVector,
    mask,
    accum,
    op,
    A: RefMatrix,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
) -> RefVector:
    """``w(i) = ⊕_j A(i,j)`` over stored elements, in column order."""
    red = op.op if isinstance(op, Monoid) else op
    domain = red.d_out
    Ae = _eff_matrix(A, tran0)
    t: dict[int, Any] = {}
    for (i, j), v in sorted(Ae.content.items()):
        vv = _cast(v, Ae.domain, domain)
        t[i] = red.scalar_fn(t[i], vv) if i in t else vv
    write_pipeline(
        w, mask, accum, t, domain,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return w


def ref_reduce_scalar(op: Monoid, A) -> Any:
    acc = op.identity
    for k in sorted(A.content):
        acc = op.op.scalar_fn(acc, _cast(A.content[k], A.domain, op.domain))
    return acc


def ref_transpose(
    C: RefMatrix,
    mask,
    accum,
    A: RefMatrix,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
) -> RefMatrix:
    Ae = _eff_matrix(A, not tran0)  # the operation supplies one transpose
    write_pipeline(
        C, mask, accum, dict(Ae.content), Ae.domain,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return C


def ref_extract_matrix(
    C: RefMatrix,
    mask,
    accum,
    A: RefMatrix,
    rows,
    cols,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
) -> RefMatrix:
    Ae = _eff_matrix(A, tran0)
    rows = list(rows)
    cols = list(cols)
    t = {}
    for oi, i in enumerate(rows):
        for oj, j in enumerate(cols):
            if (i, j) in Ae.content:
                t[(oi, oj)] = Ae.content[(i, j)]
    write_pipeline(
        C, mask, accum, t, Ae.domain,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return C


def ref_extract_vector(
    w: RefVector,
    mask,
    accum,
    u: RefVector,
    indices,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
) -> RefVector:
    t = {
        oi: u.content[i]
        for oi, i in enumerate(indices)
        if i in u.content
    }
    write_pipeline(
        w, mask, accum, t, u.domain,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return w


def _ref_assign_common(C, mask, accum, t, t_type, region, flags):
    """Assign semantics: without accum, region positions absent from the
    source are deleted; then the standard masked write applies."""
    if accum is None:
        z_source = {k: v for k, v in C.content.items() if k not in region}
        z_source.update({k: _cast(v, t_type, C.domain) for k, v in t.items()})
        # reuse the pipeline's mask/replace step with Z as the "result"
        write_pipeline(C, mask, None, z_source, C.domain, **flags)
    else:
        write_pipeline(C, mask, accum, t, t_type, **flags)
    return C


def ref_assign_matrix(
    C: RefMatrix,
    mask,
    accum,
    A: RefMatrix,
    rows,
    cols,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
) -> RefMatrix:
    Ae = _eff_matrix(A, tran0)
    rows = list(rows)
    cols = list(cols)
    t = {
        (rows[i], cols[j]): v for (i, j), v in Ae.content.items()
    }
    region = {(i, j) for i in rows for j in cols}
    flags = dict(replace=replace, mask_comp=mask_comp, mask_struct=mask_struct)
    return _ref_assign_common(C, mask, accum, t, Ae.domain, region, flags)


def ref_assign_vector(
    w: RefVector,
    mask,
    accum,
    u: RefVector,
    indices,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
) -> RefVector:
    indices = list(indices)
    t = {indices[i]: v for i, v in u.content.items()}
    region = set(indices)
    flags = dict(replace=replace, mask_comp=mask_comp, mask_struct=mask_struct)
    return _ref_assign_common(w, mask, accum, t, u.domain, region, flags)


def ref_assign_scalar_matrix(
    C: RefMatrix,
    mask,
    accum,
    value,
    rows,
    cols,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
) -> RefMatrix:
    t = {(i, j): value for i in rows for j in cols}
    region = set(t)
    flags = dict(replace=replace, mask_comp=mask_comp, mask_struct=mask_struct)
    return _ref_assign_common(C, mask, accum, t, C.domain, region, flags)


def ref_assign_scalar_vector(
    w: RefVector,
    mask,
    accum,
    value,
    indices,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
) -> RefVector:
    t = {i: value for i in indices}
    region = set(t)
    flags = dict(replace=replace, mask_comp=mask_comp, mask_struct=mask_struct)
    return _ref_assign_common(w, mask, accum, t, w.domain, region, flags)


def ref_kronecker(
    C: RefMatrix,
    mask,
    accum,
    op,
    A: RefMatrix,
    B: RefMatrix,
    *,
    replace=False,
    mask_comp=False,
    mask_struct=False,
    tran0=False,
    tran1=False,
) -> RefMatrix:
    mul = _resolve_binary(op, "mult")
    Ae, Be = _eff_matrix(A, tran0), _eff_matrix(B, tran1)
    t = {}
    for (i, j), av in Ae.content.items():
        for (p, q), bv in Be.content.items():
            t[(i * Be.nrows + p, j * Be.ncols + q)] = mul.scalar_fn(
                _cast(av, Ae.domain, mul.d_in1),
                _cast(bv, Be.domain, mul.d_in2),
            )
    write_pipeline(
        C, mask, accum, t, mul.d_out,
        replace=replace, mask_comp=mask_comp, mask_struct=mask_struct,
    )
    return C
