"""Planner configuration: per-pass on/off knobs for A/B benchmarking.

The knobs are process-global (like :mod:`repro.parallel`'s thread count) and
consulted at drain time, so a sequence queued under one configuration can be
completed under another — handy for ablations:

    repro.planner.configure(fusion=False, cse=False)   # dead-op elim only
    with repro.planner.override(enabled=False):        # planner fully off
        grb.wait()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields, replace

__all__ = ["PlannerOptions", "configure", "options", "override", "reset_options"]


@dataclass
class PlannerOptions:
    #: master switch — off means drain in plain program order, no passes
    enabled: bool = True
    #: eliminate ops whose output is overwritten before any read
    dead_op: bool = True
    #: fuse producer→consumer pairs, skipping the intermediate's storage
    fusion: bool = True
    #: reuse the internal result T of identical pure ops on unchanged inputs
    cse: bool = True
    #: dispatch independent DAG levels on the parallel thread pool
    parallel: bool = True


_options = PlannerOptions()


def options() -> PlannerOptions:
    """The live options object (mutate via :func:`configure`)."""
    return _options


def configure(**knobs: bool) -> PlannerOptions:
    """Set planner knobs by name; unknown names raise ``InvalidValue``."""
    from ...info import InvalidValue

    valid = {f.name for f in fields(PlannerOptions)}
    for name, value in knobs.items():
        if name not in valid:
            raise InvalidValue(
                f"unknown planner option {name!r}; valid: {sorted(valid)}"
            )
        setattr(_options, name, bool(value))
    return _options


def reset_options() -> None:
    """Restore every knob to its default (test isolation; ``context._reset``)."""
    defaults = PlannerOptions()
    for f in fields(PlannerOptions):
        setattr(_options, f.name, getattr(defaults, f.name))


@contextmanager
def override(**knobs: bool):
    """Temporarily apply *knobs*, restoring the previous values on exit."""
    saved = replace(_options)
    configure(**knobs)
    try:
        yield _options
    finally:
        for f in fields(PlannerOptions):
            setattr(_options, f.name, getattr(saved, f.name))
