"""The planner's optimization passes.

All three passes exploit the same freedom: section IV of the paper defers
the *computation* of a sequence, promising only that objects' final values
match program order.  Intermediate values of opaque objects are unobservable
until the sequence completes, so ops whose effects cannot be observed may be
dropped (dead-op elimination), collapsed (fusion), or shared (CSE).
"""

from __future__ import annotations

from ..sequence import DeferredOp
from .graph import Graph

__all__ = ["dead_op_pass", "fusion_pass", "cse_pass"]


def _reads(op: DeferredOp, obj) -> bool:
    return any(r is obj for r in op.reads)


def dead_op_pass(
    ops: list[DeferredOp],
) -> tuple[list[DeferredOp], list[DeferredOp]]:
    """Drop ops whose output is overwritten before anything reads it.

    Backward scan; ``dead`` holds objects whose next surviving touch is a
    pure overwrite.  A kept op's reads resurrect those objects; an elided
    op's reads never happen, so they protect nothing (its inputs can be
    dead for even earlier writers).

    The hazard rule, exactly: an op marks its output dead *only if* it
    overwrites it **and** does not also read it.  An op whose ``writes``
    object appears in its own ``reads`` (accum/merge-style) consumes the
    prior value no matter what its overwrite flag claims, so it is a read
    barrier for earlier writers — never a license to elide them.
    """
    live: list[DeferredOp] = []
    elided: list[DeferredOp] = []
    dead: set[int] = set()
    for op in reversed(ops):
        if id(op.writes) in dead:
            elided.append(op)
            continue
        for r in op.reads:
            dead.discard(id(r))
        if op.overwrites_output and not _reads(op, op.writes):
            dead.add(id(op.writes))
        else:
            dead.discard(id(op.writes))
        live.append(op)
    live.reverse()
    elided.reverse()
    return live, elided


def fusion_pass(g: Graph, ops: list[DeferredOp], owner: list[int]) -> int:
    """Contract producer→consumer chains whose intermediates are unobservable.

    A producer P (pure overwrite of X, spec'd kernel) fuses with the one
    consumer Q of its result when Q is a single-input stream transform —
    a value map (``apply``), a predicate filter (``select``), or a row
    reduction (``reduce``) — over X, and X's value between P and Q can
    never be seen after the drain:

    * **case (a)** — Q writes X itself, accum-free, unmasked-or-replace:
      X ends up holding Q's result, which fusion computes identically;
    * **case (b)** — Q writes elsewhere and the next toucher of X is a pure
      overwrite: P's value of X is dead, so X keeps its pre-sequence
      content until that overwriter runs — exactly what skipping P's store
      leaves behind.

    Q must be the *only* reader of P's result (scanned at op granularity so
    members of earlier contractions are positioned correctly), and the
    contraction must not close a cycle through unrelated objects
    (P → m → Q via WAR/WAW chains); :meth:`Graph.has_path` guards that.

    The same argument then applies *to the chain itself*: whenever the
    just-absorbed link is overwrite-shaped (no accumulator, unmasked or
    replace-mode — so its output would hold exactly its mask-filtered T),
    its result is another un-materialized stream, and the pass greedily
    tries to absorb *its* sole consumer too.  Chains therefore grow to
    arbitrary length, one contraction (and one increment of the return
    value) per absorbed link; the semantic tests live in
    :mod:`repro.kernels.chain` and any chain built here is runnable by the
    interpreter backend — legality never depends on codegen eligibility.

    *owner* maps op position → owning node index and is updated in place.
    """
    from ...kernels.chain import is_stream_link, overwrite_shaped

    fused = 0
    for i, p_op in enumerate(ops):
        if owner[i] != i or not g.nodes[i].alive:
            continue
        node_p = g.nodes[i]
        if node_p.fused_chain is not None:
            continue
        p_spec = p_op.spec
        if (
            p_spec is None
            or p_spec.kernel is None
            or not p_op.overwrites_output
        ):
            continue

        tail_pos = i
        while True:
            X = ops[tail_pos].writes

            # who touches X after the chain's tail?  (op granularity,
            # program order)
            readers: list[int] = []
            next_writer: int | None = None
            for k in range(tail_pos + 1, len(ops)):
                o = ops[k]
                if _reads(o, X):
                    readers.append(k)
                if o.writes is X:
                    next_writer = k
                    break
            if len(readers) != 1:
                break
            j = readers[0]
            if owner[j] != j or not g.nodes[j].alive:
                break
            if g.nodes[j].fused_chain is not None:
                break
            q_op = ops[j]
            q_spec = q_op.spec
            if q_spec is None or not is_stream_link(q_spec):
                break
            if q_spec.inputs != (X,) or q_spec.mask is X:
                break
            if q_spec.desc.transpose0:
                break

            if next_writer == j:
                # case (a): the in-place consumer — X becomes Q's result
                if not overwrite_shaped(q_spec):
                    break
            else:
                # case (b): the tail's value of X must be provably dead
                if next_writer is None:
                    break  # X would keep the stream — must materialize
                w_op = ops[next_writer]
                if not w_op.overwrites_output or _reads(w_op, X):
                    break

            if g.has_path(i, j, skip_direct=True):
                break  # contraction would close a cycle

            g.contract(i, j)
            if node_p.fused_chain is None:
                node_p.fused_chain = [p_spec, q_spec]
            else:
                node_p.fused_chain.append(q_spec)
            owner[j] = i
            fused += 1

            # the chain streams past Q only when Q's own write would have
            # been a pure overwrite of its mask-filtered T
            if not overwrite_shaped(q_spec):
                break
            tail_pos = j
    return fused


def cse_pass(g: Graph, ops: list[DeferredOp], owner: list[int]) -> int:
    """Share the internal result T of identical pure ops on unchanged inputs.

    Two ops compute the same T when they have the same kind, operator,
    result domain, descriptor transform bits, input objects, and mask — and
    the content of every input (and the mask) is unchanged between them.
    Content versions are tracked as per-object write counters advanced in
    program order, so the fingerprint is purely structural: no values are
    hashed.

    The duplicate keeps its own write pipeline (its output, mask, accum and
    replace mode may all differ); only the kernel is skipped.  An edge
    source→duplicate sequences the reuse; fused nodes are excluded on both
    sides (their T never exists on its own).
    """
    hits = 0
    writeseq: dict[int, int] = {}
    sources: dict[tuple, int] = {}
    for k, op in enumerate(ops):
        node = g.nodes[owner[k]]
        spec = op.spec
        if (
            owner[k] == k
            and node.alive
            and node.fused_chain is None
            and spec is not None
            and spec.kernel is not None
            and spec.op_token is not None
        ):
            fp = (
                spec.kind,
                id(spec.op_token),
                id(spec.t_type),
                spec.desc.transpose0,
                spec.desc.transpose1,
                spec.desc.mask_complement,
                spec.desc.mask_structure,
                tuple(id(x) for x in spec.inputs),
                id(spec.mask) if spec.mask is not None else None,
                tuple(writeseq.get(id(x), 0) for x in spec.inputs),
                writeseq.get(id(spec.mask), 0) if spec.mask is not None else 0,
            )
            src = sources.get(fp)
            if src is not None and g.nodes[src].alive and not g.has_path(k, src):
                node.cse_source = src
                g.nodes[src].capture = True
                g.add_edge(src, k)
                hits += 1
            elif src is None:
                sources[fp] = k
        writeseq[id(op.writes)] = writeseq.get(id(op.writes), 0) + 1
    return hits
