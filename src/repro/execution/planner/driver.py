"""Plan construction and the level-order DAG scheduler.

:func:`build_plan` is the queue's drain-time entry point: it runs the pass
pipeline (dead-op → fusion → CSE, each individually switchable via
:mod:`.config`) and returns an :class:`ExecutionPlan` whose :meth:`run`
executes the surviving nodes level by level.  Nodes within a level share no
hazards, so when the parallel pass is on and :func:`repro.parallel.
get_num_threads` allows it, a level's nodes are dispatched concurrently on
the shared thread pool — with nested kernel parallelism suppressed via
:func:`repro.parallel.serial_section` so scheduler workers never re-enter
the pool they occupy.
"""

from __future__ import annotations

from typing import Callable

from ...parallel import get_backend, get_num_threads, serial_section, thread_pool
from ..sequence import DeferredOp, QueueStats
from .config import options
from .graph import Graph, OpNode, build_graph
from .passes import cse_pass, dead_op_pass, fusion_pass

__all__ = ["build_plan", "ExecutionPlan"]


def _node_provenance(g: Graph) -> dict[int, tuple[list, list]]:
    """(request_ids, trace_ids) per live node — provenance merge, not loss.

    A node's ids are the union over its member ops' enqueue-time stamps, so
    a pair fused *across requests* carries both originators.  A CSE source
    additionally absorbs the ids of every duplicate that will reuse its
    cached result: the kernel it runs is shared work, and a per-request
    drain-share apportioned from these ids must bill every beneficiary.
    """
    rids: dict[int, set] = {}
    tids: dict[int, set] = {}
    for node in g.alive_nodes():
        traces = [op.trace for op in node.ops if op.trace is not None]
        rids[node.index] = {str(t.request_id) for t in traces}
        tids[node.index] = {t.trace_id for t in traces}
    for node in g.alive_nodes():
        src = node.cse_source
        if src is not None and src in rids:
            rids[src] |= rids[node.index]
            tids[src] |= tids[node.index]
    return {
        i: (sorted(rids[i]), sorted(tids[i])) for i in rids
    }


def _attach_runners(g: Graph) -> None:
    """Give every live node its executable.

    Every runner is span-wrapped *now* — drain time — so a scheduled node
    records exactly one op span, under a label that makes planner rewrites
    visible (``mxm+apply[fused]``, ``mxm[cse]``) and with the rewrite's
    provenance (member labels, CSE source, originating request ids) in the
    span attrs.  With no capture armed ``wrap_thunk`` hands the runner back
    unchanged; with a :class:`repro.obs.tracing.DrainAccounting` installed
    on the draining thread, runners are additionally timed and their
    realized flops tallied per request id (bound by closure, so nodes
    dispatched to pool threads still report back).
    """
    from ...obs import diag as _diag
    from ...obs import tracing as _tracing
    from ...operations.common import execute_chain, execute_standard
    from ..trace import wrap_thunk

    acct = _tracing.current_accounting()
    detector = _diag.detector()
    backend_name = _kernel_backend_name() if detector is not None else ""
    provenance = _node_provenance(g)
    cache: dict[int, tuple] = {}
    for node in g.alive_nodes():
        rids, t_ids = provenance[node.index]
        prov: dict = {}
        if rids:
            prov["request_ids"] = rids
            prov["trace_ids"] = t_ids
        if node.fused_chain is not None:

            def fused_run(specs=tuple(node.fused_chain)):
                execute_chain(list(specs))

            prov["fused_of"] = [op.label for op in node.ops]
            runner = wrap_thunk(
                fused_run, node.label, deferred=True, provenance=prov
            )
        elif node.cse_source is not None:

            def cse_run(spec=node.ops[0].spec, src=node.cse_source):
                execute_standard(spec, precomputed=cache[src])

            prov["cse_of"] = node.cse_source
            runner = wrap_thunk(
                cse_run, node.label, deferred=True, provenance=prov
            )
        elif node.capture:

            def capture_run(spec=node.ops[0].spec, idx=node.index):
                execute_standard(
                    spec, capture=lambda k, v: cache.__setitem__(idx, (k, v))
                )

            runner = wrap_thunk(
                capture_run, node.label, deferred=True, provenance=prov or None
            )
        else:
            runner = wrap_thunk(
                node.ops[0].thunk, node.label, deferred=True,
                provenance=prov or None,
            )
            # plain single-op nodes are candidates for the sharded backend;
            # the shard scheduler re-wraps its own completion with the same
            # provenance/accounting, so stash them here
            node.shard = {
                "spec": node.ops[0].spec,
                "prov": prov or None,
                "rids": rids,
            }
        if detector is not None:
            runner = _anomaly_wrap(runner, node.label, backend_name)
        node.runner = acct.wrap(runner, rids) if acct is not None else runner


def _kernel_backend_name() -> str:
    from ...kernels.interface import active_backend

    try:
        return active_backend().name
    except Exception:
        return "interpreter"


def _anomaly_wrap(runner, label: str, backend: str):
    """Time *runner* for the installed anomaly detector (nested tallies
    propagate, so this composes with :meth:`DrainAccounting.wrap`)."""
    import time as _time

    from ...obs import diag as _diag
    from ...obs.tracing import _tally_begin, _tally_end

    def observed():
        token = _tally_begin()
        t0 = _time.perf_counter()
        try:
            runner()
        finally:
            _diag.observe_kernel(
                label, backend,
                seconds=_time.perf_counter() - t0,
                flops=_tally_end(token),
            )

    return observed


def _explain_record(g: Graph, levels: list, elided: int) -> dict:
    """One EXPLAIN entry for a built plan: every surviving node with its
    rewrite kind, hazard predecessors, provenance, and backend choice."""
    from ...parallel import get_backend as _get_backend

    kb = _kernel_backend_name()
    provenance = _node_provenance(g)
    nodes: list[dict] = []
    fused = cse = 0
    for node in sorted(g.alive_nodes(), key=lambda n: (n.level, n.index)):
        rids, tids = provenance[node.index]
        entry: dict = {
            "index": node.index,
            "label": node.label,
            "ops": [op.label for op in node.ops],
            "level": node.level,
            "preds": sorted(node.preds),
            "request_ids": rids,
            "trace_ids": tids,
            "kind": "plain",
            "backend": kb,
        }
        if node.fused_chain is not None:
            entry["kind"] = "fused"
            fused += 1
            if kb == "codegen":
                entry["compile_eligible"] = _compile_eligible(node.fused_chain)
        elif node.cse_source is not None:
            entry["kind"] = "cse"
            entry["cse_source"] = node.cse_source
            cse += 1
        elif node.capture:
            entry["kind"] = "capture"
        nodes.append(entry)
    return {
        "optimize": True,
        "kernel_backend": kb,
        "exec_backend": _get_backend(),
        "levels": len(levels),
        "elided": elided,
        "fused_chains": fused,
        "cse_merged": cse,
        "nodes": nodes,
    }


def _compile_eligible(chain) -> bool:
    """Would the codegen backend compile this fused chain's signature?"""
    try:
        from ...kernels.codegen import chain_signature

        return chain_signature(list(chain)) is not None
    except Exception:
        return False


class ExecutionPlan:
    """A scheduled sequence: levels of mutually independent nodes.

    After :meth:`run`, :attr:`failed_ops` holds the member ops of every node
    that did not complete (the failing node first), in execution order — the
    queue exposes it so the context can poison their outputs (section V).
    """

    def __init__(
        self,
        levels: list[list[OpNode]],
        stats: QueueStats,
        parallel: bool,
    ):
        self._levels = levels
        self._stats = stats
        self._parallel = parallel
        self.failed_ops: list[DeferredOp] = []

    def _fail(self, lvl: int, failing: list[OpNode]) -> None:
        remaining = [n for level in self._levels[lvl + 1 :] for n in level]
        self.failed_ops = [
            op for n in failing + remaining for op in n.ops
        ]

    def run(self) -> None:
        if self._levels:
            width = max(len(level) for level in self._levels)
            self._stats.max_width = max(self._stats.max_width, width)
        sharded = self._parallel and get_backend() == "processes"
        for lvl, level in enumerate(self._levels):
            if sharded:
                self._run_level_sharded(lvl, level)
            elif self._parallel and len(level) > 1 and get_num_threads() > 1:
                self._run_level_parallel(lvl, level)
            else:
                self._run_level_serial(lvl, level)

    def _run_level_serial(self, lvl: int, level: list[OpNode]) -> None:
        for pos, node in enumerate(level):
            try:
                node.runner()
            except BaseException:
                self._fail(lvl, level[pos:])
                raise
            self._stats.executed += len(node.ops)

    def _run_level_sharded(self, lvl: int, level: list[OpNode]) -> None:
        # The shard scheduler owns the whole level: it ships what the gate
        # allows, runs the rest locally, and reports per-node failures with
        # the same collect-then-first-in-program-order contract as the
        # thread path.  Anything it *raises* (worker death → Panic) fails
        # the entire level.
        from ...shard.scheduler import run_level as _shard_run_level

        try:
            failures = _shard_run_level(level)
        except BaseException:
            self._fail(lvl, level)
            raise
        failed = {n.index for n, _ in failures}
        for node in level:
            if node.index not in failed:
                self._stats.executed += len(node.ops)
        if failures:
            self._fail(lvl, [n for n, _ in failures])
            raise failures[0][1]

    def _run_level_parallel(self, lvl: int, level: list[OpNode]) -> None:
        # Workers run under serial_section so a node's kernels don't submit
        # to the pool the scheduler is occupying (nested-pool deadlock).
        def guarded(runner: Callable[[], None]):
            def run():
                with serial_section():
                    runner()

            return run

        pool = thread_pool()
        futures = [(node, pool.submit(guarded(node.runner))) for node in level]
        failures: list[tuple[OpNode, BaseException]] = []
        for node, fut in futures:
            try:
                fut.result()
            except BaseException as exc:
                failures.append((node, exc))
            else:
                self._stats.executed += len(node.ops)
        if failures:
            # program order decides which error surfaces (section V: the
            # first execution error in the sequence)
            failures.sort(key=lambda nf: nf[0].index)
            self._fail(lvl, [n for n, _ in failures])
            raise failures[0][1]


class _SerialPlan:
    """Planner-off fallback: plain program order, no graph, no passes."""

    def __init__(self, ops: list[DeferredOp], stats: QueueStats):
        self._ops = ops
        self._stats = stats
        self.failed_ops: list[DeferredOp] = []

    def run(self) -> None:
        from ...obs import tracing as _tracing
        from ..trace import wrap_thunk

        acct = _tracing.current_accounting()
        for pos, op in enumerate(self._ops):
            prov = None
            rids: list = []
            if op.trace is not None:
                rids = [str(op.trace.request_id)]
                prov = {"request_ids": rids, "trace_ids": [op.trace.trace_id]}
            runner = wrap_thunk(op.thunk, op.label, deferred=True, provenance=prov)
            if acct is not None:
                runner = acct.wrap(runner, rids)
            try:
                runner()
            except BaseException:
                self.failed_ops = self._ops[pos:]
                raise
            self._stats.executed += 1


def build_plan(
    ops: list[DeferredOp], stats: QueueStats, optimize: bool = True
):
    """Lift *ops* into the DAG, run the enabled passes, attach runners."""
    from ...obs.diag import explain as _explain

    opts = options()
    col = _explain.current_explain()
    if not optimize or not opts.enabled:
        if col is not None:
            col.record_plan(_serial_explain_record(ops))
        return _SerialPlan(ops, stats)

    if opts.dead_op:
        live, elided = dead_op_pass(ops)
        stats.elided += len(elided)
        n_elided = len(elided)
    else:
        live = ops
        n_elided = 0

    g = build_graph(live)
    owner = list(range(len(live)))
    if opts.fusion:
        stats.fused += fusion_pass(g, live, owner)
    if opts.cse:
        stats.cse += cse_pass(g, live, owner)
    _attach_runners(g)
    levels = g.assign_levels()
    if col is not None:
        col.record_plan(_explain_record(g, levels, n_elided))
    return ExecutionPlan(levels, stats, parallel=opts.parallel)


def _serial_explain_record(ops: list[DeferredOp]) -> dict:
    """The planner-off EXPLAIN: plain program order, one node per op."""
    nodes = []
    for i, op in enumerate(ops):
        rids = [str(op.trace.request_id)] if op.trace is not None else []
        tids = [op.trace.trace_id] if op.trace is not None else []
        nodes.append(
            {
                "index": i,
                "label": op.label,
                "ops": [op.label],
                "level": i,
                "preds": [i - 1] if i else [],
                "request_ids": rids,
                "trace_ids": tids,
                "kind": "plain",
                "backend": _kernel_backend_name(),
            }
        )
    return {
        "optimize": False,
        "kernel_backend": _kernel_backend_name(),
        "levels": len(ops),
        "elided": 0,
        "fused_chains": 0,
        "cse_merged": 0,
        "nodes": nodes,
    }
