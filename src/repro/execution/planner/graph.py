"""The dataflow DAG a drained sequence is lifted into.

Nodes are deferred ops; directed edges are the data hazards that constrain
reordering:

* **RAW** — an op reads an object the edge's source wrote (true dependence);
* **WAR** — an op overwrites an object the source read (anti-dependence);
* **WAW** — an op overwrites an object the source wrote (output dependence).

Anything the edges do not order is independent and may run in any order —
or concurrently.  The optimization passes (:mod:`.passes`) rewrite this
graph by removing nodes (dead-op), contracting producer→consumer pairs
(fusion), and adding result-reuse edges (CSE); the scheduler
(:mod:`.driver`) then executes it level by level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..sequence import DeferredOp, OpSpec

__all__ = ["OpNode", "Graph", "build_graph"]


@dataclass
class OpNode:
    """One schedulable unit: a single deferred op, or a fused pair."""

    index: int
    #: member ops in program order (two after a fusion contraction)
    ops: list[DeferredOp]
    preds: set[int] = field(default_factory=set)
    succs: set[int] = field(default_factory=set)
    alive: bool = True
    #: member specs in stream order when this node is a fused chain —
    #: producer first, then every absorbed stream link (two entries for a
    #: classic pair, more when the fusion pass kept extending)
    fused_chain: list[OpSpec] | None = None
    #: index of the node whose cached T this CSE duplicate reuses
    cse_source: int | None = None
    #: True when a later CSE duplicate needs this node's T captured
    capture: bool = False
    #: the callable the scheduler invokes (attached by the driver)
    runner: Callable[[], None] | None = None
    #: sharding metadata for plain single-op nodes ({"spec", "prov",
    #: "rids"}, attached by the driver); None on fused/CSE/capture nodes,
    #: which always run locally
    shard: dict | None = None
    level: int = 0

    @property
    def label(self) -> str:
        if self.fused_chain is not None:
            return "+".join(op.label for op in self.ops) + "[fused]"
        if self.cse_source is not None:
            return self.ops[0].label + "[cse]"
        return self.ops[0].label


class Graph:
    def __init__(self, nodes: list[OpNode]):
        self.nodes = nodes

    def alive_nodes(self) -> list[OpNode]:
        return [n for n in self.nodes if n.alive]

    def add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)

    def has_path(self, src: int, dst: int, skip_direct: bool = False) -> bool:
        """Is *dst* reachable from *src* along live edges?  With
        *skip_direct* the single edge src→dst is ignored (the fusion pass's
        cycle test: an indirect path means contraction would close a loop).
        """
        start = set(self.nodes[src].succs)
        if skip_direct:
            start.discard(dst)
        stack = list(start)
        seen = set()
        while stack:
            k = stack.pop()
            if k == dst:
                return True
            if k in seen or not self.nodes[k].alive:
                continue
            seen.add(k)
            stack.extend(self.nodes[k].succs)
        return False

    def contract(self, keep: int, absorb: int) -> None:
        """Merge node *absorb* into node *keep* (fusion).

        *keep*'s member list gains *absorb*'s ops; every edge touching
        *absorb* is re-pointed at *keep*.  The caller has already proven
        the merge acyclic.
        """
        a, b = self.nodes[keep], self.nodes[absorb]
        for p in b.preds:
            self.nodes[p].succs.discard(absorb)
            if p != keep:
                self.add_edge(p, keep)
        for s in b.succs:
            self.nodes[s].preds.discard(absorb)
            if s != keep:
                self.add_edge(keep, s)
        a.succs.discard(absorb)
        a.preds.discard(absorb)
        a.ops.extend(b.ops)
        b.alive = False

    def assign_levels(self) -> list[list[OpNode]]:
        """Longest-path levels (Kahn): every node lands one level below its
        deepest predecessor, so a level's nodes are mutually independent."""
        from ...info import Panic

        alive = self.alive_nodes()
        indeg = {n.index: len(n.preds) for n in alive}
        ready = [n.index for n in alive if indeg[n.index] == 0]
        order: list[int] = []
        while ready:
            i = ready.pop()
            order.append(i)
            node = self.nodes[i]
            for s in node.succs:
                self.nodes[s].level = max(
                    self.nodes[s].level, node.level + 1
                )
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(alive):
            raise Panic("planner produced a cyclic dataflow graph")
        depth = max((n.level for n in alive), default=-1)
        levels: list[list[OpNode]] = [[] for _ in range(depth + 1)]
        for n in alive:
            levels[n.level].append(n)
        for lv in levels:
            lv.sort(key=lambda n: n.index)
        return levels


def build_graph(ops: list[DeferredOp]) -> Graph:
    """Lift *ops* (program order) into the hazard DAG.

    For each opaque object we track its last writer and the readers since
    that write; a read adds a RAW edge from the last writer, a write adds
    WAR edges from those readers and a WAW edge from the last writer.
    Identity (``id``) is the right key: opaque objects alias only as
    themselves.
    """
    g = Graph([OpNode(i, [op]) for i, op in enumerate(ops)])
    last_writer: dict[int, int] = {}
    readers_since: dict[int, list[int]] = {}
    for i, op in enumerate(ops):
        for r in op.reads:
            w = last_writer.get(id(r))
            if w is not None:
                g.add_edge(w, i)  # RAW
            readers_since.setdefault(id(r), []).append(i)
        oid = id(op.writes)
        for rdr in readers_since.get(oid, ()):  # WAR
            g.add_edge(rdr, i)
        w = last_writer.get(oid)
        if w is not None:
            g.add_edge(w, i)  # WAW
        last_writer[oid] = i
        readers_since[oid] = []
    return g
