"""Sequence planner: dataflow-graph optimizer + DAG scheduler for
nonblocking mode.

At drain time the queued ops of a sequence are lifted into an explicit
dataflow DAG (:mod:`.graph`) and run through a pass pipeline (:mod:`.passes`):

1. **dead-op elimination** — ops whose output is overwritten before any
   read never run;
2. **fusion** — producer→consumer pairs (``mxm/mxv/vxm/eWise* → apply``,
   ``op → reduce``) execute as one kernel without materializing the
   intermediate;
3. **CSE** — identical pure ops on unchanged inputs share one kernel
   evaluation;
4. **level-order scheduling** — hazard-independent ops dispatch
   concurrently on the :mod:`repro.parallel` thread pool.

Every pass can be toggled via :func:`configure` / :func:`override`
(``repro.planner.configure(fusion=False)``); per-pass counters surface in
``QueueStats`` and :class:`repro.execution.trace.Tracer`.
"""

from .config import PlannerOptions, configure, options, override, reset_options
from .driver import ExecutionPlan, build_plan

__all__ = [
    "PlannerOptions",
    "configure",
    "options",
    "override",
    "reset_options",
    "build_plan",
    "ExecutionPlan",
]
