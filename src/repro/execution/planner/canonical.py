"""Canonical dataflow digests: the CSE fingerprint, generalized.

:func:`.passes.cse_pass` proves two live ops compute the same internal
result T when they agree on ``(kind, operator token, result domain,
descriptor bits, input objects, mask)`` *and* on the content version of
every input — content versions being per-object write counters advanced
in program order.  That fingerprint only works inside one drain, because
it keys on object identity (``id()``) and in-memory operator identity.

This module is the same idea made *stable across requests and sessions*:
object identities become **canonical states** — a declared collection's
state is a tagged tuple of its declaration, an external (shared)
collection's state names the published object, and every operation's
state chains its structural description with the states of everything
it reads (the write-counter trick, structurally: writing advances the
output's state to the call's own state).  Two programs that are alpha
equivalent (temporaries renamed) or that reorder independent operations
converge to the same final states, because a state depends only on the
dataflow *upstream* of a value, never on names or program position.
States are hashable trees compared exactly, so keying a dict on them is
collision-free; :func:`digest` condenses one to a fixed-width hex string
when an opaque identifier is needed (logs, wire payloads).

The service's cross-request result cache (:mod:`repro.service.memo`)
keys on these states paired with a shared-store snapshot version; the
pair plays exactly the role ``(id(obj), write counter)`` plays inside
one planner drain.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

__all__ = ["digest", "canonical_json", "DataflowHasher"]


def canonical_json(value: Any) -> str:
    """A deterministic JSON rendering (sorted keys, no whitespace).

    Only JSON-able payloads belong in a canonical digest; anything else
    (live operator objects, UDT values) must be bypassed by the caller —
    the cache's "non-registry UDF" rule.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _feed(h, value: Any) -> None:
    # type-tagged, length-prefixed streaming encoder: the canonical_json
    # rendering fed straight into the hasher, without materializing the
    # JSON string (inputs are many small parts where json.dumps call
    # overhead dominates)
    t = type(value)
    if t is str:
        b = value.encode("utf-8")
        h.update(b"s")
        h.update(len(b).to_bytes(4, "little"))
        h.update(b)
    elif value is None:
        h.update(b"z")
    elif value is True:
        h.update(b"t")
    elif value is False:
        h.update(b"f")
    elif t is int:
        b = str(value).encode("ascii")
        h.update(b"i" + len(b).to_bytes(4, "little") + b)
    elif t is float:
        b = repr(value).encode("ascii")
        h.update(b"d" + len(b).to_bytes(4, "little") + b)
    elif t is list or t is tuple:
        h.update(b"[" + len(value).to_bytes(4, "little"))
        for item in value:
            _feed(h, item)
    elif t is dict:
        h.update(b"{" + len(value).to_bytes(4, "little"))
        for key in sorted(value):
            _feed(h, key if type(key) is str else str(key))
            _feed(h, value[key])
    # subclasses (IntEnum, numpy float64, ...) normalize to the base type
    elif isinstance(value, str):
        _feed(h, str(value))
    elif isinstance(value, bool):
        _feed(h, bool(value))
    elif isinstance(value, int):
        _feed(h, int(value))
    elif isinstance(value, float):
        _feed(h, float(value))
    elif isinstance(value, (list, tuple)):
        _feed(h, list(value))
    elif isinstance(value, dict):
        _feed(h, dict(value))
    else:
        raise TypeError(f"value is not canonicalizable: {value!r}")


def digest(*parts: Any) -> str:
    """Collision-resistant digest of a heterogeneous part list.

    Every part is type-tagged and length-prefixed, so ``("ab", "c")``
    vs ``("a", "bc")`` and ``"5"`` vs ``5`` cannot collide.  Only the
    JSON-able subset is accepted (``TypeError`` otherwise) — anything
    else (live operator objects, UDT values) must be bypassed by the
    caller, the cache's "non-registry UDF" rule.
    """
    h = hashlib.blake2b(digest_size=16)
    for p in parts:
        _feed(h, p)
    return h.hexdigest()


class DataflowHasher:
    """Chained canonical states over a named-operand program.

    Feed it declarations (:meth:`declare`), external references
    (resolved lazily), then one :meth:`record` per operation in program
    order.  The hasher maintains ``name -> state``; recording an op
    derives the op's state from its structural attributes plus the
    states of its reads (and the *prior* state of its output, which
    captures accumulate/merge semantics the way the CSE pass's write
    counters do), then advances the output's state to that value.

    States are the canonical structures **themselves** — hashable
    tagged tuples, not digests of them.  Equal dataflow gives equal
    (``==``) tuples; a dict keyed on them hashes at C speed exactly
    once per lookup and falls back to exact comparison, so there is no
    collision risk at all and no per-operation hashing on the request
    hot path.  Callers must pass pre-canonicalized (hashable) parts —
    the memo layer's ``_plain`` does that normalization.
    """

    __slots__ = ("_state",)

    def __init__(self):
        self._state: dict[str, Any] = {}

    # ------------------------------------------------------------- operands
    def declare(self, name: str, *parts: Any) -> tuple:
        """Seed *name* with its declaration state."""
        d = ("decl", *parts)
        self._state[name] = d
        return d

    def external(self, name: str) -> tuple:
        """State of an external input: identified by name alone (the
        cache key's snapshot version pins its content)."""
        return ("ext", name)

    def state(self, name: str) -> Any:
        """Current state of *name* (external if never declared)."""
        s = self._state.get(name)
        if s is None:
            s = ("ext", name)
            self._state[name] = s
        return s

    # ------------------------------------------------------------------ ops
    def record(
        self,
        kind: str,
        attrs: Any,
        reads: Iterable[tuple[str, str | None]],
        out: str | None,
    ) -> tuple:
        """Record one operation; returns its state.

        *reads* is an ordered iterable of ``(slot, name-or-None)`` pairs
        — slot labels ("a", "b", "u", "mask") keep positional and masked
        operands from colliding.  *attrs* carries every non-name
        argument (operator tokens, descriptor bits, index lists, scalar
        values).  The prior state of *out* is always chained in: masked
        or accumulated writes merge into prior content, and including it
        unconditionally can only split cache entries, never wrongly
        share them.
        """
        parts: list[Any] = ["call", kind, attrs]
        for slot, name in reads:
            parts.append((slot, None if name is None else self.state(name)))
        parts.append(("out", None if out is None else self.state(out)))
        d = tuple(parts)
        if out is not None:
            self._state[out] = d
        return d
