"""Execution tracing — the debugging facility section IV motivates.

The paper keeps blocking mode in the spec because it is "valuable for
debugging or when an external tool needs to evaluate the state of memory
during a sequence".  This module is the compatibility face of that tool:
since the observability subsystem landed, :class:`Tracer` is a thin view
over a :class:`repro.obs.Capture` — the same spans that feed the Chrome
trace exporter and the metrics registry back the legacy record/summary
API, so existing callers keep working while gaining kernel-level data.

    with trace() as t:
        grb.mxm(C, None, None, s, A, B)
        grb.wait()
    print(t.summary())        # legacy per-label table
    print(t.capture.report()) # full obs report: flops, nnz, provenance

Tracing is thread-safe; :func:`wrap_thunk` returns the raw thunk unchanged
when nothing is armed (literally zero extra work per op).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable

from ..obs import Capture
from ..obs import capture as _obs_capture
from ..obs import spans as _spans

__all__ = ["trace", "Tracer", "OpRecord", "wrap_thunk"]


@dataclass(slots=True)
class OpRecord:
    """Legacy flat view of one op-body span."""

    label: str
    seconds: float
    deferred: bool
    thread: str


class Tracer:
    """Record/summary API over a :class:`repro.obs.Capture`.

    Only *op* spans (method bodies — eager, drained, fused, CSE'd) are
    surfaced as :class:`OpRecord`; kernel/drain spans stay available on
    :attr:`capture` for the richer exporters.
    """

    def __init__(self, capture: Capture | None = None):
        self.capture = capture or Capture()

    # ------------------------------------------------------------- capture
    def record(self, label: str, seconds: float, deferred: bool) -> None:
        """Legacy manual-record hook (kept for external callers)."""
        import threading
        import time

        sp = _spans.Span(
            sid=0,
            parent=None,
            label=label,
            kind="op",
            t0=time.perf_counter() - seconds,
            t1=time.perf_counter(),
            thread=threading.current_thread().name,
            deferred=deferred,
        )
        sp.t1 = sp.t0 + seconds
        self.capture._sink.spans.append(sp)

    # ------------------------------------------------------------- queries
    @property
    def records(self) -> list[OpRecord]:
        return [
            OpRecord(sp.label, sp.seconds, sp.deferred, sp.thread)
            for sp in self.capture.spans_of("op")
        ]

    def count(self, label: str | None = None) -> int:
        ops = self.capture.spans_of("op")
        if label is None:
            return len(ops)
        return sum(1 for sp in ops if sp.label == label)

    def total_seconds(self) -> float:
        return sum(sp.seconds for sp in self.capture.spans_of("op"))

    def by_label(self) -> dict[str, tuple[int, float]]:
        """{label: (invocations, total seconds)}, slowest first."""
        agg: dict[str, list[float]] = {}
        for sp in self.capture.spans_of("op"):
            agg.setdefault(sp.label, []).append(sp.seconds)
        return dict(
            sorted(
                ((k, (len(v), sum(v))) for k, v in agg.items()),
                key=lambda kv: -kv[1][1],
            )
        )

    def _delta(self, key: str) -> int:
        return self.capture.queue_delta().get(key, 0)

    @property
    def elided(self) -> int:
        return self._delta("elided")

    @property
    def drains(self) -> int:
        return self._delta("drains")

    @property
    def fused(self) -> int:
        """Producer→consumer pairs the planner ran as one fused kernel."""
        return self._delta("fused")

    @property
    def cse_hits(self) -> int:
        """Kernel evaluations skipped by common-subexpression elimination."""
        return self._delta("cse")

    @property
    def max_schedule_width(self) -> int:
        """Widest DAG level the scheduler has seen (absolute, not a delta:
        width is a high-water mark, not a running count)."""
        return self.capture._queue_after.get("max_width", 0)

    def summary(self) -> str:
        lines = [
            f"traced {self.count()} op bodies, "
            f"{self.total_seconds() * 1e3:.2f} ms total, "
            f"{self.elided} elided, {self.drains} drains",
            f"planner: {self.fused} fused, {self.cse_hits} CSE hits, "
            f"{self.elided} elided, schedule width {self.max_schedule_width}",
        ]
        for label, (n, secs) in self.by_label().items():
            lines.append(f"  {label:<16} x{n:<4} {secs * 1e3:9.3f} ms")
        return "\n".join(lines)


class trace:
    """Context manager arming the global tracer (one at a time).

    Arming is exception-safe: a failure while reading the baseline queue
    counters disarms before propagating (the pre-obs tracer leaked its
    armed state here, poisoning every later ``trace()``)."""

    def __init__(self):
        self._cm = _obs_capture()

    def __enter__(self) -> Tracer:
        return Tracer(self._cm.__enter__())

    def __exit__(self, *exc) -> None:
        self._cm.__exit__(*exc)


def wrap_thunk(
    thunk: Callable[[], None],
    label: str,
    deferred: bool,
    provenance: dict | None = None,
):
    """Instrument *thunk* as an op-body span when a capture is armed.

    Called by the context on eager submission and by the planner when it
    attaches runners at drain time; *provenance* carries the planner's
    fusion/CSE rewrite info into the span attrs.  With nothing armed the
    thunk is returned unchanged — the zero-overhead fast path.
    """
    sink = _spans.current()
    if sink is None:
        return thunk

    fast = getattr(sink, "fast_append", None)
    if fast is not None:
        # ring-only retention: no capture is watching, so skip the full
        # span machinery and retain a raw timing tuple
        def timed_ring():
            t0 = _time.perf_counter()
            try:
                thunk()
            finally:
                fast(label, "op", t0, _time.perf_counter(), provenance,
                     deferred)

        return timed_ring

    def timed():
        sp = sink.open(label, "op", deferred=deferred)
        if provenance:
            sp.attrs.update(provenance)
        try:
            thunk()
        finally:
            sink.close(sp)

    return timed
