"""Execution tracing — the debugging facility section IV motivates.

The paper keeps blocking mode in the spec because it is "valuable for
debugging or when an external tool needs to evaluate the state of memory
during a sequence".  This module is that external tool for this
implementation: a context manager that records every method body the
execution model runs — label, wall time, issuing thread, and whether it ran
eagerly (blocking) or from the deferred queue — plus the queue's
elision/drain counters over the traced region.

    with trace() as t:
        grb.mxm(C, None, None, s, A, B)
        grb.wait()
    print(t.summary())

Tracing is thread-safe and adds two perf_counter calls per op when active,
nothing when inactive.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["trace", "Tracer", "OpRecord"]

_lock = threading.Lock()
_active: "Tracer | None" = None


@dataclass(slots=True)
class OpRecord:
    label: str
    seconds: float
    deferred: bool
    thread: str


@dataclass
class Tracer:
    records: list[OpRecord] = field(default_factory=list)
    _stats_before: dict[str, int] = field(default_factory=dict)
    _stats_after: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------- capture
    def record(self, label: str, seconds: float, deferred: bool) -> None:
        with _lock:
            self.records.append(
                OpRecord(
                    label=label,
                    seconds=seconds,
                    deferred=deferred,
                    thread=threading.current_thread().name,
                )
            )

    # ------------------------------------------------------------- queries
    def count(self, label: str | None = None) -> int:
        if label is None:
            return len(self.records)
        return sum(1 for r in self.records if r.label == label)

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def by_label(self) -> dict[str, tuple[int, float]]:
        """{label: (invocations, total seconds)}, slowest first."""
        agg: dict[str, list[float]] = {}
        for r in self.records:
            agg.setdefault(r.label, []).append(r.seconds)
        return dict(
            sorted(
                ((k, (len(v), sum(v))) for k, v in agg.items()),
                key=lambda kv: -kv[1][1],
            )
        )

    def _delta(self, key: str) -> int:
        return self._stats_after.get(key, 0) - self._stats_before.get(key, 0)

    @property
    def elided(self) -> int:
        return self._delta("elided")

    @property
    def drains(self) -> int:
        return self._delta("drains")

    @property
    def fused(self) -> int:
        """Producer→consumer pairs the planner ran as one fused kernel."""
        return self._delta("fused")

    @property
    def cse_hits(self) -> int:
        """Kernel evaluations skipped by common-subexpression elimination."""
        return self._delta("cse")

    @property
    def max_schedule_width(self) -> int:
        """Widest DAG level the scheduler has seen (absolute, not a delta:
        width is a high-water mark, not a running count)."""
        return self._stats_after.get("max_width", 0)

    def summary(self) -> str:
        lines = [
            f"traced {len(self.records)} op bodies, "
            f"{self.total_seconds() * 1e3:.2f} ms total, "
            f"{self.elided} elided, {self.drains} drains",
            f"planner: {self.fused} fused, {self.cse_hits} CSE hits, "
            f"{self.elided} elided, schedule width {self.max_schedule_width}",
        ]
        for label, (n, secs) in self.by_label().items():
            lines.append(f"  {label:<16} x{n:<4} {secs * 1e3:9.3f} ms")
        return "\n".join(lines)


class trace:
    """Context manager arming the global tracer (one at a time)."""

    def __init__(self):
        self._tracer = Tracer()

    def __enter__(self) -> Tracer:
        global _active
        from .. import context

        with _lock:
            if _active is not None:
                from ..info import InvalidValue

                raise InvalidValue("a trace is already active")
            _active = self._tracer
        self._tracer._stats_before = context.queue_stats()
        return self._tracer

    def __exit__(self, *exc) -> None:
        global _active
        from .. import context

        self._tracer._stats_after = context.queue_stats()
        with _lock:
            _active = None


def wrap_thunk(thunk: Callable[[], None], label: str, deferred: bool):
    """Called by the context on submit: instrument when a trace is active."""
    tracer = _active
    if tracer is None:
        return thunk

    def timed():
        t0 = time.perf_counter()
        try:
            thunk()
        finally:
            tracer.record(label, time.perf_counter() - t0, deferred)

    return timed
