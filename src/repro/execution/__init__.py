"""Execution-model internals: the deferred-op sequence queue used by
nonblocking mode (see :mod:`repro.context` for the public entry points)."""

from .sequence import DeferredOp, OpSpec, QueueStats, SequenceQueue
from .trace import OpRecord, Tracer, trace

__all__ = [
    "DeferredOp",
    "OpSpec",
    "SequenceQueue",
    "QueueStats",
    "trace",
    "Tracer",
    "OpRecord",
]
