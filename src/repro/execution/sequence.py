"""Deferred-execution machinery for nonblocking mode (paper section IV).

In nonblocking mode a GraphBLAS method may return after its arguments have
been verified; the actual computation joins the current *sequence* and runs
when the sequence is completed — by ``wait()`` or by any method that moves
values from an opaque object into non-opaque storage.

Each queued :class:`DeferredOp` records the opaque objects it reads and the
one it writes, plus (for the standard Table II operations) an
:class:`OpSpec` describing the computation structurally.  At drain time the
queue hands the whole sequence to the planner
(:mod:`repro.execution.planner`), which lifts it into a dataflow DAG and
runs dead-op elimination, producer→consumer fusion, common-subexpression
elimination, and a level-order scheduler over it — the "lazy evaluation,
... operations chained together and fused" freedom the paper grants
nonblocking implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["DeferredOp", "OpSpec", "SequenceQueue", "QueueStats"]


@dataclass(slots=True)
class OpSpec:
    """Structural description of a standard (validate/kernel/write) op.

    Present on every :class:`DeferredOp` produced by
    ``operations.common.submit_standard_op``; ``None`` on ad-hoc deferred
    work (``assign`` splices, container mutation).  The planner uses it to
    re-run the op in pieces: the *kernel* computes the internal result T
    from the inputs' current content, and the write pipeline folds T into
    *out* under *mask*/*accum*/*desc*.
    """

    #: op kind — the Table II method name ("mxm", "apply", "reduce", ...)
    kind: str
    #: the output object C
    out: Any
    #: write-mask object (or None)
    mask: Any
    #: accumulator BinaryOp (or None)
    accum: Any
    #: the *effective* Descriptor (never None)
    desc: Any
    #: domain of the internal result T
    t_type: Any
    #: opaque input objects, in signature order (no Nones)
    inputs: tuple
    #: mask_view -> (t_keys, t_vals); pure: reads only the inputs' content
    kernel: Callable[[Any], tuple] | None = None
    #: operator identity for CSE fingerprinting (None = never CSE'd)
    op_token: Any = None
    #: apply-family value map: vals in input's domain -> vals in t_type
    #: (present only on fusable ``apply`` consumers)
    post: Callable | None = None
    #: row-reduction monoid/shim (present only on matrix→vector ``reduce``)
    reducer: Any = None
    #: ``(IndexUnaryOp, thunk scalar)`` of a ``select`` (present only there;
    #: deliberately *not* op_token — the CSE fingerprint has no thunk slot,
    #: so select must never be CSE'd by operator identity alone)
    selector: Any = None


@dataclass(slots=True)
class DeferredOp:
    """One queued GraphBLAS method invocation."""

    thunk: Callable[[], None]
    #: opaque objects whose *current* content the op consumes (inputs, mask,
    #: and the output itself when merged/accumulated into)
    reads: tuple[Any, ...]
    #: the single opaque output object
    writes: Any
    label: str = "?"
    #: True when the op ignores the prior content of ``writes`` entirely
    #: (no accum, and replace-or-total overwrite) — the dead-op criterion
    overwrites_output: bool = False
    #: structural metadata for the planner (standard ops only)
    spec: OpSpec | None = None
    #: originating request identity (:class:`repro.obs.tracing.TraceContext`)
    #: stamped at enqueue time; None outside a traced request
    trace: Any = None


@dataclass(slots=True)
class QueueStats:
    enqueued: int = 0
    executed: int = 0
    elided: int = 0
    drains: int = 0
    #: producer→consumer pairs executed as one fused kernel
    fused: int = 0
    #: ops whose kernel was skipped by common-subexpression elimination
    cse: int = 0
    #: widest level the DAG scheduler has seen (1 = fully serial sequences)
    max_width: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "enqueued": self.enqueued,
            "executed": self.executed,
            "elided": self.elided,
            "drains": self.drains,
            "fused": self.fused,
            "cse": self.cse,
            "max_width": self.max_width,
        }


class SequenceQueue:
    """FIFO of deferred ops for one sequence (single-threaded, as the paper
    requires: sequences must not share non-read-only objects)."""

    def __init__(self, optimize: bool = True):
        self._ops: list[DeferredOp] = []
        self.optimize = optimize
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._ops)

    def push(self, op: DeferredOp) -> None:
        self._ops.append(op)
        self.stats.enqueued += 1

    def splice_front(self, other: "SequenceQueue") -> None:
        """Move *other*'s pending ops ahead of this queue's own.

        Supports explicit cross-thread sequence handoff: the handed-off
        ops happened-before anything the adopting thread queued, so they
        run first when the merged sequence drains.
        """
        if other is self or not other._ops:
            return
        self._ops[:0] = other._ops
        self.stats.enqueued += len(other._ops)
        other._ops.clear()

    def pending_for(self, obj: Any) -> bool:
        """Is *obj* written by any queued op (i.e. not yet *complete*)?"""
        return any(op.writes is obj for op in self._ops)

    def involves(self, obj: Any) -> bool:
        """Is *obj* read or written by any queued op?"""
        return any(
            op.writes is obj or any(r is obj for r in op.reads)
            for op in self._ops
        )

    def drain(self) -> None:
        """Complete the sequence through the planner.

        The queued ops are lifted into a dataflow DAG, optimized (dead-op
        elimination, fusion, CSE — individually switchable via
        ``repro.planner.configure``), and executed in a hazard-respecting
        order.  On an execution error the remaining ops are discarded and
        their output objects poisoned by the caller (see ``Context.drain``);
        the exception propagates.
        """
        if not self._ops:
            return
        self.stats.drains += 1
        ops = list(self._ops)
        self._ops.clear()
        from ..obs import spans as _spans
        from .planner import build_plan

        sink = _spans.current()
        before = self.stats.snapshot() if sink is not None else {}
        plan = build_plan(ops, self.stats, optimize=self.optimize)
        sp = (
            sink.open("drain", "drain", ops=len(ops), deferred=True)
            if sink is not None
            else None
        )
        try:
            plan.run()
        finally:
            if sp is not None:
                after = self.stats.snapshot()
                sp.attrs.update(
                    elided=after["elided"] - before["elided"],
                    fused=after["fused"] - before["fused"],
                    cse=after["cse"] - before["cse"],
                    executed=after["executed"] - before["executed"],
                    max_width=after["max_width"],
                )
                sink.close(sp)
            # hand back the failed op and the un-run tail so the context can
            # poison their outputs (a failed op's output value was never
            # computed — using it later is INVALID_OBJECT, Fig. 2c)
            self._failed_tail = plan.failed_ops

    @property
    def failed_tail(self) -> list[DeferredOp]:
        return getattr(self, "_failed_tail", [])
