"""Deferred-execution machinery for nonblocking mode (paper section IV).

In nonblocking mode a GraphBLAS method may return after its arguments have
been verified; the actual computation joins the current *sequence* and runs
when the sequence is completed — by ``wait()`` or by any method that moves
values from an opaque object into non-opaque storage.

Each queued :class:`DeferredOp` records the opaque objects it reads and the
one it writes, which enables the queue's one optimization pass:
*dead-op elimination* — an op whose output is completely overwritten later in
the sequence, with no intervening read, never needs to run.  This is a small
but genuinely semantics-preserving instance of the "lazy evaluation ...
chained together and fused" freedom the paper grants nonblocking
implementations, and the execution-model benchmark measures it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["DeferredOp", "SequenceQueue", "QueueStats"]


@dataclass(slots=True)
class DeferredOp:
    """One queued GraphBLAS method invocation."""

    thunk: Callable[[], None]
    #: opaque objects whose *current* content the op consumes (inputs, mask,
    #: and the output itself when merged/accumulated into)
    reads: tuple[Any, ...]
    #: the single opaque output object
    writes: Any
    label: str = "?"
    #: True when the op ignores the prior content of ``writes`` entirely
    #: (no accum, and replace-or-total overwrite) — the dead-op criterion
    overwrites_output: bool = False


@dataclass(slots=True)
class QueueStats:
    enqueued: int = 0
    executed: int = 0
    elided: int = 0
    drains: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "enqueued": self.enqueued,
            "executed": self.executed,
            "elided": self.elided,
            "drains": self.drains,
        }


class SequenceQueue:
    """FIFO of deferred ops for one sequence (single-threaded, as the paper
    requires: sequences must not share non-read-only objects)."""

    def __init__(self, optimize: bool = True):
        self._ops: list[DeferredOp] = []
        self.optimize = optimize
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._ops)

    def push(self, op: DeferredOp) -> None:
        self._ops.append(op)
        self.stats.enqueued += 1

    def pending_for(self, obj: Any) -> bool:
        """Is *obj* written by any queued op (i.e. not yet *complete*)?"""
        return any(op.writes is obj for op in self._ops)

    def involves(self, obj: Any) -> bool:
        """Is *obj* read or written by any queued op?"""
        return any(
            op.writes is obj or any(r is obj for r in op.reads)
            for op in self._ops
        )

    def _eliminate_dead_ops(self) -> list[DeferredOp]:
        """Drop ops whose output is purely overwritten before any read.

        Backward scan.  ``dead`` holds ids of objects that a later kept-or-
        elided op will purely overwrite and that no op in between reads.
        """
        kept_rev: list[DeferredOp] = []
        dead: set[int] = set()
        for op in reversed(self._ops):
            if id(op.writes) in dead:
                # Its result is never observed: skip, and leave ``dead``
                # untouched — the overwrite that killed it also kills any
                # still-earlier writer, and this op's reads never happen.
                self.stats.elided += 1
                continue
            kept_rev.append(op)
            for r in op.reads:
                dead.discard(id(r))
            if op.overwrites_output:
                dead.add(id(op.writes))
            else:
                dead.discard(id(op.writes))
        kept_rev.reverse()
        return kept_rev

    def drain(self) -> None:
        """Execute all queued ops in program order.

        On an execution error the remaining ops are discarded and their
        output objects poisoned by the caller (see ``Context.drain``); the
        exception propagates.
        """
        if not self._ops:
            return
        self.stats.drains += 1
        plan = self._eliminate_dead_ops() if self.optimize else list(self._ops)
        self._ops.clear()
        idx = 0
        try:
            for idx, op in enumerate(plan):
                op.thunk()
                self.stats.executed += 1
        except BaseException:
            # hand back the failed op and the un-run tail so the context can
            # poison their outputs (the failed op's output value was never
            # computed — using it later is INVALID_OBJECT, Fig. 2c)
            self._failed_tail = plan[idx:]
            raise
        self._failed_tail = []

    @property
    def failed_tail(self) -> list[DeferredOp]:
        return getattr(self, "_failed_tail", [])
