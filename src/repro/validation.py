"""Structural invariant checking — the ``GxB_Matrix_check`` debugging aid.

``check(obj)`` verifies every invariant the canonical storage relies on
(sorted duplicate-free keys, index bounds, value-array dtype and length,
CSR/CSC cache coherence) and raises ``InvalidObject`` with a precise
message on the first violation.  The property suites call it after
randomized operation chains; users call it when they suspect memory
corruption-style bugs — the role the paper assigns to blocking mode's
inspectability (section IV).
"""

from __future__ import annotations

import numpy as np

from .containers.matrix import Matrix
from .containers.scalar import Scalar
from .containers.vector import Vector
from .info import InvalidObject, InvalidValue

__all__ = ["check", "check_all"]


def _fail(obj, msg: str):
    raise InvalidObject(f"{type(obj).__name__} invariant violated: {msg}")


def _check_keys(obj, keys: np.ndarray, limit: int) -> None:
    if keys.dtype != np.int64:
        _fail(obj, f"key dtype is {keys.dtype}, expected int64")
    if len(keys):
        if keys.min() < 0 or keys.max() >= limit:
            _fail(obj, f"key out of range [0, {limit})")
        if np.any(np.diff(keys) <= 0):
            _fail(obj, "keys are not strictly increasing (sorted, unique)")


def _check_values(obj, values: np.ndarray, n: int, domain) -> None:
    if len(values) != n:
        _fail(obj, f"value array length {len(values)} != key count {n}")
    if domain.is_udt:
        if values.dtype != np.dtype(object):
            _fail(obj, "UDT values must be stored in an object array")
        cls = domain.udt_class
        if cls is not None:
            for k, v in enumerate(values):
                if not isinstance(v, cls):
                    _fail(obj, f"value at slot {k} is not a {cls.__name__}")
    elif values.dtype != domain.np_dtype:
        _fail(
            obj,
            f"value dtype {values.dtype} != domain dtype {domain.np_dtype}",
        )


def check(obj, *, deep: bool = True) -> None:
    """Validate a collection's internal representation.

    Forces completion first (the checked state must be the mathematically
    defined one).  With ``deep`` the derived CSR/CSC caches of a matrix are
    cross-checked against the canonical keys.
    """
    from . import context

    if isinstance(obj, Matrix):
        obj._check_valid()
        context.complete(obj)
        keys, values = obj._content()
        _check_keys(obj, keys, obj.nrows * obj.ncols)
        _check_values(obj, values, len(keys), obj.type)
        if deep and len(keys):
            view = obj.csr()
            if view.indptr[0] != 0 or view.indptr[-1] != len(keys):
                _fail(obj, "CSR indptr endpoints inconsistent")
            if np.any(np.diff(view.indptr) < 0):
                _fail(obj, "CSR indptr not monotone")
            rows = np.repeat(
                np.arange(obj.nrows, dtype=np.int64), np.diff(view.indptr)
            )
            rebuilt = rows * np.int64(obj.ncols) + view.indices
            if not np.array_equal(rebuilt, keys):
                _fail(obj, "CSR view disagrees with canonical keys")
            csc = obj.csc()
            if csc.nnz != len(keys):
                _fail(obj, "CSC view nnz disagrees with canonical storage")
            t_rows = np.repeat(
                np.arange(obj.ncols, dtype=np.int64), np.diff(csc.indptr)
            )
            t_keys = np.sort(csc.indices * np.int64(obj.ncols) + t_rows)
            if not np.array_equal(t_keys, keys):
                _fail(obj, "CSC view pattern disagrees with canonical keys")
        return
    if isinstance(obj, Vector):
        obj._check_valid()
        context.complete(obj)
        keys, values = obj._content()
        _check_keys(obj, keys, obj.size)
        _check_values(obj, values, len(keys), obj.type)
        return
    if isinstance(obj, Scalar):
        obj._check_valid()
        context.complete(obj)
        if obj._has_value and not obj.type.is_udt:
            got = np.asarray([obj._value]).dtype
            if got != obj.type.np_dtype:
                _fail(obj, f"scalar value dtype {got} != {obj.type.np_dtype}")
        return
    raise InvalidValue(f"check() does not understand {type(obj).__name__}")


def check_all(objs, *, deep: bool = True) -> None:
    """Validate every collection in *objs*.

    The conformance fuzzer calls this after each optimized run, so an
    operation that leaves the right values behind in a corrupt
    representation (unsorted keys, stale CSR cache, wrong value dtype)
    still counts as a divergence.
    """
    for obj in objs:
        check(obj, deep=deep)
