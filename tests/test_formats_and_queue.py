"""Unit tests for the storage-format helpers and the sequence queue."""

import numpy as np
import pytest

import repro as grb
from repro.containers.formats import (
    assemble,
    check_indices,
    csr_from_keys,
    transpose_permutation,
)
from repro.execution.sequence import DeferredOp, SequenceQueue
from repro.ops import binary


class TestAssemble:
    def test_sorts(self):
        keys = np.array([7, 1, 4], dtype=np.int64)
        vals = np.array([70, 10, 40], dtype=np.int64)
        k, v = assemble(keys, vals, None, np.dtype(np.int64))
        assert k.tolist() == [1, 4, 7]
        assert v.tolist() == [10, 40, 70]

    def test_dedup_with_ufunc_op(self):
        keys = np.array([3, 3, 3, 1], dtype=np.int64)
        vals = np.array([1, 2, 4, 9], dtype=np.int64)
        k, v = assemble(keys, vals, binary.PLUS[grb.INT64], np.dtype(np.int64))
        assert dict(zip(k.tolist(), v.tolist())) == {1: 9, 3: 7}

    def test_dedup_generic_op_in_order(self):
        # non-commutative dup: combination must run in index order
        op = grb.binary_op_new(
            lambda a, b: a * 10 + b, grb.INT64, grb.INT64, grb.INT64
        )
        keys = np.array([5, 5, 5], dtype=np.int64)
        vals = np.array([1, 2, 3], dtype=np.int64)
        k, v = assemble(keys, vals, op, np.dtype(np.int64))
        assert v.tolist() == [123]

    def test_duplicates_without_dup_raise(self):
        with pytest.raises(grb.InvalidValue):
            assemble(
                np.array([1, 1], dtype=np.int64),
                np.array([1, 2], dtype=np.int64),
                None,
                np.dtype(np.int64),
            )

    def test_empty(self):
        k, v = assemble(
            np.empty(0, dtype=np.int64), np.empty(0), None, np.dtype(np.float64)
        )
        assert len(k) == 0 and v.dtype == np.float64

    def test_check_indices(self):
        assert check_indices([1, 2], 5, "x").dtype == np.int64
        with pytest.raises(grb.IndexOutOfBounds):
            check_indices([5], 5, "x")
        with pytest.raises(grb.InvalidValue):
            check_indices([[1]], 5, "x")


class TestCSRViews:
    def test_csr_from_keys(self):
        # 2x3 matrix with (0,1)=a, (1,0)=b, (1,2)=c
        keys = np.array([1, 3, 5], dtype=np.int64)
        vals = np.array([10, 20, 30])
        view = csr_from_keys(keys, vals, 2, 3)
        assert view.indptr.tolist() == [0, 1, 3]
        assert view.indices.tolist() == [1, 0, 2]
        assert view.row_ids().tolist() == [0, 1, 1]
        assert view.row_counts().tolist() == [1, 2]
        assert view.nnz == 3

    def test_row_slice(self):
        keys = np.array([1, 3, 5], dtype=np.int64)
        view = csr_from_keys(keys, np.zeros(3), 2, 3)
        assert view.row_slice(1) == slice(1, 3)

    def test_transpose_permutation(self):
        # (0,1) and (1,0): transpose swaps them
        keys = np.array([1, 2], dtype=np.int64)  # 2x2: (0,1), (1,0)
        t_keys, perm = transpose_permutation(keys, 2, 2)
        assert t_keys.tolist() == [1, 2]
        assert perm.tolist() == [1, 0]

    def test_transpose_sortedness(self, rng):
        n = 12
        keys = np.sort(
            rng.choice(n * n, size=30, replace=False).astype(np.int64)
        )
        t_keys, perm = transpose_permutation(keys, n, n)
        assert (np.diff(t_keys) > 0).all()
        assert len(perm) == len(keys)


class TestSequenceQueue:
    def _op(self, log, name, reads=(), writes=None, overwrites=False):
        return DeferredOp(
            thunk=lambda: log.append(name),
            reads=reads,
            writes=writes if writes is not None else object(),
            label=name,
            overwrites_output=overwrites,
        )

    def test_fifo_order(self):
        q = SequenceQueue()
        log = []
        for name in "abc":
            q.push(self._op(log, name))
        q.drain()
        assert log == ["a", "b", "c"]

    def test_dead_op_elimination_chain(self):
        q = SequenceQueue()
        log = []
        x = object()
        q.push(self._op(log, "dead1", writes=x, overwrites=True))
        q.push(self._op(log, "dead2", writes=x, overwrites=True))
        q.push(self._op(log, "live", writes=x, overwrites=True))
        q.drain()
        assert log == ["live"]
        assert q.stats.elided == 2

    def test_read_blocks_elimination(self):
        q = SequenceQueue()
        log = []
        x, y = object(), object()
        q.push(self._op(log, "produce", writes=x, overwrites=True))
        q.push(self._op(log, "consume", reads=(x,), writes=y, overwrites=True))
        q.push(self._op(log, "overwrite", writes=x, overwrites=True))
        q.drain()
        assert log == ["produce", "consume", "overwrite"]

    def test_elided_ops_reads_do_not_protect(self):
        # a dead op's reads never happen: the object it read can itself be
        # dead for even earlier writers
        q = SequenceQueue()
        log = []
        x, y = object(), object()
        q.push(self._op(log, "w_y_early", writes=y, overwrites=True))
        q.push(self._op(log, "dead_reads_y", reads=(y,), writes=x, overwrites=True))
        q.push(self._op(log, "w_x", writes=x, overwrites=True))
        q.push(self._op(log, "w_y_late", writes=y, overwrites=True))
        q.drain()
        assert log == ["w_x", "w_y_late"]
        assert q.stats.elided == 2

    def test_non_overwriting_op_protects_earlier_writes(self):
        q = SequenceQueue()
        log = []
        x = object()
        q.push(self._op(log, "base", writes=x, overwrites=True))
        q.push(self._op(log, "accum", reads=(x,), writes=x, overwrites=False))
        q.drain()
        assert log == ["base", "accum"]

    def test_optimization_can_be_disabled(self):
        q = SequenceQueue(optimize=False)
        log = []
        x = object()
        q.push(self._op(log, "a", writes=x, overwrites=True))
        q.push(self._op(log, "b", writes=x, overwrites=True))
        q.drain()
        assert log == ["a", "b"]
        assert q.stats.elided == 0

    def test_failure_exposes_tail(self):
        q = SequenceQueue()
        log = []
        x, y = object(), object()

        def boom():
            raise grb.info.OutOfMemory("x")

        q.push(self._op(log, "ok", writes=x, overwrites=True))
        q.push(
            DeferredOp(thunk=boom, reads=(x,), writes=y, label="fail")
        )
        q.push(self._op(log, "never", writes=x, overwrites=True))
        with pytest.raises(grb.info.OutOfMemory):
            q.drain()
        labels = [op.label for op in q.failed_tail]
        assert labels == ["fail", "never"]
        assert log == ["ok"]
        assert len(q) == 0  # queue consumed even on failure

    def test_involves(self):
        q = SequenceQueue()
        x, y = object(), object()
        q.push(self._op([], "op", reads=(x,), writes=y))
        assert q.involves(x) and q.involves(y)
        assert not q.involves(object())
        assert q.pending_for(y) and not q.pending_for(x)
